//! Rooted-tree views of (tree-shaped) graphs.
//!
//! A [`RootedTree`] is the standard substrate for the paper's tree
//! algorithms: it fixes a root, and exposes parent/children/depth arrays and
//! traversal orders. It can be built over a whole tree graph or from an
//! explicit parent array (e.g. the output of a distributed BFS).

use crate::graph::{Graph, NodeId};
use crate::properties;

/// A tree rooted at a designated node, with precomputed parent, children,
/// depth and BFS order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RootedTree {
    root: NodeId,
    parent: Vec<Option<NodeId>>,
    children: Vec<Vec<NodeId>>,
    depth: Vec<u32>,
    bfs_order: Vec<NodeId>,
}

impl RootedTree {
    /// Roots a tree-shaped graph at `root`.
    ///
    /// # Panics
    ///
    /// Panics if `g` is not a tree.
    pub fn from_graph(g: &Graph, root: NodeId) -> Self {
        assert!(properties::is_tree(g), "RootedTree requires a tree graph");
        let parents = properties::bfs_parents(g, root);
        let parent: Vec<Option<NodeId>> = parents
            .iter()
            .enumerate()
            .map(|(i, p)| if i == root.0 { None } else { *p })
            .collect();
        Self::from_parent_array(root, parent)
    }

    /// Builds the view from a parent array (`None` exactly at the root).
    ///
    /// # Panics
    ///
    /// Panics if the parent array does not describe a tree spanning all
    /// indices (cycles or unreachable nodes).
    pub fn from_parent_array(root: NodeId, parent: Vec<Option<NodeId>>) -> Self {
        let n = parent.len();
        assert!(root.0 < n, "root out of range");
        assert!(parent[root.0].is_none(), "root must have no parent");
        let mut children: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for (i, p) in parent.iter().enumerate() {
            if let Some(p) = p {
                children[p.0].push(NodeId(i));
            } else {
                assert_eq!(i, root.0, "only the root may lack a parent");
            }
        }
        // BFS from the root over child pointers; also assigns depths and
        // detects cycles/disconnection (visited count must equal n).
        let mut depth = vec![0u32; n];
        let mut bfs_order = Vec::with_capacity(n);
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(root);
        while let Some(u) = queue.pop_front() {
            bfs_order.push(u);
            assert!(bfs_order.len() <= n, "cycle in parent array");
            for &c in &children[u.0] {
                depth[c.0] = depth[u.0] + 1;
                queue.push_back(c);
            }
        }
        assert_eq!(bfs_order.len(), n, "parent array does not span all nodes");
        RootedTree {
            root,
            parent,
            children,
            depth,
            bfs_order,
        }
    }

    /// The root node.
    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the tree is empty (never true: a tree has ≥ 1 node).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Parent of `v` (`None` for the root).
    #[inline]
    pub fn parent(&self, v: NodeId) -> Option<NodeId> {
        self.parent[v.0]
    }

    /// Children of `v`.
    #[inline]
    pub fn children(&self, v: NodeId) -> &[NodeId] {
        &self.children[v.0]
    }

    /// Depth of `v` (root has depth 0). The paper calls this `Depth(v)`.
    #[inline]
    pub fn depth(&self, v: NodeId) -> u32 {
        self.depth[v.0]
    }

    /// Height of the tree: the maximum depth (paper: tree depth `M`).
    pub fn height(&self) -> u32 {
        self.depth.iter().copied().max().unwrap_or(0)
    }

    /// Whether `v` is a leaf (no children; the root of a 1-node tree is a
    /// leaf).
    #[inline]
    pub fn is_leaf(&self, v: NodeId) -> bool {
        self.children[v.0].is_empty()
    }

    /// Nodes in BFS (top-down) order starting at the root.
    #[inline]
    pub fn bfs_order(&self) -> &[NodeId] {
        &self.bfs_order
    }

    /// Nodes in a bottom-up order (children before parents).
    pub fn post_order(&self) -> Vec<NodeId> {
        self.bfs_order.iter().rev().copied().collect()
    }

    /// Size of the subtree rooted at each node.
    pub fn subtree_sizes(&self) -> Vec<usize> {
        let mut size = vec![1usize; self.len()];
        for &v in self.bfs_order.iter().rev() {
            if let Some(p) = self.parent[v.0] {
                size[p.0] += size[v.0];
            }
        }
        size
    }

    /// All leaves of the tree.
    pub fn leaves(&self) -> Vec<NodeId> {
        (0..self.len())
            .map(NodeId)
            .filter(|&v| self.is_leaf(v))
            .collect()
    }

    /// The path from `v` up to the root, inclusive of both.
    pub fn path_to_root(&self, v: NodeId) -> Vec<NodeId> {
        let mut path = vec![v];
        let mut cur = v;
        while let Some(p) = self.parent[cur.0] {
            path.push(p);
            cur = p;
        }
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    /// A small fixed tree:
    /// ```text
    ///        0
    ///       / \
    ///      1   2
    ///     /|    \
    ///    3 4     5
    /// ```
    fn sample() -> RootedTree {
        let mut b = GraphBuilder::new(6);
        b.add_edge(NodeId(0), NodeId(1), 1);
        b.add_edge(NodeId(0), NodeId(2), 2);
        b.add_edge(NodeId(1), NodeId(3), 3);
        b.add_edge(NodeId(1), NodeId(4), 4);
        b.add_edge(NodeId(2), NodeId(5), 5);
        RootedTree::from_graph(&b.build(), NodeId(0))
    }

    #[test]
    fn structure() {
        let t = sample();
        assert_eq!(t.root(), NodeId(0));
        assert_eq!(t.len(), 6);
        assert_eq!(t.parent(NodeId(4)), Some(NodeId(1)));
        assert_eq!(t.parent(NodeId(0)), None);
        assert_eq!(t.depth(NodeId(5)), 2);
        assert_eq!(t.height(), 2);
        assert!(t.is_leaf(NodeId(3)));
        assert!(!t.is_leaf(NodeId(1)));
        assert_eq!(t.leaves(), vec![NodeId(3), NodeId(4), NodeId(5)]);
    }

    #[test]
    fn orders_and_sizes() {
        let t = sample();
        assert_eq!(t.bfs_order()[0], NodeId(0));
        let sizes = t.subtree_sizes();
        assert_eq!(sizes[0], 6);
        assert_eq!(sizes[1], 3);
        assert_eq!(sizes[2], 2);
        assert_eq!(sizes[3], 1);
        let post = t.post_order();
        // every node appears after all of its children
        let pos: Vec<usize> = {
            let mut p = vec![0; 6];
            for (i, v) in post.iter().enumerate() {
                p[v.0] = i;
            }
            p
        };
        for v in 0..6 {
            if let Some(par) = t.parent(NodeId(v)) {
                assert!(pos[v] < pos[par.0]);
            }
        }
    }

    #[test]
    fn path_to_root() {
        let t = sample();
        assert_eq!(
            t.path_to_root(NodeId(4)),
            vec![NodeId(4), NodeId(1), NodeId(0)]
        );
        assert_eq!(t.path_to_root(NodeId(0)), vec![NodeId(0)]);
    }

    #[test]
    fn from_parent_array_roundtrip() {
        let t = sample();
        let parent: Vec<Option<NodeId>> = (0..6).map(|v| t.parent(NodeId(v))).collect();
        let t2 = RootedTree::from_parent_array(NodeId(0), parent);
        assert_eq!(t, t2);
    }

    #[test]
    #[should_panic(expected = "does not span")]
    fn detects_cycle() {
        // 0 -> root, 1 and 2 form a 2-cycle.
        let parent = vec![None, Some(NodeId(2)), Some(NodeId(1))];
        RootedTree::from_parent_array(NodeId(0), parent);
    }

    #[test]
    #[should_panic(expected = "requires a tree")]
    fn rejects_non_tree() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), 1);
        b.add_edge(NodeId(1), NodeId(2), 2);
        b.add_edge(NodeId(2), NodeId(0), 3);
        RootedTree::from_graph(&b.build(), NodeId(0));
    }

    #[test]
    fn single_node() {
        let g = GraphBuilder::new(1).build();
        let t = RootedTree::from_graph(&g, NodeId(0));
        assert_eq!(t.height(), 0);
        assert!(t.is_leaf(NodeId(0)));
        assert!(!t.is_empty());
    }
}
