//! Fail-fast parsing of `KDOM_*` environment knobs.
//!
//! Every layer of the workspace reads tuning knobs from the environment
//! (`KDOM_THREADS`, `KDOM_CHAOS_*`, `KDOM_BENCH_*`, …). The historical
//! pattern `var(k).ok().and_then(|v| v.parse().ok()).unwrap_or(default)`
//! silently swallowed malformed values: `KDOM_THREADS=abc` fell back to
//! the single-threaded default without a word, so a typo'd CI matrix or
//! shell export quietly benchmarked the wrong configuration. These
//! helpers are the one place knob strings are parsed now, and a value
//! that is set but unusable **aborts with a message naming the variable
//! and the offending value** — a misconfigured run must not masquerade
//! as a configured one.
//!
//! Unset (or empty) variables still mean "use the default": failing fast
//! is about rejecting *malformed* input, not about making every knob
//! mandatory.

use std::fmt::Display;
use std::str::FromStr;

/// Reads the environment variable `name`, returning `default` when it is
/// unset or empty, and the parsed value otherwise.
///
/// # Panics
///
/// Panics with a message naming `name` and the offending value when the
/// variable is set but does not parse as `T`.
#[must_use]
pub fn knob<T>(name: &str, default: T) -> T
where
    T: FromStr,
    T::Err: Display,
{
    match raw(name) {
        None => default,
        Some(v) => v.parse().unwrap_or_else(|e| {
            panic!("{name}={v:?} is malformed: {e} (unset the variable for the default)")
        }),
    }
}

/// Like [`knob`], but additionally validates the parsed value with
/// `check`, which returns a description of the constraint when the value
/// is out of range.
///
/// # Panics
///
/// Panics, naming `name` and the offending value, when the variable is
/// set but malformed or when `check` rejects the parsed value.
#[must_use]
pub fn knob_checked<T>(name: &str, default: T, check: impl Fn(&T) -> Result<(), String>) -> T
where
    T: FromStr,
    T::Err: Display,
{
    let set = raw(name).is_some();
    let value = knob(name, default);
    if set {
        if let Err(constraint) = check(&value) {
            let v = std::env::var(name).unwrap_or_default();
            panic!("{name}={v:?} is out of range: {constraint}");
        }
    }
    value
}

/// Reads an enumerated string knob: returns `default` when unset or
/// empty, otherwise the mapping of the first `(aliases, value)` row whose
/// alias list contains the variable's value.
///
/// # Panics
///
/// Panics, naming `name`, the offending value, and the accepted aliases,
/// when the variable is set to a string matching no row.
#[must_use]
pub fn knob_enum<T: Copy>(name: &str, default: T, table: &[(&[&str], T)]) -> T {
    match raw(name) {
        None => default,
        Some(v) => table
            .iter()
            .find(|(aliases, _)| aliases.contains(&v.as_str()))
            .map(|&(_, value)| value)
            .unwrap_or_else(|| {
                let accepted: Vec<&str> =
                    table.iter().flat_map(|(a, _)| a.iter().copied()).collect();
                panic!(
                    "{name}={v:?} is not a recognized value (accepted: {})",
                    accepted.join(", ")
                )
            }),
    }
}

/// Reads a boolean knob through the workspace's one alias table:
/// `1`/`on`/`true`/`yes` enable, `0`/`off`/`false`/`no` disable, unset or
/// empty means `default`.
///
/// # Panics
///
/// Panics, naming the variable, the offending value, and the accepted
/// aliases, on any other string — `KDOM_BENCH_GATE=yes please` must not
/// silently run ungated.
#[must_use]
pub fn knob_flag(name: &str, default: bool) -> bool {
    knob_enum(
        name,
        default,
        &[
            (&["0", "off", "false", "no"], false),
            (&["1", "on", "true", "yes"], true),
        ],
    )
}

/// The variable's value when set and non-empty, unparsed — for knobs that
/// are strings by nature (file paths, socket endpoints) where every
/// non-empty value is well-formed. Empty strings count as unset:
/// `KDOM_FOO= cmd` is how shells express "default, explicitly".
///
/// # Panics
///
/// Panics if the variable is set to non-unicode bytes: a knob the
/// process cannot even read as text must not be silently ignored.
#[must_use]
pub fn raw(name: &str) -> Option<String> {
    match std::env::var(name) {
        Err(std::env::VarError::NotPresent) => None,
        Err(e) => panic!("{name} is not valid unicode: {e}"),
        Ok(v) if v.is_empty() => None,
        Ok(v) => Some(v),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Env-var tests share one process; each test uses its own variable
    // name so they cannot race under the parallel test runner.

    #[test]
    fn unset_yields_default() {
        assert_eq!(knob("KDOM_KNOB_TEST_UNSET", 7usize), 7);
    }

    #[test]
    fn empty_yields_default() {
        std::env::set_var("KDOM_KNOB_TEST_EMPTY", "");
        assert_eq!(knob("KDOM_KNOB_TEST_EMPTY", 7usize), 7);
    }

    #[test]
    fn set_parses() {
        std::env::set_var("KDOM_KNOB_TEST_SET", "42");
        assert_eq!(knob("KDOM_KNOB_TEST_SET", 7usize), 42);
    }

    #[test]
    #[should_panic(expected = "KDOM_KNOB_TEST_BAD=\"abc\" is malformed")]
    fn malformed_panics_naming_var_and_value() {
        std::env::set_var("KDOM_KNOB_TEST_BAD", "abc");
        let _ = knob("KDOM_KNOB_TEST_BAD", 7usize);
    }

    #[test]
    #[should_panic(expected = "KDOM_KNOB_TEST_RANGE=\"0\" is out of range")]
    fn out_of_range_panics() {
        std::env::set_var("KDOM_KNOB_TEST_RANGE", "0");
        let _ = knob_checked("KDOM_KNOB_TEST_RANGE", 4usize, |&v| {
            if v >= 1 {
                Ok(())
            } else {
                Err("must be at least 1".into())
            }
        });
    }

    #[test]
    fn enum_maps_aliases() {
        std::env::set_var("KDOM_KNOB_TEST_ENUM", "full-scan");
        let v = knob_enum(
            "KDOM_KNOB_TEST_ENUM",
            0,
            &[(&["active"], 1), (&["full", "full-scan"], 2)],
        );
        assert_eq!(v, 2);
    }

    #[test]
    #[should_panic(expected = "KDOM_KNOB_TEST_ENUM_BAD=\"sideways\" is not a recognized value")]
    fn enum_rejects_unknown() {
        std::env::set_var("KDOM_KNOB_TEST_ENUM_BAD", "sideways");
        let _ = knob_enum("KDOM_KNOB_TEST_ENUM_BAD", 0, &[(&["active"], 1)]);
    }

    #[test]
    fn flag_maps_aliases_and_defaults() {
        assert!(knob_flag("KDOM_KNOB_TEST_FLAG_UNSET", true));
        assert!(!knob_flag("KDOM_KNOB_TEST_FLAG_UNSET", false));
        std::env::set_var("KDOM_KNOB_TEST_FLAG_ON", "yes");
        assert!(knob_flag("KDOM_KNOB_TEST_FLAG_ON", false));
        std::env::set_var("KDOM_KNOB_TEST_FLAG_OFF", "0");
        assert!(!knob_flag("KDOM_KNOB_TEST_FLAG_OFF", true));
    }

    #[test]
    #[should_panic(expected = "KDOM_KNOB_TEST_FLAG_BAD=\"maybe\" is not a recognized value")]
    fn flag_rejects_unknown() {
        std::env::set_var("KDOM_KNOB_TEST_FLAG_BAD", "maybe");
        let _ = knob_flag("KDOM_KNOB_TEST_FLAG_BAD", false);
    }

    #[test]
    fn raw_passes_strings_through() {
        assert_eq!(raw("KDOM_KNOB_TEST_RAW_UNSET"), None);
        std::env::set_var("KDOM_KNOB_TEST_RAW_EMPTY", "");
        assert_eq!(raw("KDOM_KNOB_TEST_RAW_EMPTY"), None);
        std::env::set_var("KDOM_KNOB_TEST_RAW_SET", "/tmp/trace.jsonl");
        assert_eq!(
            raw("KDOM_KNOB_TEST_RAW_SET").as_deref(),
            Some("/tmp/trace.jsonl")
        );
    }
}
