//! Sequential reference MST algorithms and MST-related verifiers.
//!
//! With pairwise-distinct edge weights (the paper's assumption, upheld by
//! every generator in this crate) the minimum spanning tree is *unique*, so
//! the distributed algorithms can be validated by exact edge-set comparison
//! against [`kruskal`].

use crate::dsu::Dsu;
use crate::graph::{EdgeId, Graph, NodeId};
use crate::properties::oracle_threads;

/// Smallest edge count worth splitting the sort across workers.
const PAR_EDGES_MIN: usize = 1 << 13;

/// Kruskal's algorithm. Returns the MST edge ids (a minimum spanning
/// *forest* if the graph is disconnected), sorted by weight.
///
/// Worker count for the edge sort comes from
/// [`oracle_threads`](crate::properties::oracle_threads); see
/// [`kruskal_with_threads`] for an explicit count.
pub fn kruskal(g: &Graph) -> Vec<EdgeId> {
    kruskal_with_threads(g, oracle_threads())
}

/// [`kruskal`] with an explicit worker count for the edge sort. The
/// `(weight, id)` sort keys are unique, so the merged order — and thus
/// the output — is byte-identical at every thread count. The union-find
/// pass stays sequential (it is inherently ordered and cheap next to the
/// sort).
pub fn kruskal_with_threads(g: &Graph, threads: usize) -> Vec<EdgeId> {
    let mut keys: Vec<(u64, EdgeId)> = g.edges().iter().map(|e| (e.weight, e.id)).collect();
    if threads <= 1 || keys.len() < PAR_EDGES_MIN {
        keys.sort_unstable();
    } else {
        let chunk = keys.len().div_ceil(threads);
        std::thread::scope(|scope| {
            for part in keys.chunks_mut(chunk) {
                scope.spawn(move || part.sort_unstable());
            }
        });
        keys = merge_sorted_runs(keys, chunk);
    }
    let mut dsu = Dsu::new(g.node_count());
    let mut out = Vec::new();
    for &(_, e) in &keys {
        let er = g.edge(e);
        if dsu.union(er.u, er.v) {
            out.push(e);
        }
    }
    out
}

/// Merges `runs` of length `chunk` (last possibly shorter), each already
/// sorted, into one sorted vector. Keys are unique, so the result is a
/// total order independent of the run split.
fn merge_sorted_runs(keys: Vec<(u64, EdgeId)>, chunk: usize) -> Vec<(u64, EdgeId)> {
    let mut cursors: Vec<(usize, usize)> = (0..keys.len())
        .step_by(chunk)
        .map(|lo| (lo, keys.len().min(lo + chunk)))
        .collect();
    let mut out = Vec::with_capacity(keys.len());
    loop {
        let mut best: Option<usize> = None;
        for (i, &(pos, end)) in cursors.iter().enumerate() {
            if pos < end && best.is_none_or(|b: usize| keys[pos] < keys[cursors[b].0]) {
                best = Some(i);
            }
        }
        let Some(b) = best else { break };
        out.push(keys[cursors[b].0]);
        cursors[b].0 += 1;
    }
    out
}

/// Prim's algorithm from node 0 (dense `O(n^2)` variant — fine at
/// experiment scale). Returns MST edge ids of node 0's component.
pub fn prim(g: &Graph) -> Vec<EdgeId> {
    let n = g.node_count();
    if n == 0 {
        return Vec::new();
    }
    let mut in_tree = vec![false; n];
    let mut best: Vec<Option<(u64, EdgeId)>> = vec![None; n];
    in_tree[0] = true;
    for a in g.neighbors(NodeId(0)) {
        best[a.to.0] = Some((a.weight, a.edge));
    }
    let mut out = Vec::new();
    loop {
        let next = (0..n)
            .filter(|&v| !in_tree[v])
            .filter_map(|v| best[v].map(|(w, e)| (w, e, v)))
            .min();
        let Some((_, e, v)) = next else { break };
        in_tree[v] = true;
        out.push(e);
        for a in g.neighbors(NodeId(v)) {
            if !in_tree[a.to.0] {
                let cand = (a.weight, a.edge);
                if best[a.to.0].is_none_or(|cur| cand < cur) {
                    best[a.to.0] = Some(cand);
                }
            }
        }
    }
    out
}

/// Total weight of the unique MST (forest weight if disconnected).
pub fn mst_weight(g: &Graph) -> u128 {
    g.total_weight(kruskal(g))
}

/// Whether `edges` is a spanning tree of a connected `g`: exactly `n-1`
/// edges whose endpoints connect all nodes.
pub fn is_spanning_tree(g: &Graph, edges: &[EdgeId]) -> bool {
    if g.node_count() == 0 {
        return edges.is_empty();
    }
    if edges.len() != g.node_count() - 1 {
        return false;
    }
    let mut dsu = Dsu::new(g.node_count());
    for &e in edges {
        let er = g.edge(e);
        if !dsu.union(er.u, er.v) {
            return false; // cycle
        }
    }
    dsu.set_count() == 1
}

/// Whether `edges` equals the unique MST of `g` (requires distinct
/// weights; falls back to weight comparison otherwise).
pub fn is_mst(g: &Graph, edges: &[EdgeId]) -> bool {
    is_mst_with_threads(g, edges, oracle_threads())
}

/// [`is_mst`] with an explicit worker count for the reference Kruskal.
pub fn is_mst_with_threads(g: &Graph, edges: &[EdgeId], threads: usize) -> bool {
    if !is_spanning_tree(g, edges) {
        return false;
    }
    if g.has_distinct_weights() {
        let mut a: Vec<EdgeId> = edges.to_vec();
        a.sort_unstable();
        let mut b = kruskal_with_threads(g, threads);
        b.sort_unstable();
        a == b
    } else {
        g.total_weight(edges.iter().copied()) == g.total_weight(kruskal_with_threads(g, threads))
    }
}

/// Whether every edge of `edges` belongs to the unique MST (the paper's
/// "each tree of this forest is a fragment of the MST").
pub fn is_subset_of_mst(g: &Graph, edges: &[EdgeId]) -> bool {
    is_subset_of_mst_with_threads(g, edges, oracle_threads())
}

/// [`is_subset_of_mst`] with an explicit worker count for the reference
/// Kruskal.
pub fn is_subset_of_mst_with_threads(g: &Graph, edges: &[EdgeId], threads: usize) -> bool {
    let mst: std::collections::HashSet<EdgeId> =
        kruskal_with_threads(g, threads).into_iter().collect();
    edges.iter().all(|e| mst.contains(e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{gnp_connected, random_tree, GenConfig};
    use crate::graph::GraphBuilder;

    fn diamond() -> Graph {
        // 0-1 (1), 1-3 (2), 0-2 (4), 2-3 (8), 0-3 (16)
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId(0), NodeId(1), 1);
        b.add_edge(NodeId(1), NodeId(3), 2);
        b.add_edge(NodeId(0), NodeId(2), 4);
        b.add_edge(NodeId(2), NodeId(3), 8);
        b.add_edge(NodeId(0), NodeId(3), 16);
        b.build()
    }

    #[test]
    fn kruskal_picks_light_edges() {
        let g = diamond();
        let mst = kruskal(&g);
        assert_eq!(g.total_weight(mst.iter().copied()), 1 + 2 + 4);
        assert!(is_mst(&g, &mst));
    }

    #[test]
    fn prim_matches_kruskal() {
        let g = diamond();
        let mut p = prim(&g);
        let mut k = kruskal(&g);
        p.sort_unstable();
        k.sort_unstable();
        assert_eq!(p, k);
    }

    #[test]
    fn prim_matches_kruskal_on_random_graphs() {
        for seed in 0..10 {
            let g = gnp_connected(&GenConfig::with_seed(40, seed), 0.15);
            let mut p = prim(&g);
            let mut k = kruskal(&g);
            p.sort_unstable();
            k.sort_unstable();
            assert_eq!(p, k, "seed {seed}");
        }
    }

    #[test]
    fn tree_is_its_own_mst() {
        let g = random_tree(&GenConfig::with_seed(30, 7));
        let all: Vec<EdgeId> = g.edges().iter().map(|e| e.id).collect();
        assert!(is_mst(&g, &all));
        assert!(is_subset_of_mst(&g, &all));
    }

    #[test]
    fn spanning_tree_detects_cycles_and_shortfalls() {
        let g = diamond();
        let ids: Vec<EdgeId> = g.edges().iter().map(|e| e.id).collect();
        assert!(!is_spanning_tree(&g, &ids[..2])); // too few
        assert!(!is_spanning_tree(&g, &ids)); // too many
                                              // 3 edges forming a cycle + isolated node:
        assert!(!is_spanning_tree(&g, &[ids[0], ids[1], ids[4]]));
    }

    #[test]
    fn non_mst_spanning_tree_rejected() {
        let g = diamond();
        // 0-1, 1-3, 0-3 is a cycle; pick spanning tree with heavy edge 0-3.
        let heavy = g.edge_between(NodeId(0), NodeId(3)).unwrap().id;
        let e01 = g.edge_between(NodeId(0), NodeId(1)).unwrap().id;
        let e02 = g.edge_between(NodeId(0), NodeId(2)).unwrap().id;
        let st = [heavy, e01, e02];
        assert!(is_spanning_tree(&g, &st));
        assert!(!is_mst(&g, &st));
        assert!(!is_subset_of_mst(&g, &st));
    }

    #[test]
    fn parallel_kruskal_matches_sequential() {
        use crate::generators::gnm_connected;
        // m above PAR_EDGES_MIN so the chunked sort + merge genuinely runs
        let g = gnm_connected(&GenConfig::with_seed(2048, 9), 10000);
        let seq = kruskal_with_threads(&g, 1);
        for threads in [2, 4] {
            assert_eq!(
                kruskal_with_threads(&g, threads),
                seq,
                "threads = {threads}"
            );
        }
        assert!(is_mst_with_threads(&g, &seq, 4));
        assert!(is_subset_of_mst_with_threads(&g, &seq[..100], 4));
    }

    #[test]
    fn empty_and_singleton() {
        let g0 = GraphBuilder::new(0).build();
        assert!(kruskal(&g0).is_empty());
        assert!(is_spanning_tree(&g0, &[]));
        let g1 = GraphBuilder::new(1).build();
        assert!(kruskal(&g1).is_empty());
        assert!(prim(&g1).is_empty());
        assert!(is_mst(&g1, &[]));
    }
}
