//! Deterministic graph generators for the experiments.
//!
//! All generators produce graphs with **pairwise-distinct edge weights** and
//! **pairwise-distinct node identifiers**, the paper's standing assumptions.
//! Randomized generators are driven by a seed ([`GenConfig::seed`]) so every
//! experiment is reproducible.

use kdom_rng::StdRng;

use crate::graph::{EdgeId, EdgeRef, Graph, NodeId};

/// Size + seed configuration for the randomized generators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GenConfig {
    /// Number of nodes.
    pub n: usize,
    /// RNG seed; equal seeds produce equal graphs.
    pub seed: u64,
}

impl GenConfig {
    /// Convenience constructor.
    pub fn with_seed(n: usize, seed: u64) -> Self {
        GenConfig { n, seed }
    }
}

/// Draws `m` pairwise-distinct weights in `1..=8m+16`, in random order.
fn distinct_weights(m: usize, rng: &mut StdRng) -> Vec<u64> {
    let space = 8 * m + 16;
    let idx = rng.sample_indices(space, m);
    let mut w: Vec<u64> = idx.into_iter().map(|i| i as u64 + 1).collect();
    rng.shuffle(&mut w);
    w
}

/// Random distinct node identifiers (48-bit), so symmetry breaking faces
/// realistic id entropy.
fn random_ids(n: usize, rng: &mut StdRng) -> Vec<u64> {
    let mut ids = Vec::with_capacity(n);
    let mut seen = std::collections::HashSet::with_capacity(n);
    while ids.len() < n {
        let id: u64 = rng.random_range(0..(1u64 << 48));
        if seen.insert(id) {
            ids.push(id);
        }
    }
    ids
}

/// Assigns random distinct weights/ids to a prepared edge list.
fn assemble(n: usize, edges: &[(usize, usize)], rng: &mut StdRng) -> Graph {
    assemble_streamed(n, edges.len(), edges.iter().copied(), rng)
}

/// Streaming [`assemble`]: consumes an edge *iterator* of known length
/// `m` directly into the graph's final edge array — no intermediate
/// pair `Vec`, which matters at 10^6 nodes. The RNG call order
/// (`distinct_weights(m)`, then the edge pass, then `random_ids(n)`)
/// is exactly [`assemble`]'s, so a generator switching to the streamed
/// path produces a byte-identical graph for the same seed.
///
/// # Panics
///
/// Panics if the iterator does not yield exactly `m` edges, or on any
/// edge [`Graph::from_edges`] rejects.
fn assemble_streamed(
    n: usize,
    m: usize,
    edges: impl IntoIterator<Item = (usize, usize)>,
    rng: &mut StdRng,
) -> Graph {
    let w = distinct_weights(m, rng);
    let mut list: Vec<EdgeRef> = Vec::with_capacity(m);
    for ((u, v), &wt) in edges.into_iter().zip(&w) {
        list.push(EdgeRef {
            id: EdgeId(list.len()),
            u: NodeId(u),
            v: NodeId(v),
            weight: wt,
        });
    }
    assert_eq!(list.len(), m, "edge stream must yield exactly m edges");
    let ids = random_ids(n, rng);
    Graph::from_edges(n, list, Some(ids))
}

/// Draws weights for an edge list collected with placeholder weights,
/// then ids, and finalizes — the tail shared by the streaming
/// generators whose edge count is only known after dedup
/// ([`random_regular`], [`gnm_connected`]).
fn finish_weighted(n: usize, mut edges: Vec<EdgeRef>, rng: &mut StdRng) -> Graph {
    let w = distinct_weights(edges.len(), rng);
    for (e, wt) in edges.iter_mut().zip(w) {
        e.weight = wt;
    }
    let ids = random_ids(n, rng);
    Graph::from_edges(n, edges, Some(ids))
}

/// Path `0 - 1 - … - n-1`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn path(cfg: &GenConfig) -> Graph {
    assert!(cfg.n > 0);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let edges: Vec<_> = (0..cfg.n - 1).map(|i| (i, i + 1)).collect();
    assemble(cfg.n, &edges, &mut rng)
}

/// Cycle on `n ≥ 3` nodes.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn cycle(cfg: &GenConfig) -> Graph {
    assert!(cfg.n >= 3, "a cycle needs at least 3 nodes");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut edges: Vec<_> = (0..cfg.n - 1).map(|i| (i, i + 1)).collect();
    edges.push((cfg.n - 1, 0));
    assemble(cfg.n, &edges, &mut rng)
}

/// Star: node 0 joined to all others.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn star(cfg: &GenConfig) -> Graph {
    assert!(cfg.n > 0);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let edges: Vec<_> = (1..cfg.n).map(|i| (0, i)).collect();
    assemble(cfg.n, &edges, &mut rng)
}

/// Complete graph `K_n`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn complete(cfg: &GenConfig) -> Graph {
    assert!(cfg.n > 0);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut edges = Vec::new();
    for u in 0..cfg.n {
        for v in u + 1..cfg.n {
            edges.push((u, v));
        }
    }
    assemble(cfg.n, &edges, &mut rng)
}

/// Complete `arity`-ary tree with `n` nodes (node `i`'s parent is
/// `(i-1)/arity`).
///
/// # Panics
///
/// Panics if `n == 0` or `arity == 0`.
pub fn balanced_tree(cfg: &GenConfig, arity: usize) -> Graph {
    assert!(cfg.n > 0 && arity > 0);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let edges: Vec<_> = (1..cfg.n).map(|i| ((i - 1) / arity, i)).collect();
    assemble(cfg.n, &edges, &mut rng)
}

/// Uniform random recursive tree: node `i` attaches to a uniformly random
/// earlier node. Expected height `Θ(log n)`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn random_tree(cfg: &GenConfig) -> Graph {
    assert!(cfg.n > 0);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let edges: Vec<_> = (1..cfg.n).map(|i| (rng.random_range(0..i), i)).collect();
    assemble(cfg.n, &edges, &mut rng)
}

/// Caterpillar: a spine path of `⌈n·spine_frac⌉` nodes with the remaining
/// nodes attached as legs to random spine nodes. High-degree, low-ish
/// diameter trees stress the cluster partitioning.
///
/// # Panics
///
/// Panics if `n == 0` or `spine_frac` is not in `(0, 1]`.
pub fn caterpillar(cfg: &GenConfig, spine_frac: f64) -> Graph {
    assert!(cfg.n > 0);
    assert!(spine_frac > 0.0 && spine_frac <= 1.0);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let spine = ((cfg.n as f64 * spine_frac).ceil() as usize).clamp(1, cfg.n);
    let mut edges: Vec<_> = (0..spine - 1).map(|i| (i, i + 1)).collect();
    for leg in spine..cfg.n {
        edges.push((rng.random_range(0..spine), leg));
    }
    assemble(cfg.n, &edges, &mut rng)
}

/// Broom: a path ("handle") of `handle` nodes ending in a star over the
/// remaining nodes. Large diameter plus a congestion hotspot.
///
/// # Panics
///
/// Panics if `handle == 0` or `handle > n`.
pub fn broom(cfg: &GenConfig, handle: usize) -> Graph {
    assert!(handle > 0 && handle <= cfg.n);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut edges: Vec<_> = (0..handle - 1).map(|i| (i, i + 1)).collect();
    for leaf in handle..cfg.n {
        edges.push((handle - 1, leaf));
    }
    assemble(cfg.n, &edges, &mut rng)
}

/// `rows × cols` grid graph — the canonical "diameter ≈ √n" topology where
/// `FastMST` shines. Edges are streamed straight into the graph (no
/// intermediate pair list), in the same row-major right-then-down order
/// as ever.
pub fn grid(rows: usize, cols: usize, seed: u64) -> Graph {
    assert!(rows > 0 && cols > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let id = move |r: usize, c: usize| r * cols + c;
    let m = rows * (cols - 1) + (rows - 1) * cols;
    let edges = (0..rows).flat_map(move |r| {
        (0..cols).flat_map(move |c| {
            let right = (c + 1 < cols).then(|| (id(r, c), id(r, c + 1)));
            let down = (r + 1 < rows).then(|| (id(r, c), id(r + 1, c)));
            right.into_iter().chain(down)
        })
    });
    assemble_streamed(rows * cols, m, edges, &mut rng)
}

/// Erdős–Rényi `G(n, p)` conditioned on connectivity: a uniform random
/// spanning tree skeleton is added first, then every remaining pair
/// independently with probability `p`.
///
/// # Panics
///
/// Panics if `n == 0` or `p` is not in `[0, 1]`.
pub fn gnp_connected(cfg: &GenConfig, p: f64) -> Graph {
    assert!(cfg.n > 0);
    assert!((0.0..=1.0).contains(&p));
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    // Random-permutation recursive-tree skeleton keeps the graph connected.
    let mut perm: Vec<usize> = (0..cfg.n).collect();
    rng.shuffle(&mut perm);
    let mut present = vec![vec![false; cfg.n]; cfg.n];
    let mut edges = Vec::new();
    for i in 1..cfg.n {
        let a = perm[i];
        let b = perm[rng.random_range(0..i)];
        present[a][b] = true;
        present[b][a] = true;
        edges.push((a, b));
    }
    for (u, row) in present.iter().enumerate() {
        for (v, &p_uv) in row.iter().enumerate().skip(u + 1) {
            if !p_uv && rng.random_bool(p) {
                edges.push((u, v));
            }
        }
    }
    assemble(cfg.n, &edges, &mut rng)
}

/// Connected graph with exactly `m` edges (`n-1 ≤ m ≤ n(n-1)/2`): a random
/// spanning tree plus `m - n + 1` random extra edges.
///
/// # Panics
///
/// Panics if `m` is out of range.
pub fn random_connected(cfg: &GenConfig, m: usize) -> Graph {
    let n = cfg.n;
    assert!(n > 0);
    let max_m = n * (n - 1) / 2;
    assert!(
        m + 1 >= n && m <= max_m,
        "m out of range for connected graph"
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut perm: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut perm);
    let mut present = std::collections::HashSet::new();
    let mut edges = Vec::new();
    for i in 1..n {
        let a = perm[i];
        let b = perm[rng.random_range(0..i)];
        present.insert((a.min(b), a.max(b)));
        edges.push((a, b));
    }
    while edges.len() < m {
        let u = rng.random_range(0..n);
        let v = rng.random_range(0..n);
        if u == v {
            continue;
        }
        let key = (u.min(v), u.max(v));
        if present.insert(key) {
            edges.push((u, v));
        }
    }
    assemble(n, &edges, &mut rng)
}

/// `d`-dimensional hypercube (`n = 2^d` nodes, diameter `d`).
///
/// # Panics
///
/// Panics if `d == 0` or `d > 20`.
pub fn hypercube(d: u32, seed: u64) -> Graph {
    assert!((1..=20).contains(&d));
    let n = 1usize << d;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::new();
    for u in 0..n {
        for b in 0..d {
            let v = u ^ (1 << b);
            if u < v {
                edges.push((u, v));
            }
        }
    }
    assemble(n, &edges, &mut rng)
}

/// `rows × cols` torus (grid with wraparound); constant degree 4,
/// diameter `(rows + cols) / 2`.
///
/// # Panics
///
/// Panics if either side is smaller than 3.
pub fn torus(rows: usize, cols: usize, seed: u64) -> Graph {
    assert!(rows >= 3 && cols >= 3, "torus needs sides ≥ 3");
    let mut rng = StdRng::seed_from_u64(seed);
    let id = move |r: usize, c: usize| (r % rows) * cols + (c % cols);
    let edges = (0..rows).flat_map(move |r| {
        (0..cols).flat_map(move |c| [(id(r, c), id(r, c + 1)), (id(r, c), id(r + 1, c))])
    });
    assemble_streamed(rows * cols, 2 * rows * cols, edges, &mut rng)
}

/// Random (near-)`d`-regular graph: the union of `d/2` Hamiltonian
/// cycles on independent random permutations. Every node has degree
/// exactly `d` unless two cycles collide on an edge (rare, and only
/// ever *lowers* a degree); the first cycle alone makes the graph
/// connected, so no retry loop is needed. Streams edges without
/// intermediate pair lists — the designated low-diameter topology for
/// the 10^5–10^6-node engine rows.
///
/// # Panics
///
/// Panics if `n < 3` or `d` is odd or less than 2.
pub fn random_regular(cfg: &GenConfig, d: usize) -> Graph {
    assert!(cfg.n >= 3, "a cycle cover needs at least 3 nodes");
    assert!(d >= 2 && d.is_multiple_of(2), "degree must be even and ≥ 2");
    let n = cfg.n;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut present = std::collections::HashSet::with_capacity(n * d / 2);
    let mut edges: Vec<EdgeRef> = Vec::with_capacity(n * d / 2);
    let mut perm: Vec<usize> = (0..n).collect();
    for _ in 0..d / 2 {
        rng.shuffle(&mut perm);
        for i in 0..n {
            let (a, b) = (perm[i], perm[(i + 1) % n]);
            if present.insert((a.min(b), a.max(b))) {
                edges.push(EdgeRef {
                    id: EdgeId(edges.len()),
                    u: NodeId(a),
                    v: NodeId(b),
                    weight: 0,
                });
            }
        }
    }
    finish_weighted(n, edges, &mut rng)
}

/// Streaming `G(n, m)` conditioned on connectivity: a random-permutation
/// recursive-tree skeleton plus `m - n + 1` distinct random extra
/// edges, written straight into the graph's edge array (contrast
/// [`random_connected`], which it supersedes at scale — no `n × n`
/// structures, no intermediate pair list, usable at 10^6 nodes).
///
/// # Panics
///
/// Panics if `m` is out of `[n-1, n(n-1)/2]`.
pub fn gnm_connected(cfg: &GenConfig, m: usize) -> Graph {
    let n = cfg.n;
    assert!(n > 0);
    let max_m = n.saturating_mul(n - 1) / 2;
    assert!(
        m + 1 >= n && m <= max_m,
        "m out of range for connected graph"
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut perm: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut perm);
    let mut present = std::collections::HashSet::with_capacity(m);
    let mut edges: Vec<EdgeRef> = Vec::with_capacity(m);
    let push = |edges: &mut Vec<EdgeRef>, a: usize, b: usize| {
        edges.push(EdgeRef {
            id: EdgeId(edges.len()),
            u: NodeId(a),
            v: NodeId(b),
            weight: 0,
        });
    };
    for i in 1..n {
        let a = perm[i];
        let b = perm[rng.random_range(0..i)];
        present.insert((a.min(b), a.max(b)));
        push(&mut edges, a, b);
    }
    while edges.len() < m {
        let u = rng.random_range(0..n);
        let v = rng.random_range(0..n);
        if u == v {
            continue;
        }
        if present.insert((u.min(v), u.max(v))) {
            push(&mut edges, u, v);
        }
    }
    finish_weighted(n, edges, &mut rng)
}

/// Expander-ish random graph: the union of `d` random perfect-matching-
/// like permutation cycles over `n` nodes (connected with overwhelming
/// probability for `d ≥ 2`; retried until connected). Low diameter at
/// constant degree — the regime where `FastMST`'s `Diam` term vanishes.
///
/// # Panics
///
/// Panics if `n < 4` or `d < 2`.
pub fn expanderish(cfg: &GenConfig, d: usize) -> Graph {
    assert!(cfg.n >= 4 && d >= 2);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    for _attempt in 0..64 {
        let mut present = std::collections::HashSet::new();
        let mut edges = Vec::new();
        for _ in 0..d {
            let mut perm: Vec<usize> = (0..cfg.n).collect();
            rng.shuffle(&mut perm);
            for i in 0..cfg.n {
                let (a, b) = (perm[i], perm[(i + 1) % cfg.n]);
                if a != b && present.insert((a.min(b), a.max(b))) {
                    edges.push((a, b));
                }
            }
        }
        let g = assemble(cfg.n, &edges, &mut rng);
        if crate::properties::is_connected(&g) {
            return g;
        }
    }
    unreachable!("union of ≥2 random cycles is connected w.h.p.")
}

/// Renders the graph in Graphviz DOT format (weights as edge labels),
/// for debugging and documentation.
pub fn to_dot(g: &Graph) -> String {
    use std::fmt::Write;
    let mut s = String::from("graph kdom {\n");
    for v in g.nodes() {
        let _ = writeln!(s, "  n{} [label=\"{}\"];", v.0, g.id_of(v));
    }
    for e in g.edges() {
        let _ = writeln!(s, "  n{} -- n{} [label=\"{}\"];", e.u.0, e.v.0, e.weight);
    }
    s.push_str("}\n");
    s
}

/// The tree/graph families used across the experiment sweeps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Family {
    /// Path graph (max diameter tree).
    Path,
    /// Star graph (min diameter tree).
    Star,
    /// Balanced binary tree.
    BalancedBinary,
    /// Uniform random recursive tree.
    RandomTree,
    /// Caterpillar with a 30% spine.
    Caterpillar,
    /// Square grid.
    Grid,
    /// Connected G(n, p) with expected average degree ≈ 8.
    Gnp,
}

impl Family {
    /// Every family, for sweep loops.
    pub const ALL: [Family; 7] = [
        Family::Path,
        Family::Star,
        Family::BalancedBinary,
        Family::RandomTree,
        Family::Caterpillar,
        Family::Grid,
        Family::Gnp,
    ];

    /// Families whose output is always a tree.
    pub const TREES: [Family; 5] = [
        Family::Path,
        Family::Star,
        Family::BalancedBinary,
        Family::RandomTree,
        Family::Caterpillar,
    ];

    /// Generates a member of the family with `n` nodes (grids round `n` to a
    /// square).
    pub fn generate(self, n: usize, seed: u64) -> Graph {
        let cfg = GenConfig::with_seed(n, seed);
        match self {
            Family::Path => path(&cfg),
            Family::Star => star(&cfg),
            Family::BalancedBinary => balanced_tree(&cfg, 2),
            Family::RandomTree => random_tree(&cfg),
            Family::Caterpillar => caterpillar(&cfg, 0.3),
            Family::Grid => {
                let side = (n as f64).sqrt().round().max(1.0) as usize;
                grid(side, side, seed)
            }
            Family::Gnp => {
                let p = (8.0 / n as f64).min(1.0);
                gnp_connected(&cfg, p)
            }
        }
    }
}

impl std::fmt::Display for Family {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Family::Path => "path",
            Family::Star => "star",
            Family::BalancedBinary => "balanced-binary",
            Family::RandomTree => "random-tree",
            Family::Caterpillar => "caterpillar",
            Family::Grid => "grid",
            Family::Gnp => "gnp",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties::{diameter, is_connected, is_tree};

    fn check_invariants(g: &Graph) {
        assert!(g.has_distinct_weights(), "weights must be distinct");
        assert!(g.has_distinct_ids(), "ids must be distinct");
        assert!(is_connected(g), "generators must produce connected graphs");
    }

    #[test]
    fn deterministic_by_seed() {
        let cfg = GenConfig::with_seed(40, 9);
        assert_eq!(random_tree(&cfg), random_tree(&cfg));
        assert_ne!(
            random_tree(&cfg),
            random_tree(&GenConfig::with_seed(40, 10))
        );
    }

    #[test]
    fn trees_are_trees() {
        for fam in Family::TREES {
            for n in [1usize, 2, 3, 17, 64] {
                if n < 1 {
                    continue;
                }
                let g = fam.generate(n, 3);
                assert!(is_tree(&g), "{fam} on {n} nodes must be a tree");
                check_invariants(&g);
            }
        }
    }

    #[test]
    fn path_shape() {
        let g = path(&GenConfig::with_seed(10, 0));
        assert_eq!(diameter(&g), 9);
        check_invariants(&g);
    }

    #[test]
    fn star_shape() {
        let g = star(&GenConfig::with_seed(10, 0));
        assert_eq!(diameter(&g), 2);
        assert_eq!(g.degree(NodeId(0)), 9);
        check_invariants(&g);
    }

    #[test]
    fn cycle_shape() {
        let g = cycle(&GenConfig::with_seed(8, 0));
        assert_eq!(g.edge_count(), 8);
        assert_eq!(diameter(&g), 4);
        check_invariants(&g);
    }

    #[test]
    fn complete_shape() {
        let g = complete(&GenConfig::with_seed(7, 0));
        assert_eq!(g.edge_count(), 21);
        assert_eq!(diameter(&g), 1);
        check_invariants(&g);
    }

    #[test]
    fn balanced_tree_heights() {
        let g = balanced_tree(&GenConfig::with_seed(15, 0), 2);
        let t = crate::tree::RootedTree::from_graph(&g, NodeId(0));
        assert_eq!(t.height(), 3);
        check_invariants(&g);
    }

    #[test]
    fn broom_shape() {
        let g = broom(&GenConfig::with_seed(20, 1), 10);
        assert!(is_tree(&g));
        assert_eq!(g.degree(NodeId(9)), 11);
        check_invariants(&g);
    }

    #[test]
    fn grid_shape() {
        let g = grid(4, 5, 2);
        assert_eq!(g.node_count(), 20);
        assert_eq!(g.edge_count(), 4 * 4 + 3 * 5);
        assert_eq!(diameter(&g), 7);
        check_invariants(&g);
    }

    #[test]
    fn gnp_connected_and_dense_enough() {
        let g = gnp_connected(&GenConfig::with_seed(50, 5), 0.2);
        check_invariants(&g);
        assert!(g.edge_count() >= 49);
    }

    #[test]
    fn random_connected_edge_count() {
        for m in [9usize, 20, 45] {
            let g = random_connected(&GenConfig::with_seed(10, 4), m);
            assert_eq!(g.edge_count(), m);
            check_invariants(&g);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn random_connected_rejects_too_few_edges() {
        random_connected(&GenConfig::with_seed(10, 4), 5);
    }

    #[test]
    fn families_generate_all_sizes() {
        for fam in Family::ALL {
            let g = fam.generate(30, 11);
            check_invariants(&g);
            assert!(g.node_count() >= 25, "{fam} produced too few nodes");
        }
    }

    #[test]
    fn hypercube_shape() {
        let g = hypercube(4, 1);
        assert_eq!(g.node_count(), 16);
        assert_eq!(g.edge_count(), 32);
        assert_eq!(diameter(&g), 4);
        check_invariants(&g);
    }

    #[test]
    fn torus_shape() {
        let g = torus(4, 6, 2);
        assert_eq!(g.node_count(), 24);
        assert_eq!(g.edge_count(), 48);
        assert_eq!(diameter(&g), 2 + 3);
        check_invariants(&g);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 4);
        }
    }

    #[test]
    fn expanderish_low_diameter() {
        let g = expanderish(&GenConfig::with_seed(200, 3), 3);
        check_invariants(&g);
        assert!(diameter(&g) <= 12, "expanders have logarithmic diameter");
        assert!(g.nodes().all(|v| g.degree(v) <= 6));
    }

    #[test]
    fn dot_export() {
        let g = path(&GenConfig::with_seed(3, 0));
        let dot = to_dot(&g);
        assert!(dot.starts_with("graph kdom {"));
        assert!(dot.contains("n0 -- n1"));
        assert!(dot.trim_end().ends_with('}'));
    }

    /// The streamed grid/torus paths must generate byte-identical graphs
    /// to eagerly collecting the same edge order and calling `assemble`
    /// (the pre-CSR behaviour) — same weights, ids, and adjacency.
    #[test]
    fn streamed_grid_torus_match_eager_assembly() {
        let (rows, cols, seed) = (5, 7, 31);
        let mut eager = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                if c + 1 < cols {
                    eager.push((r * cols + c, r * cols + c + 1));
                }
                if r + 1 < rows {
                    eager.push((r * cols + c, (r + 1) * cols + c));
                }
            }
        }
        let mut rng = StdRng::seed_from_u64(seed);
        assert_eq!(
            grid(rows, cols, seed),
            assemble(rows * cols, &eager, &mut rng)
        );

        let id = |r: usize, c: usize| (r % rows) * cols + (c % cols);
        let mut eager = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                eager.push((id(r, c), id(r, c + 1)));
                eager.push((id(r, c), id(r + 1, c)));
            }
        }
        let mut rng = StdRng::seed_from_u64(seed);
        assert_eq!(
            torus(rows, cols, seed),
            assemble(rows * cols, &eager, &mut rng)
        );
    }

    #[test]
    fn random_regular_shape() {
        let g = random_regular(&GenConfig::with_seed(400, 7), 4);
        check_invariants(&g);
        assert!(g.nodes().all(|v| g.degree(v) <= 4));
        // collisions are rare: the vast majority of nodes are exactly 4-regular
        let full = g.nodes().filter(|&v| g.degree(v) == 4).count();
        assert!(full * 10 >= 400 * 9, "only {full}/400 nodes are 4-regular");
        assert_eq!(
            random_regular(&GenConfig::with_seed(400, 7), 4),
            g,
            "seed-deterministic"
        );
    }

    #[test]
    fn gnm_connected_matches_requested_edges() {
        for m in [9usize, 20, 45] {
            let g = gnm_connected(&GenConfig::with_seed(10, 4), m);
            assert_eq!(g.edge_count(), m);
            check_invariants(&g);
        }
        let g = gnm_connected(&GenConfig::with_seed(300, 12), 900);
        assert_eq!(g.edge_count(), 900);
        check_invariants(&g);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn gnm_connected_rejects_too_few_edges() {
        gnm_connected(&GenConfig::with_seed(10, 4), 5);
    }

    #[test]
    fn caterpillar_spine() {
        let g = caterpillar(&GenConfig::with_seed(40, 2), 0.3);
        assert!(is_tree(&g));
        assert!(diameter(&g) <= 14, "caterpillar diameter ≈ spine length");
    }
}
