//! Core graph representation: undirected, weighted, with unique node ids.
//!
//! Nodes are dense indices (`NodeId`) into adjacency arrays; every node
//! additionally carries a unique application-level identifier (`u64`), which
//! the distributed algorithms use for symmetry breaking, as assumed by the
//! paper ("nodes have unique identifiers"). Edge weights are `u64` and the
//! generators guarantee they are pairwise distinct ("each edge is associated
//! with a distinct weight, known to the adjacent nodes").
//!
//! Adjacency is stored in **CSR (compressed sparse row)** form: one
//! contiguous [`Arc`] array plus per-node offsets, so `neighbors(v)` is a
//! slice into a single allocation. At 10^6 nodes this replaces `n`
//! separate `Vec<Arc>` allocations (and their pointer-chasing) with two
//! flat arrays — the difference between a graph that fits hot in cache
//! and one that doesn't. The per-node arc order is **identical** to the
//! historical `Vec<Vec<Arc>>` representation (arcs appear in edge
//! insertion order), so every byte-identity guarantee downstream
//! survives the representation swap.

use std::fmt;

/// Dense index of a node inside a [`Graph`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub usize);

impl NodeId {
    /// Returns the underlying index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Dense index of an undirected edge inside a [`Graph`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct EdgeId(pub usize);

impl EdgeId {
    /// Returns the underlying index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// One endpoint-to-endpoint record of an undirected edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct EdgeRef {
    /// Edge index in the graph's edge list.
    pub id: EdgeId,
    /// Source endpoint.
    pub u: NodeId,
    /// Target endpoint.
    pub v: NodeId,
    /// The (distinct) weight of the edge.
    pub weight: u64,
}

impl EdgeRef {
    /// The endpoint of this edge that is not `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not an endpoint of the edge.
    pub fn other(&self, x: NodeId) -> NodeId {
        if x == self.u {
            self.v
        } else if x == self.v {
            self.u
        } else {
            panic!("{x:?} is not an endpoint of {self:?}")
        }
    }
}

/// A neighbor entry in an adjacency list.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Arc {
    /// The neighboring node.
    pub to: NodeId,
    /// Weight of the connecting edge.
    pub weight: u64,
    /// Identifier of the connecting edge.
    pub edge: EdgeId,
}

/// An undirected weighted graph with unique node identifiers, adjacency
/// in CSR form.
///
/// Construct with [`GraphBuilder`] (or [`Graph::from_edges`] for a
/// streamed edge source) or one of the functions in [`crate::generators`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Graph {
    /// CSR offsets: node `v`'s arcs are `arcs[offsets[v]..offsets[v+1]]`.
    offsets: Vec<usize>,
    /// All arcs, grouped by source node; within a node, in edge
    /// insertion order (both directions of edge `i` are placed before
    /// both directions of edge `i+1`).
    arcs: Vec<Arc>,
    edges: Vec<EdgeRef>,
    ids: Vec<u64>,
}

impl Graph {
    /// Builds a graph directly from a finalized edge list — the CSR
    /// construction shared by [`GraphBuilder::build`] and the streaming
    /// generators: count degrees, prefix-sum into offsets, then place
    /// both arcs of every edge in insertion order (reproducing exactly
    /// the adjacency order the historical `Vec<Vec<Arc>>` push loop
    /// produced). `ids` of `None` default to `0..n`.
    ///
    /// # Panics
    ///
    /// Panics on self loops, out-of-range endpoints, duplicate
    /// (parallel) edges, non-consecutive [`EdgeId`]s, or an id list of
    /// the wrong length.
    pub fn from_edges(n: usize, edges: Vec<EdgeRef>, ids: Option<Vec<u64>>) -> Graph {
        let mut degree = vec![0usize; n];
        for (i, e) in edges.iter().enumerate() {
            assert_eq!(e.id, EdgeId(i), "edge ids must be consecutive");
            assert!(e.u != e.v, "self loops are not allowed");
            assert!(e.u.0 < n && e.v.0 < n, "endpoint out of range");
            degree[e.u.0] += 1;
            degree[e.v.0] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for &d in &degree {
            acc += d;
            offsets.push(acc);
        }
        // cursor[v]: next free slot in v's CSR range during the fill
        let mut cursor = offsets[..n].to_vec();
        let mut arcs = vec![
            Arc {
                to: NodeId(0),
                weight: 0,
                edge: EdgeId(0),
            };
            acc
        ];
        let mut place = |cursor: &mut [usize], from: NodeId, arc: Arc| {
            assert!(
                !arcs[offsets[from.0]..cursor[from.0]]
                    .iter()
                    .any(|a| a.to == arc.to),
                "parallel edge {from:?}-{:?}",
                arc.to
            );
            arcs[cursor[from.0]] = arc;
            cursor[from.0] += 1;
        };
        for e in &edges {
            place(
                &mut cursor,
                e.u,
                Arc {
                    to: e.v,
                    weight: e.weight,
                    edge: e.id,
                },
            );
            place(
                &mut cursor,
                e.v,
                Arc {
                    to: e.u,
                    weight: e.weight,
                    edge: e.id,
                },
            );
        }
        let ids = ids.unwrap_or_else(|| (0..n as u64).collect());
        assert_eq!(ids.len(), n, "one id per node required");
        Graph {
            offsets,
            arcs,
            edges,
            ids,
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Iterator over all node indices.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count()).map(NodeId)
    }

    /// All edges of the graph.
    #[inline]
    pub fn edges(&self) -> &[EdgeRef] {
        &self.edges
    }

    /// The edge with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of bounds.
    #[inline]
    pub fn edge(&self, e: EdgeId) -> EdgeRef {
        self.edges[e.0]
    }

    /// Adjacency list of `v`: each entry names a neighbor, the edge weight
    /// and the edge id. A contiguous CSR slice.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[Arc] {
        &self.arcs[self.offsets[v.0]..self.offsets[v.0 + 1]]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.offsets[v.0 + 1] - self.offsets[v.0]
    }

    /// The unique application-level identifier of `v`.
    #[inline]
    pub fn id_of(&self, v: NodeId) -> u64 {
        self.ids[v.0]
    }

    /// Looks up a node by its application-level identifier.
    ///
    /// Linear scan; intended for tests and verifiers, not hot paths.
    pub fn node_with_id(&self, id: u64) -> Option<NodeId> {
        self.ids.iter().position(|&x| x == id).map(NodeId)
    }

    /// Whether all edge weights are pairwise distinct (the paper's standing
    /// assumption; all generators in this crate uphold it).
    pub fn has_distinct_weights(&self) -> bool {
        let mut w: Vec<u64> = self.edges.iter().map(|e| e.weight).collect();
        w.sort_unstable();
        w.windows(2).all(|p| p[0] != p[1])
    }

    /// Whether all node identifiers are pairwise distinct.
    pub fn has_distinct_ids(&self) -> bool {
        let mut ids = self.ids.clone();
        ids.sort_unstable();
        ids.windows(2).all(|p| p[0] != p[1])
    }

    /// Total weight of the edges whose ids are in `set`.
    pub fn total_weight<I: IntoIterator<Item = EdgeId>>(&self, set: I) -> u128 {
        set.into_iter()
            .map(|e| u128::from(self.edges[e.0].weight))
            .sum()
    }

    /// The edge connecting `u` and `v`, if any.
    pub fn edge_between(&self, u: NodeId, v: NodeId) -> Option<EdgeRef> {
        self.neighbors(u)
            .iter()
            .find(|a| a.to == v)
            .map(|a| self.edges[a.edge.0])
    }

    /// FNV-1a fingerprint of the graph's full topology — node count,
    /// edge count, application ids, and every arc's `(to, weight, edge)`
    /// in adjacency order.
    ///
    /// This is the **canonical content address** of a graph: the
    /// multi-process transport's handshake compares it so a worker
    /// generated from different parameters is rejected before round 0,
    /// and the job layer's result cache keys computed partitions by it.
    /// Both consumers hash the same bytes by construction — they call
    /// this one function — so handshake and cache can never disagree.
    ///
    /// Because arcs are visited in adjacency (edge-insertion) order, two
    /// *isomorphic* graphs whose edges were inserted in different orders
    /// fingerprint differently. That is deliberate: the simulator's
    /// port numbering — and therefore every byte of a run's outputs —
    /// depends on adjacency order, so order-distinct graphs must never
    /// share cached results.
    pub fn fingerprint(&self) -> u64 {
        const PRIME: u64 = 0x100_0000_01b3;
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mix = |h: u64, x: u64| (h ^ x).wrapping_mul(PRIME);
        h = mix(h, self.node_count() as u64);
        h = mix(h, self.edge_count() as u64);
        for v in self.nodes() {
            h = mix(h, self.id_of(v));
            for arc in self.neighbors(v) {
                h = mix(h, arc.to.0 as u64);
                h = mix(h, arc.weight);
                h = mix(h, arc.edge.0 as u64);
            }
        }
        h
    }

    /// Heap bytes held by the graph's four arrays (CSR offsets + arcs,
    /// edge list, id list). Deterministic — computed from lengths, not
    /// allocator capacities — so it can participate in byte-identical
    /// reports.
    pub fn memory_bytes(&self) -> u64 {
        (self.offsets.len() * std::mem::size_of::<usize>()
            + self.arcs.len() * std::mem::size_of::<Arc>()
            + self.edges.len() * std::mem::size_of::<EdgeRef>()
            + self.ids.len() * std::mem::size_of::<u64>()) as u64
    }
}

/// Incremental builder for [`Graph`].
///
/// ```
/// use kdom_graph::{GraphBuilder, NodeId};
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(NodeId(0), NodeId(1), 10);
/// b.add_edge(NodeId(1), NodeId(2), 20);
/// let g = b.build();
/// assert_eq!(g.degree(NodeId(1)), 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<EdgeRef>,
    ids: Option<Vec<u64>>,
}

impl GraphBuilder {
    /// Starts a graph with `n` isolated nodes whose identifiers default to
    /// their indices.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::new(),
            ids: None,
        }
    }

    /// Overrides the application-level node identifiers.
    ///
    /// # Panics
    ///
    /// Panics if `ids.len()` differs from the node count.
    pub fn ids(&mut self, ids: Vec<u64>) -> &mut Self {
        assert_eq!(ids.len(), self.n, "one id per node required");
        self.ids = Some(ids);
        self
    }

    /// Adds an undirected edge.
    ///
    /// # Panics
    ///
    /// Panics on loops or out-of-range endpoints.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, weight: u64) -> &mut Self {
        assert!(u != v, "self loops are not allowed");
        assert!(u.0 < self.n && v.0 < self.n, "endpoint out of range");
        self.edges.push(EdgeRef {
            id: EdgeId(self.edges.len()),
            u,
            v,
            weight,
        });
        self
    }

    /// Number of nodes the builder was created with.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of edges added so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Finalizes the graph.
    ///
    /// # Panics
    ///
    /// Panics if a duplicate (parallel) edge was added.
    pub fn build(&self) -> Graph {
        Graph::from_edges(self.n, self.edges.clone(), self.ids.clone())
    }

    /// Finalizes the graph, consuming the builder — the edge list moves
    /// into the graph instead of being cloned. Preferred at million-node
    /// scale.
    ///
    /// # Panics
    ///
    /// Panics if a duplicate (parallel) edge was added.
    pub fn build_consumed(self) -> Graph {
        Graph::from_edges(self.n, self.edges, self.ids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), 5);
        b.add_edge(NodeId(1), NodeId(2), 7);
        b.add_edge(NodeId(2), NodeId(0), 9);
        b.build()
    }

    #[test]
    fn counts_and_degrees() {
        let g = triangle();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 2);
        }
    }

    #[test]
    fn edge_lookup() {
        let g = triangle();
        let e = g.edge_between(NodeId(0), NodeId(2)).unwrap();
        assert_eq!(e.weight, 9);
        assert_eq!(e.other(NodeId(0)), NodeId(2));
        assert_eq!(e.other(NodeId(2)), NodeId(0));
        assert!(g.edge_between(NodeId(0), NodeId(0)).is_none());
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn other_panics_for_non_endpoint() {
        let g = triangle();
        let e = g.edge_between(NodeId(0), NodeId(1)).unwrap();
        let _ = e.other(NodeId(2));
    }

    #[test]
    fn distinct_weight_check() {
        let g = triangle();
        assert!(g.has_distinct_weights());
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), 5);
        b.add_edge(NodeId(1), NodeId(2), 5);
        assert!(!b.build().has_distinct_weights());
    }

    #[test]
    fn custom_ids() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(NodeId(0), NodeId(1), 1);
        b.ids(vec![100, 200]);
        let g = b.build();
        assert_eq!(g.id_of(NodeId(1)), 200);
        assert_eq!(g.node_with_id(100), Some(NodeId(0)));
        assert_eq!(g.node_with_id(300), None);
        assert!(g.has_distinct_ids());
    }

    #[test]
    #[should_panic(expected = "parallel edge")]
    fn parallel_edges_rejected() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(NodeId(0), NodeId(1), 1);
        b.add_edge(NodeId(1), NodeId(0), 2);
        b.build();
    }

    #[test]
    #[should_panic(expected = "self loops")]
    fn loops_rejected() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(NodeId(1), NodeId(1), 1);
    }

    #[test]
    fn total_weight_sums() {
        let g = triangle();
        let all: Vec<EdgeId> = g.edges().iter().map(|e| e.id).collect();
        assert_eq!(g.total_weight(all), 21);
    }

    /// CSR adjacency must reproduce the edge-insertion order the old
    /// `Vec<Vec<Arc>>` push loop produced: within a node, arcs appear in
    /// ascending edge id.
    #[test]
    fn csr_preserves_insertion_order() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId(2), NodeId(0), 10); // e0
        b.add_edge(NodeId(0), NodeId(1), 11); // e1
        b.add_edge(NodeId(3), NodeId(0), 12); // e2
        b.add_edge(NodeId(1), NodeId(2), 13); // e3
        let g = b.build();
        let order: Vec<usize> = g.neighbors(NodeId(0)).iter().map(|a| a.edge.0).collect();
        assert_eq!(order, vec![0, 1, 2], "arcs of node 0 in edge order");
        assert_eq!(g.neighbors(NodeId(0))[0].to, NodeId(2));
        let order1: Vec<usize> = g.neighbors(NodeId(1)).iter().map(|a| a.edge.0).collect();
        assert_eq!(order1, vec![1, 3]);
        assert!(g.memory_bytes() > 0);
    }

    #[test]
    fn build_consumed_matches_build() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), 5);
        b.add_edge(NodeId(1), NodeId(2), 7);
        assert_eq!(b.build(), b.clone().build_consumed());
    }

    /// The fingerprint must separate topologies, weights, and adjacency
    /// *order* (isomorphic graphs inserted differently are distinct),
    /// while staying stable across identical rebuilds.
    #[test]
    fn fingerprint_separates_structure_and_order() {
        let g = triangle();
        assert_eq!(g.fingerprint(), triangle().fingerprint());

        let mut heavier = GraphBuilder::new(3);
        heavier.add_edge(NodeId(0), NodeId(1), 5);
        heavier.add_edge(NodeId(1), NodeId(2), 7);
        heavier.add_edge(NodeId(2), NodeId(0), 10);
        assert_ne!(g.fingerprint(), heavier.build().fingerprint());

        // same triangle, edges inserted in a different order: isomorphic
        // (identical vertex set and weights) but port numbering differs,
        // so the fingerprint must differ too
        let mut reordered = GraphBuilder::new(3);
        reordered.add_edge(NodeId(2), NodeId(0), 9);
        reordered.add_edge(NodeId(0), NodeId(1), 5);
        reordered.add_edge(NodeId(1), NodeId(2), 7);
        assert_ne!(g.fingerprint(), reordered.build().fingerprint());

        let mut renamed = GraphBuilder::new(3);
        renamed.add_edge(NodeId(0), NodeId(1), 5);
        renamed.add_edge(NodeId(1), NodeId(2), 7);
        renamed.add_edge(NodeId(2), NodeId(0), 9);
        renamed.ids(vec![10, 11, 12]);
        assert_ne!(g.fingerprint(), renamed.build().fingerprint());
    }

    #[test]
    fn from_edges_builds_isolated_nodes() {
        let g = Graph::from_edges(3, Vec::new(), None);
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 0);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 0);
            assert!(g.neighbors(v).is_empty());
        }
    }
}
