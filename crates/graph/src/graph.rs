//! Core graph representation: undirected, weighted, with unique node ids.
//!
//! Nodes are dense indices (`NodeId`) into adjacency arrays; every node
//! additionally carries a unique application-level identifier (`u64`), which
//! the distributed algorithms use for symmetry breaking, as assumed by the
//! paper ("nodes have unique identifiers"). Edge weights are `u64` and the
//! generators guarantee they are pairwise distinct ("each edge is associated
//! with a distinct weight, known to the adjacent nodes").

use std::fmt;

/// Dense index of a node inside a [`Graph`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub usize);

impl NodeId {
    /// Returns the underlying index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Dense index of an undirected edge inside a [`Graph`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct EdgeId(pub usize);

impl EdgeId {
    /// Returns the underlying index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// One endpoint-to-endpoint record of an undirected edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct EdgeRef {
    /// Edge index in the graph's edge list.
    pub id: EdgeId,
    /// Source endpoint.
    pub u: NodeId,
    /// Target endpoint.
    pub v: NodeId,
    /// The (distinct) weight of the edge.
    pub weight: u64,
}

impl EdgeRef {
    /// The endpoint of this edge that is not `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not an endpoint of the edge.
    pub fn other(&self, x: NodeId) -> NodeId {
        if x == self.u {
            self.v
        } else if x == self.v {
            self.u
        } else {
            panic!("{x:?} is not an endpoint of {self:?}")
        }
    }
}

/// A neighbor entry in an adjacency list.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Arc {
    /// The neighboring node.
    pub to: NodeId,
    /// Weight of the connecting edge.
    pub weight: u64,
    /// Identifier of the connecting edge.
    pub edge: EdgeId,
}

/// An undirected weighted graph with unique node identifiers.
///
/// Construct with [`GraphBuilder`] or one of the functions in
/// [`crate::generators`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Graph {
    adj: Vec<Vec<Arc>>,
    edges: Vec<EdgeRef>,
    ids: Vec<u64>,
}

impl Graph {
    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Iterator over all node indices.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.adj.len()).map(NodeId)
    }

    /// All edges of the graph.
    #[inline]
    pub fn edges(&self) -> &[EdgeRef] {
        &self.edges
    }

    /// The edge with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of bounds.
    #[inline]
    pub fn edge(&self, e: EdgeId) -> EdgeRef {
        self.edges[e.0]
    }

    /// Adjacency list of `v`: each entry names a neighbor, the edge weight
    /// and the edge id.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[Arc] {
        &self.adj[v.0]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.adj[v.0].len()
    }

    /// The unique application-level identifier of `v`.
    #[inline]
    pub fn id_of(&self, v: NodeId) -> u64 {
        self.ids[v.0]
    }

    /// Looks up a node by its application-level identifier.
    ///
    /// Linear scan; intended for tests and verifiers, not hot paths.
    pub fn node_with_id(&self, id: u64) -> Option<NodeId> {
        self.ids.iter().position(|&x| x == id).map(NodeId)
    }

    /// Whether all edge weights are pairwise distinct (the paper's standing
    /// assumption; all generators in this crate uphold it).
    pub fn has_distinct_weights(&self) -> bool {
        let mut w: Vec<u64> = self.edges.iter().map(|e| e.weight).collect();
        w.sort_unstable();
        w.windows(2).all(|p| p[0] != p[1])
    }

    /// Whether all node identifiers are pairwise distinct.
    pub fn has_distinct_ids(&self) -> bool {
        let mut ids = self.ids.clone();
        ids.sort_unstable();
        ids.windows(2).all(|p| p[0] != p[1])
    }

    /// Total weight of the edges whose ids are in `set`.
    pub fn total_weight<I: IntoIterator<Item = EdgeId>>(&self, set: I) -> u128 {
        set.into_iter()
            .map(|e| u128::from(self.edges[e.0].weight))
            .sum()
    }

    /// The edge connecting `u` and `v`, if any.
    pub fn edge_between(&self, u: NodeId, v: NodeId) -> Option<EdgeRef> {
        self.adj[u.0]
            .iter()
            .find(|a| a.to == v)
            .map(|a| self.edges[a.edge.0])
    }
}

/// Incremental builder for [`Graph`].
///
/// ```
/// use kdom_graph::{GraphBuilder, NodeId};
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(NodeId(0), NodeId(1), 10);
/// b.add_edge(NodeId(1), NodeId(2), 20);
/// let g = b.build();
/// assert_eq!(g.degree(NodeId(1)), 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(NodeId, NodeId, u64)>,
    ids: Option<Vec<u64>>,
}

impl GraphBuilder {
    /// Starts a graph with `n` isolated nodes whose identifiers default to
    /// their indices.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::new(),
            ids: None,
        }
    }

    /// Overrides the application-level node identifiers.
    ///
    /// # Panics
    ///
    /// Panics if `ids.len()` differs from the node count.
    pub fn ids(&mut self, ids: Vec<u64>) -> &mut Self {
        assert_eq!(ids.len(), self.n, "one id per node required");
        self.ids = Some(ids);
        self
    }

    /// Adds an undirected edge.
    ///
    /// # Panics
    ///
    /// Panics on loops or out-of-range endpoints.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, weight: u64) -> &mut Self {
        assert!(u != v, "self loops are not allowed");
        assert!(u.0 < self.n && v.0 < self.n, "endpoint out of range");
        self.edges.push((u, v, weight));
        self
    }

    /// Number of nodes the builder was created with.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of edges added so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Finalizes the graph.
    ///
    /// # Panics
    ///
    /// Panics if a duplicate (parallel) edge was added.
    pub fn build(&self) -> Graph {
        let mut adj: Vec<Vec<Arc>> = vec![Vec::new(); self.n];
        let mut edges = Vec::with_capacity(self.edges.len());
        for (i, &(u, v, w)) in self.edges.iter().enumerate() {
            let id = EdgeId(i);
            assert!(
                !adj[u.0].iter().any(|a| a.to == v),
                "parallel edge {u:?}-{v:?}"
            );
            adj[u.0].push(Arc {
                to: v,
                weight: w,
                edge: id,
            });
            adj[v.0].push(Arc {
                to: u,
                weight: w,
                edge: id,
            });
            edges.push(EdgeRef {
                id,
                u,
                v,
                weight: w,
            });
        }
        let ids = self
            .ids
            .clone()
            .unwrap_or_else(|| (0..self.n as u64).collect());
        Graph { adj, edges, ids }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), 5);
        b.add_edge(NodeId(1), NodeId(2), 7);
        b.add_edge(NodeId(2), NodeId(0), 9);
        b.build()
    }

    #[test]
    fn counts_and_degrees() {
        let g = triangle();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 2);
        }
    }

    #[test]
    fn edge_lookup() {
        let g = triangle();
        let e = g.edge_between(NodeId(0), NodeId(2)).unwrap();
        assert_eq!(e.weight, 9);
        assert_eq!(e.other(NodeId(0)), NodeId(2));
        assert_eq!(e.other(NodeId(2)), NodeId(0));
        assert!(g.edge_between(NodeId(0), NodeId(0)).is_none());
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn other_panics_for_non_endpoint() {
        let g = triangle();
        let e = g.edge_between(NodeId(0), NodeId(1)).unwrap();
        let _ = e.other(NodeId(2));
    }

    #[test]
    fn distinct_weight_check() {
        let g = triangle();
        assert!(g.has_distinct_weights());
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), 5);
        b.add_edge(NodeId(1), NodeId(2), 5);
        assert!(!b.build().has_distinct_weights());
    }

    #[test]
    fn custom_ids() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(NodeId(0), NodeId(1), 1);
        b.ids(vec![100, 200]);
        let g = b.build();
        assert_eq!(g.id_of(NodeId(1)), 200);
        assert_eq!(g.node_with_id(100), Some(NodeId(0)));
        assert_eq!(g.node_with_id(300), None);
        assert!(g.has_distinct_ids());
    }

    #[test]
    #[should_panic(expected = "parallel edge")]
    fn parallel_edges_rejected() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(NodeId(0), NodeId(1), 1);
        b.add_edge(NodeId(1), NodeId(0), 2);
        b.build();
    }

    #[test]
    #[should_panic(expected = "self loops")]
    fn loops_rejected() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(NodeId(1), NodeId(1), 1);
    }

    #[test]
    fn total_weight_sums() {
        let g = triangle();
        let all: Vec<EdgeId> = g.edges().iter().map(|e| e.id).collect();
        assert_eq!(g.total_weight(all), 21);
    }
}
