//! Structural queries: BFS, distances, diameter/radius, connectivity.
//!
//! Distances are *unweighted* (hop counts), matching the paper's definition
//! of `Diam(F)`/`Rad(F)` ("measuring distance in the unweighted sense, i.e.,
//! in number of hops").

use std::collections::VecDeque;

use crate::graph::{Graph, NodeId};

/// Distance value for unreachable nodes.
pub const UNREACHABLE: u32 = u32::MAX;

/// Hop distances from `src` to every node (`UNREACHABLE` if disconnected).
pub fn bfs_distances(g: &Graph, src: NodeId) -> Vec<u32> {
    let mut dist = vec![UNREACHABLE; g.node_count()];
    let mut q = VecDeque::new();
    dist[src.0] = 0;
    q.push_back(src);
    while let Some(u) = q.pop_front() {
        for a in g.neighbors(u) {
            if dist[a.to.0] == UNREACHABLE {
                dist[a.to.0] = dist[u.0] + 1;
                q.push_back(a.to);
            }
        }
    }
    dist
}

/// BFS parents from `src`: `parent[src] = src`, `None` for unreachable nodes.
pub fn bfs_parents(g: &Graph, src: NodeId) -> Vec<Option<NodeId>> {
    let mut parent = vec![None; g.node_count()];
    let mut q = VecDeque::new();
    parent[src.0] = Some(src);
    q.push_back(src);
    while let Some(u) = q.pop_front() {
        for a in g.neighbors(u) {
            if parent[a.to.0].is_none() && a.to != src {
                parent[a.to.0] = Some(u);
                q.push_back(a.to);
            }
        }
    }
    parent
}

/// Maximum finite distance from `v` (its eccentricity within its component).
pub fn eccentricity(g: &Graph, v: NodeId) -> u32 {
    bfs_distances(g, v)
        .into_iter()
        .filter(|&d| d != UNREACHABLE)
        .max()
        .unwrap_or(0)
}

/// Exact diameter via all-pairs BFS (per-component maximum eccentricity).
///
/// Quadratic in `n`; intended for experiment-scale graphs.
pub fn diameter(g: &Graph) -> u32 {
    g.nodes().map(|v| eccentricity(g, v)).max().unwrap_or(0)
}

/// Exact radius and a center vertex attaining it.
///
/// # Panics
///
/// Panics on an empty graph.
pub fn radius_and_center(g: &Graph) -> (u32, NodeId) {
    assert!(g.node_count() > 0, "radius of an empty graph");
    g.nodes()
        .map(|v| (eccentricity(g, v), v))
        .min()
        .expect("non-empty graph")
}

/// Whether every node is reachable from node 0.
pub fn is_connected(g: &Graph) -> bool {
    if g.node_count() == 0 {
        return true;
    }
    bfs_distances(g, NodeId(0))
        .iter()
        .all(|&d| d != UNREACHABLE)
}

/// Whether the graph is a tree (connected, `m = n - 1`).
pub fn is_tree(g: &Graph) -> bool {
    g.node_count() > 0 && g.edge_count() == g.node_count() - 1 && is_connected(g)
}

/// Connected components: `comp[v]` is a small component index, and the
/// number of components is returned alongside.
pub fn components(g: &Graph) -> (Vec<usize>, usize) {
    let n = g.node_count();
    let mut comp = vec![usize::MAX; n];
    let mut count = 0;
    for s in g.nodes() {
        if comp[s.0] != usize::MAX {
            continue;
        }
        let mut q = VecDeque::new();
        comp[s.0] = count;
        q.push_back(s);
        while let Some(u) = q.pop_front() {
            for a in g.neighbors(u) {
                if comp[a.to.0] == usize::MAX {
                    comp[a.to.0] = count;
                    q.push_back(a.to);
                }
            }
        }
        count += 1;
    }
    (comp, count)
}

/// Multi-source BFS: hop distance from each node to the nearest source, and
/// which source it is (ties broken by BFS order).
///
/// This is exactly the "dominator assignment" of the paper: given a
/// k-dominating set `D`, `D(v)` is the node of `D` closest to `v`.
pub fn nearest_source(g: &Graph, sources: &[NodeId]) -> (Vec<u32>, Vec<Option<NodeId>>) {
    let mut dist = vec![UNREACHABLE; g.node_count()];
    let mut src = vec![None; g.node_count()];
    let mut q = VecDeque::new();
    for &s in sources {
        if dist[s.0] == 0 && src[s.0].is_some() {
            continue; // duplicate source
        }
        dist[s.0] = 0;
        src[s.0] = Some(s);
        q.push_back(s);
    }
    while let Some(u) = q.pop_front() {
        for a in g.neighbors(u) {
            if dist[a.to.0] == UNREACHABLE {
                dist[a.to.0] = dist[u.0] + 1;
                src[a.to.0] = src[u.0];
                q.push_back(a.to);
            }
        }
    }
    (dist, src)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn path(n: usize) -> Graph {
        let mut b = GraphBuilder::new(n);
        for i in 0..n - 1 {
            b.add_edge(NodeId(i), NodeId(i + 1), (i + 1) as u64);
        }
        b.build()
    }

    #[test]
    fn path_distances() {
        let g = path(5);
        let d = bfs_distances(&g, NodeId(0));
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
        assert_eq!(eccentricity(&g, NodeId(2)), 2);
        assert_eq!(diameter(&g), 4);
        let (r, c) = radius_and_center(&g);
        assert_eq!(r, 2);
        assert_eq!(c, NodeId(2));
    }

    #[test]
    fn parents_form_shortest_paths() {
        let g = path(4);
        let p = bfs_parents(&g, NodeId(3));
        assert_eq!(p[3], Some(NodeId(3)));
        assert_eq!(p[0], Some(NodeId(1)));
        assert_eq!(p[2], Some(NodeId(3)));
    }

    #[test]
    fn connectivity_and_tree() {
        let g = path(6);
        assert!(is_connected(&g));
        assert!(is_tree(&g));
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId(0), NodeId(1), 1);
        let g2 = b.build();
        assert!(!is_connected(&g2));
        assert!(!is_tree(&g2));
        let (comp, k) = components(&g2);
        assert_eq!(k, 3);
        assert_eq!(comp[0], comp[1]);
        assert_ne!(comp[0], comp[2]);
    }

    #[test]
    fn cycle_is_not_tree() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), 1);
        b.add_edge(NodeId(1), NodeId(2), 2);
        b.add_edge(NodeId(2), NodeId(0), 3);
        assert!(!is_tree(&b.build()));
    }

    #[test]
    fn nearest_source_assigns_closest() {
        let g = path(7);
        let (dist, src) = nearest_source(&g, &[NodeId(0), NodeId(6)]);
        assert_eq!(dist, vec![0, 1, 2, 3, 2, 1, 0]);
        assert_eq!(src[1], Some(NodeId(0)));
        assert_eq!(src[5], Some(NodeId(6)));
        assert!(src[3].is_some());
    }

    #[test]
    fn empty_graph_is_connected() {
        let g = GraphBuilder::new(0).build();
        assert!(is_connected(&g));
        assert_eq!(diameter(&g), 0);
    }

    #[test]
    fn unreachable_marked() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), 1);
        let g = b.build();
        let d = bfs_distances(&g, NodeId(0));
        assert_eq!(d[2], UNREACHABLE);
        assert_eq!(bfs_parents(&g, NodeId(0))[2], None);
    }
}
