//! Structural queries: BFS, distances, diameter/radius, connectivity.
//!
//! Distances are *unweighted* (hop counts), matching the paper's definition
//! of `Diam(F)`/`Rad(F)` ("measuring distance in the unweighted sense, i.e.,
//! in number of hops").
//!
//! The BFS oracles have a deterministic data-parallel mode: a
//! ranked-frontier level-synchronous sweep whose sequential commit phase
//! reproduces the FIFO queue's discovery order exactly, so outputs are
//! byte-identical at every thread count. The worker count comes from
//! `KDOM_ORACLE_THREADS` (falling back to `KDOM_THREADS`, default 1 —
//! see [`oracle_threads`]), or explicitly via the `_with_threads`
//! variants.

use std::collections::VecDeque;

use crate::graph::{Graph, NodeId};

/// Distance value for unreachable nodes.
pub const UNREACHABLE: u32 = u32::MAX;

/// Smallest frontier worth fanning out to workers; levels below this run
/// sequentially (same commit order, no spawn overhead).
const PAR_FRONTIER_MIN: usize = 256;

/// Worker-thread count for the oracle helpers: `KDOM_ORACLE_THREADS`,
/// falling back to `KDOM_THREADS`, default 1 (fully sequential). The
/// parallel sweeps are deterministic, so the knob changes wall-clock
/// only, never outputs.
pub fn oracle_threads() -> usize {
    let positive = |&t: &usize| {
        if t >= 1 {
            Ok(())
        } else {
            Err("worker count must be at least 1".to_string())
        }
    };
    if crate::knob::raw("KDOM_ORACLE_THREADS").is_some() {
        crate::knob::knob_checked("KDOM_ORACLE_THREADS", 1, positive)
    } else {
        crate::knob::knob_checked("KDOM_THREADS", 1, positive)
    }
}

/// Hop distances from `src` to every node (`UNREACHABLE` if disconnected).
///
/// Worker count comes from [`oracle_threads`]; see
/// [`bfs_distances_with_threads`] for an explicit count.
pub fn bfs_distances(g: &Graph, src: NodeId) -> Vec<u32> {
    bfs_distances_with_threads(g, src, oracle_threads())
}

/// [`bfs_distances`] with an explicit worker count. `threads <= 1` runs
/// the sequential FIFO BFS; more workers run the ranked-frontier
/// level-synchronous sweep. Outputs are byte-identical either way.
pub fn bfs_distances_with_threads(g: &Graph, src: NodeId, threads: usize) -> Vec<u32> {
    if threads <= 1 {
        return bfs_distances_seq(g, src);
    }
    let mut dist = vec![UNREACHABLE; g.node_count()];
    dist[src.0] = 0;
    let mut frontier = vec![src];
    let mut level = 0u32;
    while !frontier.is_empty() {
        let mut next = Vec::new();
        if frontier.len() < PAR_FRONTIER_MIN {
            for &u in &frontier {
                for a in g.neighbors(u) {
                    if dist[a.to.0] == UNREACHABLE {
                        dist[a.to.0] = level + 1;
                        next.push(a.to);
                    }
                }
            }
        } else {
            // workers scan contiguous rank ranges of the frontier against
            // a frozen `dist`; the sequential commit below walks their
            // candidates in (worker, rank, adjacency) order — exactly the
            // FIFO discovery order
            let chunk = frontier.len().div_ceil(threads);
            let dist_r = &dist;
            let buckets: Vec<Vec<NodeId>> = std::thread::scope(|scope| {
                let handles: Vec<_> = frontier
                    .chunks(chunk)
                    .map(|part| {
                        scope.spawn(move || {
                            let mut out = Vec::new();
                            for &u in part {
                                for a in g.neighbors(u) {
                                    if dist_r[a.to.0] == UNREACHABLE {
                                        out.push(a.to);
                                    }
                                }
                            }
                            out
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("oracle worker panicked"))
                    .collect()
            });
            for v in buckets.into_iter().flatten() {
                if dist[v.0] == UNREACHABLE {
                    dist[v.0] = level + 1;
                    next.push(v);
                }
            }
        }
        level += 1;
        frontier = next;
    }
    dist
}

fn bfs_distances_seq(g: &Graph, src: NodeId) -> Vec<u32> {
    let mut dist = vec![UNREACHABLE; g.node_count()];
    let mut q = VecDeque::new();
    dist[src.0] = 0;
    q.push_back(src);
    while let Some(u) = q.pop_front() {
        for a in g.neighbors(u) {
            if dist[a.to.0] == UNREACHABLE {
                dist[a.to.0] = dist[u.0] + 1;
                q.push_back(a.to);
            }
        }
    }
    dist
}

/// BFS parents from `src`: `parent[src] = src`, `None` for unreachable nodes.
pub fn bfs_parents(g: &Graph, src: NodeId) -> Vec<Option<NodeId>> {
    let mut parent = vec![None; g.node_count()];
    let mut q = VecDeque::new();
    parent[src.0] = Some(src);
    q.push_back(src);
    while let Some(u) = q.pop_front() {
        for a in g.neighbors(u) {
            if parent[a.to.0].is_none() && a.to != src {
                parent[a.to.0] = Some(u);
                q.push_back(a.to);
            }
        }
    }
    parent
}

/// Maximum finite distance from `v` (its eccentricity within its component).
pub fn eccentricity(g: &Graph, v: NodeId) -> u32 {
    bfs_distances(g, v)
        .into_iter()
        .filter(|&d| d != UNREACHABLE)
        .max()
        .unwrap_or(0)
}

/// Exact diameter via all-pairs BFS (per-component maximum eccentricity).
///
/// Quadratic in `n`; intended for experiment-scale graphs.
pub fn diameter(g: &Graph) -> u32 {
    g.nodes().map(|v| eccentricity(g, v)).max().unwrap_or(0)
}

/// Exact radius and a center vertex attaining it.
///
/// # Panics
///
/// Panics on an empty graph.
pub fn radius_and_center(g: &Graph) -> (u32, NodeId) {
    assert!(g.node_count() > 0, "radius of an empty graph");
    g.nodes()
        .map(|v| (eccentricity(g, v), v))
        .min()
        .expect("non-empty graph")
}

/// Whether every node is reachable from node 0.
pub fn is_connected(g: &Graph) -> bool {
    if g.node_count() == 0 {
        return true;
    }
    bfs_distances(g, NodeId(0))
        .iter()
        .all(|&d| d != UNREACHABLE)
}

/// Whether the graph is a tree (connected, `m = n - 1`).
pub fn is_tree(g: &Graph) -> bool {
    g.node_count() > 0 && g.edge_count() == g.node_count() - 1 && is_connected(g)
}

/// Connected components: `comp[v]` is a small component index, and the
/// number of components is returned alongside.
pub fn components(g: &Graph) -> (Vec<usize>, usize) {
    let n = g.node_count();
    let mut comp = vec![usize::MAX; n];
    let mut count = 0;
    for s in g.nodes() {
        if comp[s.0] != usize::MAX {
            continue;
        }
        let mut q = VecDeque::new();
        comp[s.0] = count;
        q.push_back(s);
        while let Some(u) = q.pop_front() {
            for a in g.neighbors(u) {
                if comp[a.to.0] == usize::MAX {
                    comp[a.to.0] = count;
                    q.push_back(a.to);
                }
            }
        }
        count += 1;
    }
    (comp, count)
}

/// Multi-source BFS: hop distance from each node to the nearest source, and
/// which source it is (ties broken by BFS order).
///
/// This is exactly the "dominator assignment" of the paper: given a
/// k-dominating set `D`, `D(v)` is the node of `D` closest to `v`.
///
/// Worker count comes from [`oracle_threads`]; see
/// [`nearest_source_with_threads`] for an explicit count.
pub fn nearest_source(g: &Graph, sources: &[NodeId]) -> (Vec<u32>, Vec<Option<NodeId>>) {
    nearest_source_with_threads(g, sources, oracle_threads())
}

/// [`nearest_source`] with an explicit worker count. `threads <= 1` runs
/// the sequential FIFO BFS; more workers run the ranked-frontier
/// level-synchronous sweep. Distances *and* tie-broken source
/// assignments are byte-identical at every thread count: workers read a
/// `src` table frozen for the level (every frontier node's source is
/// already final), and the commit order equals the FIFO order.
pub fn nearest_source_with_threads(
    g: &Graph,
    sources: &[NodeId],
    threads: usize,
) -> (Vec<u32>, Vec<Option<NodeId>>) {
    if threads <= 1 {
        return nearest_source_seq(g, sources);
    }
    let mut dist = vec![UNREACHABLE; g.node_count()];
    let mut src = vec![None; g.node_count()];
    let mut frontier = Vec::new();
    for &s in sources {
        if dist[s.0] == 0 && src[s.0].is_some() {
            continue; // duplicate source
        }
        dist[s.0] = 0;
        src[s.0] = Some(s);
        frontier.push(s);
    }
    let mut level = 0u32;
    while !frontier.is_empty() {
        let mut next = Vec::new();
        if frontier.len() < PAR_FRONTIER_MIN {
            for &u in &frontier {
                for a in g.neighbors(u) {
                    if dist[a.to.0] == UNREACHABLE {
                        dist[a.to.0] = level + 1;
                        src[a.to.0] = src[u.0];
                        next.push(a.to);
                    }
                }
            }
        } else {
            let chunk = frontier.len().div_ceil(threads);
            let dist_r = &dist;
            let src_r = &src;
            let buckets: Vec<Vec<(NodeId, Option<NodeId>)>> = std::thread::scope(|scope| {
                let handles: Vec<_> = frontier
                    .chunks(chunk)
                    .map(|part| {
                        scope.spawn(move || {
                            let mut out = Vec::new();
                            for &u in part {
                                for a in g.neighbors(u) {
                                    if dist_r[a.to.0] == UNREACHABLE {
                                        out.push((a.to, src_r[u.0]));
                                    }
                                }
                            }
                            out
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("oracle worker panicked"))
                    .collect()
            });
            for (v, s) in buckets.into_iter().flatten() {
                if dist[v.0] == UNREACHABLE {
                    dist[v.0] = level + 1;
                    src[v.0] = s;
                    next.push(v);
                }
            }
        }
        level += 1;
        frontier = next;
    }
    (dist, src)
}

fn nearest_source_seq(g: &Graph, sources: &[NodeId]) -> (Vec<u32>, Vec<Option<NodeId>>) {
    let mut dist = vec![UNREACHABLE; g.node_count()];
    let mut src = vec![None; g.node_count()];
    let mut q = VecDeque::new();
    for &s in sources {
        if dist[s.0] == 0 && src[s.0].is_some() {
            continue; // duplicate source
        }
        dist[s.0] = 0;
        src[s.0] = Some(s);
        q.push_back(s);
    }
    while let Some(u) = q.pop_front() {
        for a in g.neighbors(u) {
            if dist[a.to.0] == UNREACHABLE {
                dist[a.to.0] = dist[u.0] + 1;
                src[a.to.0] = src[u.0];
                q.push_back(a.to);
            }
        }
    }
    (dist, src)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn path(n: usize) -> Graph {
        let mut b = GraphBuilder::new(n);
        for i in 0..n - 1 {
            b.add_edge(NodeId(i), NodeId(i + 1), (i + 1) as u64);
        }
        b.build()
    }

    #[test]
    fn path_distances() {
        let g = path(5);
        let d = bfs_distances(&g, NodeId(0));
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
        assert_eq!(eccentricity(&g, NodeId(2)), 2);
        assert_eq!(diameter(&g), 4);
        let (r, c) = radius_and_center(&g);
        assert_eq!(r, 2);
        assert_eq!(c, NodeId(2));
    }

    #[test]
    fn parents_form_shortest_paths() {
        let g = path(4);
        let p = bfs_parents(&g, NodeId(3));
        assert_eq!(p[3], Some(NodeId(3)));
        assert_eq!(p[0], Some(NodeId(1)));
        assert_eq!(p[2], Some(NodeId(3)));
    }

    #[test]
    fn connectivity_and_tree() {
        let g = path(6);
        assert!(is_connected(&g));
        assert!(is_tree(&g));
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId(0), NodeId(1), 1);
        let g2 = b.build();
        assert!(!is_connected(&g2));
        assert!(!is_tree(&g2));
        let (comp, k) = components(&g2);
        assert_eq!(k, 3);
        assert_eq!(comp[0], comp[1]);
        assert_ne!(comp[0], comp[2]);
    }

    #[test]
    fn cycle_is_not_tree() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), 1);
        b.add_edge(NodeId(1), NodeId(2), 2);
        b.add_edge(NodeId(2), NodeId(0), 3);
        assert!(!is_tree(&b.build()));
    }

    #[test]
    fn nearest_source_assigns_closest() {
        let g = path(7);
        let (dist, src) = nearest_source(&g, &[NodeId(0), NodeId(6)]);
        assert_eq!(dist, vec![0, 1, 2, 3, 2, 1, 0]);
        assert_eq!(src[1], Some(NodeId(0)));
        assert_eq!(src[5], Some(NodeId(6)));
        assert!(src[3].is_some());
    }

    #[test]
    fn empty_graph_is_connected() {
        let g = GraphBuilder::new(0).build();
        assert!(is_connected(&g));
        assert_eq!(diameter(&g), 0);
    }

    #[test]
    fn parallel_bfs_matches_sequential_on_gnm() {
        use crate::generators::{gnm_connected, GenConfig};
        // dense enough that the frontier crosses PAR_FRONTIER_MIN, so the
        // worker fan-out genuinely runs
        let g = gnm_connected(&GenConfig::with_seed(4096, 11), 16384);
        for threads in [1, 4] {
            assert_eq!(
                bfs_distances_with_threads(&g, NodeId(0), threads),
                bfs_distances_seq(&g, NodeId(0)),
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn parallel_nearest_source_matches_sequential_on_grid() {
        use crate::generators::grid;
        // 64x64 grid with every 8th node a source: the initial frontier
        // (512 sources) already exceeds PAR_FRONTIER_MIN
        let g = grid(64, 64, 3);
        let sources: Vec<NodeId> = (0..g.node_count()).step_by(8).map(NodeId).collect();
        let seq = nearest_source_seq(&g, &sources);
        for threads in [1, 4] {
            assert_eq!(
                nearest_source_with_threads(&g, &sources, threads),
                seq,
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn parallel_nearest_source_matches_sequential_on_gnm() {
        use crate::generators::{gnm_connected, GenConfig};
        let g = gnm_connected(&GenConfig::with_seed(4096, 5), 12288);
        let sources = [NodeId(0), NodeId(17), NodeId(4095), NodeId(17)]; // dup on purpose
        let seq = nearest_source_seq(&g, &sources);
        for threads in [1, 4] {
            assert_eq!(
                nearest_source_with_threads(&g, &sources, threads),
                seq,
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn oracle_threads_defaults_to_one() {
        // can't mutate the environment safely in a threaded test binary;
        // just pin the parse contract on whatever is set
        let t = oracle_threads();
        assert!(t >= 1);
    }

    #[test]
    fn unreachable_marked() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), 1);
        let g = b.build();
        let d = bfs_distances(&g, NodeId(0));
        assert_eq!(d[2], UNREACHABLE);
        assert_eq!(bfs_parents(&g, NodeId(0))[2], None);
    }
}
