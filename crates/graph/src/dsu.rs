//! Disjoint-set union (union–find) with path halving and union by size.
//!
//! Used by the sequential Kruskal reference, by the red-rule edge filter of
//! the pipelined convergecast, and by several verifiers.

use crate::graph::NodeId;

/// A disjoint-set forest over `n` elements.
///
/// ```
/// use kdom_graph::{Dsu, NodeId};
///
/// let mut d = Dsu::new(4);
/// assert!(d.union(NodeId(0), NodeId(1)));
/// assert!(!d.union(NodeId(1), NodeId(0)), "already joined");
/// assert!(d.same(NodeId(0), NodeId(1)));
/// assert_eq!(d.set_count(), 3);
/// ```
#[derive(Clone, Debug)]
pub struct Dsu {
    parent: Vec<usize>,
    size: Vec<usize>,
    sets: usize,
}

impl Dsu {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        Dsu {
            parent: (0..n).collect(),
            size: vec![1; n],
            sets: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets remaining.
    pub fn set_count(&self) -> usize {
        self.sets
    }

    /// Representative of the set containing `v`.
    pub fn find(&mut self, v: NodeId) -> NodeId {
        let mut x = v.0;
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        NodeId(x)
    }

    /// Whether `a` and `b` are in the same set.
    pub fn same(&mut self, a: NodeId, b: NodeId) -> bool {
        self.find(a) == self.find(b)
    }

    /// Merges the sets of `a` and `b`. Returns `false` if they were already
    /// merged.
    pub fn union(&mut self, a: NodeId, b: NodeId) -> bool {
        let (ra, rb) = (self.find(a).0, self.find(b).0);
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra] >= self.size[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small] = big;
        self.size[big] += self.size[small];
        self.sets -= 1;
        true
    }

    /// Size of the set containing `v`.
    pub fn set_size(&mut self, v: NodeId) -> usize {
        let r = self.find(v).0;
        self.size[r]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons() {
        let mut d = Dsu::new(5);
        assert_eq!(d.len(), 5);
        assert!(!d.is_empty());
        assert_eq!(d.set_count(), 5);
        for i in 0..5 {
            assert_eq!(d.find(NodeId(i)), NodeId(i));
            assert_eq!(d.set_size(NodeId(i)), 1);
        }
    }

    #[test]
    fn chain_unions() {
        let mut d = Dsu::new(6);
        for i in 0..5 {
            assert!(d.union(NodeId(i), NodeId(i + 1)));
        }
        assert_eq!(d.set_count(), 1);
        assert_eq!(d.set_size(NodeId(3)), 6);
        assert!(d.same(NodeId(0), NodeId(5)));
    }

    #[test]
    fn union_is_idempotent() {
        let mut d = Dsu::new(3);
        assert!(d.union(NodeId(0), NodeId(2)));
        assert!(!d.union(NodeId(2), NodeId(0)));
        assert_eq!(d.set_count(), 2);
    }

    #[test]
    fn empty() {
        let d = Dsu::new(0);
        assert!(d.is_empty());
        assert_eq!(d.set_count(), 0);
    }
}
