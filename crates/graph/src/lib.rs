//! Graph substrate for the `kdom` workspace.
//!
//! This crate provides everything the Kutten–Peleg algorithms need from a
//! graph library:
//!
//! * [`Graph`] — an undirected graph with distinct `u64` edge weights and
//!   unique node identifiers, stored as adjacency lists ([`graph`]);
//! * deterministic generators for the topologies used in the experiments
//!   ([`generators`]);
//! * structural queries: BFS layers, distances, diameter, radius,
//!   connectivity ([`properties`]);
//! * rooted-tree views with parent/children/depth arrays ([`tree`]);
//! * a disjoint-set union used by the sequential MST algorithms and by the
//!   red-rule verifiers ([`dsu`]);
//! * fail-fast parsing of `KDOM_*` environment knobs, shared by every
//!   layer above ([`knob`]);
//! * sequential reference MST algorithms (Kruskal, Prim) against which the
//!   distributed algorithms are validated ([`mst_ref`]).
//!
//! # Example
//!
//! ```
//! use kdom_graph::generators::{random_tree, GenConfig};
//! use kdom_graph::properties::diameter;
//!
//! let g = random_tree(&GenConfig::with_seed(64, 7));
//! assert_eq!(g.node_count(), 64);
//! assert_eq!(g.edge_count(), 63);
//! assert!(diameter(&g) < 64);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dsu;
pub mod generators;
pub mod graph;
pub mod knob;
pub mod mst_ref;
pub mod properties;
pub mod tree;

pub use dsu::Dsu;
pub use graph::{EdgeId, EdgeRef, Graph, GraphBuilder, NodeId};
pub use knob::{knob, knob_checked, knob_enum};
pub use tree::RootedTree;
