//! Baseline distributed MST algorithms the paper compares against.
//!
//! * [`phase_doubling_mst`] — the `O(n)`-round Awerbuch-style algorithm
//!   (\[A2\] in the paper): `SimpleMST` run all the way (`k = n − 1`), i.e.
//!   controlled Borůvka with phase windows `5·2^i`, until one fragment
//!   remains. This stands in for the `O(n log n)` GHS family: same
//!   structure, better phase scheduling.
//! * [`collect_all_mst`] — the trivial `O(m + Diam)` algorithm the paper
//!   mentions for the unbounded-message model, done honestly in CONGEST:
//!   every edge description is upcast to the root (no elimination), which
//!   computes the MST locally.
//! * [`pipeline_only_mst`] — BFS + `Pipeline` with singleton clusters:
//!   the red rule alone gives an `O(n + Diam)` MST, isolating the value
//!   of the `FastDOM` contraction stage.

use kdom_core::dist::fragments::run_simple_mst;
use kdom_graph::{EdgeId, Graph, NodeId};

use crate::pipeline::run_pipeline;

/// A baseline run: the MST and its measured round count.
#[derive(Clone, Debug)]
pub struct BaselineRun {
    /// The MST edges.
    pub mst_edges: Vec<EdgeId>,
    /// Measured CONGEST rounds.
    pub rounds: u64,
    /// Total messages sent.
    pub messages: u64,
}

/// Awerbuch-style phase-doubling MST: `O(n)` rounds, measured.
pub fn phase_doubling_mst(g: &Graph) -> BaselineRun {
    let n = g.node_count();
    let fragments = run_simple_mst(g, n.saturating_sub(1).max(1));
    assert_eq!(
        fragments.roots.len(),
        1,
        "k = n-1 runs Borůvka to completion on a connected graph"
    );
    BaselineRun {
        mst_edges: fragments.tree_edges,
        rounds: fragments.report.rounds,
        messages: fragments.report.messages,
    }
}

fn singleton_clusters(g: &Graph) -> Vec<u64> {
    g.nodes().map(|v| g.id_of(v)).collect()
}

fn map_weights(g: &Graph, weights: &[u64]) -> Vec<EdgeId> {
    let w2e: std::collections::HashMap<u64, EdgeId> =
        g.edges().iter().map(|e| (e.weight, e.id)).collect();
    weights.iter().map(|w| w2e[w]).collect()
}

/// Collect-everything-at-root MST: `O(m + Diam)` rounds, measured.
pub fn collect_all_mst(g: &Graph) -> BaselineRun {
    let run = run_pipeline(g, NodeId(0), &singleton_clusters(g), false, false);
    BaselineRun {
        mst_edges: map_weights(g, &run.mst_weights),
        rounds: run.bfs_report.rounds + run.report.rounds,
        messages: run.bfs_report.messages + run.report.messages,
    }
}

/// Pipeline-only MST (singleton clusters, red rule on): `O(n + Diam)`
/// rounds, measured.
pub fn pipeline_only_mst(g: &Graph) -> BaselineRun {
    let run = run_pipeline(g, NodeId(0), &singleton_clusters(g), true, false);
    BaselineRun {
        mst_edges: map_weights(g, &run.mst_weights),
        rounds: run.bfs_report.rounds + run.report.rounds,
        messages: run.bfs_report.messages + run.report.messages,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdom_graph::generators::gnp_connected;
    use kdom_graph::generators::{Family, GenConfig};
    use kdom_graph::mst_ref::is_mst;

    #[test]
    fn all_baselines_compute_the_mst() {
        for fam in Family::ALL {
            let g = fam.generate(50, 12);
            for (name, run) in [
                ("phase-doubling", phase_doubling_mst(&g)),
                ("collect-all", collect_all_mst(&g)),
                ("pipeline-only", pipeline_only_mst(&g)),
            ] {
                assert!(is_mst(&g, &run.mst_edges), "{name} on {fam}");
            }
        }
    }

    #[test]
    fn collect_all_sends_more_messages_than_pipeline_only() {
        let g = gnp_connected(&GenConfig::with_seed(60, 1), 0.2);
        let ca = collect_all_mst(&g);
        let po = pipeline_only_mst(&g);
        assert!(ca.messages > po.messages);
        assert!(ca.rounds >= po.rounds);
    }

    #[test]
    fn phase_doubling_rounds_linear_in_n() {
        // rounds ≈ Σ 5·2^i up to 2^⌈log n⌉ ⇒ ≤ ~20n
        for n in [32usize, 64, 128] {
            let g = Family::RandomTree.generate(n, 3);
            let run = phase_doubling_mst(&g);
            assert!(run.rounds <= 25 * n as u64 + 200, "n={n}: {}", run.rounds);
        }
    }

    #[test]
    fn fastmst_beats_phase_doubling_on_low_diameter_graphs() {
        let g = gnp_connected(&GenConfig::with_seed(400, 7), 0.03);
        let fast = crate::fastmst::fast_mst(&g);
        let base = phase_doubling_mst(&g);
        assert!(is_mst(&g, &fast.mst_edges));
        assert!(
            fast.total_rounds() < base.rounds,
            "FastMST {} vs phase-doubling {}",
            fast.total_rounds(),
            base.rounds
        );
    }
}
