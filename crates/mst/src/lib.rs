//! The MST application of Kutten–Peleg PODC'95 (§5).
//!
//! * [`pipeline`] — Procedure `Pipeline` (Fig. 8): the fully-pipelined
//!   convergecast of inter-cluster edges up a BFS tree with local red-rule
//!   elimination, instrumented to *measure* the paper's headline
//!   pipelining claim (Lemma 5.3: no interior node ever stalls);
//! * [`fastmst`] — `Fast-MST` (Theorem 5.6): `FastDOM_G(k = √n)` followed
//!   by `Pipeline`, for `O(√n log* n + Diam(G))` rounds;
//! * [`baselines`] — the comparators: an Awerbuch-style `O(n)` phase-
//!   doubling MST, a collect-everything-at-root MST, and a pipeline-only
//!   (singleton-cluster) MST.
//!
//! All distributed components run on the `kdom-congest` simulator with
//! measured rounds; only the `DOMPartition` stage inside `Fast-MST` uses
//! the charged-round model (see `kdom-core::cluster` and DESIGN.md).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
pub mod fastmst;
pub mod pipeline;
pub mod service;
