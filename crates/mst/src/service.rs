//! The service-layer dispatcher: a typed [`RunSpec`] in, an executed
//! run out.
//!
//! The job scheduler ([`kdom_congest::jobs::JobPool`]) is deliberately
//! algorithm-agnostic — it executes an opaque [`Runner`] closure. This
//! module supplies the production runner: it sits at the top of the
//! algorithm stack (graph → congest → core → mst), so it can dispatch a
//! spec's [`Algo`] tag onto the actual compositions and harvest one
//! `u64` per node as the job's output row. The `kdom-serve` binary, the
//! sweep benchmarks, and the parity tests all share this one dispatch.

use std::sync::Arc;

use kdom_congest::jobs::{Algo, JobOutput, RunSpec, Runner};
use kdom_congest::SimError;
use kdom_core::dist::bfs::BfsNode;
use kdom_core::dist::executor::Executor;
use kdom_core::dist::fastdom::fast_dom_g_distributed_configured;
use kdom_core::dist::fragments::run_simple_mst_configured;
use kdom_core::fastdom::WithinCluster;
use kdom_graph::Graph;

/// The `k` a spec resolves to on `g`: the spec's own `k` when nonzero,
/// the paper's default `k(n) = ⌈√n⌉` ([`crate::fastmst::default_k`])
/// otherwise.
pub fn resolve_k(spec: &RunSpec, g: &Graph) -> usize {
    if spec.k == 0 {
        crate::fastmst::default_k(g.node_count())
    } else {
        spec.k as usize
    }
}

/// Runs `spec` on `g` and harvests the result.
///
/// Per-node output rows, in node order:
///
/// * [`Algo::SimpleMst`] — fragment-tree parent port + 1 (`0` marks a
///   fragment root), matching the `kdom-shard` harvest convention;
/// * [`Algo::FastDomG`] — the application id of the node's dominating
///   center;
/// * [`Algo::Bfs`] — BFS parent port + 1 (`0` marks the root, node 0).
///
/// The returned [`JobOutput::trace`] is always empty: trace capture is
/// the scheduler's job (it installs the thread-scoped policy around
/// this call and harvests the sink itself).
///
/// # Errors
///
/// Propagates the simulator's [`SimError`] from stages that surface it;
/// stages that assert internally (the SimpleMST and FastDOM drivers)
/// panic instead, which a [`kdom_congest::jobs::JobPool`] worker
/// converts into a failed job.
pub fn run(g: &Graph, spec: &RunSpec) -> Result<JobOutput, SimError> {
    let exec = Executor::from(spec);
    let config = spec.engine_config();
    let k = resolve_k(spec, g);
    match spec.algo {
        Algo::SimpleMst => {
            let frags = run_simple_mst_configured(g, k, &exec, config);
            let outputs = frags
                .parents
                .iter()
                .map(|p| p.map_or(0, |p| p.0 as u64 + 1))
                .collect();
            Ok(JobOutput {
                report: frags.report,
                outputs,
                trace: Vec::new(),
            })
        }
        Algo::FastDomG => {
            let (dom, report) =
                fast_dom_g_distributed_configured(g, k, WithinCluster::OptimalDp, &exec, config);
            let outputs = g
                .nodes()
                .map(|v| g.id_of(dom.clustering.center(dom.clustering.cluster_of(v))))
                .collect();
            Ok(JobOutput {
                report,
                outputs,
                trace: Vec::new(),
            })
        }
        Algo::Bfs => {
            let nodes = (0..g.node_count()).map(|v| BfsNode::new(v == 0)).collect();
            let budget = exec.watchdog_budget(4 * g.node_count() as u64 + 16);
            let (nodes, report) = exec.run_phase_configured("BFS", g, nodes, budget, config)?;
            let outputs = nodes
                .iter()
                .map(|n| n.parent.map_or(0, |p| p.0 as u64 + 1))
                .collect();
            Ok(JobOutput {
                report,
                outputs,
                trace: Vec::new(),
            })
        }
    }
}

/// The production [`Runner`]: [`run`] as a pool-ready shared closure.
pub fn runner() -> Runner {
    Arc::new(run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdom_congest::jobs::ExecSpec;
    use kdom_core::verify::check_k_dominating;
    use kdom_graph::generators::Family;
    use kdom_graph::NodeId;

    #[test]
    fn dispatch_covers_every_algorithm() {
        let g = Family::Grid.generate(49, 3);
        for algo in Algo::ALL {
            let spec = RunSpec::default().with_algo(algo).with_k(3);
            let out = run(&g, &spec).unwrap_or_else(|e| panic!("{algo}: {e}"));
            assert_eq!(out.outputs.len(), g.node_count(), "{algo}");
            assert!(out.report.rounds > 0, "{algo}: rounds must be measured");
            assert!(out.trace.is_empty(), "{algo}: trace is the pool's job");
        }
    }

    #[test]
    fn fastdom_outputs_name_a_k_dominating_set() {
        let g = Family::Gnp.generate(80, 5);
        let k = 4;
        let spec = RunSpec::default()
            .with_algo(Algo::FastDomG)
            .with_k(k as u64);
        let out = run(&g, &spec).expect("fastdom runs");
        let id_to_node: std::collections::HashMap<u64, NodeId> =
            g.nodes().map(|v| (g.id_of(v), v)).collect();
        let mut centers: Vec<NodeId> = out.outputs.iter().map(|id| id_to_node[id]).collect();
        centers.sort_unstable();
        centers.dedup();
        check_k_dominating(&g, &centers, k).expect("harvest names the dominators");
    }

    #[test]
    fn bfs_outputs_encode_a_rooted_tree() {
        let g = Family::Path.generate(12, 0);
        let spec = RunSpec::default().with_algo(Algo::Bfs);
        let out = run(&g, &spec).expect("bfs runs");
        assert_eq!(out.outputs[0], 0, "node 0 is the root");
        assert_eq!(
            out.outputs.iter().filter(|&&p| p == 0).count(),
            1,
            "exactly one root on a connected graph"
        );
    }

    #[test]
    fn auto_k_resolves_to_the_paper_default() {
        let g = Family::Grid.generate(100, 1);
        assert_eq!(resolve_k(&RunSpec::default(), &g), 10);
        assert_eq!(resolve_k(&RunSpec::default().with_k(3), &g), 3);
    }

    #[test]
    fn backends_agree_on_simple_mst_outputs() {
        let g = Family::Gnp.generate(40, 9);
        let sync = run(&g, &RunSpec::default().with_k(2)).expect("sync");
        let alpha = run(
            &g,
            &RunSpec::default()
                .with_k(2)
                .with_seed(13)
                .with_exec(ExecSpec::ReliableAlpha { max_delay: 3 }),
        )
        .expect("reliable-alpha");
        assert_eq!(sync.outputs, alpha.outputs, "backends agree on the trees");
    }
}
