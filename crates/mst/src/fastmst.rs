//! `Fast-MST` (§5.2, Theorem 5.6): distributed MST in
//! `O(√n log* n + Diam(G))` rounds.
//!
//! The composition follows the paper:
//!
//! 1. **`SimpleMST(k)`** with `k = ⌈√n⌉` — measured CONGEST rounds —
//!    yields a `(k+1, n)` spanning forest of MST fragments;
//! 2. **`DOMPartition(k)`** on each fragment (in parallel; charged rounds,
//!    see DESIGN.md) — yields ≤ `n/(k+1)` clusters of radius `O(k)`, each
//!    spanned by MST edges, with every node knowing its cluster id;
//! 3. **BFS + `Pipeline`** — measured rounds — eliminates all but the
//!    `N − 1` inter-cluster MST edges.
//!
//! The final MST is the union of the fragments' internal edges and the
//! pipeline's selected edges. Per the paper's footnote 2, the `DiamDOM`
//! stage of `FastDOM_G` is not needed for the MST itself and is skipped
//! here.

use kdom_congest::RunReport;
use kdom_core::cluster::Charge;
use kdom_core::dist::fragments::{run_simple_mst, DistFragments};
use kdom_core::partition::dom_partition;
use kdom_graph::{EdgeId, Graph, NodeId};

use crate::pipeline::{run_pipeline, PipelineRun};

/// Result and full round breakdown of a `Fast-MST` run.
#[derive(Clone, Debug)]
pub struct FastMstRun {
    /// The MST edges (exactly `n − 1` on a connected graph).
    pub mst_edges: Vec<EdgeId>,
    /// The `k` used (`⌈√n⌉` by default).
    pub k: usize,
    /// Number of contracted clusters `N` handed to the pipeline.
    pub cluster_count: usize,
    /// Measured rounds of the `SimpleMST` stage.
    pub fragment_rounds: u64,
    /// Charged rounds of the `DOMPartition` stage (max over the parallel
    /// fragments).
    pub partition_charge: Charge,
    /// Measured rounds of the BFS-tree stage.
    pub bfs_rounds: u64,
    /// Measured rounds of the `Pipeline` stage (including the result
    /// broadcast).
    pub pipeline_rounds: u64,
    /// Root-collection rounds of the pipeline (the Lemma 5.5 quantity).
    pub collect_rounds: u64,
    /// Stall count across the pipeline (Lemma 5.3: must be 0).
    pub stalls: u64,
    /// Full report of the pipeline stage.
    pub pipeline_report: RunReport,
}

impl FastMstRun {
    /// Total rounds: measured stages plus the charged partition stage.
    pub fn total_rounds(&self) -> u64 {
        self.fragment_rounds + self.partition_charge.rounds + self.bfs_rounds + self.pipeline_rounds
    }
}

/// The default parameter of Theorem 5.6: `k = ⌈√n⌉`.
pub fn default_k(n: usize) -> usize {
    (n as f64).sqrt().ceil() as usize
}

/// Runs `Fast-MST` with an explicit `k` (exposed for the k-sweep
/// ablation).
///
/// # Panics
///
/// Panics if the graph is disconnected or has fewer than 2 nodes.
pub fn fast_mst_with_k(g: &Graph, k: usize) -> FastMstRun {
    fast_mst_from_root(g, k, NodeId(0))
}

/// Runs `Fast-MST` from an explicit BFS root (see [`fast_mst_elected`]
/// for the root-free composition).
///
/// # Panics
///
/// Panics if the graph is disconnected or has fewer than 2 nodes.
pub fn fast_mst_from_root(g: &Graph, k: usize, root: NodeId) -> FastMstRun {
    assert!(g.node_count() >= 2, "MST needs at least two nodes");

    // Stage 1: SimpleMST fragments (measured).
    let fragments: DistFragments = run_simple_mst(g, k);

    // Stage 2: DOMPartition(k) per fragment (charged; parallel => max).
    let mut members: Vec<Vec<NodeId>> = vec![Vec::new(); fragments.roots.len()];
    for v in g.nodes() {
        members[fragments.fragment_of[v.0]].push(v);
    }
    let mut frag_edges: Vec<Vec<(NodeId, NodeId)>> = vec![Vec::new(); fragments.roots.len()];
    for &e in &fragments.tree_edges {
        let er = g.edge(e);
        frag_edges[fragments.fragment_of[er.u.0]].push((er.u, er.v));
    }
    let mut cluster_of = vec![0u64; g.node_count()];
    let mut cluster_count = 0usize;
    let mut partition_charge = Charge::default();
    for (f, mem) in members.into_iter().enumerate() {
        let res = dom_partition(g, mem, &frag_edges[f], k);
        if res.charge.rounds > partition_charge.rounds {
            partition_charge = res.charge;
        }
        for (center, cmembers) in &res.clusters {
            cluster_count += 1;
            let cid = g.id_of(*center);
            for &v in cmembers {
                cluster_of[v.0] = cid;
            }
        }
    }
    kdom_congest::trace::emit_phase("DOMPartition");
    kdom_congest::trace::emit_charge(partition_charge.rounds);

    // Stage 3: BFS + Pipeline (measured).
    let run: PipelineRun = run_pipeline(g, root, &cluster_of, true, false);

    // Final MST: fragment-internal edges + selected inter-cluster edges.
    let weight_to_edge: std::collections::HashMap<u64, EdgeId> =
        g.edges().iter().map(|e| (e.weight, e.id)).collect();
    let mut mst_edges: Vec<EdgeId> = fragments.tree_edges.clone();
    let selected: std::collections::HashSet<EdgeId> = mst_edges.iter().copied().collect();
    for w in &run.mst_weights {
        let e = weight_to_edge[w];
        if !selected.contains(&e) {
            mst_edges.push(e);
        }
    }

    FastMstRun {
        mst_edges,
        k,
        cluster_count,
        fragment_rounds: fragments.report.rounds,
        partition_charge,
        bfs_rounds: run.bfs_report.rounds,
        pipeline_rounds: run.report.rounds,
        collect_rounds: run.collect_rounds,
        stalls: run.stalls,
        pipeline_report: run.report,
    }
}

/// Runs `Fast-MST` with the paper's `k = ⌈√n⌉` (Theorem 5.6).
pub fn fast_mst(g: &Graph) -> FastMstRun {
    fast_mst_with_k(g, default_k(g.node_count()))
}

/// Root-free `Fast-MST`: elects the maximum-id node first (`O(Diam)`
/// measured rounds, added to the BFS stage), then runs the usual
/// composition from the elected leader.
pub fn fast_mst_elected(g: &Graph) -> FastMstRun {
    let (leader, election_report) = kdom_core::dist::election::elect_leader(g);
    let mut run = fast_mst_from_root(g, default_k(g.node_count()), leader);
    run.bfs_rounds += election_report.rounds;
    run
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdom_graph::generators::gnp_connected;
    use kdom_graph::generators::{Family, GenConfig};
    use kdom_graph::mst_ref::is_mst;

    #[test]
    fn computes_the_mst_on_all_families() {
        for fam in Family::ALL {
            let g = fam.generate(60, 8);
            let run = fast_mst(&g);
            assert!(is_mst(&g, &run.mst_edges), "{fam}");
            assert_eq!(run.stalls, 0, "{fam}");
        }
    }

    #[test]
    fn computes_the_mst_on_random_seeds() {
        for seed in 0..8u64 {
            let g = gnp_connected(&GenConfig::with_seed(80, seed), 0.07);
            let run = fast_mst(&g);
            assert!(is_mst(&g, &run.mst_edges), "seed {seed}");
        }
    }

    #[test]
    fn cluster_count_at_most_n_over_k() {
        let g = Family::Grid.generate(225, 4);
        let run = fast_mst(&g);
        assert!(
            run.cluster_count <= 225 / (run.k + 1).max(1) + 1,
            "N = {} with k = {}",
            run.cluster_count,
            run.k
        );
    }

    #[test]
    fn k_sweep_stays_correct() {
        let g = gnp_connected(&GenConfig::with_seed(64, 3), 0.1);
        for k in [1usize, 2, 4, 8, 16, 32] {
            let run = fast_mst_with_k(&g, k);
            assert!(is_mst(&g, &run.mst_edges), "k = {k}");
        }
    }

    #[test]
    fn elected_variant_is_correct_and_costs_a_diameter_more() {
        let g = Family::Grid.generate(100, 9);
        let plain = fast_mst(&g);
        let elected = fast_mst_elected(&g);
        assert!(is_mst(&g, &elected.mst_edges));
        assert!(
            elected.bfs_rounds > plain.bfs_rounds,
            "election rounds included"
        );
        assert!(elected.bfs_rounds <= plain.bfs_rounds + 3 * 100);
    }

    #[test]
    fn round_breakdown_adds_up() {
        let g = Family::Grid.generate(100, 5);
        let run = fast_mst(&g);
        assert_eq!(
            run.total_rounds(),
            run.fragment_rounds
                + run.partition_charge.rounds
                + run.bfs_rounds
                + run.pipeline_rounds
        );
        assert!(run.fragment_rounds > 0 && run.bfs_rounds > 0 && run.pipeline_rounds > 0);
    }

    #[test]
    fn two_node_graph() {
        let mut b = kdom_graph::GraphBuilder::new(2);
        b.add_edge(NodeId(0), NodeId(1), 9);
        let g = b.build();
        let run = fast_mst(&g);
        assert_eq!(run.mst_edges.len(), 1);
        assert!(is_mst(&g, &run.mst_edges));
    }
}
