//! Procedure `Pipeline` (§5.1, Fig. 8): global edge elimination by a
//! fully-pipelined convergecast.
//!
//! Nodes sit on a BFS tree `B` of the whole graph and know which cluster
//! of the partition `P` they belong to. Each node maintains the set `Q`
//! of inter-cluster edges it knows of and the set `U` it has already
//! upcast; each pulse it sends up the lightest *remaining candidate* —
//! an edge of `Q \ (U ∪ Cyc(U, Q))` — or terminates when no candidate is
//! left and all children terminated. The root collects the arrivals and
//! computes the MST of the cluster graph.
//!
//! Two instruments back the paper's analysis:
//!
//! * **stalls** — Lemma 5.3(a) proves a started, non-terminated interior
//!   node always has a candidate; we count the pulses where that fails
//!   (expected: zero);
//! * **order violations** — Lemma 5.3(d) proves each node's upcasts are
//!   nondecreasing; we count arrivals lighter than the last pop
//!   (expected: zero). The red-rule filtering is only sound under this
//!   order, so the count doubles as a soundness monitor.
//!
//! Config flags expose the ablations: `barrier` makes nodes wait for all
//! children to *terminate* before sending (the naive convergecast the
//! paper replaces), and `eliminate = false` disables the red rule (the
//! collect-everything baseline).

use std::collections::{BinaryHeap, HashMap, HashSet};

use kdom_congest::wire::{BitReader, BitWriter, Wire, WireError};
use kdom_congest::{Message, NodeCtx, Outbox, Port, Protocol, RunReport, Wake};
use kdom_graph::{Graph, NodeId};

use kdom_core::dist::bfs::run_bfs;

/// An inter-cluster edge description: weight plus both endpoint cluster
/// ids — the `O(log n)`-bit unit the convergecast forwards.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct EdgeDesc {
    /// The (globally unique) edge weight.
    pub w: u64,
    /// Cluster id of one endpoint.
    pub a: u64,
    /// Cluster id of the other endpoint.
    pub b: u64,
}

/// `Pipeline` messages.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlMsg {
    /// Round-0 cluster-id exchange (classifies inter-cluster edges).
    ClusterId(u64),
    /// One upcast edge description.
    Edge(EdgeDesc),
    /// "I have terminated" (the paper's terminating message).
    Done,
    /// Result broadcast: one MST edge of the cluster graph.
    SEdge(u64),
    /// Result broadcast finished.
    SDone,
}

/// The widest message in the repo is [`PlMsg::Edge`], pinned at *exactly*
/// three CONGEST words (`congest_budget(3)` = 144 bits) — ids use the
/// full 48-bit range, so there is no headroom for a discriminant inside
/// the payload. Frames are length-delimited (see the `wire` module docs),
/// so the encoding dispatches on length instead: 144 bits is tagless
/// `Edge`, 49 bits is a 1-bit tag plus a word (`ClusterId`/`SEdge`),
/// 1 bit is a bare tag (`Done`/`SDone`). No two variants share a length.
impl Wire for PlMsg {
    fn encode(&self, w: &mut BitWriter) {
        match self {
            PlMsg::Edge(e) => {
                w.word(e.w);
                w.word(e.a);
                w.word(e.b);
            }
            PlMsg::ClusterId(c) => {
                w.flag(false);
                w.word(*c);
            }
            PlMsg::SEdge(we) => {
                w.flag(true);
                w.word(*we);
            }
            PlMsg::Done => w.flag(false),
            PlMsg::SDone => w.flag(true),
        }
    }

    fn decode(r: &mut BitReader<'_>) -> Result<Self, WireError> {
        Ok(match r.remaining() {
            144 => PlMsg::Edge(EdgeDesc {
                w: r.word()?,
                a: r.word()?,
                b: r.word()?,
            }),
            49 => {
                if r.flag()? {
                    PlMsg::SEdge(r.word()?)
                } else {
                    PlMsg::ClusterId(r.word()?)
                }
            }
            1 => {
                if r.flag()? {
                    PlMsg::SDone
                } else {
                    PlMsg::Done
                }
            }
            bits => {
                return Err(WireError::BadLength {
                    context: "PlMsg",
                    bits,
                })
            }
        })
    }
}

impl Message for PlMsg {}

/// Static node configuration.
#[derive(Clone, Debug)]
pub struct PipelineConfig {
    /// BFS parent port (`None` at the root).
    pub parent: Option<Port>,
    /// BFS children ports.
    pub children: Vec<Port>,
    /// This node's cluster id.
    pub cluster: u64,
    /// Apply the red rule at interior nodes (the paper's algorithm).
    pub eliminate: bool,
    /// Wait for all children to terminate before sending (the naive
    /// convergecast; ablation only).
    pub barrier: bool,
}

/// Tiny union–find over cluster ids, for the local `Cyc(U, Q)` test.
#[derive(Clone, Debug, Default)]
struct IdDsu {
    parent: HashMap<u64, u64>,
}

impl IdDsu {
    fn find(&mut self, x: u64) -> u64 {
        let p = *self.parent.entry(x).or_insert(x);
        if p == x {
            return x;
        }
        let r = self.find(p);
        self.parent.insert(x, r);
        r
    }

    fn union(&mut self, a: u64, b: u64) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        self.parent.insert(ra, rb);
        true
    }

    fn connected(&mut self, a: u64, b: u64) -> bool {
        self.find(a) == self.find(b)
    }
}

/// The per-node `Pipeline` automaton.
#[derive(Clone, Debug)]
pub struct PipelineNode {
    cfg: PipelineConfig,
    /// Candidates not yet popped, as a min-heap.
    queue: BinaryHeap<std::cmp::Reverse<(u64, u64, u64)>>,
    seen: HashSet<u64>,
    upcast_forest: IdDsu,
    active_children: HashSet<Port>,
    heard_from: HashSet<Port>,
    started: bool,
    terminated: bool,
    last_pop: Option<u64>,
    /// Pulses where a started interior node had active children but no
    /// candidate (Lemma 5.3(a) says this never happens).
    pub stalls: u64,
    /// Arrivals lighter than this node's last pop (Lemma 5.3(b)/(d) says
    /// this never happens).
    pub order_violations: u64,
    /// Root only: every edge heard (plus its own), in arrival order.
    pub collected: Vec<EdgeDesc>,
    /// Root only: the computed cluster-graph MST edge weights.
    pub result: Option<Vec<u64>>,
    /// The round at which the root finished collecting (upcast time).
    pub collect_done_round: Option<u64>,
    result_cursor: usize,
    downcast: Vec<u64>,
    sdone_received: bool,
    downcast_done: bool,
}

impl PipelineNode {
    /// A fresh automaton.
    pub fn new(cfg: PipelineConfig) -> Self {
        let active_children = cfg.children.iter().copied().collect();
        PipelineNode {
            cfg,
            queue: BinaryHeap::new(),
            seen: HashSet::new(),
            upcast_forest: IdDsu::default(),
            active_children,
            heard_from: HashSet::new(),
            started: false,
            terminated: false,
            last_pop: None,
            stalls: 0,
            order_violations: 0,
            collected: Vec::new(),
            result: None,
            collect_done_round: None,
            result_cursor: 0,
            downcast: Vec::new(),
            sdone_received: false,
            downcast_done: false,
        }
    }

    fn is_root(&self) -> bool {
        self.cfg.parent.is_none()
    }

    fn push_candidate(&mut self, e: EdgeDesc) {
        if self.seen.insert(e.w) {
            self.queue.push(std::cmp::Reverse((e.w, e.a, e.b)));
        }
    }

    /// Pops the lightest remaining candidate, discarding cycle-closers.
    fn pop_candidate(&mut self) -> Option<EdgeDesc> {
        while let Some(std::cmp::Reverse((w, a, b))) = self.queue.pop() {
            if self.cfg.eliminate && self.upcast_forest.connected(a, b) {
                continue; // Cyc(U, Q): closes a cycle with upcast edges
            }
            if self.cfg.eliminate {
                self.upcast_forest.union(a, b);
            }
            return Some(EdgeDesc { w, a, b });
        }
        None
    }
}

impl Protocol for PipelineNode {
    type Msg = PlMsg;

    fn round(&mut self, ctx: &NodeCtx<'_>, inbox: &[(Port, PlMsg)], out: &mut Outbox<PlMsg>) {
        // ——— intake ———
        for (p, m) in inbox {
            match m {
                PlMsg::ClusterId(cid) => {
                    if *cid != self.cfg.cluster {
                        self.push_candidate(EdgeDesc {
                            w: ctx.edge_weight(*p),
                            a: self.cfg.cluster,
                            b: *cid,
                        });
                    }
                }
                PlMsg::Edge(e) => {
                    self.heard_from.insert(*p);
                    if let Some(lp) = self.last_pop {
                        if e.w < lp {
                            self.order_violations += 1;
                        }
                    }
                    if self.is_root() {
                        self.collected.push(*e);
                    } else {
                        self.push_candidate(*e);
                    }
                }
                PlMsg::Done => {
                    self.heard_from.insert(*p);
                    self.active_children.remove(p);
                }
                PlMsg::SEdge(w) => {
                    self.downcast.push(*w);
                }
                PlMsg::SDone => {
                    self.sdone_received = true;
                }
            }
        }

        // ——— cluster-id exchange at round 0 ———
        if ctx.round == 0 {
            out.broadcast(PlMsg::ClusterId(self.cfg.cluster));
            return;
        }

        // ——— start gate ———
        if !self.started && ctx.round >= 2 {
            let gate = if self.cfg.barrier {
                self.active_children.is_empty()
            } else {
                self.cfg
                    .children
                    .iter()
                    .all(|c| self.heard_from.contains(c))
            };
            if gate {
                self.started = true;
            }
        }

        // ——— root: collect own candidates, detect completion ———
        if self.is_root() {
            if self.started && self.result.is_none() {
                // drain own queue into the collection (local, free)
                while let Some(e) = self.pop_candidate() {
                    self.collected.push(e);
                }
                if self.active_children.is_empty() {
                    // compute the cluster-graph MST by Kruskal
                    let mut edges = self.collected.clone();
                    edges.sort_by_key(|e| e.w);
                    let mut dsu = IdDsu::default();
                    let mut s = Vec::new();
                    for e in edges {
                        if dsu.union(e.a, e.b) {
                            s.push(e.w);
                        }
                    }
                    self.result = Some(s);
                    self.collect_done_round = Some(ctx.round);
                }
            }
            // downcast the result, one edge per round per tree edge
            if let Some(s) = &self.result {
                if self.result_cursor < s.len() {
                    let w = s[self.result_cursor];
                    self.result_cursor += 1;
                    for &c in &self.cfg.children.clone() {
                        out.send(c, PlMsg::SEdge(w));
                    }
                } else if !self.downcast_done {
                    self.downcast_done = true;
                    for &c in &self.cfg.children.clone() {
                        out.send(c, PlMsg::SDone);
                    }
                }
            }
            return;
        }

        // ——— interior/leaf: forward the result stream, SDone last ———
        if self.result_cursor < self.downcast.len() {
            let w = self.downcast[self.result_cursor];
            self.result_cursor += 1;
            for &c in &self.cfg.children.clone() {
                out.send(c, PlMsg::SEdge(w));
            }
        } else if self.sdone_received && !self.downcast_done {
            self.downcast_done = true;
            for &c in &self.cfg.children.clone() {
                out.send(c, PlMsg::SDone);
            }
        }

        // ——— interior/leaf: one upcast per pulse ———
        if self.started && !self.terminated {
            match self.pop_candidate() {
                Some(e) => {
                    self.last_pop = Some(e.w);
                    out.send(self.cfg.parent.expect("non-root"), PlMsg::Edge(e));
                }
                None => {
                    if self.active_children.is_empty() {
                        self.terminated = true;
                        out.send(self.cfg.parent.expect("non-root"), PlMsg::Done);
                    } else {
                        // Lemma 5.3(a) says this cannot happen
                        self.stalls += 1;
                    }
                }
            }
        }
    }

    fn is_done(&self) -> bool {
        if self.is_root() {
            self.result.is_some() && self.downcast_done
        } else {
            self.terminated && self.downcast_done
        }
    }

    fn next_wake(&self, _now: u64) -> Wake {
        if !self.started {
            // the start gate is re-evaluated from round 2 on; its inputs
            // (heard_from / active_children) only change on arrivals, so
            // a node whose gate would already pass wakes exactly at the
            // gate round and everyone else waits for a message
            let gate = if self.cfg.barrier {
                self.active_children.is_empty()
            } else {
                self.cfg
                    .children
                    .iter()
                    .all(|c| self.heard_from.contains(c))
            };
            return if gate { Wake::At(2) } else { Wake::OnMessage };
        }
        if self.is_root() {
            // collecting: the queue is drained on every execution, so an
            // empty-inbox round is a no-op until a child sends; once the
            // result exists the downcast streams one edge per round
            return if self.result.is_some() {
                Wake::EveryRound
            } else {
                Wake::OnMessage
            };
        }
        if !self.terminated {
            return Wake::EveryRound; // one upcast per pulse
        }
        // terminated: still forwarding the result stream?
        if self.result_cursor < self.downcast.len() || (self.sdone_received && !self.downcast_done)
        {
            Wake::EveryRound
        } else {
            Wake::OnMessage
        }
    }
}

/// Aggregate result of a `Pipeline` run.
#[derive(Clone, Debug)]
pub struct PipelineRun {
    /// The cluster-graph MST edge weights the root computed.
    pub mst_weights: Vec<u64>,
    /// Total stalls across all interior nodes (Lemma 5.3: must be 0).
    pub stalls: u64,
    /// Total nondecreasing-order violations (Lemma 5.3: must be 0).
    pub order_violations: u64,
    /// Round at which the root finished collecting (the `O(N + Diam)`
    /// quantity of Lemma 5.5, without the optional result broadcast).
    pub collect_rounds: u64,
    /// BFS-stage report.
    pub bfs_report: RunReport,
    /// Pipeline-stage report (includes the result broadcast).
    pub report: RunReport,
}

/// Runs BFS from `root` and then `Pipeline` over it, with `cluster[v]`
/// giving each node's cluster id.
///
/// # Panics
///
/// Panics if the graph is disconnected or the run exceeds its budget.
pub fn run_pipeline(
    g: &Graph,
    root: NodeId,
    cluster: &[u64],
    eliminate: bool,
    barrier: bool,
) -> PipelineRun {
    let (bfs, bfs_report) = run_bfs(g, root);
    let nodes: Vec<PipelineNode> = bfs
        .iter()
        .enumerate()
        .map(|(v, b)| {
            PipelineNode::new(PipelineConfig {
                parent: b.parent,
                children: b.children.clone(),
                cluster: cluster[v],
                eliminate,
                barrier,
            })
        })
        .collect();
    // the barrier ablation serializes subtrees and can take Θ(n²) rounds
    let n64 = g.node_count() as u64;
    let budget =
        40 * (n64 + g.edge_count() as u64) + 1000 + if barrier { 4 * n64 * n64 } else { 0 };
    kdom_congest::trace::emit_phase("Pipeline");
    let (nodes, report) = kdom_congest::run_protocol(g, nodes, budget).expect("pipeline quiesces");
    let root_node = &nodes[root.0];
    PipelineRun {
        mst_weights: root_node.result.clone().expect("root computed the MST"),
        stalls: nodes.iter().map(|n| n.stalls).sum(),
        order_violations: nodes.iter().map(|n| n.order_violations).sum(),
        collect_rounds: root_node.collect_done_round.expect("root finished"),
        bfs_report,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdom_graph::generators::gnp_connected;
    use kdom_graph::generators::{Family, GenConfig};
    use kdom_graph::mst_ref::kruskal;
    use kdom_graph::properties::diameter;

    /// Singleton clusters: pipeline alone computes the full MST.
    fn singleton_clusters(g: &Graph) -> Vec<u64> {
        g.nodes().map(|v| g.id_of(v)).collect()
    }

    fn expect_mst_weights(g: &Graph) -> Vec<u64> {
        let mut w: Vec<u64> = kruskal(g).iter().map(|&e| g.edge(e).weight).collect();
        w.sort_unstable();
        w
    }

    #[test]
    fn pipeline_computes_mst_with_singletons() {
        for fam in Family::ALL {
            let g = fam.generate(40, 7);
            let run = run_pipeline(&g, NodeId(0), &singleton_clusters(&g), true, false);
            let mut got = run.mst_weights.clone();
            got.sort_unstable();
            assert_eq!(got, expect_mst_weights(&g), "{fam}");
            assert_eq!(run.stalls, 0, "{fam}: Lemma 5.3 violated");
            assert_eq!(run.order_violations, 0, "{fam}");
        }
    }

    #[test]
    fn pipeline_is_fully_pipelined_on_many_graphs() {
        for seed in 0..12u64 {
            let g = gnp_connected(&GenConfig::with_seed(70, seed), 0.08);
            let run = run_pipeline(&g, NodeId(0), &singleton_clusters(&g), true, false);
            assert_eq!(run.stalls, 0, "seed {seed}");
            assert_eq!(run.order_violations, 0, "seed {seed}");
            let mut got = run.mst_weights.clone();
            got.sort_unstable();
            assert_eq!(got, expect_mst_weights(&g), "seed {seed}");
        }
    }

    #[test]
    fn collect_rounds_bounded_by_n_plus_diam() {
        // Lemma 5.5: O(N + Diam); with singleton clusters N = n.
        let g = Family::Grid.generate(100, 3);
        let run = run_pipeline(&g, NodeId(0), &singleton_clusters(&g), true, false);
        let bound = g.node_count() as u64 + 2 * u64::from(diameter(&g)) + 16;
        assert!(
            run.collect_rounds <= bound,
            "{} rounds > {bound}",
            run.collect_rounds
        );
    }

    #[test]
    fn barrier_variant_is_slower_but_correct() {
        let g = Family::BalancedBinary.generate(127, 2);
        let fast = run_pipeline(&g, NodeId(0), &singleton_clusters(&g), true, false);
        let slow = run_pipeline(&g, NodeId(0), &singleton_clusters(&g), true, true);
        let mut a = fast.mst_weights.clone();
        let mut b = slow.mst_weights.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        assert!(
            slow.collect_rounds > fast.collect_rounds,
            "barrier {} vs pipelined {}",
            slow.collect_rounds,
            fast.collect_rounds
        );
    }

    #[test]
    fn no_elimination_still_correct_but_heavier() {
        let g = gnp_connected(&GenConfig::with_seed(50, 9), 0.2);
        let with = run_pipeline(&g, NodeId(0), &singleton_clusters(&g), true, false);
        let without = run_pipeline(&g, NodeId(0), &singleton_clusters(&g), false, false);
        let mut a = with.mst_weights.clone();
        let mut b = without.mst_weights.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        assert!(without.report.messages > with.report.messages);
    }

    #[test]
    fn cluster_graph_mode() {
        // path of 6 in 3 clusters of 2: the cluster MST has 2 edges
        let g = Family::Path.generate(6, 1);
        let cluster = vec![10, 10, 20, 20, 30, 30];
        let run = run_pipeline(&g, NodeId(0), &cluster, true, false);
        assert_eq!(run.mst_weights.len(), 2);
        assert_eq!(run.stalls, 0);
        // the two inter-cluster edges are path edges 1-2 and 3-4
        let w12 = g.edge_between(NodeId(1), NodeId(2)).unwrap().weight;
        let w34 = g.edge_between(NodeId(3), NodeId(4)).unwrap().weight;
        let mut expect = vec![w12, w34];
        expect.sort_unstable();
        let mut got = run.mst_weights.clone();
        got.sort_unstable();
        assert_eq!(got, expect);
    }

    #[test]
    fn single_cluster_yields_empty_mst() {
        let g = Family::Path.generate(5, 0);
        let run = run_pipeline(&g, NodeId(0), &[7; 5], true, false);
        assert!(run.mst_weights.is_empty());
    }
}
