//! `SimpleMST` (§4.1–4.4): controlled Borůvka growth of MST fragments.
//!
//! The procedure runs `⌈log(k+1)⌉` phases. In phase `i` a fragment is
//! *active* iff its tree depth is at most `2^i`; active fragments find
//! their minimum-weight outgoing edge (MWOE) and merge over it. With
//! distinct weights every selected edge belongs to the unique MST, and
//! after the last phase every fragment has at least `k+1` nodes
//! (Lemma 4.2) while the phase budgets keep the total time `O(k)`
//! (Lemma 4.1).
//!
//! This module is the sequential reference used by `FastDOM_G` and by the
//! tests; the measured per-node CONGEST implementation lives in
//! [`crate::dist::fragments`] and is cross-checked against this one.

use std::collections::VecDeque;

use kdom_graph::{EdgeId, Graph, NodeId};

use crate::logstar::ceil_log2;

/// Result of the fragment-growing procedure.
#[derive(Clone, Debug)]
pub struct Fragments {
    /// Fragment index of every node.
    pub fragment_of: Vec<usize>,
    /// Root node of each fragment (the paper's fragment identity).
    pub roots: Vec<NodeId>,
    /// The MST edges selected so far (union over all fragments' trees).
    pub tree_edges: Vec<EdgeId>,
    /// Number of phases executed.
    pub phases: u32,
}

impl Fragments {
    /// Number of fragments.
    pub fn fragment_count(&self) -> usize {
        self.roots.len()
    }

    /// Members of each fragment.
    pub fn members(&self) -> Vec<Vec<NodeId>> {
        let mut m = vec![Vec::new(); self.roots.len()];
        for (v, &f) in self.fragment_of.iter().enumerate() {
            m[f].push(NodeId(v));
        }
        m
    }

    /// The tree edges of each fragment (split of [`Fragments::tree_edges`]).
    pub fn tree_edges_by_fragment(&self, g: &Graph) -> Vec<Vec<EdgeId>> {
        let mut out = vec![Vec::new(); self.roots.len()];
        for &e in &self.tree_edges {
            let er = g.edge(e);
            out[self.fragment_of[er.u.0]].push(e);
        }
        out
    }
}

/// Internal per-fragment state.
#[derive(Clone, Debug)]
struct Frag {
    root: NodeId,
    members: Vec<NodeId>,
    alive: bool,
}

/// Depth of fragment `f`'s tree (distance from its root over selected
/// tree edges).
fn fragment_depth(
    root: NodeId,
    frag: usize,
    fragment_of: &[usize],
    tree_adj: &[Vec<NodeId>],
) -> u32 {
    let mut depth = 0;
    let mut dist = std::collections::HashMap::new();
    dist.insert(root, 0u32);
    let mut q = VecDeque::from([root]);
    while let Some(u) = q.pop_front() {
        let du = dist[&u];
        depth = depth.max(du);
        for &w in &tree_adj[u.0] {
            if fragment_of[w.0] == frag && !dist.contains_key(&w) {
                dist.insert(w, du + 1);
                q.push_back(w);
            }
        }
    }
    depth
}

/// Runs `SimpleMST` for parameter `k`, producing a `(k+1, n)` spanning
/// forest of MST fragments (each fragment spans its nodes with MST edges;
/// each has ≥ k+1 nodes unless its whole connected component is smaller).
pub fn simple_mst_forest(g: &Graph, k: usize) -> Fragments {
    let n = g.node_count();
    let mut fragment_of: Vec<usize> = (0..n).collect();
    let mut frags: Vec<Frag> = (0..n)
        .map(|v| Frag {
            root: NodeId(v),
            members: vec![NodeId(v)],
            alive: true,
        })
        .collect();
    let mut tree_edges: Vec<EdgeId> = Vec::new();
    let mut tree_adj: Vec<Vec<NodeId>> = vec![Vec::new(); n];

    let phases = ceil_log2(k as u64 + 1);
    for i in 1..=phases {
        let budget = 1u32 << i; // 2^i
                                // each active fragment selects its MWOE
        let mut choice: Vec<Option<EdgeId>> = vec![None; frags.len()];
        let alive: Vec<usize> = (0..frags.len()).filter(|&f| frags[f].alive).collect();
        for &f in &alive {
            let depth = fragment_depth(frags[f].root, f, &fragment_of, &tree_adj);
            if depth > budget {
                continue; // halted this phase (may resume later)
            }
            let mut best: Option<(u64, EdgeId)> = None;
            for &v in &frags[f].members {
                for a in g.neighbors(v) {
                    if fragment_of[a.to.0] != f {
                        let cand = (a.weight, a.edge);
                        if best.is_none_or(|b| cand < b) {
                            best = Some(cand);
                        }
                    }
                }
            }
            choice[f] = best.map(|(_, e)| e);
        }
        // merge along the chosen edges: weak components of the functional
        // graph collapse into one fragment each
        let mut target: Vec<Option<usize>> = vec![None; frags.len()];
        for &f in &alive {
            if let Some(e) = choice[f] {
                let er = g.edge(e);
                let other = if fragment_of[er.u.0] == f { er.v } else { er.u };
                target[f] = Some(fragment_of[other.0]);
            }
        }
        let mut merged = vec![false; frags.len()];
        for &f in &alive {
            if merged[f] || target[f].is_none() {
                continue;
            }
            // find the terminal of f's chain: a sink or a 2-cycle core
            let mut path = vec![f];
            let mut cur = f;
            let (terminal_root, component_seed) = loop {
                match target[cur] {
                    None => break (frags[cur].root, cur), // sink fragment keeps its root
                    Some(nxt) => {
                        if target[nxt] == Some(cur) {
                            // 2-cycle core: both picked the same edge (distinct
                            // weights); the endpoint with the higher id roots it
                            let e = g.edge(choice[cur].expect("cur selected an edge"));
                            let root = if g.id_of(e.u) > g.id_of(e.v) {
                                e.u
                            } else {
                                e.v
                            };
                            break (root, cur);
                        }
                        if path.contains(&nxt) {
                            unreachable!(
                                "cycles longer than 2 are impossible with distinct weights"
                            );
                        }
                        path.push(nxt);
                        cur = nxt;
                    }
                }
            };
            // gather the weak component containing the terminal
            let mut comp = Vec::new();
            let mut stack = vec![component_seed];
            let mut in_comp = vec![false; frags.len()];
            in_comp[component_seed] = true;
            while let Some(x) = stack.pop() {
                comp.push(x);
                // forward edge
                if let Some(t) = target[x] {
                    if !in_comp[t] {
                        in_comp[t] = true;
                        stack.push(t);
                    }
                }
                // reverse edges (only phase-start fragments ever select)
                for &y in &alive {
                    if !in_comp[y] && target[y] == Some(x) {
                        in_comp[y] = true;
                        stack.push(y);
                    }
                }
            }
            // create the merged fragment
            let new_id = frags.len();
            let mut members = Vec::new();
            for &x in &comp {
                members.extend(frags[x].members.iter().copied());
                frags[x].alive = false;
                merged[x] = true;
                if let Some(e) = choice[x] {
                    let er = g.edge(e);
                    // the core edge is selected twice; dedupe
                    if !tree_adj[er.u.0].contains(&er.v) {
                        tree_edges.push(e);
                        tree_adj[er.u.0].push(er.v);
                        tree_adj[er.v.0].push(er.u);
                    }
                }
            }
            for &m in &members {
                fragment_of[m.0] = new_id;
            }
            frags.push(Frag {
                root: terminal_root,
                members,
                alive: true,
            });
            merged.push(true);
        }
    }

    // compact to alive fragments
    let alive: Vec<usize> = (0..frags.len()).filter(|&f| frags[f].alive).collect();
    let remap: std::collections::HashMap<usize, usize> =
        alive.iter().enumerate().map(|(i, &f)| (f, i)).collect();
    Fragments {
        fragment_of: fragment_of.iter().map(|f| remap[f]).collect(),
        roots: alive.iter().map(|&f| frags[f].root).collect(),
        tree_edges,
        phases,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{check_mst_fragments, check_spanning_forest};
    use kdom_graph::generators::Family;
    use kdom_graph::mst_ref::kruskal;

    fn check_fragments(g: &Graph, fr: &Fragments, k: usize) {
        // every selected edge is in the unique MST
        check_mst_fragments(g, &fr.tree_edges).unwrap();
        // the selected edges form a (k+1, ·) spanning forest
        check_spanning_forest(g, &fr.tree_edges, (k + 1).min(g.node_count())).unwrap();
        // fragment assignment is consistent with the edges
        let mut dsu = kdom_graph::Dsu::new(g.node_count());
        for &e in &fr.tree_edges {
            let er = g.edge(e);
            dsu.union(er.u, er.v);
        }
        for u in g.nodes() {
            for v in g.nodes() {
                let same_frag = fr.fragment_of[u.0] == fr.fragment_of[v.0];
                assert_eq!(same_frag, dsu.same(u, v), "{u:?} vs {v:?}");
            }
        }
        // each root belongs to its fragment
        for (f, &r) in fr.roots.iter().enumerate() {
            assert_eq!(fr.fragment_of[r.0], f);
        }
    }

    #[test]
    fn fragments_on_all_families() {
        for fam in Family::ALL {
            for k in [1usize, 3, 7] {
                let g = fam.generate(60, 5);
                let fr = simple_mst_forest(&g, k);
                check_fragments(&g, &fr, k);
            }
        }
    }

    #[test]
    fn large_k_yields_whole_mst() {
        let g = Family::Gnp.generate(40, 7);
        let fr = simple_mst_forest(&g, 64);
        assert_eq!(fr.fragment_count(), 1);
        let mut ours = fr.tree_edges.clone();
        ours.sort_unstable();
        let mut mst = kruskal(&g);
        mst.sort_unstable();
        assert_eq!(ours, mst, "k ≥ n makes SimpleMST compute the full MST");
    }

    #[test]
    fn k1_does_at_least_one_boruvka_phase() {
        let g = Family::Grid.generate(49, 3);
        let fr = simple_mst_forest(&g, 1);
        assert_eq!(fr.phases, 1);
        for m in fr.members() {
            assert!(m.len() >= 2, "one phase pairs everyone up");
        }
        check_fragments(&g, &fr, 1);
    }

    #[test]
    fn fragment_sizes_meet_k_plus_one() {
        for seed in 0..10 {
            let g = Family::RandomTree.generate(100, seed);
            let k = 7;
            let fr = simple_mst_forest(&g, k);
            for m in fr.members() {
                assert!(m.len() > k, "seed {seed}: fragment of {} nodes", m.len());
            }
        }
    }

    #[test]
    fn phase_count_matches_lemma() {
        let g = Family::Path.generate(100, 1);
        for (k, expect) in [(1usize, 1u32), (3, 2), (7, 3), (8, 4), (100, 7)] {
            let fr = simple_mst_forest(&g, k);
            assert_eq!(fr.phases, expect, "k = {k}");
        }
    }

    #[test]
    fn single_node_graph() {
        let g = kdom_graph::GraphBuilder::new(1).build();
        let fr = simple_mst_forest(&g, 3);
        assert_eq!(fr.fragment_count(), 1);
        assert!(fr.tree_edges.is_empty());
    }

    #[test]
    fn two_node_graph() {
        let mut b = kdom_graph::GraphBuilder::new(2);
        b.add_edge(NodeId(0), NodeId(1), 5);
        let g = b.build();
        let fr = simple_mst_forest(&g, 4);
        assert_eq!(fr.fragment_count(), 1);
        assert_eq!(fr.tree_edges.len(), 1);
    }
}
