//! The cluster-graph execution engine behind the `DOMPartition` family.
//!
//! The partition algorithms of §3.2 repeatedly contract star clusters of a
//! tree. This engine maintains the contraction state *on the original
//! nodes* — which nodes form each cluster, the cluster's center and its
//! exact radius inside the tree — and executes `BalancedDOM` steps on the
//! contracted (virtual) forest.
//!
//! ## Round charging
//!
//! Per DESIGN.md, this family is executed at the cluster abstraction with
//! explicit round charges instead of per-node emulation: one virtual round
//! over clusters of maximum radius `r` is charged `2r + 1` real rounds
//! (intra-cluster broadcast to the boundary, the inter-cluster hop, and
//! the convergecast back; `r = 0` degenerates to 1 real round on the base
//! tree). This matches the accounting the paper's own analysis uses —
//! iteration `i` costs `O(2^i)` because participating clusters have radius
//! `O(2^i)` (§3.2.2–3.2.3). The virtual-round counts themselves are
//! measured from the actual `BalancedDOM` executions.

use std::collections::VecDeque;

use kdom_graph::{Graph, NodeId};

use crate::balanced::{balanced_dom, BalancedOut};

/// Lifecycle of a cluster inside the partition algorithms.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClusterState {
    /// Still in the working forest `𝒯`.
    Forest,
    /// Non-participating this iteration (the paper's waiting set `W`).
    Waiting,
    /// A lone small cluster (the paper's set `S`).
    Small,
    /// Finished (the paper's output collection `P_out`).
    Out,
    /// Consumed by a merge.
    Dead,
}

/// One cluster: a connected set of original nodes with a center.
#[derive(Clone, Debug)]
struct Cluster {
    center: usize,
    members: Vec<usize>,
    radius: u32,
    state: ClusterState,
}

/// Result of one `BalancedDOM` + contraction step on the virtual forest.
#[derive(Clone, Debug)]
pub struct BalancedStep {
    /// Newly created cluster indices.
    pub merged: Vec<usize>,
    /// Participating clusters that were singleton virtual components and
    /// therefore could not merge (left untouched, still `Forest`).
    pub lone: Vec<usize>,
    /// Maximum radius among participants before merging (drives charges).
    pub max_radius_before: u32,
    /// Virtual rounds the `BalancedDOM` execution used.
    pub virtual_rounds: u32,
    /// Cole–Vishkin iterations inside the MIS subroutine.
    pub cv_iterations: u32,
}

/// Accumulated charged-round ledger for a partition run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Charge {
    /// Total charged real rounds.
    pub rounds: u64,
    /// Total virtual rounds across all `BalancedDOM` executions.
    pub virtual_rounds: u64,
    /// Total Cole–Vishkin iterations.
    pub cv_iterations: u64,
}

impl Charge {
    /// Charges `vr` virtual rounds over clusters of max radius `r`.
    pub fn virtual_step(&mut self, vr: u32, r: u32) {
        self.rounds += u64::from(vr) * (2 * u64::from(r) + 1);
        self.virtual_rounds += u64::from(vr);
    }

    /// Charges a flat number of real rounds (probes, merges, bookkeeping).
    pub fn flat(&mut self, rounds: u64) {
        self.rounds += rounds;
    }
}

/// Contraction state of one tree (or forest) being partitioned.
#[derive(Clone, Debug)]
pub struct ClusterEngine<'g> {
    g: &'g Graph,
    /// Scope: the original nodes this engine partitions.
    nodes: Vec<NodeId>,
    /// Tree adjacency in local indices.
    adj: Vec<Vec<usize>>,
    /// Local node → cluster index.
    cluster_of: Vec<usize>,
    clusters: Vec<Cluster>,
}

impl<'g> ClusterEngine<'g> {
    /// Creates the engine over `nodes` connected by `tree_edges` (which
    /// must form a forest over exactly those nodes). Every node starts as
    /// its own singleton cluster in state `Forest`.
    ///
    /// # Panics
    ///
    /// Panics if an edge endpoint is outside `nodes` or the edges contain
    /// a cycle.
    pub fn new(g: &'g Graph, nodes: Vec<NodeId>, tree_edges: &[(NodeId, NodeId)]) -> Self {
        let mut local = vec![usize::MAX; g.node_count()];
        for (i, &v) in nodes.iter().enumerate() {
            assert_eq!(local[v.0], usize::MAX, "duplicate node {v:?} in scope");
            local[v.0] = i;
        }
        let mut adj = vec![Vec::new(); nodes.len()];
        let mut dsu = kdom_graph::Dsu::new(nodes.len());
        for &(u, v) in tree_edges {
            let (lu, lv) = (local[u.0], local[v.0]);
            assert!(
                lu != usize::MAX && lv != usize::MAX,
                "edge endpoint outside scope"
            );
            assert!(
                dsu.union(NodeId(lu), NodeId(lv)),
                "tree_edges contain a cycle"
            );
            adj[lu].push(lv);
            adj[lv].push(lu);
        }
        let n = nodes.len();
        let clusters = (0..n)
            .map(|v| Cluster {
                center: v,
                members: vec![v],
                radius: 0,
                state: ClusterState::Forest,
            })
            .collect();
        ClusterEngine {
            g,
            nodes,
            adj,
            cluster_of: (0..n).collect(),
            clusters,
        }
    }

    /// Number of original nodes in scope.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Cluster indices currently in `state`.
    pub fn in_state(&self, state: ClusterState) -> Vec<usize> {
        (0..self.clusters.len())
            .filter(|&c| self.clusters[c].state == state)
            .collect()
    }

    /// The state of cluster `c`.
    pub fn state(&self, c: usize) -> ClusterState {
        self.clusters[c].state
    }

    /// Moves cluster `c` to `state`.
    ///
    /// # Panics
    ///
    /// Panics if the cluster is dead.
    pub fn set_state(&mut self, c: usize, state: ClusterState) {
        assert_ne!(
            self.clusters[c].state,
            ClusterState::Dead,
            "cluster {c} is dead"
        );
        self.clusters[c].state = state;
    }

    /// Exact radius of cluster `c` (from its center, inside the cluster).
    pub fn radius(&self, c: usize) -> u32 {
        self.clusters[c].radius
    }

    /// Number of original nodes in cluster `c`.
    pub fn size(&self, c: usize) -> usize {
        self.clusters[c].members.len()
    }

    /// The center of cluster `c`, as an original node.
    pub fn center(&self, c: usize) -> NodeId {
        self.nodes[self.clusters[c].center]
    }

    /// Distinct live neighbor clusters of `c` (via tree edges).
    pub fn neighbor_clusters(&self, c: usize) -> Vec<usize> {
        let mut out = Vec::new();
        for &m in &self.clusters[c].members {
            for &w in &self.adj[m] {
                let cw = self.cluster_of[w];
                if cw != c && !out.contains(&cw) {
                    out.push(cw);
                }
            }
        }
        out
    }

    /// BFS depths from the center of `c` restricted to its members
    /// (indexed by local node id; `u32::MAX` outside the cluster).
    fn depths_in(&self, c: usize) -> Vec<u32> {
        let mut depth = vec![u32::MAX; self.nodes.len()];
        let start = self.clusters[c].center;
        depth[start] = 0;
        let mut q = VecDeque::from([start]);
        while let Some(u) = q.pop_front() {
            for &w in &self.adj[u] {
                if self.cluster_of[w] == c && depth[w] == u32::MAX {
                    depth[w] = depth[u] + 1;
                    q.push_back(w);
                }
            }
        }
        depth
    }

    fn recompute_radius(&mut self, c: usize) {
        let depths = self.depths_in(c);
        let r = self.clusters[c]
            .members
            .iter()
            .map(|&m| depths[m])
            .max()
            .unwrap_or(0);
        assert_ne!(r, u32::MAX, "cluster {c} is disconnected");
        self.clusters[c].radius = r;
    }

    /// Runs one `BalancedDOM` + contraction step over the clusters in
    /// `participants` (all must be alive). Virtual singleton components
    /// are reported in [`BalancedStep::lone`] and left untouched.
    pub fn balanced_step(&mut self, participants: &[usize]) -> BalancedStep {
        let slot_of: std::collections::HashMap<usize, usize> = participants
            .iter()
            .enumerate()
            .map(|(i, &c)| (c, i))
            .collect();
        // virtual adjacency among participants
        let mut vadj: Vec<Vec<usize>> = vec![Vec::new(); participants.len()];
        for (i, &c) in participants.iter().enumerate() {
            for nc in self.neighbor_clusters(c) {
                if let Some(&j) = slot_of.get(&nc) {
                    if !vadj[i].contains(&j) {
                        vadj[i].push(j);
                    }
                }
            }
        }
        // components; orient each at its minimum-center-id cluster
        let mut comp = vec![usize::MAX; participants.len()];
        let mut lone = Vec::new();
        let mut parent: Vec<Option<usize>> = vec![None; participants.len()];
        let mut in_play = vec![false; participants.len()];
        for s in 0..participants.len() {
            if comp[s] != usize::MAX {
                continue;
            }
            // gather component via BFS
            let mut members = vec![s];
            comp[s] = s;
            let mut q = VecDeque::from([s]);
            while let Some(u) = q.pop_front() {
                for &w in &vadj[u] {
                    if comp[w] == usize::MAX {
                        comp[w] = s;
                        members.push(w);
                        q.push_back(w);
                    }
                }
            }
            if members.len() == 1 {
                lone.push(participants[s]);
                continue;
            }
            // root at the member with the smallest center id
            let root = members
                .iter()
                .copied()
                .min_by_key(|&m| self.g.id_of(self.center(participants[m])))
                .expect("non-empty component");
            let mut q = VecDeque::from([root]);
            let mut seen = vec![false; participants.len()];
            seen[root] = true;
            in_play[root] = true;
            while let Some(u) = q.pop_front() {
                for &w in &vadj[u] {
                    if !seen[w] {
                        seen[w] = true;
                        in_play[w] = true;
                        parent[w] = Some(u);
                        q.push_back(w);
                    }
                }
            }
        }
        let playing: Vec<usize> = (0..participants.len()).filter(|&i| in_play[i]).collect();
        if playing.is_empty() {
            return BalancedStep {
                merged: Vec::new(),
                lone,
                max_radius_before: participants
                    .iter()
                    .map(|&c| self.radius(c))
                    .max()
                    .unwrap_or(0),
                virtual_rounds: 0,
                cv_iterations: 0,
            };
        }
        // compact to the playing sub-forest
        let compact: std::collections::HashMap<usize, usize> =
            playing.iter().enumerate().map(|(i, &s)| (s, i)).collect();
        let cparent: Vec<Option<usize>> = playing
            .iter()
            .map(|&s| parent[s].map(|p| compact[&p]))
            .collect();
        let cids: Vec<u64> = playing
            .iter()
            .map(|&s| self.g.id_of(self.center(participants[s])))
            .collect();
        let out: BalancedOut = balanced_dom(&cparent, &cids);

        let max_radius_before = participants
            .iter()
            .map(|&c| self.radius(c))
            .max()
            .unwrap_or(0);

        // contract: group playing clusters by their dominator slot
        let mut groups: std::collections::HashMap<usize, Vec<usize>> =
            std::collections::HashMap::new();
        for (i, &s) in playing.iter().enumerate() {
            groups.entry(out.dominator[i]).or_default().push(s);
        }
        // hash order is not deterministic across processes (or even across
        // calls): fix the contraction order so cluster ids, member order,
        // and every downstream tie-break are reproducible
        let mut grouped: Vec<(usize, Vec<usize>)> = groups.into_iter().collect();
        grouped.sort_unstable_by_key(|&(slot, _)| slot);
        let mut merged = Vec::new();
        for (dom_slot, group) in grouped {
            let dom_cluster = participants[playing[dom_slot]];
            let center = self.clusters[dom_cluster].center;
            let mut members = Vec::new();
            for &s in &group {
                let c = participants[s];
                members.extend(self.clusters[c].members.iter().copied());
                self.clusters[c].state = ClusterState::Dead;
            }
            let new_id = self.clusters.len();
            self.clusters.push(Cluster {
                center,
                members,
                radius: 0,
                state: ClusterState::Forest,
            });
            for &m in &self.clusters[new_id].members.clone() {
                self.cluster_of[m] = new_id;
            }
            self.recompute_radius(new_id);
            merged.push(new_id);
        }
        merged.sort_unstable();
        BalancedStep {
            merged,
            lone,
            max_radius_before,
            virtual_rounds: out.virtual_rounds,
            cv_iterations: out.cv_iterations,
        }
    }

    /// Attaches every member of cluster `child` into cluster `host`
    /// (keeping `host`'s center) and recomputes the radius. `child`
    /// becomes `Dead`; `host` keeps its state.
    ///
    /// # Panics
    ///
    /// Panics if the two clusters are not adjacent via a tree edge.
    pub fn attach(&mut self, child: usize, host: usize) {
        assert!(
            self.neighbor_clusters(child).contains(&host),
            "attach requires adjacent clusters"
        );
        let members = std::mem::take(&mut self.clusters[child].members);
        for &m in &members {
            self.cluster_of[m] = host;
        }
        self.clusters[host].members.extend(members);
        self.clusters[child].state = ClusterState::Dead;
        self.recompute_radius(host);
    }

    /// Depth (distance from `host`'s center) of the shallowest node of
    /// `host` adjacent to `child`, or `None` if not adjacent. This is the
    /// `Depth(w)` test of step (3-IV).
    pub fn shallowest_contact(&self, host: usize, child: usize) -> Option<u32> {
        let depths = self.depths_in(host);
        let mut best = None;
        for &m in &self.clusters[child].members {
            for &w in &self.adj[m] {
                if self.cluster_of[w] == host {
                    let d = depths[w];
                    if best.is_none_or(|b| d < b) {
                        best = Some(d);
                    }
                }
            }
        }
        best
    }

    /// Final extraction: clusters in `states`, as (center, members) pairs
    /// over original node ids.
    pub fn extract(&self, states: &[ClusterState]) -> Vec<(NodeId, Vec<NodeId>)> {
        (0..self.clusters.len())
            .filter(|&c| states.contains(&self.clusters[c].state))
            .map(|c| {
                let center = self.center(c);
                let members = self.clusters[c]
                    .members
                    .iter()
                    .map(|&m| self.nodes[m])
                    .collect();
                (center, members)
            })
            .collect()
    }

    /// Sanity: every original node belongs to exactly one cluster in the
    /// given states.
    pub fn covers_scope(&self, states: &[ClusterState]) -> bool {
        let mut seen = vec![false; self.nodes.len()];
        for (_, members) in self.extract(states) {
            for v in members {
                let l = self
                    .nodes
                    .iter()
                    .position(|&x| x == v)
                    .expect("member inside scope");
                if seen[l] {
                    return false;
                }
                seen[l] = true;
            }
        }
        seen.into_iter().all(|s| s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdom_graph::generators::{path, random_tree, GenConfig};

    fn engine_of(g: &Graph) -> ClusterEngine<'_> {
        let nodes: Vec<NodeId> = g.nodes().collect();
        let edges: Vec<(NodeId, NodeId)> = g.edges().iter().map(|e| (e.u, e.v)).collect();
        ClusterEngine::new(g, nodes, &edges)
    }

    #[test]
    fn initial_state() {
        let g = path(&GenConfig::with_seed(5, 0));
        let e = engine_of(&g);
        assert_eq!(e.node_count(), 5);
        assert_eq!(e.in_state(ClusterState::Forest).len(), 5);
        assert_eq!(e.radius(0), 0);
        assert_eq!(e.size(0), 1);
        assert_eq!(e.neighbor_clusters(2), vec![1, 3]);
    }

    #[test]
    fn one_balanced_step_merges_everything_into_stars() {
        let g = path(&GenConfig::with_seed(8, 1));
        let mut e = engine_of(&g);
        let parts = e.in_state(ClusterState::Forest);
        let step = e.balanced_step(&parts);
        assert!(step.lone.is_empty());
        assert!(!step.merged.is_empty());
        // all new clusters: size ≥ 2, radius ≤ 1 (stars), scope covered
        for &c in &step.merged {
            assert!(e.size(c) >= 2, "cluster {c} too small");
            assert!(e.radius(c) <= 1, "star radius ≤ 1");
        }
        assert!(e.covers_scope(&[ClusterState::Forest]));
    }

    #[test]
    fn repeated_steps_converge_to_one_cluster() {
        let g = random_tree(&GenConfig::with_seed(33, 4));
        let mut e = engine_of(&g);
        let mut sizes_min = 1;
        for _ in 0..10 {
            let parts = e.in_state(ClusterState::Forest);
            let step = e.balanced_step(&parts);
            if step.merged.is_empty() {
                break;
            }
            let min_size = e
                .in_state(ClusterState::Forest)
                .iter()
                .map(|&c| e.size(c))
                .min()
                .unwrap();
            assert!(min_size >= 2 * sizes_min, "sizes at least double");
            sizes_min = min_size;
            assert!(e.covers_scope(&[ClusterState::Forest]));
            if e.in_state(ClusterState::Forest).len() == 1 {
                break;
            }
        }
        assert_eq!(e.in_state(ClusterState::Forest).len(), 1);
        let c = e.in_state(ClusterState::Forest)[0];
        assert_eq!(e.size(c), 33);
    }

    #[test]
    fn lone_cluster_reported_not_merged() {
        let g = path(&GenConfig::with_seed(4, 0));
        let mut e = engine_of(&g);
        // merge everything into one forest cluster first
        loop {
            let parts = e.in_state(ClusterState::Forest);
            if parts.len() == 1 {
                break;
            }
            let step = e.balanced_step(&parts);
            if step.merged.is_empty() {
                break;
            }
        }
        let parts = e.in_state(ClusterState::Forest);
        assert_eq!(parts.len(), 1);
        let step = e.balanced_step(&parts);
        assert_eq!(step.lone, parts);
        assert!(step.merged.is_empty());
        assert_eq!(step.virtual_rounds, 0);
    }

    #[test]
    fn attach_and_contact() {
        let g = path(&GenConfig::with_seed(6, 2));
        let mut e = engine_of(&g);
        // merge pairs manually via balanced step
        let step = e.balanced_step(&e.in_state(ClusterState::Forest));
        let clusters = step.merged;
        // pick two adjacent clusters
        let c0 = clusters[0];
        let n0 = e.neighbor_clusters(c0)[0];
        let contact = e.shallowest_contact(n0, c0).expect("adjacent");
        assert!(contact <= e.radius(n0));
        let size_before = e.size(n0) + e.size(c0);
        e.attach(c0, n0);
        assert_eq!(e.size(n0), size_before);
        assert_eq!(e.state(c0), ClusterState::Dead);
        assert!(e.covers_scope(&[ClusterState::Forest]));
    }

    #[test]
    fn charge_ledger() {
        let mut ch = Charge::default();
        ch.virtual_step(10, 0); // base tree: 1 round each
        assert_eq!(ch.rounds, 10);
        ch.virtual_step(4, 3); // radius 3: 7 rounds each
        assert_eq!(ch.rounds, 10 + 28);
        ch.flat(5);
        assert_eq!(ch.rounds, 43);
        assert_eq!(ch.virtual_rounds, 14);
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn cycle_rejected() {
        let g = kdom_graph::generators::cycle(&GenConfig::with_seed(4, 0));
        let nodes: Vec<NodeId> = g.nodes().collect();
        let edges: Vec<(NodeId, NodeId)> = g.edges().iter().map(|e| (e.u, e.v)).collect();
        ClusterEngine::new(&g, nodes, &edges);
    }

    #[test]
    fn scoped_subtree() {
        // engine over a sub-path 2-3-4 of a longer path
        let g = path(&GenConfig::with_seed(7, 0));
        let nodes = vec![NodeId(2), NodeId(3), NodeId(4)];
        let edges = vec![(NodeId(2), NodeId(3)), (NodeId(3), NodeId(4))];
        let mut e = ClusterEngine::new(&g, nodes, &edges);
        let step = e.balanced_step(&e.in_state(ClusterState::Forest));
        assert!(step.lone.is_empty());
        assert!(e.covers_scope(&[ClusterState::Forest]));
        let out = e.extract(&[ClusterState::Forest]);
        let total: usize = out.iter().map(|(_, m)| m.len()).sum();
        assert_eq!(total, 3);
    }
}
