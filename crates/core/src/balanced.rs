//! `BalancedDOM` (Fig. 4): a balanced dominating set on a rooted forest.
//!
//! Given a forest whose every component has at least two nodes, the
//! algorithm produces a dominating set `D` and a partition into *star*
//! clusters (each cluster = one dominator plus ≥ 1 of its neighbors) such
//! that (Definition 3.1): `|D| ≤ ⌊n/2⌋`, `D` dominates, and no cluster is
//! a singleton. It runs in `O(log* n)` (virtual) rounds.
//!
//! The module operates on an abstract forest (indices + parent pointers),
//! so the same code drives both the base tree and the contracted cluster
//! trees inside the `DOMPartition` family. [`BalancedOut::virtual_rounds`]
//! reports the exact number of synchronous rounds a per-node execution
//! uses at this abstraction level; the cluster engine multiplies it by the
//! current cluster diameter to charge real rounds (see `crate::cluster`).

use crate::coloring::forest_mis;

/// Output of [`balanced_dom`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BalancedOut {
    /// `dominator[v]` is the index of the cluster center `v` belongs to;
    /// centers point at themselves. Every cluster is a star: each member
    /// is adjacent (in the forest) to its center.
    pub dominator: Vec<usize>,
    /// Cole–Vishkin iterations used by the MIS subroutine.
    pub cv_iterations: u32,
    /// Total virtual rounds: `cv_iterations` color exchanges, 12 rounds of
    /// MIS sweeps (2 per color class), and 6 rounds for steps (2)–(4) of
    /// Fig. 4 (choose/announce/fix-up).
    pub virtual_rounds: u32,
}

impl BalancedOut {
    /// The set of cluster centers (the dominating set `D`).
    pub fn centers(&self) -> Vec<usize> {
        let mut c: Vec<usize> = self
            .dominator
            .iter()
            .enumerate()
            .filter(|&(v, &d)| v == d)
            .map(|(v, _)| v)
            .collect();
        c.sort_unstable();
        c
    }
}

/// Runs `BalancedDOM` on the forest described by `parent` (with `ids`
/// used for symmetry breaking).
///
/// # Panics
///
/// Panics if some component is a singleton — the paper requires trees of
/// `n ≥ 2` vertices; the partition algorithms peel singletons off before
/// calling (steps (3c)/(3-IV) of Fig. 6/7).
pub fn balanced_dom(parent: &[Option<usize>], ids: &[u64]) -> BalancedOut {
    let n = parent.len();
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (v, p) in parent.iter().enumerate() {
        if let Some(p) = p {
            children[*p].push(v);
        }
    }
    for v in 0..n {
        assert!(
            parent[v].is_some() || !children[v].is_empty(),
            "BalancedDOM requires components of ≥ 2 nodes (node {v} is isolated)"
        );
    }

    // Step (1): Small-Dom-Set via tree MIS — the MIS is a dominating set
    // whose members all have a neighbor outside it (independence), the
    // property Lemma 3.2 relies on.
    let (mis, cv_iterations) = forest_mis(parent, ids);

    // Non-MIS nodes pick an MIS neighbor as dominator (prefer the parent,
    // then the smallest child — deterministic).
    let mut dominator: Vec<usize> = (0..n).collect();
    for v in 0..n {
        if mis[v] {
            continue;
        }
        let pick = parent[v]
            .filter(|&p| mis[p])
            .or_else(|| children[v].iter().copied().find(|&c| mis[c]))
            .expect("MIS maximality: some neighbor is in the MIS");
        dominator[v] = pick;
    }

    let chooser_count = |dominator: &[usize], u: usize| -> usize {
        let mut cnt = 0;
        if let Some(p) = parent[u] {
            if dominator[p] == u && p != u {
                cnt += 1;
            }
        }
        cnt + children[u].iter().filter(|&&c| dominator[c] == u).count()
    };

    // Step (2): every singleton {v} (an MIS node nobody chose) quits D and
    // selects an arbitrary neighbor u ∉ D as its dominator.
    let mut selected: Vec<usize> = Vec::new();
    let mut pending: Vec<(usize, usize)> = Vec::new(); // (v, u)
    for v in 0..n {
        if mis[v] && chooser_count(&dominator, v) == 0 {
            let u = parent[v]
                .or_else(|| children[v].first().copied())
                .expect("non-isolated");
            debug_assert!(!mis[u], "neighbors of an MIS node are outside the MIS");
            pending.push((v, u));
            selected.push(u);
        }
    }

    // Step (3): each selected u adds itself to D, quits its old cluster,
    // and forms a new star cluster with everyone who chose it.
    selected.sort_unstable();
    selected.dedup();
    for &u in &selected {
        dominator[u] = u;
    }
    for &(v, u) in &pending {
        dominator[v] = u;
    }

    // Step (4): an original dominator x whose cluster became a singleton
    // (all its members left in step (3)) joins the cluster of one member u
    // that left, and quits D.
    for x in 0..n {
        if !mis[x] || dominator[x] != x {
            continue;
        }
        if chooser_count(&dominator, x) > 0 {
            continue;
        }
        // x's original members were exactly its non-MIS neighbors that had
        // picked x; the ones that left are now dominators themselves.
        let left = parent[x]
            .filter(|&p| dominator[p] == p && p != x && !mis[p])
            .or_else(|| {
                children[x]
                    .iter()
                    .copied()
                    .find(|&c| dominator[c] == c && !mis[c])
            });
        if let Some(u) = left {
            dominator[x] = u;
        }
        // If nobody left, x still has members and the `chooser_count`
        // check above already kept it — `left` is `Some` whenever the
        // cluster is empty (Lemma 3.3's argument); the debug check below
        // re-validates.
        debug_assert!(
            dominator[x] != x || chooser_count(&dominator, x) > 0,
            "Lemma 3.3: a deserted dominator always has a departed member to follow"
        );
    }

    // Virtual-round ledger: one round per CV iteration, 2 rounds per color
    // class for the MIS sweep, and 2 rounds for each of steps (2)-(4).
    let virtual_rounds = cv_iterations + 12 + 6;
    BalancedOut {
        dominator,
        cv_iterations,
        virtual_rounds,
    }
}

/// Validates the Definition 3.1 contract on the abstract forest:
/// stars of size ≥ 2, centers adjacent to members, `|D| ≤ ⌊n/2⌋`.
pub fn check_balanced_forest(parent: &[Option<usize>], out: &BalancedOut) -> Result<(), String> {
    let n = parent.len();
    let adjacent = |a: usize, b: usize| parent[a] == Some(b) || parent[b] == Some(a);
    let mut size = vec![0usize; n];
    for v in 0..n {
        let d = out.dominator[v];
        if d >= n {
            return Err(format!("node {v} has out-of-range dominator {d}"));
        }
        if out.dominator[d] != d {
            return Err(format!("dominator {d} of {v} is not a center"));
        }
        if v != d && !adjacent(v, d) {
            return Err(format!("node {v} not adjacent to its center {d}"));
        }
        size[d] += 1;
    }
    let centers = out.centers();
    for &c in &centers {
        if size[c] < 2 {
            return Err(format!("cluster of center {c} is a singleton"));
        }
    }
    if centers.len() > n / 2 {
        return Err(format!("{} centers exceed ⌊{n}/2⌋", centers.len()));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdom_graph::generators::{balanced_tree, caterpillar, path, random_tree, star, GenConfig};
    use kdom_graph::{NodeId, RootedTree};

    fn forest_of(g: &kdom_graph::Graph) -> (Vec<Option<usize>>, Vec<u64>) {
        let t = RootedTree::from_graph(g, NodeId(0));
        let parent = (0..g.node_count())
            .map(|v| t.parent(NodeId(v)).map(|p| p.0))
            .collect();
        let ids = (0..g.node_count()).map(|v| g.id_of(NodeId(v))).collect();
        (parent, ids)
    }

    #[test]
    fn two_node_tree() {
        let parent = vec![None, Some(0)];
        let out = balanced_dom(&parent, &[5, 9]);
        check_balanced_forest(&parent, &out).unwrap();
        assert_eq!(out.centers().len(), 1);
    }

    #[test]
    fn families_satisfy_contract() {
        for (name, g) in [
            ("path", path(&GenConfig::with_seed(50, 1))),
            ("star", star(&GenConfig::with_seed(50, 2))),
            ("balanced", balanced_tree(&GenConfig::with_seed(50, 3), 3)),
            (
                "caterpillar",
                caterpillar(&GenConfig::with_seed(50, 4), 0.3),
            ),
        ] {
            let (parent, ids) = forest_of(&g);
            let out = balanced_dom(&parent, &ids);
            check_balanced_forest(&parent, &out).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn many_random_trees() {
        for seed in 0..40 {
            let n = 2 + (seed as usize * 7) % 120;
            let g = random_tree(&GenConfig::with_seed(n, seed));
            let (parent, ids) = forest_of(&g);
            let out = balanced_dom(&parent, &ids);
            check_balanced_forest(&parent, &out)
                .unwrap_or_else(|e| panic!("n={n} seed={seed}: {e}"));
        }
    }

    #[test]
    fn star_collapses_to_one_cluster() {
        let g = star(&GenConfig::with_seed(20, 5));
        let (parent, ids) = forest_of(&g);
        let out = balanced_dom(&parent, &ids);
        check_balanced_forest(&parent, &out).unwrap();
        // the hub dominates everything: exactly one cluster
        assert_eq!(out.centers(), vec![0]);
    }

    #[test]
    fn multi_component_forest() {
        // components: 0-1-2 (path), 3-4 (edge)
        let parent = vec![None, Some(0), Some(1), None, Some(3)];
        let ids = vec![11, 22, 33, 44, 55];
        let out = balanced_dom(&parent, &ids);
        check_balanced_forest(&parent, &out).unwrap();
        // clusters cannot span components
        for v in 0..5 {
            let d = out.dominator[v];
            let comp = |x: usize| usize::from(x >= 3);
            assert_eq!(comp(v), comp(d));
        }
    }

    #[test]
    #[should_panic(expected = "≥ 2 nodes")]
    fn singleton_component_rejected() {
        balanced_dom(&[None, None, Some(1)], &[1, 2, 3]);
    }

    #[test]
    fn virtual_rounds_are_logstar_ish() {
        let g = path(&GenConfig::with_seed(5000, 9));
        let (parent, ids) = forest_of(&g);
        let out = balanced_dom(&parent, &ids);
        assert!(
            out.virtual_rounds <= 18 + 7,
            "virtual rounds {} should be ~log* n + constants",
            out.virtual_rounds
        );
    }
}
