//! The `DOMPartition` family (§3.2): partitioning a tree into clusters of
//! size ≥ k+1 and radius O(k).
//!
//! Three variants, matching the paper's development:
//!
//! * [`dom_partition_1`] (Fig. 5) — `⌈log(k+1)⌉` rounds of `BalancedDOM` +
//!   contraction; clusters ≥ k+1 nodes, radius ≤ 4k², charged time
//!   `O(k² log* n)`;
//! * [`dom_partition_2`] (Fig. 6) — additionally removes clusters of
//!   depth ≥ k+1 from the tree as they form; radius ≤ 5k+2, charged time
//!   `O(k log k log* n)`;
//! * [`dom_partition`] (Fig. 6 + Fig. 7) — additionally caps iteration `i`
//!   participation at radius `2·2^i`, so iteration `i` costs `O(2^i)`;
//!   radius ≤ 5k+2, charged time `O(k log* n)`.
//!
//! One deviation from the extended abstract, documented in DESIGN.md: the
//! participation test of step (3-II) here is `radius ≤ min(2·2^i, k)`
//! (the EA says `2·2^i` alone). Clusters of radius above `k` never merge
//! again as *participants*, which is what the `5k+2` radius bound of
//! Lemma 3.7(b) needs; with the EA's unclamped test, a radius-`4k`
//! participant could produce a `12k`-radius cluster. The time analysis is
//! unaffected.

use kdom_graph::{Graph, NodeId};

use crate::cluster::{Charge, ClusterEngine, ClusterState};
use crate::logstar::ceil_log2;

/// Output of a partition run.
#[derive(Clone, Debug)]
pub struct PartitionResult {
    /// The clusters as (center, members) pairs. They partition the scope.
    pub clusters: Vec<(NodeId, Vec<NodeId>)>,
    /// Charged-round ledger (see `crate::cluster` for the model).
    pub charge: Charge,
    /// Number of main-loop iterations executed.
    pub iterations: u32,
}

impl PartitionResult {
    /// Smallest cluster size.
    pub fn min_size(&self) -> usize {
        self.clusters
            .iter()
            .map(|(_, m)| m.len())
            .min()
            .unwrap_or(0)
    }

    /// Number of clusters.
    pub fn cluster_count(&self) -> usize {
        self.clusters.len()
    }
}

fn finish(eng: ClusterEngine<'_>, charge: Charge, iterations: u32) -> PartitionResult {
    let clusters = eng.extract(&[
        ClusterState::Out,
        ClusterState::Forest,
        ClusterState::Waiting,
    ]);
    debug_assert!(eng.covers_scope(&[
        ClusterState::Out,
        ClusterState::Forest,
        ClusterState::Waiting
    ]));
    PartitionResult {
        clusters,
        charge,
        iterations,
    }
}

/// `DOMPartition_1(k)` (Fig. 5): repeated `BalancedDOM` + contraction.
///
/// Guarantees (Lemma 3.4) for an input tree of `n ≥ k+1` nodes: every
/// cluster has ≥ k+1 nodes and radius ≤ 4k²; charged time `O(k² log* n)`.
///
/// # Panics
///
/// Panics if `tree_edges` do not form a tree over `nodes`.
pub fn dom_partition_1(
    g: &Graph,
    nodes: Vec<NodeId>,
    tree_edges: &[(NodeId, NodeId)],
    k: usize,
) -> PartitionResult {
    let mut eng = ClusterEngine::new(g, nodes, tree_edges);
    let mut charge = Charge::default();
    let max_iters = ceil_log2(k as u64 + 1);
    let mut iterations = 0;
    for _ in 0..max_iters {
        let parts = eng.in_state(ClusterState::Forest);
        if parts.len() <= 1 {
            break;
        }
        iterations += 1;
        let step = eng.balanced_step(&parts);
        charge.virtual_step(step.virtual_rounds, step.max_radius_before);
        let r_after = eng
            .in_state(ClusterState::Forest)
            .iter()
            .map(|&c| eng.radius(c))
            .max()
            .unwrap_or(0);
        // contraction bookkeeping: new cluster ids + depths, one
        // intra-cluster broadcast over the merged clusters
        charge.flat(2 * u64::from(r_after) + 1);
    }
    finish(eng, charge, iterations)
}

/// Shared step (4) of Fig. 6: fold the small-cluster set `S` into the
/// output. Clusters larger than `k` move as-is; the rest merge into a
/// neighboring output cluster (Lemma 3.5 guarantees one exists; isolated
/// leftovers — possible only when the whole input tree is small — are
/// emitted as-is).
fn fold_small_clusters(eng: &mut ClusterEngine<'_>, charge: &mut Charge, k: usize) {
    loop {
        let small = eng.in_state(ClusterState::Small);
        if small.is_empty() {
            break;
        }
        let mut progressed = false;
        for c in small {
            if eng.state(c) != ClusterState::Small {
                continue; // absorbed earlier this pass
            }
            if eng.size(c) > k {
                eng.set_state(c, ClusterState::Out);
                progressed = true;
                continue;
            }
            let neighbors = eng.neighbor_clusters(c);
            if let Some(&host) = neighbors
                .iter()
                .find(|&&h| eng.state(h) == ClusterState::Out)
            {
                eng.attach(c, host);
                charge.flat(2 * (k as u64) + 3);
                progressed = true;
            } else if neighbors.is_empty() {
                // the whole input tree was one small cluster
                eng.set_state(c, ClusterState::Out);
                progressed = true;
            }
        }
        if !progressed {
            // only mutually-Small neighborhoods remain: chain them into
            // one cluster, then emit it (its combined size is the whole
            // residual component, ≥ k+1 when the input tree was).
            let small = eng.in_state(ClusterState::Small);
            let c = small[0];
            if let Some(&other) = eng
                .neighbor_clusters(c)
                .iter()
                .find(|&&h| eng.state(h) == ClusterState::Small)
            {
                eng.attach(c, other);
                charge.flat(2 * (k as u64) + 3);
            } else {
                eng.set_state(c, ClusterState::Out);
            }
        }
    }
}

/// `DOMPartition_2(k)` (Fig. 6): like `DOMPartition_1` but clusters whose
/// depth reaches `k+1` are removed from the tree as they form, so radii
/// stay bounded by `5k+2` (Lemma 3.6); charged time `O(k log k log* n)`.
///
/// # Panics
///
/// Panics if `tree_edges` do not form a tree over `nodes`.
pub fn dom_partition_2(
    g: &Graph,
    nodes: Vec<NodeId>,
    tree_edges: &[(NodeId, NodeId)],
    k: usize,
) -> PartitionResult {
    let mut eng = ClusterEngine::new(g, nodes, tree_edges);
    let mut charge = Charge::default();
    let max_iters = ceil_log2(k as u64 + 1);
    let mut iterations = 0;
    for _ in 0..max_iters {
        let parts = eng.in_state(ClusterState::Forest);
        if parts.is_empty() {
            break;
        }
        iterations += 1;
        // (3a) BalancedDOM + contraction
        let step = eng.balanced_step(&parts);
        charge.virtual_step(step.virtual_rounds, step.max_radius_before);
        // (3b) remove sufficiently deep clusters (depth probe to k+1)
        charge.flat(2 * (k as u64 + 1) + 1);
        for c in eng.in_state(ClusterState::Forest) {
            if eng.radius(c) > k as u32 {
                eng.set_state(c, ClusterState::Out);
            }
        }
        // (3c) remove lone clusters (singleton virtual trees)
        for c in eng.in_state(ClusterState::Forest) {
            let isolated = eng
                .neighbor_clusters(c)
                .iter()
                .all(|&h| eng.state(h) != ClusterState::Forest);
            if isolated {
                eng.set_state(c, ClusterState::Small);
            }
        }
        charge.flat(1);
    }
    // Leftover forest clusters merged every iteration, so their sizes
    // reached k+1; emit them.
    for c in eng.in_state(ClusterState::Forest) {
        eng.set_state(c, ClusterState::Out);
    }
    // (4) fold S into the output
    fold_small_clusters(&mut eng, &mut charge, k);
    finish(eng, charge, iterations)
}

/// `DOMPartition(k)` (Fig. 6 with the Fig. 7 additions): iteration `i`
/// only lets clusters of radius ≤ `min(2·2^i, k)` participate, charging
/// `O(2^i)` per iteration, for total charged time `O(k log* n)`
/// (Lemma 3.8). Radius ≤ 5k+2, sizes ≥ k+1 (Lemma 3.7).
///
/// # Panics
///
/// Panics if `tree_edges` do not form a tree over `nodes`.
pub fn dom_partition(
    g: &Graph,
    nodes: Vec<NodeId>,
    tree_edges: &[(NodeId, NodeId)],
    k: usize,
) -> PartitionResult {
    let mut eng = ClusterEngine::new(g, nodes, tree_edges);
    let mut charge = Charge::default();
    let max_iters = ceil_log2(k as u64 + 1);
    let mut iterations = 0;
    for i in 1..=u64::from(max_iters) {
        let cap = (2u64 << i).min(k as u64) as u32; // min(2·2^i, k)
                                                    // (3-I) return waiting clusters to the forest
        for c in eng.in_state(ClusterState::Waiting) {
            eng.set_state(c, ClusterState::Forest);
        }
        charge.flat(1);
        let forest = eng.in_state(ClusterState::Forest);
        if forest.is_empty() {
            break;
        }
        iterations += 1;
        // (3-II)+(3-III) radius probe to 2·2^i; non-participants wait
        charge.flat(2 * u64::from(cap) + 1);
        let mut participants = Vec::new();
        for c in forest {
            if eng.radius(c) <= cap {
                participants.push(c);
            } else {
                eng.set_state(c, ClusterState::Waiting);
            }
        }
        // (3-IV) lone participants merge onto a waiting neighbor with a
        // contact of depth ≤ k, or drop to S
        let lone: Vec<usize> = participants
            .iter()
            .copied()
            .filter(|&c| {
                eng.neighbor_clusters(c)
                    .iter()
                    .all(|&h| eng.state(h) != ClusterState::Forest)
            })
            .collect();
        for c in &lone {
            participants.retain(|x| x != c);
        }
        if !lone.is_empty() {
            charge.flat(2 * (k as u64) + 3);
        }
        for c in lone {
            let host = eng
                .neighbor_clusters(c)
                .into_iter()
                .filter(|&h| eng.state(h) == ClusterState::Waiting)
                .find(|&h| {
                    eng.shallowest_contact(h, c)
                        .is_some_and(|d| d as u64 <= k as u64)
                });
            match host {
                Some(h) => eng.attach(c, h),
                None => eng.set_state(c, ClusterState::Small),
            }
        }
        if participants.is_empty() {
            continue;
        }
        // (3a) BalancedDOM on the participants
        let step = eng.balanced_step(&participants);
        charge.virtual_step(step.virtual_rounds, step.max_radius_before);
        // (3b) deep clusters out (depth counters make this O(1) amortized;
        // we charge the one-shot probe)
        charge.flat(2 * u64::from(cap) + 3);
        for c in eng.in_state(ClusterState::Forest) {
            if eng.radius(c) > k as u32 {
                eng.set_state(c, ClusterState::Out);
            }
        }
    }
    // Post-loop: waiting clusters at the last iteration had radius > k
    // hence ≥ k+1 nodes; forest leftovers doubled to ≥ k+1 — emit both.
    // Anything smaller (possible only on tiny inputs) goes through S.
    for c in eng
        .in_state(ClusterState::Waiting)
        .into_iter()
        .chain(eng.in_state(ClusterState::Forest))
    {
        if eng.size(c) > k {
            eng.set_state(c, ClusterState::Out);
        } else {
            eng.set_state(c, ClusterState::Small);
        }
    }
    fold_small_clusters(&mut eng, &mut charge, k);
    finish(eng, charge, iterations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdom_graph::generators::{broom, caterpillar, path, random_tree};
    use kdom_graph::generators::{Family, GenConfig};
    use kdom_graph::Graph;

    fn scope(g: &Graph) -> (Vec<NodeId>, Vec<(NodeId, NodeId)>) {
        (
            g.nodes().collect(),
            g.edges().iter().map(|e| (e.u, e.v)).collect(),
        )
    }

    /// Checks Definition 3.1: a (k+1, ρ) spanning forest partition.
    fn check(g: &Graph, res: &PartitionResult, k: usize, rho: u32) {
        let n = g.node_count();
        let covered: usize = res.clusters.iter().map(|(_, m)| m.len()).sum();
        assert_eq!(covered, n, "clusters must partition the tree");
        let mut seen = vec![false; n];
        for (center, members) in &res.clusters {
            assert!(members.contains(center), "center inside its cluster");
            for &v in members {
                assert!(!seen[v.0], "node {v:?} in two clusters");
                seen[v.0] = true;
            }
            if n > k {
                assert!(
                    members.len() > k,
                    "cluster of {} nodes < k+1 = {}",
                    members.len(),
                    k + 1
                );
            }
        }
        // radius bound via induced BFS
        let cl = crate::fastdom::clusters_to_clustering(n, &res.clusters);
        crate::verify::check_clusters(g, &cl, 1, rho).unwrap();
    }

    #[test]
    fn partition1_on_paths() {
        for (n, k) in [(20usize, 2usize), (50, 3), (100, 7)] {
            let g = path(&GenConfig::with_seed(n, 1));
            let (nodes, edges) = scope(&g);
            let res = dom_partition_1(&g, nodes, &edges, k);
            check(&g, &res, k, 4 * (k as u32) * (k as u32));
        }
    }

    #[test]
    fn partition2_radius_bound() {
        for (n, k, seed) in [
            (50usize, 2usize, 0u64),
            (100, 3, 1),
            (200, 5, 2),
            (150, 10, 3),
        ] {
            let g = random_tree(&GenConfig::with_seed(n, seed));
            let (nodes, edges) = scope(&g);
            let res = dom_partition_2(&g, nodes, &edges, k);
            check(&g, &res, k, 5 * k as u32 + 2);
        }
    }

    #[test]
    fn partition_full_radius_bound() {
        for (n, k, seed) in [
            (50usize, 2usize, 0u64),
            (100, 3, 1),
            (200, 5, 2),
            (300, 10, 3),
        ] {
            let g = random_tree(&GenConfig::with_seed(n, seed));
            let (nodes, edges) = scope(&g);
            let res = dom_partition(&g, nodes, &edges, k);
            check(&g, &res, k, 5 * k as u32 + 2);
        }
    }

    #[test]
    fn all_variants_on_all_tree_families() {
        for fam in Family::TREES {
            for (n, k) in [(64usize, 3usize), (128, 5)] {
                let g = fam.generate(n, 9);
                let (nodes, edges) = scope(&g);
                let r1 = dom_partition_1(&g, nodes.clone(), &edges, k);
                check(&g, &r1, k, 4 * (k as u32 * k as u32).max(1));
                let r2 = dom_partition_2(&g, nodes.clone(), &edges, k);
                check(&g, &r2, k, 5 * k as u32 + 2);
                let r3 = dom_partition(&g, nodes, &edges, k);
                check(&g, &r3, k, 5 * k as u32 + 2);
            }
        }
    }

    #[test]
    fn small_tree_single_cluster() {
        // n < k+1: everything collapses into one cluster
        let g = path(&GenConfig::with_seed(4, 0));
        let (nodes, edges) = scope(&g);
        for res in [
            dom_partition_1(&g, nodes.clone(), &edges, 10),
            dom_partition_2(&g, nodes.clone(), &edges, 10),
            dom_partition(&g, nodes, &edges, 10),
        ] {
            assert_eq!(res.cluster_count(), 1);
            assert_eq!(res.clusters[0].1.len(), 4);
        }
    }

    #[test]
    fn full_charges_less_than_partition2_on_big_k() {
        let g = path(&GenConfig::with_seed(3000, 5));
        let (nodes, edges) = scope(&g);
        let k = 63;
        let r2 = dom_partition_2(&g, nodes.clone(), &edges, k);
        let r3 = dom_partition(&g, nodes, &edges, k);
        check(&g, &r2, k, 5 * k as u32 + 2);
        check(&g, &r3, k, 5 * k as u32 + 2);
        assert!(
            r3.charge.rounds < r2.charge.rounds,
            "Fig. 7 capping should beat Fig. 6: {} vs {}",
            r3.charge.rounds,
            r2.charge.rounds
        );
    }

    #[test]
    fn broom_and_caterpillar_edge_shapes() {
        let g1 = broom(&GenConfig::with_seed(80, 2), 40);
        let (n1, e1) = scope(&g1);
        check(&g1, &dom_partition(&g1, n1, &e1, 4), 4, 22);
        let g2 = caterpillar(&GenConfig::with_seed(90, 3), 0.5);
        let (n2, e2) = scope(&g2);
        check(&g2, &dom_partition(&g2, n2, &e2, 6), 6, 32);
    }

    #[test]
    fn exact_k_plus_one_tree() {
        // n = k+1 exactly: one cluster of the whole tree
        let g = random_tree(&GenConfig::with_seed(8, 4));
        let (nodes, edges) = scope(&g);
        let res = dom_partition(&g, nodes, &edges, 7);
        assert_eq!(res.cluster_count(), 1);
        check(&g, &res, 7, 5 * 7 + 2);
    }

    #[test]
    fn charges_scale_with_k_not_n() {
        // For fixed k, charged rounds should be flat as n grows.
        let k = 7;
        let mut prev = 0u64;
        for n in [500usize, 1000, 2000] {
            let g = path(&GenConfig::with_seed(n, 6));
            let (nodes, edges) = scope(&g);
            let res = dom_partition(&g, nodes, &edges, k);
            if prev > 0 {
                assert!(
                    res.charge.rounds <= prev * 2,
                    "charges must not grow with n: {} then {}",
                    prev,
                    res.charge.rounds
                );
            }
            prev = res.charge.rounds;
        }
    }
}
