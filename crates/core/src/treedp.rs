//! Exact minimum k-dominating set on trees (bottom-up DP).
//!
//! The extended abstract's Lemma 2.1 sketch ("take the smallest depth
//! residue class") is not quite right: a level class `D_l` with `l > 0`
//! can strand shallow leaf branches more than `k` away from every member
//! (see the regression test in [`crate::levels`]). The journal version
//! reworks this part. For the size bound we therefore also implement the
//! classical *exact* tree algorithm (Slater 1976 style): one bottom-up
//! pass tracking, per subtree, the farthest still-undominated node and
//! the nearest selected node. The optimum on a tree with `n ≥ k+1` nodes
//! is at most `⌊n/(k+1)⌋` (Meir–Moon 1975), so this meets Lemma 2.1's
//! bound exactly — and, being one convergecast plus one flood, it runs
//! distributedly in `O(depth + k)` rounds, the same class as `DiamDOM`.

use kdom_graph::{NodeId, RootedTree};

/// State carried up the tree for one subtree.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct UpState {
    /// Distance from the subtree root to the farthest node that is not
    /// yet dominated and must be covered from above (`None` if all
    /// covered).
    need: Option<u32>,
    /// Distance from the subtree root to the nearest selected node that
    /// can still cover nodes above (`None` if none within reach).
    have: Option<u32>,
}

/// Computes a *minimum* k-dominating set of the tree.
///
/// Returns the selected nodes. The greedy selection rule — select `v`
/// exactly when an undominated descendant sits at distance `k` — is the
/// classical exact algorithm for distance-k domination on trees.
pub fn min_k_dominating_tree(t: &RootedTree, k: usize) -> Vec<NodeId> {
    let k = k as u32;
    let n = t.len();
    let mut selected = vec![false; n];
    let mut state = vec![
        UpState {
            need: None,
            have: None
        };
        n
    ];

    for v in t.post_order() {
        let mut need: Option<u32> = None;
        let mut have: Option<u32> = None;
        for &c in t.children(v) {
            let s = state[c.0];
            if let Some(nc) = s.need {
                need = Some(need.map_or(nc + 1, |x| x.max(nc + 1)));
            }
            if let Some(hc) = s.have {
                // selected nodes deeper than k below v cannot help anyone
                // above v, and everything they cover is already cleared
                if hc < k {
                    have = Some(have.map_or(hc + 1, |x| x.min(hc + 1)));
                }
            }
        }
        // v itself: dominated only if a selected descendant is close.
        let v_covered = have.is_some_and(|h| h <= k);
        if !v_covered {
            need = Some(need.unwrap_or(0));
        }
        // cross-coverage through v
        if let (Some(nd), Some(hv)) = (need, have) {
            if nd + hv <= k {
                need = None;
            }
        }
        // forced selection: a need at distance exactly k can only be
        // covered by v (any ancestor is farther).
        if need == Some(k) {
            selected[v.0] = true;
            have = Some(0);
            need = None;
        }
        state[v.0] = UpState { need, have };
    }

    // Root fix-up: leftover needs are all within distance k of the root
    // (selection triggers at k), so selecting the root covers them.
    if state[t.root().0].need.is_some() {
        selected[t.root().0] = true;
    }

    (0..n).map(NodeId).filter(|v| selected[v.0]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{check_dominating_size, check_k_dominating};
    use kdom_graph::generators::{random_tree, Family, GenConfig};
    use kdom_graph::properties::nearest_source;
    use kdom_graph::Graph;

    fn rooted(g: &Graph) -> RootedTree {
        RootedTree::from_graph(g, NodeId(0))
    }

    /// Brute-force minimum k-dominating set size (for tiny trees).
    fn brute_min(g: &Graph, k: usize) -> usize {
        let n = g.node_count();
        assert!(n <= 16, "brute force is exponential");
        let mut best = usize::MAX;
        for mask in 1u32..(1 << n) {
            let size = mask.count_ones() as usize;
            if size >= best {
                continue;
            }
            let set: Vec<NodeId> = (0..n)
                .filter(|v| mask & (1 << v) != 0)
                .map(NodeId)
                .collect();
            let (dist, _) = nearest_source(g, &set);
            if dist.iter().all(|&d| d as usize <= k) {
                best = size;
            }
        }
        best
    }

    #[test]
    fn matches_brute_force_on_small_trees() {
        for seed in 0..30u64 {
            let n = 2 + (seed as usize) % 9;
            for k in 1..=3usize {
                let g = random_tree(&GenConfig::with_seed(n, seed));
                let t = rooted(&g);
                let d = min_k_dominating_tree(&t, k);
                check_k_dominating(&g, &d, k)
                    .unwrap_or_else(|e| panic!("n={n} k={k} seed={seed}: {e}"));
                let opt = brute_min(&g, k);
                assert_eq!(d.len(), opt, "n={n} k={k} seed={seed}: not optimal");
            }
        }
    }

    #[test]
    fn meets_lemma21_bound_on_all_families() {
        for fam in Family::TREES {
            for n in [2usize, 5, 16, 63, 200] {
                for k in [1usize, 2, 3, 7] {
                    let g = fam.generate(n, 42);
                    let t = rooted(&g);
                    let d = min_k_dominating_tree(&t, k);
                    check_k_dominating(&g, &d, k)
                        .unwrap_or_else(|e| panic!("{fam} n={n} k={k}: {e}"));
                    check_dominating_size(n, k, d.len())
                        .unwrap_or_else(|e| panic!("{fam} n={n} k={k}: {e}"));
                }
            }
        }
    }

    #[test]
    fn handles_the_levels_counterexample() {
        // root(0)-a(1)-b(2)-d(3) chain plus leaf c(4) off the root: the
        // depth-residue class {b} is not 2-dominating (c is 3 away), but
        // the DP finds an optimal set that is.
        let mut b = kdom_graph::GraphBuilder::new(5);
        b.add_edge(NodeId(0), NodeId(1), 1);
        b.add_edge(NodeId(1), NodeId(2), 2);
        b.add_edge(NodeId(2), NodeId(3), 3);
        b.add_edge(NodeId(0), NodeId(4), 4);
        let g = b.build();
        let t = rooted(&g);
        let d = min_k_dominating_tree(&t, 2);
        check_k_dominating(&g, &d, 2).unwrap();
        assert_eq!(d.len(), 1, "node 1 covers everything within distance 2");
    }

    #[test]
    fn root_only_when_k_exceeds_height() {
        let g = Family::Star.generate(30, 0);
        let t = rooted(&g);
        let d = min_k_dominating_tree(&t, 4);
        assert_eq!(d.len(), 1);
        check_k_dominating(&g, &d, 4).unwrap();
    }

    #[test]
    fn path_selects_every_2k1() {
        let g = Family::Path.generate(21, 0);
        let t = rooted(&g);
        let d = min_k_dominating_tree(&t, 1);
        // optimal on a path of 21 with k=1 is ceil(21/3) = 7
        assert_eq!(d.len(), 7);
        check_k_dominating(&g, &d, 1).unwrap();
    }

    #[test]
    fn singleton_tree() {
        let g = kdom_graph::GraphBuilder::new(1).build();
        let t = rooted(&g);
        let d = min_k_dominating_tree(&t, 3);
        assert_eq!(d, vec![NodeId(0)]);
    }
}
