//! Checkers for every combinatorial claim the paper makes.
//!
//! Each lemma/theorem property gets an explicit verifier returning a
//! descriptive [`VerifyError`]; the tests, property tests, and the
//! experiment harness all funnel algorithm outputs through these.

use std::fmt;

use kdom_graph::properties::{nearest_source_with_threads, oracle_threads};
use kdom_graph::{Dsu, EdgeId, Graph, NodeId};

use crate::clustering::Clustering;

/// A violated property, with enough context to debug it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VerifyError {
    /// Some node is farther than `k` from every dominator.
    NotDominated {
        /// The offending node.
        node: NodeId,
        /// Its distance to the nearest dominator.
        distance: u32,
        /// The required radius.
        k: usize,
    },
    /// The dominating set is larger than `max(1, ⌊n/(k+1)⌋)`.
    DominatingSetTooLarge {
        /// Actual size.
        size: usize,
        /// The bound from Lemma 2.1.
        bound: usize,
    },
    /// A cluster is disconnected inside its induced subgraph.
    ClusterDisconnected {
        /// The offending cluster index.
        cluster: usize,
    },
    /// A cluster's induced radius exceeds the allowed bound.
    ClusterRadiusExceeded {
        /// The offending cluster index.
        cluster: usize,
        /// Its induced radius.
        radius: u32,
        /// The allowed bound.
        bound: u32,
    },
    /// A cluster has fewer members than required.
    ClusterTooSmall {
        /// The offending cluster index.
        cluster: usize,
        /// Its size.
        size: usize,
        /// The required minimum.
        min: usize,
    },
    /// An edge set that should be a forest contains a cycle.
    NotAForest,
    /// A spanning forest does not cover every node (some tree too small or
    /// node missing).
    ForestTreeTooSmall {
        /// Size of the offending tree.
        size: usize,
        /// Required minimum (the `σ` of a `(σ, ρ)` spanning forest).
        min: usize,
    },
    /// Edges claimed to be MST fragments are not all in the unique MST.
    NotMstSubset,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::NotDominated { node, distance, k } => write!(
                f,
                "node {node:?} is at distance {distance} from the nearest dominator (k = {k})"
            ),
            VerifyError::DominatingSetTooLarge { size, bound } => {
                write!(f, "dominating set has {size} nodes, bound is {bound}")
            }
            VerifyError::ClusterDisconnected { cluster } => {
                write!(
                    f,
                    "cluster {cluster} is disconnected in its induced subgraph"
                )
            }
            VerifyError::ClusterRadiusExceeded {
                cluster,
                radius,
                bound,
            } => {
                write!(f, "cluster {cluster} has radius {radius}, bound is {bound}")
            }
            VerifyError::ClusterTooSmall { cluster, size, min } => {
                write!(f, "cluster {cluster} has {size} members, minimum is {min}")
            }
            VerifyError::NotAForest => write!(f, "edge set contains a cycle"),
            VerifyError::ForestTreeTooSmall { size, min } => {
                write!(f, "spanning-forest tree has {size} nodes, minimum is {min}")
            }
            VerifyError::NotMstSubset => {
                write!(f, "edge set is not a subset of the unique MST")
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// Checks that `dominators` is a k-dominating set of `g` (every node
/// within hop distance `k` of some dominator).
///
/// The multi-source BFS worker count comes from
/// [`oracle_threads`](kdom_graph::properties::oracle_threads); the
/// verdict is byte-identical at every thread count.
///
/// # Errors
///
/// Returns [`VerifyError::NotDominated`] for the first uncovered node.
pub fn check_k_dominating(g: &Graph, dominators: &[NodeId], k: usize) -> Result<(), VerifyError> {
    check_k_dominating_with_threads(g, dominators, k, oracle_threads())
}

/// [`check_k_dominating`] with an explicit worker count for the
/// multi-source BFS.
///
/// # Errors
///
/// Returns [`VerifyError::NotDominated`] for the first uncovered node.
pub fn check_k_dominating_with_threads(
    g: &Graph,
    dominators: &[NodeId],
    k: usize,
    threads: usize,
) -> Result<(), VerifyError> {
    let (dist, _) = nearest_source_with_threads(g, dominators, threads);
    for v in g.nodes() {
        if u64::from(dist[v.0]) > k as u64 {
            return Err(VerifyError::NotDominated {
                node: v,
                distance: dist[v.0],
                k,
            });
        }
    }
    Ok(())
}

/// The size bound of Lemma 2.1: `max(1, ⌊n/(k+1)⌋)`.
pub fn dominating_size_bound(n: usize, k: usize) -> usize {
    (n / (k + 1)).max(1)
}

/// Checks the Lemma 2.1 size bound.
///
/// # Errors
///
/// Returns [`VerifyError::DominatingSetTooLarge`] if violated.
pub fn check_dominating_size(n: usize, k: usize, size: usize) -> Result<(), VerifyError> {
    let bound = dominating_size_bound(n, k);
    if size > bound {
        return Err(VerifyError::DominatingSetTooLarge { size, bound });
    }
    Ok(())
}

/// Checks structural cluster properties: connectivity, a radius bound, and
/// a minimum size (pass `0`/`u32::MAX` to skip a bound).
///
/// # Errors
///
/// Returns the first violated property.
pub fn check_clusters(
    g: &Graph,
    cl: &Clustering,
    min_size: usize,
    max_radius: u32,
) -> Result<(), VerifyError> {
    let sizes = cl.sizes();
    for (c, &size) in sizes.iter().enumerate() {
        let r = cl.induced_radius(g, c);
        if r == u32::MAX {
            return Err(VerifyError::ClusterDisconnected { cluster: c });
        }
        if r > max_radius {
            return Err(VerifyError::ClusterRadiusExceeded {
                cluster: c,
                radius: r,
                bound: max_radius,
            });
        }
        if size < min_size {
            return Err(VerifyError::ClusterTooSmall {
                cluster: c,
                size,
                min: min_size,
            });
        }
    }
    Ok(())
}

/// Checks the full output contract of the `FastDOM` algorithms
/// (Theorem 3.2 / 4.4): the centers form a k-dominating set of size at
/// most `max(1, ⌊n/(k+1)⌋)`, and every cluster is connected with induced
/// radius ≤ k.
///
/// # Errors
///
/// Returns the first violated property.
pub fn check_fastdom_output(g: &Graph, cl: &Clustering, k: usize) -> Result<(), VerifyError> {
    check_dominating_size(g.node_count(), k, cl.cluster_count())?;
    check_clusters(g, cl, 1, k as u32)?;
    check_k_dominating(g, cl.centers(), k)
}

/// Checks the balanced-dominating-set contract of Definition 3.1 /
/// Lemma 3.3 on a graph with `n ≥ 2` nodes: `|D| ≤ ⌊n/2⌋`, `D` dominating
/// (k = 1 via the cluster structure: induced radius ≤ 1), and no singleton
/// cluster.
///
/// # Errors
///
/// Returns the first violated property.
pub fn check_balanced_dom(g: &Graph, cl: &Clustering) -> Result<(), VerifyError> {
    let n = g.node_count();
    if cl.cluster_count() > n / 2 {
        return Err(VerifyError::DominatingSetTooLarge {
            size: cl.cluster_count(),
            bound: n / 2,
        });
    }
    check_clusters(g, cl, 2, 1)
}

/// Checks that `edges` forms a `(σ, ·)` spanning forest of `g`
/// (Definition 3.1 of the paper, connectivity side): the edges are
/// cycle-free and every resulting tree has at least `sigma` nodes.
///
/// # Errors
///
/// Returns [`VerifyError::NotAForest`] or
/// [`VerifyError::ForestTreeTooSmall`].
pub fn check_spanning_forest(g: &Graph, edges: &[EdgeId], sigma: usize) -> Result<(), VerifyError> {
    let mut dsu = Dsu::new(g.node_count());
    for &e in edges {
        let er = g.edge(e);
        if !dsu.union(er.u, er.v) {
            return Err(VerifyError::NotAForest);
        }
    }
    for v in g.nodes() {
        let size = dsu.set_size(v);
        if size < sigma {
            return Err(VerifyError::ForestTreeTooSmall { size, min: sigma });
        }
    }
    Ok(())
}

/// Checks that every edge in `edges` belongs to the unique MST of `g`
/// ("each tree of this forest is a fragment of the MST").
///
/// The reference Kruskal's worker count comes from
/// [`oracle_threads`](kdom_graph::properties::oracle_threads); the
/// verdict is byte-identical at every thread count.
///
/// # Errors
///
/// Returns [`VerifyError::NotMstSubset`].
pub fn check_mst_fragments(g: &Graph, edges: &[EdgeId]) -> Result<(), VerifyError> {
    check_mst_fragments_with_threads(g, edges, oracle_threads())
}

/// [`check_mst_fragments`] with an explicit worker count for the
/// reference Kruskal.
///
/// # Errors
///
/// Returns [`VerifyError::NotMstSubset`].
pub fn check_mst_fragments_with_threads(
    g: &Graph,
    edges: &[EdgeId],
    threads: usize,
) -> Result<(), VerifyError> {
    if kdom_graph::mst_ref::is_subset_of_mst_with_threads(g, edges, threads) {
        Ok(())
    } else {
        Err(VerifyError::NotMstSubset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdom_graph::generators::{path, star, GenConfig};

    #[test]
    fn domination_ok_and_violated() {
        let g = path(&GenConfig::with_seed(7, 0)); // 0-1-2-3-4-5-6
        assert!(check_k_dominating(&g, &[NodeId(3)], 3).is_ok());
        let err = check_k_dominating(&g, &[NodeId(3)], 2).unwrap_err();
        assert!(matches!(err, VerifyError::NotDominated { distance: 3, .. }));
        assert!(err.to_string().contains("distance 3"));
    }

    #[test]
    fn size_bound() {
        assert_eq!(dominating_size_bound(10, 3), 2);
        assert_eq!(dominating_size_bound(3, 9), 1);
        assert!(check_dominating_size(10, 3, 2).is_ok());
        assert!(check_dominating_size(10, 3, 3).is_err());
    }

    #[test]
    fn cluster_checks() {
        let g = path(&GenConfig::with_seed(5, 0));
        let cl = Clustering::new(vec![0, 0, 1, 1, 1], vec![NodeId(0), NodeId(3)]);
        assert!(check_clusters(&g, &cl, 2, 1).is_ok());
        assert!(matches!(
            check_clusters(&g, &cl, 3, 1),
            Err(VerifyError::ClusterTooSmall {
                cluster: 0,
                size: 2,
                min: 3
            })
        ));
        assert!(matches!(
            check_clusters(&g, &cl, 1, 0),
            Err(VerifyError::ClusterRadiusExceeded { .. })
        ));
    }

    #[test]
    fn balanced_check_on_star() {
        // star with center 0: one cluster covering everything has radius 1
        let g = star(&GenConfig::with_seed(6, 0));
        let cl = Clustering::new(vec![0; 6], vec![NodeId(0)]);
        assert!(check_balanced_dom(&g, &cl).is_ok());
    }

    #[test]
    fn balanced_check_rejects_singletons() {
        let g = path(&GenConfig::with_seed(4, 0));
        let cl = Clustering::new(vec![0, 0, 0, 1], vec![NodeId(1), NodeId(3)]);
        assert!(matches!(
            check_balanced_dom(&g, &cl),
            Err(VerifyError::ClusterTooSmall { .. })
        ));
    }

    #[test]
    fn fastdom_contract() {
        let g = path(&GenConfig::with_seed(6, 0));
        // k = 2: up to 2 clusters of radius ≤ 2
        let cl = Clustering::new(vec![0, 0, 0, 1, 1, 1], vec![NodeId(1), NodeId(4)]);
        assert!(check_fastdom_output(&g, &cl, 2).is_ok());
        // a single whole-path cluster fails for k = 2 (radius 3 > 2)
        let single = Clustering::single(6, NodeId(2));
        assert!(check_fastdom_output(&g, &single, 2).is_err());
    }

    #[test]
    fn spanning_forest_checks() {
        let g = path(&GenConfig::with_seed(6, 0));
        let all: Vec<EdgeId> = g.edges().iter().map(|e| e.id).collect();
        assert!(check_spanning_forest(&g, &all, 6).is_ok());
        assert!(matches!(
            check_spanning_forest(&g, &all[..4], 3),
            Err(VerifyError::ForestTreeTooSmall { size: 1, min: 3 })
        ));
        // edges 0,1,3,4 split the path into {0,1,2} and {3,4,5}
        assert!(check_spanning_forest(&g, &[all[0], all[1], all[3], all[4]], 3).is_ok());
    }

    #[test]
    fn mst_fragment_check() {
        let g = path(&GenConfig::with_seed(4, 0));
        let all: Vec<EdgeId> = g.edges().iter().map(|e| e.id).collect();
        assert!(check_mst_fragments(&g, &all).is_ok());
    }

    #[test]
    fn errors_display() {
        for e in [
            VerifyError::NotAForest,
            VerifyError::NotMstSubset,
            VerifyError::ClusterDisconnected { cluster: 3 },
            VerifyError::ForestTreeTooSmall { size: 1, min: 2 },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
