//! `FastDOM_T` (§3.3) and `FastDOM_G` (§4.5): the paper's headline
//! k-dominating-set algorithms.
//!
//! * `FastDOM_T` = `DOMPartition(k)` on a tree, then a within-cluster
//!   k-dominating-set computation on every (radius ≤ 5k+2) cluster.
//! * `FastDOM_G` = `SimpleMST` to get a `(k+1, n)` spanning forest of MST
//!   fragments, then `FastDOM_T` on every fragment (fragments run in
//!   parallel, so charged rounds take the maximum over fragments).
//!
//! The within-cluster stage is pluggable ([`WithinCluster`]): the faithful
//! `DiamDOM` census (with the root-completion safeguard, see
//! [`crate::levels`]) or the exact tree DP ([`crate::treedp`]) that meets
//! the `⌊|C|/(k+1)⌋` bound per cluster and hence Theorem 3.2/4.4's
//! `n/(k+1)` bound overall. The DP is the default.

use std::collections::VecDeque;

use kdom_graph::{Graph, NodeId, RootedTree};

use crate::cluster::Charge;
use crate::clustering::Clustering;
use crate::fragments::{simple_mst_forest, Fragments};
use crate::levels::min_level_choice;
use crate::partition::dom_partition;
use crate::treedp::min_k_dominating_tree;

/// Which within-cluster k-dominating-set procedure to run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum WithinCluster {
    /// Faithful `DiamDOM` (Fig. 1–3): census over depth residues, plus
    /// the root-completion safeguard. Size ≤ `⌊|C|/(k+1)⌋ + 1` per
    /// cluster.
    DiamDom,
    /// Exact bottom-up DP (Slater/Meir–Moon): size ≤ `⌊|C|/(k+1)⌋` per
    /// cluster, meeting Theorem 3.2's bound. The default.
    #[default]
    OptimalDp,
}

/// Output of `FastDOM_T` / `FastDOM_G`.
#[derive(Clone, Debug)]
pub struct FastDomResult {
    /// The final partition: one cluster of radius ≤ k per dominator.
    pub clustering: Clustering,
    /// The coarse `DOMPartition` clusters (center, members) — what
    /// `FastMST` contracts.
    pub coarse: Vec<(NodeId, Vec<NodeId>)>,
    /// Charged rounds of the partition stage (max across parallel
    /// fragments) plus a model charge for the within-cluster stage.
    pub charge: Charge,
}

impl FastDomResult {
    /// The k-dominating set.
    pub fn dominators(&self) -> &[NodeId] {
        self.clustering.centers()
    }
}

/// Converts a (center, members) list into a [`Clustering`] over `n` nodes.
///
/// # Panics
///
/// Panics if the clusters do not exactly partition `0..n`.
pub fn clusters_to_clustering(n: usize, clusters: &[(NodeId, Vec<NodeId>)]) -> Clustering {
    let mut cluster_of = vec![usize::MAX; n];
    let mut centers = Vec::with_capacity(clusters.len());
    for (i, (center, members)) in clusters.iter().enumerate() {
        centers.push(*center);
        for &v in members {
            assert_eq!(cluster_of[v.0], usize::MAX, "node {v:?} in two clusters");
            cluster_of[v.0] = i;
        }
    }
    assert!(
        cluster_of.iter().all(|&c| c != usize::MAX),
        "clusters must cover all nodes"
    );
    Clustering::new(cluster_of, centers)
}

/// A rooted view of one cluster: local rooted tree + the member list
/// aligned with local indices.
fn cluster_tree(
    members: &[NodeId],
    center: NodeId,
    tree_adj: &[Vec<NodeId>],
    in_cluster: &[bool],
) -> (RootedTree, Vec<NodeId>) {
    let mut local = std::collections::HashMap::new();
    // BFS from the center so indices are in BFS order
    let mut order = vec![center];
    local.insert(center, 0usize);
    let mut parent_local: Vec<Option<NodeId>> = vec![None];
    let mut q = VecDeque::from([center]);
    while let Some(u) = q.pop_front() {
        for &w in &tree_adj[u.0] {
            if in_cluster[w.0] && !local.contains_key(&w) {
                local.insert(w, order.len());
                order.push(w);
                parent_local.push(Some(u));
                q.push_back(w);
            }
        }
    }
    assert_eq!(order.len(), members.len(), "cluster must be tree-connected");
    let parent: Vec<Option<NodeId>> = parent_local
        .iter()
        .map(|p| p.map(|gp| NodeId(local[&gp])))
        .collect();
    (RootedTree::from_parent_array(NodeId(0), parent), order)
}

/// Solves the within-cluster problem; returns global dominator ids and a
/// round charge for the stage (run once, in parallel over all clusters).
fn solve_cluster(t: &RootedTree, order: &[NodeId], k: usize, solver: WithinCluster) -> Vec<NodeId> {
    let locals: Vec<NodeId> = match solver {
        WithinCluster::OptimalDp => min_k_dominating_tree(t, k),
        WithinCluster::DiamDom => {
            let mut choice = min_level_choice(t, k);
            // root completion: levels > 0 strand nodes above the first
            // dominator level; the root covers them (distance < l ≤ k)
            if choice.level.is_some_and(|l| l != 0) && !choice.dominators.contains(&t.root()) {
                choice.dominators.push(t.root());
            }
            choice.dominators
        }
    };
    locals.into_iter().map(|v| order[v.0]).collect()
}

/// Voronoi partition of the scope around the dominators, over tree edges
/// only and within cluster boundaries (each node joins its nearest
/// dominator inside its own coarse cluster — distance ≤ k since the
/// dominators k-dominate each cluster). Returns (center, members) pairs.
fn assemble(
    n: usize,
    coarse: &[(NodeId, Vec<NodeId>)],
    dominators_per_cluster: &[Vec<NodeId>],
    tree_adj: &[Vec<NodeId>],
) -> Vec<(NodeId, Vec<NodeId>)> {
    let mut coarse_of = vec![usize::MAX; n];
    for (i, (_, members)) in coarse.iter().enumerate() {
        for &v in members {
            coarse_of[v.0] = i;
        }
    }
    let all_doms: Vec<NodeId> = dominators_per_cluster.iter().flatten().copied().collect();
    let mut index_of = vec![usize::MAX; n];
    for (i, &d) in all_doms.iter().enumerate() {
        index_of[d.0] = i;
    }
    // multi-source BFS restricted to intra-cluster tree edges
    let mut cluster_of = vec![usize::MAX; n];
    let mut q = VecDeque::new();
    for &d in &all_doms {
        cluster_of[d.0] = index_of[d.0];
        q.push_back(d);
    }
    while let Some(u) = q.pop_front() {
        for &w in &tree_adj[u.0] {
            if coarse_of[w.0] == coarse_of[u.0] && cluster_of[w.0] == usize::MAX {
                cluster_of[w.0] = cluster_of[u.0];
                q.push_back(w);
            }
        }
    }
    let mut fine: Vec<(NodeId, Vec<NodeId>)> = all_doms.iter().map(|&d| (d, Vec::new())).collect();
    for v in 0..n {
        if cluster_of[v] != usize::MAX {
            fine[cluster_of[v]].1.push(NodeId(v));
        }
    }
    fine
}

/// Per-fragment output of the scoped `FastDOM_T`.
#[derive(Clone, Debug)]
pub struct ScopedFastDom {
    /// The final radius-≤k clusters (center = dominator, members).
    pub fine: Vec<(NodeId, Vec<NodeId>)>,
    /// The coarse `DOMPartition` clusters.
    pub coarse: Vec<(NodeId, Vec<NodeId>)>,
    /// Charged rounds.
    pub charge: Charge,
}

/// `FastDOM_T` over an explicit scope (`nodes` + spanning `tree_edges`),
/// so `FastDOM_G` can run it per fragment. `tree_adj` spans the whole
/// graph (only scope edges are walked).
pub fn fast_dom_t_scoped(
    g: &Graph,
    nodes: Vec<NodeId>,
    tree_edges: &[(NodeId, NodeId)],
    k: usize,
    solver: WithinCluster,
) -> ScopedFastDom {
    let n = g.node_count();
    let mut tree_adj: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    for &(u, v) in tree_edges {
        tree_adj[u.0].push(v);
        tree_adj[v.0].push(u);
    }
    let mut in_scope = vec![false; n];
    for &v in &nodes {
        in_scope[v.0] = true;
    }

    // Stage 1: DOMPartition(k)
    let part = dom_partition(g, nodes, tree_edges, k);
    let mut charge = part.charge;

    // Stage 2: within-cluster k-dominating sets, all clusters in parallel
    let mut dominators_per_cluster = Vec::with_capacity(part.clusters.len());
    let mut max_rad = 0u32;
    let mut in_cluster = vec![false; n];
    for (center, members) in &part.clusters {
        for &v in members {
            in_cluster[v.0] = true;
        }
        let (t, order) = cluster_tree(members, *center, &tree_adj, &in_cluster);
        for &v in members {
            in_cluster[v.0] = false;
        }
        max_rad = max_rad.max(t.height());
        dominators_per_cluster.push(solve_cluster(&t, &order, k, solver));
    }
    // Charged model for the parallel within-cluster stage: DiamDOM costs
    // ≤ 5·Diam(C) + k (Lemma 2.3); the DP is one convergecast + one flood,
    // ≤ 2·Rad(C) + k. Charge the looser DiamDOM bound for both.
    charge.flat(5 * 2 * u64::from(max_rad) + k as u64);

    let fine = assemble(n, &part.clusters, &dominators_per_cluster, &tree_adj);
    ScopedFastDom {
        fine,
        coarse: part.clusters,
        charge,
    }
}

/// `FastDOM_T` (Theorem 3.2): k-dominating set of size ≤ `n/(k+1)` on a
/// tree graph, with its radius-k partition.
///
/// # Panics
///
/// Panics if `g` is not a tree.
pub fn fast_dom_t(g: &Graph, k: usize, solver: WithinCluster) -> FastDomResult {
    assert!(
        kdom_graph::properties::is_tree(g),
        "FastDOM_T requires a tree"
    );
    let nodes: Vec<NodeId> = g.nodes().collect();
    let edges: Vec<(NodeId, NodeId)> = g.edges().iter().map(|e| (e.u, e.v)).collect();
    let scoped = fast_dom_t_scoped(g, nodes, &edges, k, solver);
    FastDomResult {
        clustering: clusters_to_clustering(g.node_count(), &scoped.fine),
        coarse: scoped.coarse,
        charge: scoped.charge,
    }
}

/// `FastDOM_G` (Theorem 4.4): k-dominating set of size ≤ `n/(k+1)` on a
/// connected graph, in charged time `O(k log* n)`.
///
/// Returns the result plus the underlying MST fragments (reused by
/// `FastMST`).
pub fn fast_dom_g_full(g: &Graph, k: usize, solver: WithinCluster) -> (FastDomResult, Fragments) {
    let fragments = simple_mst_forest(g, k);
    let members = fragments.members();
    let mut edge_of_fragment: Vec<Vec<(NodeId, NodeId)>> =
        vec![Vec::new(); fragments.fragment_count()];
    for &e in &fragments.tree_edges {
        let er = g.edge(e);
        edge_of_fragment[fragments.fragment_of[er.u.0]].push((er.u, er.v));
    }

    // SimpleMST charge: phase i runs in ≤ 5·2^i + 6 rounds (Lemma 4.1's
    // O(k)); the distributed implementation measures this — here we charge
    // the schedule the nodes themselves use.
    let mut charge = Charge::default();
    for i in 1..=u64::from(fragments.phases) {
        charge.flat(5 * (1 << i) + 6);
    }

    // FastDOM_T per fragment, in parallel: rounds = max over fragments.
    let mut all_coarse = Vec::new();
    let mut all_clusters: Vec<(NodeId, Vec<NodeId>)> = Vec::new();
    let mut max_fragment_charge = Charge::default();
    for (f, members) in members.into_iter().enumerate() {
        let res = fast_dom_t_scoped(g, members, &edge_of_fragment[f], k, solver);
        if res.charge.rounds > max_fragment_charge.rounds {
            max_fragment_charge = res.charge;
        }
        all_coarse.extend(res.coarse);
        all_clusters.extend(res.fine);
    }
    charge.rounds += max_fragment_charge.rounds;
    charge.virtual_rounds += max_fragment_charge.virtual_rounds;
    charge.cv_iterations += max_fragment_charge.cv_iterations;

    let clustering = clusters_to_clustering(g.node_count(), &all_clusters);
    (
        FastDomResult {
            clustering,
            coarse: all_coarse,
            charge,
        },
        fragments,
    )
}

/// Convenience wrapper over [`fast_dom_g_full`] with the default solver.
pub fn fast_dom_g(g: &Graph, k: usize) -> FastDomResult {
    fast_dom_g_full(g, k, WithinCluster::default()).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{check_fastdom_output, check_k_dominating};
    use kdom_graph::generators::{gnp_connected, random_tree};
    use kdom_graph::generators::{Family, GenConfig};

    #[test]
    fn fastdom_t_meets_theorem_32() {
        for (n, k, seed) in [(50usize, 2usize, 0u64), (120, 4, 1), (200, 9, 2)] {
            let g = random_tree(&GenConfig::with_seed(n, seed));
            let res = fast_dom_t(&g, k, WithinCluster::OptimalDp);
            check_fastdom_output(&g, &res.clustering, k)
                .unwrap_or_else(|e| panic!("n={n} k={k}: {e}"));
        }
    }

    #[test]
    fn fastdom_t_all_families() {
        for fam in Family::TREES {
            for k in [1usize, 3, 6] {
                let g = fam.generate(90, 11);
                let res = fast_dom_t(&g, k, WithinCluster::OptimalDp);
                check_fastdom_output(&g, &res.clustering, k)
                    .unwrap_or_else(|e| panic!("{fam} k={k}: {e}"));
            }
        }
    }

    #[test]
    fn diamdom_solver_dominates_with_small_overhead() {
        for fam in Family::TREES {
            let k = 4;
            let g = fam.generate(120, 3);
            let res = fast_dom_t(&g, k, WithinCluster::DiamDom);
            // domination and radius hold; size may exceed the floor bound
            // by one per cluster (root completion)
            check_k_dominating(&g, res.dominators(), k).unwrap();
            crate::verify::check_clusters(&g, &res.clustering, 1, k as u32).unwrap();
            let bound = (120 / (k + 1)).max(1) + res.coarse.len();
            assert!(res.dominators().len() <= bound, "{fam}");
        }
    }

    #[test]
    fn fastdom_g_meets_theorem_44() {
        for (n, k, seed) in [(60usize, 2usize, 0u64), (120, 4, 1), (200, 7, 2)] {
            let g = gnp_connected(&GenConfig::with_seed(n, seed), 0.08);
            let res = fast_dom_g(&g, k);
            check_fastdom_output(&g, &res.clustering, k)
                .unwrap_or_else(|e| panic!("n={n} k={k}: {e}"));
        }
    }

    #[test]
    fn fastdom_g_on_grids_and_cliques() {
        for fam in [Family::Grid, Family::Gnp] {
            for k in [2usize, 5] {
                let g = fam.generate(100, 13);
                let res = fast_dom_g(&g, k);
                check_fastdom_output(&g, &res.clustering, k)
                    .unwrap_or_else(|e| panic!("{fam} k={k}: {e}"));
            }
        }
    }

    #[test]
    fn coarse_clusters_have_k_plus_one_nodes() {
        let g = gnp_connected(&GenConfig::with_seed(150, 4), 0.05);
        let k = 5;
        let res = fast_dom_g(&g, k);
        for (_, members) in &res.coarse {
            assert!(members.len() > k);
        }
    }

    #[test]
    fn small_graph_single_dominator() {
        let g = random_tree(&GenConfig::with_seed(4, 5));
        let res = fast_dom_t(&g, 9, WithinCluster::OptimalDp);
        assert_eq!(res.dominators().len(), 1);
        check_fastdom_output(&g, &res.clustering, 9).unwrap();
    }

    #[test]
    fn charges_scale_linearly_in_k() {
        let g = Family::Path.generate(4000, 3);
        let c2 = fast_dom_t(&g, 2, WithinCluster::OptimalDp).charge.rounds;
        let c32 = fast_dom_t(&g, 32, WithinCluster::OptimalDp).charge.rounds;
        // O(k log* n): 16x larger k should stay within ~64x rounds
        assert!(c32 < c2 * 64, "k=2: {c2}, k=32: {c32}");
    }
}
