//! Cole–Vishkin `O(log* n)` coloring and MIS on rooted forests.
//!
//! `BalancedDOM` (Fig. 4) needs a maximal independent set on a tree. The
//! paper plugs in the deterministic `O(log* n)`-round tree MIS of
//! Goldberg–Plotkin–Shannon \[GPS\]; the classic realization is iterated
//! Cole–Vishkin bit reduction down to 6 colors followed by one sweep per
//! color class. This module implements that procedure *iteration-faithfully*
//! over an abstract rooted forest (indices + parent pointers), so it serves
//! both the base tree and the contracted cluster trees, and reports the
//! iteration count that the round-charging model multiplies out.

/// Result of the 6-coloring.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ForestColoring {
    /// A proper coloring with values in `0..6`.
    pub colors: Vec<u8>,
    /// Number of Cole–Vishkin iterations executed (`O(log* n)`).
    pub iterations: u32,
}

/// Lowest bit position where `a` and `b` differ.
///
/// # Panics
///
/// Panics if `a == b` (callers guarantee proper colorings).
fn lowest_differing_bit(a: u64, b: u64) -> u32 {
    assert_ne!(a, b, "colors must differ between neighbors");
    (a ^ b).trailing_zeros()
}

/// Iterated Cole–Vishkin reduction of the initial coloring `ids` to a
/// proper coloring with at most 6 colors.
///
/// `parent[v] = None` marks roots; a root acts as if its parent had color
/// `color(v) XOR 1`, i.e. it always recolors to `bit₀(color(v))`.
///
/// # Panics
///
/// Panics if `ids` is not a proper coloring of the forest (e.g. duplicate
/// ids on adjacent nodes) or `parent.len() != ids.len()`.
pub fn six_color_forest(parent: &[Option<usize>], ids: &[u64]) -> ForestColoring {
    assert_eq!(parent.len(), ids.len());
    for (v, p) in parent.iter().enumerate() {
        if let Some(p) = p {
            assert!(
                ids[v] != ids[*p],
                "initial colors must differ between neighbors"
            );
        }
    }
    let mut colors: Vec<u64> = ids.to_vec();
    let mut iterations = 0;
    while colors.iter().any(|&c| c >= 6) {
        let snapshot = colors.clone();
        for v in 0..colors.len() {
            let pc = match parent[v] {
                Some(p) => snapshot[p],
                None => snapshot[v] ^ 1,
            };
            let i = lowest_differing_bit(snapshot[v], pc);
            colors[v] = u64::from(2 * i) + ((snapshot[v] >> i) & 1);
        }
        iterations += 1;
        assert!(iterations <= 64 + 8, "Cole–Vishkin failed to converge");
    }
    ForestColoring {
        colors: colors.into_iter().map(|c| c as u8).collect(),
        iterations,
    }
}

/// Greedy MIS by color class: for `c = 0..6`, every node of color `c`
/// without a neighbor already in the set joins. Returns the membership
/// vector. The result is a maximal independent set of the forest.
pub fn mis_from_coloring(parent: &[Option<usize>], coloring: &ForestColoring) -> Vec<bool> {
    let n = parent.len();
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (v, p) in parent.iter().enumerate() {
        if let Some(p) = p {
            children[*p].push(v);
        }
    }
    let mut in_mis = vec![false; n];
    for c in 0..6u8 {
        for v in 0..n {
            if coloring.colors[v] != c || in_mis[v] {
                continue;
            }
            let parent_in = parent[v].is_some_and(|p| in_mis[p]);
            let child_in = children[v].iter().any(|&u| in_mis[u]);
            if !parent_in && !child_in {
                in_mis[v] = true;
            }
        }
    }
    in_mis
}

/// Convenience: 6-coloring followed by the MIS sweep.
/// Returns the MIS membership and the Cole–Vishkin iteration count.
pub fn forest_mis(parent: &[Option<usize>], ids: &[u64]) -> (Vec<bool>, u32) {
    let coloring = six_color_forest(parent, ids);
    let mis = mis_from_coloring(parent, &coloring);
    (mis, coloring.iterations)
}

/// Checks that `colors` is a proper coloring of the forest.
pub fn is_proper_coloring(parent: &[Option<usize>], colors: &[u8]) -> bool {
    parent
        .iter()
        .enumerate()
        .all(|(v, p)| p.is_none_or(|p| colors[v] != colors[p]))
}

/// Checks that `in_mis` is a maximal independent set of the forest.
pub fn is_mis(parent: &[Option<usize>], in_mis: &[bool]) -> bool {
    let n = parent.len();
    // independence
    for (v, p) in parent.iter().enumerate() {
        if let Some(p) = p {
            if in_mis[v] && in_mis[*p] {
                return false;
            }
        }
    }
    // maximality: every non-member has a member neighbor
    let mut has_member_neighbor = vec![false; n];
    for (v, p) in parent.iter().enumerate() {
        if let Some(p) = p {
            if in_mis[*p] {
                has_member_neighbor[v] = true;
            }
            if in_mis[v] {
                has_member_neighbor[*p] = true;
            }
        }
    }
    (0..n).all(|v| in_mis[v] || has_member_neighbor[v])
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdom_graph::generators::{balanced_tree, path, random_tree, star, GenConfig};
    use kdom_graph::{NodeId, RootedTree};

    fn forest_of(g: &kdom_graph::Graph) -> (Vec<Option<usize>>, Vec<u64>) {
        let t = RootedTree::from_graph(g, NodeId(0));
        let parent = (0..g.node_count())
            .map(|v| t.parent(NodeId(v)).map(|p| p.0))
            .collect();
        let ids = (0..g.node_count()).map(|v| g.id_of(NodeId(v))).collect();
        (parent, ids)
    }

    #[test]
    fn colors_path() {
        let g = path(&GenConfig::with_seed(100, 7));
        let (parent, ids) = forest_of(&g);
        let c = six_color_forest(&parent, &ids);
        assert!(c.colors.iter().all(|&x| x < 6));
        assert!(is_proper_coloring(&parent, &c.colors));
        assert!(c.iterations <= 6, "log* of 48-bit ids plus slack");
    }

    #[test]
    fn mis_on_tree_families() {
        for (name, g) in [
            ("path", path(&GenConfig::with_seed(64, 1))),
            ("star", star(&GenConfig::with_seed(64, 2))),
            ("balanced", balanced_tree(&GenConfig::with_seed(64, 3), 2)),
            ("random", random_tree(&GenConfig::with_seed(64, 4))),
        ] {
            let (parent, ids) = forest_of(&g);
            let (mis, _) = forest_mis(&parent, &ids);
            assert!(is_mis(&parent, &mis), "{name}");
        }
    }

    #[test]
    fn mis_on_many_random_trees() {
        for seed in 0..25 {
            let g = random_tree(&GenConfig::with_seed(40 + seed as usize, seed));
            let (parent, ids) = forest_of(&g);
            let (mis, iters) = forest_mis(&parent, &ids);
            assert!(is_mis(&parent, &mis), "seed {seed}");
            assert!(iters <= 6, "seed {seed}: {iters} iterations");
        }
    }

    #[test]
    fn works_on_true_forests() {
        // two separate paths: 0-1-2 and 3-4
        let parent = vec![None, Some(0), Some(1), None, Some(3)];
        let ids = vec![10, 20, 30, 40, 50];
        let (mis, _) = forest_mis(&parent, &ids);
        assert!(is_mis(&parent, &mis));
    }

    #[test]
    fn singleton_nodes_join_mis() {
        let parent = vec![None, None];
        let ids = vec![7, 9];
        let (mis, _) = forest_mis(&parent, &ids);
        assert_eq!(mis, vec![true, true]);
    }

    #[test]
    fn iterations_grow_slowly() {
        // even with adversarially large ids the iteration count stays tiny
        let n = 1000;
        let parent: Vec<Option<usize>> = (0..n)
            .map(|v| if v == 0 { None } else { Some(v - 1) })
            .collect();
        let ids: Vec<u64> = (0..n as u64)
            .map(|v| v.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .collect();
        let c = six_color_forest(&parent, &ids);
        assert!(is_proper_coloring(&parent, &c.colors));
        assert!(c.iterations <= 7, "got {}", c.iterations);
    }

    #[test]
    fn is_mis_rejects_bad_sets() {
        let parent = vec![None, Some(0), Some(1)];
        // not maximal: node 2 uncovered
        assert!(!is_mis(&parent, &[true, false, false]));
        // not independent
        assert!(!is_mis(&parent, &[true, true, false]));
        // valid
        assert!(is_mis(&parent, &[true, false, true]));
    }

    #[test]
    #[should_panic(expected = "must differ")]
    fn duplicate_adjacent_ids_rejected() {
        let parent = vec![None, Some(0)];
        six_color_forest(&parent, &[5, 5]);
    }
}
