//! The level-set construction behind Lemma 2.1 and `DiamDOM` (§2).
//!
//! Given a rooted spanning tree of depth `h`, the vertices are split into
//! levels `T_0, …, T_h` by depth and merged into `k+1` candidate sets
//! `D_l = ∪_j T_{l + j(k+1)}`. Every `D_l` is a k-dominating set, the sets
//! partition `V`, and hence the smallest one has at most `⌊n/(k+1)⌋`
//! nodes. If `k ≥ h`, the root alone suffices.

use kdom_graph::{Graph, NodeId, RootedTree};

use crate::clustering::Clustering;
use kdom_graph::properties::bfs_parents;

/// The output of the level-set selection.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LevelChoice {
    /// The chosen residue `l` (`None` when `k ≥ h` and the root was used).
    pub level: Option<usize>,
    /// The selected k-dominating set.
    pub dominators: Vec<NodeId>,
    /// `|D_l|` for every `l` in `0..=k` (what the censuses of `DiamDOM`
    /// count; empty when `k ≥ h`).
    pub counts: Vec<usize>,
}

/// Sizes of the candidate sets `D_0, …, D_k` on a rooted tree.
pub fn level_counts(t: &RootedTree, k: usize) -> Vec<usize> {
    let mut counts = vec![0usize; k + 1];
    for v in 0..t.len() {
        counts[t.depth(NodeId(v)) as usize % (k + 1)] += 1;
    }
    counts
}

/// Members of `D_l` on a rooted tree.
pub fn level_set(t: &RootedTree, k: usize, l: usize) -> Vec<NodeId> {
    (0..t.len())
        .map(NodeId)
        .filter(|&v| t.depth(v) as usize % (k + 1) == l)
        .collect()
}

/// Selects the smallest candidate set — the sequential reference for
/// `DiamDOM` (Fig. 3): if `k ≥ h` the root alone, otherwise the `D_l`
/// with minimum census count (lowest `l` on ties, matching a root that
/// scans `l = 0..=k`).
pub fn min_level_choice(t: &RootedTree, k: usize) -> LevelChoice {
    if k as u32 >= t.height() {
        return LevelChoice {
            level: None,
            dominators: vec![t.root()],
            counts: Vec::new(),
        };
    }
    let counts = level_counts(t, k);
    let level = counts
        .iter()
        .enumerate()
        .min_by_key(|&(_, c)| *c)
        .map(|(l, _)| l)
        .expect("k + 1 ≥ 1 candidate sets");
    LevelChoice {
        level: Some(level),
        dominators: level_set(t, k, level),
        counts,
    }
}

/// The existence construction of Lemma 2.1 on an arbitrary connected
/// graph: root a BFS tree at `root` and apply [`min_level_choice`].
///
/// # Panics
///
/// Panics if `g` is disconnected (the BFS tree would not span it).
pub fn existence_dominating_set(g: &Graph, root: NodeId, k: usize) -> LevelChoice {
    let parents = bfs_parents(g, root);
    let parent: Vec<Option<NodeId>> = parents
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let p = p.unwrap_or_else(|| panic!("graph is disconnected at node {i}"));
            if i == root.0 {
                None
            } else {
                Some(p)
            }
        })
        .collect();
    let t = RootedTree::from_parent_array(root, parent);
    min_level_choice(&t, k)
}

/// The partition induced by a level choice: every node joins the cluster
/// of its nearest dominator (the paper's `D(v)`, ties broken by BFS
/// propagation). Cells of such a Voronoi assignment are connected, so the
/// clusters are connected with induced radius ≤ k.
pub fn level_partition(g: &Graph, choice: &LevelChoice) -> Clustering {
    let centers = choice.dominators.clone();
    let mut index_of = vec![usize::MAX; g.node_count()];
    for (i, &d) in centers.iter().enumerate() {
        index_of[d.0] = i;
    }
    let (_, src) = kdom_graph::properties::nearest_source(g, &centers);
    let cluster_of = src
        .into_iter()
        .enumerate()
        .map(|(v, s)| {
            let s = s.unwrap_or_else(|| panic!("node {v} not dominated"));
            index_of[s.0]
        })
        .collect();
    Clustering::new(cluster_of, centers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{check_clusters, check_dominating_size, check_k_dominating};
    use kdom_graph::generators::{balanced_tree, path, random_tree, star, Family, GenConfig};

    fn rooted(g: &Graph) -> RootedTree {
        RootedTree::from_graph(g, NodeId(0))
    }

    #[test]
    fn path_levels() {
        let g = path(&GenConfig::with_seed(10, 0));
        let t = rooted(&g);
        let counts = level_counts(&t, 2);
        assert_eq!(counts, vec![4, 3, 3]); // depths 0..9 mod 3
        let choice = min_level_choice(&t, 2);
        assert_eq!(choice.level, Some(1));
        assert_eq!(choice.dominators.len(), 3);
        check_k_dominating(&g, &choice.dominators, 2).unwrap();
    }

    #[test]
    fn deep_k_takes_root_only() {
        let g = path(&GenConfig::with_seed(5, 0));
        let t = rooted(&g);
        let choice = min_level_choice(&t, 10);
        assert_eq!(choice.level, None);
        assert_eq!(choice.dominators, vec![NodeId(0)]);
        check_k_dominating(&g, &choice.dominators, 10).unwrap();
    }

    #[test]
    fn star_k1_is_root_only() {
        // a star has height 1, so k = 1 hits the `k ≥ h` branch
        let g = star(&GenConfig::with_seed(8, 0));
        let t = rooted(&g);
        let choice = min_level_choice(&t, 1);
        assert_eq!(choice.level, None);
        assert_eq!(choice.dominators, vec![NodeId(0)]);
    }

    #[test]
    fn size_bound_always_holds() {
        // Σ_l |D_l| = n ⟹ the census minimum is ≤ ⌊n/(k+1)⌋ on every tree.
        for fam in Family::TREES {
            for n in [2usize, 5, 16, 63, 200] {
                for k in [1usize, 2, 3, 7] {
                    let g = fam.generate(n, 42);
                    let choice = existence_dominating_set(&g, NodeId(0), k);
                    check_dominating_size(n, k, choice.dominators.len())
                        .unwrap_or_else(|e| panic!("{fam} n={n} k={k}: {e}"));
                }
            }
        }
    }

    /// Documents the gap in the extended abstract's Lemma 2.1 sketch: the
    /// minimum depth-residue class is *not* always k-dominating. On the
    /// tree `0-1-2-3` (a chain) plus leaf `4` off node 0, with k = 2, the
    /// class `D_2 = {2}` leaves node 4 at distance 3. The root-completed
    /// set (`with_root`) and the exact DP of [`crate::treedp`] repair it.
    #[test]
    fn level_sets_are_not_always_dominating() {
        let mut b = kdom_graph::GraphBuilder::new(5);
        b.add_edge(NodeId(0), NodeId(1), 1);
        b.add_edge(NodeId(1), NodeId(2), 2);
        b.add_edge(NodeId(2), NodeId(3), 3);
        b.add_edge(NodeId(0), NodeId(4), 4);
        let g = b.build();
        let t = rooted(&g);
        let d2 = level_set(&t, 2, 2);
        assert_eq!(d2, vec![NodeId(2)]);
        assert!(check_k_dominating(&g, &d2, 2).is_err(), "the EA gap");
        // the root-completed variant is always k-dominating
        let mut fixed = d2;
        fixed.push(t.root());
        check_k_dominating(&g, &fixed, 2).unwrap();
    }

    #[test]
    fn root_completion_dominates_on_all_families() {
        for fam in Family::TREES {
            for n in [2usize, 5, 16, 63, 200] {
                for k in [1usize, 2, 3, 7] {
                    let g = fam.generate(n, 42);
                    let mut choice = existence_dominating_set(&g, NodeId(0), k);
                    if choice.level.is_some_and(|l| l != 0)
                        && !choice.dominators.contains(&NodeId(0))
                    {
                        choice.dominators.push(NodeId(0));
                    }
                    check_k_dominating(&g, &choice.dominators, k)
                        .unwrap_or_else(|e| panic!("{fam} n={n} k={k}: {e}"));
                }
            }
        }
    }

    #[test]
    fn existence_on_general_graph() {
        let g = Family::Gnp.generate(100, 3);
        let choice = existence_dominating_set(&g, NodeId(0), 3);
        check_dominating_size(100, 3, choice.dominators.len()).unwrap();
        check_k_dominating(&g, &choice.dominators, 3).unwrap();
    }

    #[test]
    fn level_sets_partition_the_tree() {
        let g = random_tree(&GenConfig::with_seed(50, 1));
        let t = rooted(&g);
        let k = 3;
        let mut seen = vec![false; 50];
        for l in 0..=k {
            for v in level_set(&t, k, l) {
                assert!(!seen[v.0], "levels must be disjoint");
                seen[v.0] = true;
            }
        }
        assert!(seen.into_iter().all(|s| s));
    }

    #[test]
    fn partition_has_radius_k_connected_clusters() {
        for (n, k, seed) in [(40usize, 2usize, 0u64), (80, 3, 1), (100, 5, 2)] {
            let g = random_tree(&GenConfig::with_seed(n, seed));
            let t = rooted(&g);
            let mut choice = min_level_choice(&t, k);
            if choice.level.is_some_and(|l| l != 0) && !choice.dominators.contains(&NodeId(0)) {
                choice.dominators.push(NodeId(0)); // root completion
            }
            let cl = level_partition(&g, &choice);
            check_clusters(&g, &cl, 1, k as u32).unwrap_or_else(|e| panic!("n={n} k={k}: {e}"));
            assert_eq!(cl.cluster_count(), choice.dominators.len());
        }
    }

    #[test]
    fn partition_handles_shallow_nodes() {
        // Balanced binary tree where the chosen level is > 0 forces the
        // "shallow nodes" fallback.
        let g = balanced_tree(&GenConfig::with_seed(31, 0), 2); // height 4
        let t = rooted(&g);
        let k = 1;
        let choice = min_level_choice(&t, k);
        // levels mod 2: even depths hold 1+4+16=21, odd 2+8=10 => l = 1
        assert_eq!(choice.level, Some(1));
        let cl = level_partition(&g, &choice);
        check_clusters(&g, &cl, 1, k as u32).unwrap();
    }
}
