//! The Kutten–Peleg PODC'95 algorithms: fast distributed construction of
//! small k-dominating sets.
//!
//! The crate provides, bottom-up:
//!
//! * [`logstar`] — `log*` utilities for the time-bound bookkeeping;
//! * [`levels`] — the Lemma 2.1 level-set construction and the `DiamDOM`
//!   census reference (Fig. 1–3), including a documented gap in the
//!   extended abstract's domination argument;
//! * [`treedp`] — the exact tree k-domination DP used where the
//!   `⌊n/(k+1)⌋` bound must hold exactly;
//! * [`coloring`] — Cole–Vishkin `O(log* n)` 6-coloring and MIS on rooted
//!   forests;
//! * [`balanced`] — `BalancedDOM` (Fig. 4);
//! * [`cluster`] — the contraction engine and round-charging model;
//! * [`partition`] — the `DOMPartition` family (Figs. 5–7);
//! * [`fragments`] — `SimpleMST` controlled Borůvka fragments (§4);
//! * [`fastdom`] — `FastDOM_T` / `FastDOM_G` (Theorems 3.2 and 4.4);
//! * [`clustering`], [`verify`] — shared output types and property
//!   checkers for every lemma.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod balanced;
pub mod cluster;
pub mod clustering;
pub mod coloring;
pub mod fastdom;
pub mod fragments;
pub mod levels;
pub mod logstar;
pub mod partition;
pub mod treedp;
pub mod verify;

pub use clustering::Clustering;
pub mod dist;
