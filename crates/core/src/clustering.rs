//! The clustering/partition type shared by all algorithms.
//!
//! A [`Clustering`] assigns every node of a graph to exactly one cluster;
//! each cluster has a designated *center* (the dominator in the paper's
//! partitions). Radii are measured inside the cluster's induced subgraph,
//! matching the paper's definition of `Rad(P)`.

use std::collections::VecDeque;

use kdom_graph::{Graph, NodeId};

/// A partition of a graph's nodes into centered clusters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Clustering {
    cluster_of: Vec<usize>,
    centers: Vec<NodeId>,
}

impl Clustering {
    /// Builds a clustering from a per-node cluster index and per-cluster
    /// center.
    ///
    /// # Panics
    ///
    /// Panics if some node's cluster index is out of range, or a center's
    /// own cluster assignment disagrees.
    pub fn new(cluster_of: Vec<usize>, centers: Vec<NodeId>) -> Self {
        for (v, &c) in cluster_of.iter().enumerate() {
            assert!(
                c < centers.len(),
                "node {v} assigned to unknown cluster {c}"
            );
        }
        for (c, &ctr) in centers.iter().enumerate() {
            assert_eq!(
                cluster_of[ctr.0], c,
                "center {ctr:?} of cluster {c} is assigned elsewhere"
            );
        }
        Clustering {
            cluster_of,
            centers,
        }
    }

    /// A single cluster covering the whole graph, centered at `center`.
    pub fn single(n: usize, center: NodeId) -> Self {
        Clustering {
            cluster_of: vec![0; n],
            centers: vec![center],
        }
    }

    /// Number of clusters.
    pub fn cluster_count(&self) -> usize {
        self.centers.len()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.cluster_of.len()
    }

    /// The cluster index of `v`.
    pub fn cluster_of(&self, v: NodeId) -> usize {
        self.cluster_of[v.0]
    }

    /// The centers, i.e. the dominating set induced by this partition.
    pub fn centers(&self) -> &[NodeId] {
        &self.centers
    }

    /// The center of cluster `c`.
    pub fn center(&self, c: usize) -> NodeId {
        self.centers[c]
    }

    /// Members of every cluster (index = cluster).
    pub fn members(&self) -> Vec<Vec<NodeId>> {
        let mut m = vec![Vec::new(); self.centers.len()];
        for (v, &c) in self.cluster_of.iter().enumerate() {
            m[c].push(NodeId(v));
        }
        m
    }

    /// Sizes of all clusters.
    pub fn sizes(&self) -> Vec<usize> {
        let mut s = vec![0usize; self.centers.len()];
        for &c in &self.cluster_of {
            s[c] += 1;
        }
        s
    }

    /// BFS distances from the center of cluster `c`, restricted to edges
    /// inside the cluster. Unreachable members get `u32::MAX` (which the
    /// validity checks reject).
    fn induced_distances(&self, g: &Graph, c: usize) -> Vec<(NodeId, u32)> {
        let center = self.centers[c];
        let mut dist = vec![u32::MAX; g.node_count()];
        let mut q = VecDeque::new();
        dist[center.0] = 0;
        q.push_back(center);
        while let Some(u) = q.pop_front() {
            for a in g.neighbors(u) {
                if self.cluster_of[a.to.0] == c && dist[a.to.0] == u32::MAX {
                    dist[a.to.0] = dist[u.0] + 1;
                    q.push_back(a.to);
                }
            }
        }
        self.cluster_of
            .iter()
            .enumerate()
            .filter(|&(_, &cc)| cc == c)
            .map(|(v, _)| (NodeId(v), dist[v]))
            .collect()
    }

    /// Radius of cluster `c` measured inside its induced subgraph
    /// (`u32::MAX` if the cluster is disconnected).
    pub fn induced_radius(&self, g: &Graph, c: usize) -> u32 {
        self.induced_distances(g, c)
            .into_iter()
            .map(|(_, d)| d)
            .max()
            .unwrap_or(0)
    }

    /// Maximum induced radius over all clusters — the paper's `Rad(P)`.
    pub fn max_radius(&self, g: &Graph) -> u32 {
        (0..self.centers.len())
            .map(|c| self.induced_radius(g, c))
            .max()
            .unwrap_or(0)
    }

    /// Whether every cluster is connected in its induced subgraph.
    pub fn all_connected(&self, g: &Graph) -> bool {
        (0..self.centers.len()).all(|c| self.induced_radius(g, c) != u32::MAX)
    }

    /// Smallest cluster size.
    pub fn min_size(&self) -> usize {
        self.sizes().into_iter().min().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdom_graph::generators::{path, GenConfig};

    #[test]
    fn basic_queries() {
        let cl = Clustering::new(vec![0, 0, 1, 1, 1], vec![NodeId(0), NodeId(3)]);
        assert_eq!(cl.cluster_count(), 2);
        assert_eq!(cl.node_count(), 5);
        assert_eq!(cl.cluster_of(NodeId(4)), 1);
        assert_eq!(cl.center(1), NodeId(3));
        assert_eq!(cl.sizes(), vec![2, 3]);
        assert_eq!(cl.min_size(), 2);
        assert_eq!(cl.members()[0], vec![NodeId(0), NodeId(1)]);
    }

    #[test]
    fn radii_on_a_path() {
        // path 0-1-2-3-4, clusters {0,1} centered 0 and {2,3,4} centered 3
        let g = path(&GenConfig::with_seed(5, 0));
        let cl = Clustering::new(vec![0, 0, 1, 1, 1], vec![NodeId(0), NodeId(3)]);
        assert_eq!(cl.induced_radius(&g, 0), 1);
        assert_eq!(cl.induced_radius(&g, 1), 1);
        assert_eq!(cl.max_radius(&g), 1);
        assert!(cl.all_connected(&g));
    }

    #[test]
    fn disconnected_cluster_detected() {
        // path 0-1-2: cluster {0,2} is disconnected inside itself
        let g = path(&GenConfig::with_seed(3, 0));
        let cl = Clustering::new(vec![0, 1, 0], vec![NodeId(0), NodeId(1)]);
        assert!(!cl.all_connected(&g));
        assert_eq!(cl.induced_radius(&g, 0), u32::MAX);
    }

    #[test]
    fn single_cluster() {
        let g = path(&GenConfig::with_seed(4, 0));
        let cl = Clustering::single(4, NodeId(2));
        assert_eq!(cl.cluster_count(), 1);
        assert_eq!(cl.max_radius(&g), 2);
    }

    #[test]
    #[should_panic(expected = "assigned elsewhere")]
    fn center_must_live_in_its_cluster() {
        Clustering::new(vec![0, 0], vec![NodeId(0), NodeId(1)]);
    }

    #[test]
    #[should_panic(expected = "unknown cluster")]
    fn cluster_index_bounds_checked() {
        Clustering::new(vec![0, 5], vec![NodeId(0)]);
    }
}
