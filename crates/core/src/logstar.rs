//! The iterated logarithm `log* n` and small helpers.
//!
//! The paper's time bounds are stated in terms of `log* n`, the number of
//! times `log₂` must be applied to `n` before the value drops to ≤ 1. The
//! experiments print it next to measured iteration counts.

/// Iterated logarithm: smallest `i` such that applying `log₂` to `n`
/// `i` times yields a value ≤ 1. `log_star(0) = log_star(1) = 0`.
///
/// ```
/// use kdom_core::logstar::log_star;
/// assert_eq!(log_star(1), 0);
/// assert_eq!(log_star(2), 1);
/// assert_eq!(log_star(4), 2);
/// assert_eq!(log_star(16), 3);
/// assert_eq!(log_star(65_536), 4);
/// assert_eq!(log_star(u64::MAX), 5);
/// ```
pub fn log_star(n: u64) -> u32 {
    let mut x = n as f64;
    let mut i = 0;
    while x > 1.0 {
        x = x.log2();
        i += 1;
    }
    i
}

/// `⌈log₂(n)⌉` with `ceil_log2(0) = 0` and `ceil_log2(1) = 0`.
///
/// ```
/// use kdom_core::logstar::ceil_log2;
/// assert_eq!(ceil_log2(1), 0);
/// assert_eq!(ceil_log2(2), 1);
/// assert_eq!(ceil_log2(3), 2);
/// assert_eq!(ceil_log2(8), 3);
/// assert_eq!(ceil_log2(9), 4);
/// ```
pub fn ceil_log2(n: u64) -> u32 {
    if n <= 1 {
        0
    } else {
        64 - (n - 1).leading_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_star_small_values() {
        assert_eq!(log_star(0), 0);
        assert_eq!(log_star(3), 2);
        assert_eq!(log_star(5), 3);
        assert_eq!(log_star(15), 3);
        assert_eq!(log_star(17), 4);
    }

    #[test]
    fn log_star_is_monotone() {
        let mut prev = 0;
        for n in 0..100_000u64 {
            let v = log_star(n);
            assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    fn ceil_log2_matches_float() {
        for n in 1..10_000u64 {
            let expect = (n as f64).log2().ceil() as u32;
            assert_eq!(ceil_log2(n), expect, "n = {n}");
        }
    }
}
