//! Per-node CONGEST implementations of the paper's protocols.
//!
//! Everything in this module runs on the [`kdom_congest`] simulator: each
//! algorithm is a node automaton, rounds are *measured*, and the outputs
//! are cross-checked against the sequential references in the parent
//! modules.
//!
//! * [`bfs`] — synchronous BFS-tree construction (the substrate of
//!   Procedure `Initialize` and of the `Pipeline` convergecast);
//! * [`election`] — O(Diam) max-id leader election, so the compositions
//!   can run without an externally designated root;
//! * [`diamdom`] — `DiamDOM` (Figs. 1–3) over a forest of rooted trees,
//!   with the paper's staggered census pipelining;
//! * [`coloring`] — Cole–Vishkin 6-coloring + MIS on rooted forests, the
//!   measured `O(log* n)` engine behind `BalancedDOM`;
//! * [`executor`] — pluggable execution backends (synchronous vs.
//!   reliable-α-over-faults) for the compositions;
//! * [`fragments`] — `SimpleMST` (§4.3), the phase-scheduled fragment
//!   growth with identity refresh, MWOE convergecast and root transfer;
//! * [`refixup`] — incremental recovery after churn epochs: only the
//!   fragments/clusters an event touched are re-run, with a sequential
//!   certificate and a full-restart fallback;
//! * [`treedp`] — the exact tree k-domination DP as one convergecast +
//!   one claim flood;
//! * [`fastdom`] — distributed `FastDOM_T`/`FastDOM_G` compositions with
//!   a measured within-cluster stage.

pub mod bfs;
pub mod coloring;
pub mod diamdom;
pub mod election;
pub mod executor;
pub mod fastdom;
pub mod fragments;
pub mod partition1;
pub mod refixup;
pub mod treedp;
