//! Pluggable execution backends for the composed algorithms.
//!
//! The paper's reliability assumption is an *assumption*, not part of the
//! algorithms — so the compositions take it as a toggle. [`Executor::Sync`]
//! is the lock-step CONGEST model every protocol was written for;
//! [`Executor::ReliableAlpha`] runs the *same unmodified automata* over an
//! asynchronous network with injected faults, with synchronizer α
//! restoring rounds and the ARQ layer restoring exactly-once delivery.
//! The recovery tests assert that both backends produce byte-identical
//! outputs.

use kdom_congest::{EngineConfig, FaultPlan, Protocol, RunReport, SimError};
use kdom_graph::Graph;

/// How a composition's measured protocol stages are executed.
#[derive(Clone, Debug, Default)]
pub enum Executor {
    /// Lock-step synchronous CONGEST rounds (the default; no overhead).
    #[default]
    Sync,
    /// Synchronizer α over a faulty asynchronous network, recovered by
    /// the reliable (ARQ) transport.
    ReliableAlpha {
        /// Seed for the per-message base delays.
        seed: u64,
        /// Maximum base link delay, in virtual time units (≥ 1).
        max_delay: u64,
        /// The adversary: drops, duplication, extra delay, crashes.
        plan: FaultPlan,
    },
}

impl Executor {
    /// Runs `nodes` to quiescence under this backend. `max_rounds` bounds
    /// synchronous rounds and α pulses alike (α executes exactly one
    /// protocol round per pulse, so the same budget fits both).
    ///
    /// # Errors
    ///
    /// Propagates the simulator's [`SimError`] — budget exhaustion and
    /// stalls carry a [`kdom_congest::StallReport`] naming the stuck nodes.
    pub fn run<P: Protocol>(
        &self,
        g: &Graph,
        nodes: Vec<P>,
        max_rounds: u64,
    ) -> Result<(Vec<P>, RunReport), SimError> {
        self.run_configured(g, nodes, max_rounds, EngineConfig::from_env())
    }

    /// [`Executor::run`] with an explicit round-engine configuration
    /// (scheduler and worker threads) instead of the
    /// `KDOM_THREADS`/`KDOM_SCHED` environment defaults. The α backend
    /// is event-driven rather than round-sharded, so it executes
    /// single-threaded regardless of `config.threads`; outputs are
    /// byte-identical either way.
    ///
    /// # Errors
    ///
    /// Propagates the simulator's [`SimError`], as [`Executor::run`].
    pub fn run_configured<P: Protocol>(
        &self,
        g: &Graph,
        nodes: Vec<P>,
        max_rounds: u64,
        config: EngineConfig,
    ) -> Result<(Vec<P>, RunReport), SimError> {
        match self {
            Executor::Sync => kdom_congest::run_protocol_with(g, nodes, max_rounds, config),
            Executor::ReliableAlpha {
                seed,
                max_delay,
                plan,
            } => {
                let (nodes, report) = kdom_congest::run_protocol_alpha_reliable(
                    g, nodes, *seed, *max_delay, plan, max_rounds,
                )?;
                Ok((nodes, report.into()))
            }
        }
    }

    /// [`Executor::run`] preceded by a phase marker in the trace stream
    /// (`KDOM_TRACE`): composed algorithms label their measured stages
    /// (`"SimpleMST"`, `"BFS"`, `"FastDOM/within"`, …) so the trace
    /// validator can break the absorbed [`RunReport`] totals back down
    /// per phase. A no-op wrapper when tracing is disabled.
    ///
    /// # Errors
    ///
    /// Propagates the simulator's [`SimError`], as [`Executor::run`].
    pub fn run_phase<P: Protocol>(
        &self,
        phase: &str,
        g: &Graph,
        nodes: Vec<P>,
        max_rounds: u64,
    ) -> Result<(Vec<P>, RunReport), SimError> {
        kdom_congest::trace::emit_phase(phase);
        self.run(g, nodes, max_rounds)
    }

    /// [`Executor::run_phase`] with an explicit round-engine
    /// configuration instead of the environment defaults — the
    /// spec-driven path used by the service layer, where the
    /// environment must not leak into a job's execution.
    ///
    /// # Errors
    ///
    /// Propagates the simulator's [`SimError`], as [`Executor::run`].
    pub fn run_phase_configured<P: Protocol>(
        &self,
        phase: &str,
        g: &Graph,
        nodes: Vec<P>,
        max_rounds: u64,
        config: EngineConfig,
    ) -> Result<(Vec<P>, RunReport), SimError> {
        kdom_congest::trace::emit_phase(phase);
        self.run_configured(g, nodes, max_rounds, config)
    }

    /// The watchdog budget equivalent to `sync_rounds` synchronous
    /// rounds under this backend. The α transport spends extra pulses
    /// on ARQ retransmissions and on draining acks *after* the protocol
    /// itself has quiesced, so a schedule-derived synchronous bound is
    /// too tight under loss; the α budget gets generous headroom. The
    /// budget only catches runaway runs — it never changes the outputs
    /// of a run that completes.
    pub fn watchdog_budget(&self, sync_rounds: u64) -> u64 {
        match self {
            Executor::Sync => sync_rounds,
            Executor::ReliableAlpha { .. } => sync_rounds.saturating_mul(64).max(1 << 16),
        }
    }

    /// A short human label for reports and benchmarks.
    pub fn label(&self) -> &'static str {
        match self {
            Executor::Sync => "sync",
            Executor::ReliableAlpha { .. } => "reliable-α",
        }
    }

    /// The backend selected by `KDOM_TRANSPORT`, failing fast on
    /// anything it cannot honor. Unset or `local` is [`Executor::Sync`].
    /// A socket endpoint (`tcp:…`, `host:port`, `unix:/…`) is *valid
    /// but not runnable here*: the in-process `Executor` hands the final
    /// automata back to the caller, which is impossible when they live
    /// in other processes — multi-process runs go through the
    /// `kdom-shard` binary (`kdom_congest::transport`). Naming that
    /// explicitly beats the historical alternative of silently falling
    /// back to an in-process run the user believed was distributed.
    ///
    /// # Panics
    ///
    /// On a socket endpoint (with a pointer to `kdom-shard`) or on any
    /// other unrecognized value, quoting the offending text. The knob
    /// parsing — including this `KDOM_TRANSPORT` validation — lives in
    /// [`kdom_congest::RunSpec::from_env`]; this is the executor view
    /// of that spec.
    pub fn from_env() -> Self {
        Executor::from(&kdom_congest::RunSpec::from_env())
    }
}

impl From<&kdom_congest::RunSpec> for Executor {
    /// The backend a [`kdom_congest::RunSpec`] describes: the spec's
    /// run seed becomes the α executor's delay seed and the spec's
    /// fault plan becomes the adversary.
    fn from(spec: &kdom_congest::RunSpec) -> Executor {
        match spec.exec {
            kdom_congest::ExecSpec::Sync => Executor::Sync,
            kdom_congest::ExecSpec::ReliableAlpha { max_delay } => Executor::ReliableAlpha {
                seed: spec.seed,
                max_delay,
                plan: spec.faults.clone(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::election::ElectionNode;
    use kdom_graph::generators::Family;

    #[test]
    fn backends_agree_on_election() {
        let g = Family::Gnp.generate(24, 7);
        let max_id = g.nodes().map(|v| g.id_of(v)).max().unwrap();
        for exec in [
            Executor::Sync,
            Executor::ReliableAlpha {
                seed: 11,
                max_delay: 3,
                plan: FaultPlan::new(5).drop_prob(0.25),
            },
        ] {
            let nodes = (0..g.node_count()).map(|_| ElectionNode::new()).collect();
            let (nodes, report) = exec.run(&g, nodes, 1_000_000).unwrap();
            assert!(nodes.iter().all(|n| n.best == max_id), "{}", exec.label());
            assert!(report.rounds > 0);
        }
    }

    #[test]
    fn explicit_engine_configs_agree() {
        use kdom_congest::Scheduling;
        let g = Family::Grid.generate(36, 9);
        let max_id = g.nodes().map(|v| g.id_of(v)).max().unwrap();
        let mut reports = Vec::new();
        for (sched, threads) in [(Scheduling::FullScan, 1), (Scheduling::ActiveSet, 4)] {
            let cfg = EngineConfig::default()
                .with_scheduling(sched)
                .with_threads(threads);
            let nodes = (0..g.node_count()).map(|_| ElectionNode::new()).collect();
            let (nodes, report) = Executor::Sync
                .run_configured(&g, nodes, 10_000, cfg)
                .unwrap();
            assert!(nodes.iter().all(|n| n.best == max_id));
            reports.push(report);
        }
        assert_eq!(reports[0], reports[1], "configs must be byte-identical");
    }

    #[test]
    fn from_env_refuses_socket_endpoints_instead_of_falling_back() {
        // a socket endpoint is valid *transport* syntax but the
        // in-process Executor cannot honor it — the panic must point at
        // kdom-shard, not silently run locally
        let err = std::panic::catch_unwind(|| {
            std::env::set_var("KDOM_TRANSPORT", "tcp:127.0.0.1:7000");
            let exec = Executor::from_env();
            std::env::remove_var("KDOM_TRANSPORT");
            exec
        })
        .expect_err("a socket endpoint must not fall back to Sync");
        std::env::remove_var("KDOM_TRANSPORT");
        let msg = err.downcast_ref::<String>().expect("panic message");
        assert!(
            msg.contains("kdom-shard"),
            "no pointer to the launcher: {msg}"
        );
    }

    #[test]
    fn labels_are_distinct() {
        let a = Executor::Sync.label();
        let b = Executor::ReliableAlpha {
            seed: 0,
            max_delay: 1,
            plan: FaultPlan::new(0),
        }
        .label();
        assert_ne!(a, b);
    }
}
