//! Distributed `DiamDOM` (Figs. 1–3) over a forest of rooted trees.
//!
//! Every cluster runs the same schedule, derived locally from the tree
//! height `M` and the paper's staggering:
//!
//! 1. **Initialize** (Fig. 1): a depth wave down, a max-depth echo up, and
//!    a broadcast of `(M, t1)` down, where `t1` is the first census slot.
//! 2. **Census pipelining** (Fig. 2/3): node `v` at depth `i` sends
//!    `counter(v, l)` at round `t1 + l + (M − i)`; the k+1 censuses never
//!    collide (Lemma 2.3) — each node sends exactly one census message per
//!    round, which the CONGEST outbox enforces by construction.
//! 3. The root picks the minimum-count residue `l*` and broadcasts it;
//!    dominators (depth ≡ l*, plus the root as the domination safeguard —
//!    see [`crate::levels`]) flood claims so every node learns its
//!    dominator.
//!
//! If `k ≥ M` the root short-circuits to the root-only mode, exactly as
//! the `k ≥ h` case of Lemma 2.1.

use kdom_congest::wire::{BitReader, BitWriter, Wire, WireError};
use kdom_congest::{Message, NodeCtx, Outbox, Port, Protocol, RunReport};
use kdom_graph::{Graph, NodeId};

use crate::dist::bfs::run_bfs;

/// Which dominating set the cluster root announced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Chosen {
    /// `k ≥ M`: the root alone dominates.
    RootOnly,
    /// The depth-residue class `l` (with root completion).
    Level(u16),
}

impl Wire for Chosen {
    fn encode(&self, w: &mut BitWriter) {
        match self {
            Chosen::RootOnly => w.flag(false),
            Chosen::Level(l) => {
                w.flag(true);
                w.u16(*l);
            }
        }
    }

    fn decode(r: &mut BitReader<'_>) -> Result<Self, WireError> {
        Ok(if r.flag()? {
            Chosen::Level(r.u16()?)
        } else {
            Chosen::RootOnly
        })
    }
}

/// `DiamDOM` protocol messages.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DdMsg {
    /// Depth wave: the sender's depth.
    Depth(u32),
    /// Echo of the maximum depth in the sender's subtree.
    EchoMax(u32),
    /// Tree height and the census start slot.
    MInfo {
        /// Tree height (maximum depth).
        m: u32,
        /// First census send slot for the deepest leaves.
        t1: u64,
    },
    /// One census message: residue and subtree count.
    Census {
        /// The residue class `l`.
        l: u16,
        /// Number of `D_l` members in the sender's subtree.
        count: u32,
    },
    /// The root's choice.
    Decision(Chosen),
    /// Dominator claim carrying the dominator's id.
    Claim(u64),
}

impl Wire for DdMsg {
    fn encode(&self, w: &mut BitWriter) {
        match self {
            DdMsg::Depth(d) => {
                w.tag(0, 6);
                w.u32(*d);
            }
            DdMsg::EchoMax(d) => {
                w.tag(1, 6);
                w.u32(*d);
            }
            DdMsg::MInfo { m, t1 } => {
                w.tag(2, 6);
                w.u32(*m);
                w.word(*t1); // a round number, far below 2^48
            }
            DdMsg::Census { l, count } => {
                w.tag(3, 6);
                w.u16(*l);
                w.u32(*count);
            }
            DdMsg::Decision(c) => {
                w.tag(4, 6);
                c.encode(w);
            }
            DdMsg::Claim(id) => {
                w.tag(5, 6);
                w.word(*id);
            }
        }
    }

    fn decode(r: &mut BitReader<'_>) -> Result<Self, WireError> {
        Ok(match r.tag(6)? {
            0 => DdMsg::Depth(r.u32()?),
            1 => DdMsg::EchoMax(r.u32()?),
            2 => DdMsg::MInfo {
                m: r.u32()?,
                t1: r.word()?,
            },
            3 => DdMsg::Census {
                l: r.u16()?,
                count: r.u32()?,
            },
            4 => DdMsg::Decision(Chosen::decode(r)?),
            5 => DdMsg::Claim(r.word()?),
            value => {
                return Err(WireError::BadTag {
                    context: "DdMsg",
                    value,
                })
            }
        })
    }
}

impl Message for DdMsg {}

/// Static per-node configuration: the cluster tree around this node.
#[derive(Clone, Debug)]
pub struct TreeConfig {
    /// Port to the parent inside the cluster (`None` for the center).
    pub parent: Option<Port>,
    /// Ports to the children inside the cluster.
    pub children: Vec<Port>,
    /// The domination radius `k` (global).
    pub k: usize,
    /// Depth already known from a preceding BFS stage (skips the depth
    /// wave — the paper's Initialize labels depths during the BFS).
    pub preset_depth: Option<u32>,
}

/// Per-node `DiamDOM` automaton.
#[derive(Clone, Debug)]
pub struct DiamDomNode {
    cfg: TreeConfig,
    /// Depth inside the cluster (0 at the center).
    pub depth: Option<u32>,
    /// Cluster tree height, once known.
    pub m: Option<u32>,
    t1: Option<u64>,
    echoes: Vec<u32>,
    census_acc: std::collections::HashMap<u16, u32>,
    root_counts: Vec<u32>,
    /// The root's decision, once known.
    pub chosen: Option<Chosen>,
    /// Whether this node ended up in the dominating set.
    pub is_dominator: bool,
    /// The id of this node's dominator, once claimed.
    pub dominator: Option<u64>,
    claims_sent: bool,
}

impl DiamDomNode {
    /// A fresh automaton for a node whose cluster tree is `cfg`.
    pub fn new(cfg: TreeConfig) -> Self {
        assert!(
            cfg.k < u16::MAX as usize,
            "k must fit the census wire format"
        );
        DiamDomNode {
            cfg,
            depth: None,
            m: None,
            t1: None,
            echoes: Vec::new(),
            census_acc: std::collections::HashMap::new(),
            root_counts: Vec::new(),
            chosen: None,
            is_dominator: false,
            dominator: None,
            claims_sent: false,
        }
    }

    fn is_root(&self) -> bool {
        self.cfg.parent.is_none()
    }

    fn all_tree_ports(&self) -> Vec<Port> {
        let mut p: Vec<Port> = self.cfg.parent.into_iter().collect();
        p.extend(self.cfg.children.iter().copied());
        p
    }

    /// The round at which this node must send its census for residue `l`.
    fn census_slot(&self, l: u64) -> u64 {
        self.t1.expect("census after MInfo")
            + l
            + u64::from(self.m.expect("census after MInfo") - self.depth.expect("depth set"))
    }

    /// The globally derivable claim-phase start round for this cluster.
    fn claim_slot(&self) -> u64 {
        let (m, t1, k) = (
            u64::from(self.m.expect("m known")),
            self.t1.expect("t1 known"),
            self.cfg.k as u64,
        );
        if k >= u64::from(self.m.expect("m known")) {
            t1 + m + 2
        } else {
            t1 + k + 2 * m + 2
        }
    }

    fn my_membership(&self, l: u16) -> u32 {
        let d = self.depth.expect("depth set");
        u32::from(d as usize % (self.cfg.k + 1) == l as usize)
    }

    fn decide_dominatorship(&mut self) {
        let chosen = self.chosen.expect("decision known");
        let d = self.depth.expect("depth known");
        self.is_dominator = match chosen {
            Chosen::RootOnly => self.is_root(),
            Chosen::Level(l) => {
                d as usize % (self.cfg.k + 1) == l as usize || (self.is_root() && l != 0)
            }
        };
    }
}

impl Protocol for DiamDomNode {
    type Msg = DdMsg;

    fn round(&mut self, ctx: &NodeCtx<'_>, inbox: &[(Port, DdMsg)], out: &mut Outbox<DdMsg>) {
        // ——— message intake ———
        let mut claims: Vec<(Port, u64)> = Vec::new();
        for (p, msg) in inbox {
            match msg {
                DdMsg::Depth(dp) => {
                    debug_assert!(self.depth.is_none());
                    self.depth = Some(dp + 1);
                    // forward the wave; leaves echo instead
                    for &c in &self.cfg.children {
                        out.send(c, DdMsg::Depth(dp + 1));
                    }
                    if self.cfg.children.is_empty() {
                        out.send(*p, DdMsg::EchoMax(dp + 1));
                    }
                }
                DdMsg::EchoMax(mx) => {
                    self.echoes.push(*mx);
                    if self.echoes.len() == self.cfg.children.len() {
                        let m = self
                            .echoes
                            .iter()
                            .copied()
                            .max()
                            .unwrap_or(0)
                            .max(self.depth.unwrap_or(0));
                        if let Some(parent) = self.cfg.parent {
                            out.send(parent, DdMsg::EchoMax(m));
                        } else {
                            // root: M is known; schedule the censuses
                            self.m = Some(m);
                            let t1 = ctx.round + u64::from(m) + 2;
                            self.t1 = Some(t1);
                            for &c in &self.cfg.children {
                                out.send(c, DdMsg::MInfo { m, t1 });
                            }
                            if self.cfg.k as u64 >= u64::from(m) {
                                self.chosen = Some(Chosen::RootOnly);
                                self.decide_dominatorship();
                            }
                        }
                    }
                }
                DdMsg::MInfo { m, t1 } => {
                    self.m = Some(*m);
                    self.t1 = Some(*t1);
                    for &c in &self.cfg.children {
                        out.send(c, DdMsg::MInfo { m: *m, t1: *t1 });
                    }
                    if self.cfg.k as u64 >= u64::from(*m) {
                        self.chosen = Some(Chosen::RootOnly);
                        self.decide_dominatorship();
                    }
                }
                DdMsg::Census { l, count } => {
                    if self.is_root() {
                        while self.root_counts.len() <= *l as usize {
                            self.root_counts.push(0);
                        }
                        self.root_counts[*l as usize] += count;
                    } else {
                        *self.census_acc.entry(*l).or_insert(0) += count;
                    }
                }
                DdMsg::Decision(ch) => {
                    self.chosen = Some(*ch);
                    self.decide_dominatorship();
                    for &c in &self.cfg.children {
                        out.send(c, DdMsg::Decision(*ch));
                    }
                }
                DdMsg::Claim(dom) => claims.push((*p, *dom)),
            }
        }

        // ——— round-0 kickoff ———
        if ctx.round == 0 {
            if self.is_root() {
                self.depth = Some(0);
                if self.cfg.children.is_empty() {
                    // single-node cluster
                    self.m = Some(0);
                    self.t1 = Some(1);
                    self.chosen = Some(Chosen::RootOnly);
                    self.is_dominator = true;
                    self.dominator = Some(ctx.id);
                    return;
                }
                if self.cfg.preset_depth.is_none() {
                    for &c in &self.cfg.children {
                        out.send(c, DdMsg::Depth(0));
                    }
                }
            } else if let Some(d) = self.cfg.preset_depth {
                // depths pre-assigned by the BFS stage: leaves start the
                // max-depth echo immediately, no depth wave needed
                self.depth = Some(d);
                if self.cfg.children.is_empty() {
                    out.send(self.cfg.parent.expect("non-root"), DdMsg::EchoMax(d));
                }
            }
        }

        // ——— scheduled census sends (non-root, census mode) ———
        if let (Some(m), Some(_), false) = (self.m, self.t1, self.is_root()) {
            if (self.cfg.k as u64) < u64::from(m) {
                let k = self.cfg.k as u64;
                for l in 0..=k {
                    if ctx.round == self.census_slot(l) {
                        let l = l as u16;
                        let count = self.my_membership(l) + self.census_acc.remove(&l).unwrap_or(0);
                        out.send(
                            self.cfg.parent.expect("non-root"),
                            DdMsg::Census { l, count },
                        );
                    }
                }
            }
        }

        // ——— root decision after the last census ———
        if self.is_root() && self.chosen.is_none() {
            if let (Some(m), Some(t1)) = (self.m, self.t1) {
                let k = self.cfg.k as u64;
                if k < u64::from(m) && ctx.round == t1 + k + u64::from(m) {
                    // add the root's own membership to each residue count
                    while self.root_counts.len() <= self.cfg.k {
                        self.root_counts.push(0);
                    }
                    for l in 0..=self.cfg.k {
                        self.root_counts[l] += self.my_membership(l as u16);
                    }
                    let l_star = self
                        .root_counts
                        .iter()
                        .enumerate()
                        .min_by_key(|&(_, c)| *c)
                        .map(|(l, _)| l as u16)
                        .expect("k+1 censuses");
                    let ch = Chosen::Level(l_star);
                    self.chosen = Some(ch);
                    self.decide_dominatorship();
                    for &c in &self.cfg.children {
                        out.send(c, DdMsg::Decision(ch));
                    }
                }
            }
        }

        // ——— claim phase ———
        if self.m.is_some() && self.t1.is_some() && self.chosen.is_some() {
            let slot = self.claim_slot();
            if self.is_dominator && !self.claims_sent && ctx.round >= slot {
                self.dominator = Some(ctx.id);
                for p in self.all_tree_ports() {
                    out.send(p, DdMsg::Claim(ctx.id));
                }
                self.claims_sent = true;
            }
        }
        if self.dominator.is_none() {
            if let Some(&(from, dom)) = claims.first() {
                self.dominator = Some(dom);
                for p in self.all_tree_ports() {
                    if p != from {
                        out.send(p, DdMsg::Claim(dom));
                    }
                }
            }
        }
    }

    fn is_done(&self) -> bool {
        self.dominator.is_some()
    }
}

/// Output of a standalone `DiamDOM` run on a connected graph.
#[derive(Clone, Debug)]
pub struct DiamDomRun {
    /// The dominating set.
    pub dominators: Vec<NodeId>,
    /// Each node's dominator.
    pub dominator_of: Vec<NodeId>,
    /// The root's decision.
    pub chosen: Chosen,
    /// BFS stage report.
    pub bfs_report: RunReport,
    /// `DiamDOM` stage report.
    pub dd_report: RunReport,
}

impl DiamDomRun {
    /// Total measured rounds (BFS + DiamDOM).
    pub fn total_rounds(&self) -> u64 {
        self.bfs_report.rounds + self.dd_report.rounds
    }
}

/// Runs the full distributed `DiamDOM` on a connected graph: BFS from
/// `root` (Procedure `Initialize`'s first half), then the census protocol
/// on the BFS tree.
///
/// # Panics
///
/// Panics if the graph is disconnected or the protocol exceeds its round
/// budget (cannot happen on connected graphs).
pub fn run_diamdom(g: &Graph, root: NodeId, k: usize) -> DiamDomRun {
    let (bfs, bfs_report) = run_bfs(g, root);
    let nodes: Vec<DiamDomNode> = bfs
        .iter()
        .map(|b| {
            DiamDomNode::new(TreeConfig {
                parent: b.parent,
                children: b.children.clone(),
                k,
                preset_depth: b.depth,
            })
        })
        .collect();
    let budget = 20 * (g.node_count() as u64 + k as u64) + 64;
    let (nodes, dd_report) =
        kdom_congest::run_protocol(g, nodes, budget).expect("DiamDOM quiesces");
    let id_to_node: std::collections::HashMap<u64, NodeId> =
        g.nodes().map(|v| (g.id_of(v), v)).collect();
    let dominators: Vec<NodeId> = g.nodes().filter(|&v| nodes[v.0].is_dominator).collect();
    let dominator_of: Vec<NodeId> = nodes
        .iter()
        .map(|n| id_to_node[&n.dominator.expect("all nodes claimed")])
        .collect();
    let chosen = nodes[root.0].chosen.expect("root decided");
    DiamDomRun {
        dominators,
        dominator_of,
        chosen,
        bfs_report,
        dd_report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{check_dominating_size, check_k_dominating};
    use kdom_graph::generators::{gnp_connected, path, random_tree, star};
    use kdom_graph::generators::{Family, GenConfig};
    use kdom_graph::properties::diameter;

    #[test]
    fn path_census_matches_reference() {
        let g = path(&GenConfig::with_seed(10, 0));
        let run = run_diamdom(&g, NodeId(0), 2);
        // sequential reference: D_1 is smallest (3 of depths 1,4,7)
        assert_eq!(run.chosen, Chosen::Level(1));
        check_k_dominating(&g, &run.dominators, 2).unwrap();
    }

    #[test]
    fn root_only_mode_on_star() {
        let g = star(&GenConfig::with_seed(30, 1));
        let run = run_diamdom(&g, NodeId(0), 3);
        assert_eq!(run.chosen, Chosen::RootOnly);
        assert_eq!(run.dominators, vec![NodeId(0)]);
        assert!(run.dominator_of.iter().all(|&d| d == NodeId(0)));
    }

    #[test]
    fn census_counts_match_sequential_choice() {
        for seed in 0..10u64 {
            let n = 30 + (seed as usize) * 7;
            let g = random_tree(&GenConfig::with_seed(n, seed));
            let k = 2 + (seed as usize) % 3;
            let run = run_diamdom(&g, NodeId(0), k);
            let seq = crate::levels::existence_dominating_set(&g, NodeId(0), k);
            match (run.chosen, seq.level) {
                (Chosen::RootOnly, None) => {}
                (Chosen::Level(l), Some(sl)) => {
                    assert_eq!(l as usize, sl, "n={n} k={k}");
                }
                other => panic!("mode mismatch {other:?}"),
            }
            check_k_dominating(&g, &run.dominators, k).unwrap();
            // root completion costs at most one extra dominator
            let bound = crate::verify::dominating_size_bound(n, k) + 1;
            assert!(run.dominators.len() <= bound);
        }
    }

    #[test]
    fn rounds_within_lemma_23_budget() {
        for fam in Family::ALL {
            let g = fam.generate(80, 4);
            for k in [1usize, 3, 8] {
                let run = run_diamdom(&g, NodeId(0), k);
                let diam = u64::from(diameter(&g));
                let bound = 5 * diam + 2 * k as u64 + 12;
                assert!(
                    run.total_rounds() <= bound,
                    "{fam} k={k}: {} rounds > {bound}",
                    run.total_rounds()
                );
                check_k_dominating(&g, &run.dominators, k).unwrap();
            }
        }
    }

    #[test]
    fn all_nodes_get_nearest_tree_dominators() {
        let g = gnp_connected(&GenConfig::with_seed(70, 9), 0.07);
        let run = run_diamdom(&g, NodeId(0), 3);
        check_k_dominating(&g, &run.dominators, 3).unwrap();
        // every node's claimed dominator is a dominator
        for d in &run.dominator_of {
            assert!(run.dominators.contains(d));
        }
    }

    #[test]
    fn size_bound_without_root_completion_when_l_zero() {
        // When the chosen level is 0 the root is itself a dominator and
        // the bound is exactly Lemma 2.1's.
        let g = path(&GenConfig::with_seed(30, 3));
        for k in 1..6 {
            let run = run_diamdom(&g, NodeId(0), k);
            if run.chosen == Chosen::Level(0) {
                check_dominating_size(30, k, run.dominators.len()).unwrap();
            }
        }
    }

    #[test]
    fn two_node_graph() {
        let mut b = kdom_graph::GraphBuilder::new(2);
        b.add_edge(NodeId(0), NodeId(1), 1);
        let g = b.build();
        let run = run_diamdom(&g, NodeId(0), 1);
        assert_eq!(run.chosen, Chosen::RootOnly);
        assert_eq!(run.dominators, vec![NodeId(0)]);
    }
}
