//! Distributed `BalancedDOM` (Fig. 4) on a forest of rooted trees —
//! Cole–Vishkin coloring, MIS by color class, and the balancing fix-ups,
//! all as one fixed-schedule CONGEST protocol with *measured* rounds.
//!
//! The schedule is derived locally from the id width: with `B`-bit
//! identifiers, [`cv_schedule`] computes the number of Cole–Vishkin
//! iterations that provably reach < 6 colors (the `O(log* n)` term); the
//! MIS sweep then takes 2 rounds per color class and the Fig. 4 steps a
//! constant 4 more. Nothing in the protocol depends on global
//! coordination beyond knowing the id width — the standard "nodes know
//! n" assumption.

use kdom_congest::wire::{BitReader, BitWriter, Wire, WireError};
use kdom_congest::{Message, NodeCtx, Outbox, Port, Protocol};

/// Number of Cole–Vishkin iterations needed to reduce a proper coloring
/// with values below `2^bits` to fewer than 6 colors.
///
/// One iteration maps a coloring with values in `0..2^b` to values
/// `≤ 2(b-1)+1`; iterating this recurrence until the value space is
/// within `0..6` gives the `O(log* n)` iteration count.
///
/// ```
/// use kdom_core::dist::coloring::cv_schedule;
/// assert_eq!(cv_schedule(48), 4);
/// assert_eq!(cv_schedule(64), 4);
/// assert_eq!(cv_schedule(3), 1);
/// ```
pub fn cv_schedule(bits: u32) -> u32 {
    let mut space: u64 = 1u64 << bits.min(63); // colors live in 0..space
    let mut iters = 0;
    while space > 6 {
        let b = 64 - (space - 1).leading_zeros(); // bits of space-1
        space = u64::from(2 * (b - 1) + 1) + 1;
        iters += 1;
    }
    iters
}

/// One Cole–Vishkin recoloring step.
fn cv_step(own: u64, parent: u64) -> u64 {
    let diff = own ^ parent;
    debug_assert_ne!(diff, 0, "neighbors must have different colors");
    let i = diff.trailing_zeros();
    u64::from(2 * i) + ((own >> i) & 1)
}

/// `BalancedDOM` messages.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BdMsg {
    /// Current Cole–Vishkin color (starts as an id, so one CONGEST word).
    Color(u64),
    /// "I joined the MIS."
    Join,
    /// "I choose you as my dominator" (step 1/2 of Fig. 4).
    Choose,
    /// "I am a deserted singleton; you become a dominator" (step 2).
    Select,
    /// "I just added myself to D" (step 3).
    NewDom,
}

impl Wire for BdMsg {
    fn encode(&self, w: &mut BitWriter) {
        match self {
            BdMsg::Color(c) => {
                w.tag(0, 5);
                w.word(*c);
            }
            BdMsg::Join => w.tag(1, 5),
            BdMsg::Choose => w.tag(2, 5),
            BdMsg::Select => w.tag(3, 5),
            BdMsg::NewDom => w.tag(4, 5),
        }
    }

    fn decode(r: &mut BitReader<'_>) -> Result<Self, WireError> {
        Ok(match r.tag(5)? {
            0 => BdMsg::Color(r.word()?),
            1 => BdMsg::Join,
            2 => BdMsg::Choose,
            3 => BdMsg::Select,
            4 => BdMsg::NewDom,
            value => {
                return Err(WireError::BadTag {
                    context: "BdMsg",
                    value,
                })
            }
        })
    }
}

impl Message for BdMsg {}

/// Static configuration of a node for one `BalancedDOM` run.
#[derive(Clone, Debug)]
pub struct BalancedConfig {
    /// Port to the parent in the (oriented) tree; `None` at roots.
    pub parent: Option<Port>,
    /// Ports to the children.
    pub children: Vec<Port>,
    /// Id width in bits (all nodes must agree; drives the schedule).
    pub id_bits: u32,
}

/// The per-node `BalancedDOM` automaton.
#[derive(Clone, Debug)]
pub struct BalancedNode {
    cfg: BalancedConfig,
    /// Final Cole–Vishkin color (< 6 after the schedule).
    pub color: u64,
    parent_color: Option<u64>,
    /// MIS membership after the sweep.
    pub in_mis: bool,
    blocked: bool,
    joined_ports: Vec<Port>,
    chooser_ports: Vec<Port>,
    /// Whether this node ends up a cluster center (dominator).
    pub is_center: bool,
    /// Port toward this node's center (`None` if it is the center).
    pub center_port: Option<Port>,
    /// The center's unique id (own id for centers).
    pub center_id: Option<u64>,
    finished: bool,
}

impl BalancedNode {
    /// A fresh automaton. Every tree in the forest must have ≥ 2 nodes.
    pub fn new(cfg: BalancedConfig) -> Self {
        BalancedNode {
            cfg,
            color: 0,
            parent_color: None,
            in_mis: false,
            blocked: false,
            joined_ports: Vec::new(),
            chooser_ports: Vec::new(),
            is_center: false,
            center_port: None,
            center_id: None,
            finished: false,
        }
    }

    fn tree_ports(&self) -> Vec<Port> {
        let mut p: Vec<Port> = self.cfg.parent.into_iter().collect();
        p.extend(self.cfg.children.iter().copied());
        p
    }
}

impl Protocol for BalancedNode {
    type Msg = BdMsg;

    fn round(&mut self, ctx: &NodeCtx<'_>, inbox: &[(Port, BdMsg)], out: &mut Outbox<BdMsg>) {
        let iters = u64::from(cv_schedule(self.cfg.id_bits));
        let mis_start = iters + 1; // colors settle after round `iters`
        let step_x = mis_start + 12; // Fig. 4 steps occupy x .. x+3

        // ——— intake ———
        let mut selects = false;
        let mut newdom_ports: Vec<Port> = Vec::new();
        for (p, m) in inbox {
            match m {
                BdMsg::Color(c) => self.parent_color = Some(*c),
                BdMsg::Join => {
                    self.blocked = true;
                    if !self.joined_ports.contains(p) {
                        self.joined_ports.push(*p);
                    }
                }
                BdMsg::Choose => self.chooser_ports.push(*p),
                BdMsg::Select => selects = true,
                BdMsg::NewDom => newdom_ports.push(*p),
            }
        }

        // ——— Cole–Vishkin iterations ———
        if ctx.round == 0 {
            self.color = ctx.id;
        }
        if ctx.round >= 1 && ctx.round <= iters {
            let pc = match self.cfg.parent {
                Some(_) => self.parent_color.expect("parent sent its color"),
                None => self.color ^ 1,
            };
            self.color = cv_step(self.color, pc);
        }
        if ctx.round < iters {
            for &c in &self.cfg.children {
                out.send(c, BdMsg::Color(self.color));
            }
        }

        // ——— MIS by color class ———
        if ctx.round >= mis_start && ctx.round < mis_start + 12 {
            let slot = ctx.round - mis_start;
            if slot.is_multiple_of(2) {
                let c = slot / 2;
                if self.color == c && !self.blocked && !self.in_mis {
                    self.in_mis = true;
                    for p in self.tree_ports() {
                        out.send(p, BdMsg::Join);
                    }
                }
            }
        }

        // ——— Fig. 4 steps ———
        if ctx.round == step_x && !self.in_mis {
            // step (1): pick an MIS neighbor (prefer parent)
            let pick = self
                .cfg
                .parent
                .filter(|p| self.joined_ports.contains(p))
                .or_else(|| {
                    let mut cs: Vec<Port> = self
                        .cfg
                        .children
                        .iter()
                        .copied()
                        .filter(|c| self.joined_ports.contains(c))
                        .collect();
                    cs.sort();
                    cs.first().copied()
                })
                .expect("MIS maximality: some neighbor joined");
            self.center_port = Some(pick);
            self.center_id = Some(ctx.neighbor_id(pick));
            out.send(pick, BdMsg::Choose);
        }
        if ctx.round == step_x + 1 && self.in_mis {
            if self.chooser_ports.is_empty() {
                // step (2): deserted singleton — follow a (non-MIS) neighbor
                let mut ports = self.tree_ports();
                ports.sort();
                let u = *ports.first().expect("components have ≥ 2 nodes");
                self.center_port = Some(u);
                self.center_id = Some(ctx.neighbor_id(u));
                out.send(u, BdMsg::Select);
            } else {
                self.is_center = true;
                self.center_id = Some(ctx.id);
            }
        }
        if ctx.round == step_x + 2 && selects {
            // step (3): a selected node adds itself to D
            self.is_center = true;
            self.center_port = None;
            self.center_id = Some(ctx.id);
            for p in self.tree_ports() {
                out.send(p, BdMsg::NewDom);
            }
        }
        if ctx.round == step_x + 3 {
            // step (4): a center whose choosers all left follows one
            if self.in_mis && self.is_center {
                self.chooser_ports.retain(|p| !newdom_ports.contains(p));
                if self.chooser_ports.is_empty() {
                    let mut np = newdom_ports.clone();
                    np.sort();
                    let u = *np.first().expect("Lemma 3.3: a departed member exists");
                    self.is_center = false;
                    self.center_port = Some(u);
                    self.center_id = Some(ctx.neighbor_id(u));
                }
            }
            self.finished = true;
        }
        if ctx.round > step_x + 3 {
            self.finished = true;
        }
    }

    fn is_done(&self) -> bool {
        self.finished
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdom_graph::generators::{balanced_tree, caterpillar, path, random_tree, star, GenConfig};
    use kdom_graph::{Graph, NodeId, RootedTree};

    fn port_to(g: &Graph, v: NodeId, to: NodeId) -> Port {
        Port(
            g.neighbors(v)
                .iter()
                .position(|a| a.to == to)
                .expect("tree edge present"),
        )
    }

    fn run(g: &Graph) -> (Vec<BalancedNode>, kdom_congest::RunReport) {
        let t = RootedTree::from_graph(g, NodeId(0));
        let nodes: Vec<BalancedNode> = (0..g.node_count())
            .map(|v| {
                let v = NodeId(v);
                let parent = t.parent(v).map(|p| port_to(g, v, p));
                let children = t.children(v).iter().map(|&c| port_to(g, v, c)).collect();
                BalancedNode::new(BalancedConfig {
                    parent,
                    children,
                    id_bits: 48,
                })
            })
            .collect();
        kdom_congest::run_protocol(g, nodes, 10_000).expect("BalancedDOM quiesces")
    }

    fn check_output(g: &Graph, nodes: &[BalancedNode]) {
        let n = g.node_count();
        let mut size = std::collections::HashMap::new();
        for (v, node) in nodes.iter().enumerate() {
            let center = match node.center_port {
                None => {
                    assert!(node.is_center, "node {v} has no center");
                    NodeId(v)
                }
                Some(p) => g.neighbors(NodeId(v))[p.0].to,
            };
            assert!(nodes[center.0].is_center, "{v}'s center is not a center");
            assert_eq!(node.center_id, Some(g.id_of(center)));
            *size.entry(center).or_insert(0usize) += 1;
        }
        let centers = size.len();
        assert!(centers <= n / 2, "|D| = {centers} > ⌊{n}/2⌋");
        for (c, s) in size {
            assert!(s >= 2, "cluster of {c:?} is a singleton");
        }
    }

    #[test]
    fn balanced_on_tree_families() {
        for g in [
            path(&GenConfig::with_seed(60, 1)),
            star(&GenConfig::with_seed(60, 2)),
            balanced_tree(&GenConfig::with_seed(60, 3), 3),
            caterpillar(&GenConfig::with_seed(60, 4), 0.3),
        ] {
            let (nodes, _) = run(&g);
            check_output(&g, &nodes);
        }
    }

    #[test]
    fn many_random_trees() {
        for seed in 0..25u64 {
            let n = 2 + (seed as usize * 13) % 150;
            let g = random_tree(&GenConfig::with_seed(n, seed));
            let (nodes, _) = run(&g);
            check_output(&g, &nodes);
        }
    }

    #[test]
    fn rounds_are_constant_in_n() {
        // O(log* n) with 48-bit ids is a fixed schedule: rounds must not
        // grow with n.
        let mut rounds = Vec::new();
        for n in [50usize, 500, 5000] {
            let g = random_tree(&GenConfig::with_seed(n, 3));
            let (_, report) = run(&g);
            rounds.push(report.rounds);
        }
        assert_eq!(rounds[0], rounds[1]);
        assert_eq!(rounds[1], rounds[2]);
        assert!(rounds[0] <= u64::from(cv_schedule(48)) + 12 + 4 + 3);
    }

    #[test]
    fn colors_proper_after_schedule() {
        let g = path(&GenConfig::with_seed(200, 9));
        let (nodes, _) = run(&g);
        let t = RootedTree::from_graph(&g, NodeId(0));
        for v in 0..200 {
            assert!(nodes[v].color < 6, "color {} too big", nodes[v].color);
            if let Some(p) = t.parent(NodeId(v)) {
                assert_ne!(nodes[v].color, nodes[p.0].color, "improper edge {v}");
            }
        }
    }

    #[test]
    fn mis_is_valid() {
        let g = random_tree(&GenConfig::with_seed(120, 11));
        let (nodes, _) = run(&g);
        let t = RootedTree::from_graph(&g, NodeId(0));
        let parent: Vec<Option<usize>> =
            (0..120).map(|v| t.parent(NodeId(v)).map(|p| p.0)).collect();
        let mis: Vec<bool> = nodes.iter().map(|n| n.in_mis).collect();
        assert!(crate::coloring::is_mis(&parent, &mis));
    }

    #[test]
    fn two_nodes() {
        let mut b = kdom_graph::GraphBuilder::new(2);
        b.add_edge(NodeId(0), NodeId(1), 1);
        b.ids(vec![97, 1042]);
        let g = b.build();
        let (nodes, _) = run(&g);
        check_output(&g, &nodes);
        assert_eq!(nodes.iter().filter(|n| n.is_center).count(), 1);
    }
}
