//! Distributed `FastDOM_T` / `FastDOM_G` compositions with a *measured*
//! within-cluster stage.
//!
//! The `DOMPartition` stage still runs on the charged cluster engine (see
//! DESIGN.md), but everything around it executes per-node on the
//! simulator: `SimpleMST` (for the graph variant) and the within-cluster
//! k-domination — either the faithful `DiamDOM` censuses
//! ([`crate::dist::diamdom`]) or the exact DP ([`crate::dist::treedp`])
//! — run forest-parallel over all clusters at once, and the measured
//! rounds are reported separately from the charge.

use std::collections::VecDeque;

use kdom_congest::{EngineConfig, Port, RunReport};
use kdom_graph::{Graph, NodeId};

use crate::cluster::Charge;
use crate::clustering::Clustering;
use crate::dist::diamdom::{DiamDomNode, TreeConfig};
use crate::dist::executor::Executor;
use crate::dist::fragments::run_simple_mst_configured;
use crate::dist::treedp::{DpConfig, TreeDpNode};
use crate::fastdom::WithinCluster;
use crate::partition::dom_partition;

/// Result of a distributed `FastDOM` run.
#[derive(Clone, Debug)]
pub struct DistFastDom {
    /// The final radius-≤k partition around the dominators.
    pub clustering: Clustering,
    /// Measured rounds of the `SimpleMST` stage (0 for the tree variant).
    pub fragment_rounds: u64,
    /// Charged rounds of the `DOMPartition` stage.
    pub partition_charge: Charge,
    /// Measured report of the within-cluster stage (all clusters in
    /// parallel).
    pub within_report: RunReport,
}

impl DistFastDom {
    /// The k-dominating set.
    pub fn dominators(&self) -> &[NodeId] {
        self.clustering.centers()
    }

    /// Total rounds: measured stages plus the partition charge.
    pub fn total_rounds(&self) -> u64 {
        self.fragment_rounds + self.partition_charge.rounds + self.within_report.rounds
    }
}

/// Per-node cluster-tree structure: parent/children ports plus depth,
/// derived from a (center, members) partition over given tree edges.
struct ClusterTreePlan {
    parent: Vec<Option<Port>>,
    children: Vec<Vec<Port>>,
    depth: Vec<u32>,
}

fn plan_cluster_trees(
    g: &Graph,
    clusters: &[(NodeId, Vec<NodeId>)],
    tree_adj: &[Vec<NodeId>],
) -> ClusterTreePlan {
    let n = g.node_count();
    let mut cluster_of = vec![usize::MAX; n];
    for (i, (_, members)) in clusters.iter().enumerate() {
        for &v in members {
            cluster_of[v.0] = i;
        }
    }
    let port_to = |v: NodeId, w: NodeId| {
        Port(
            g.neighbors(v)
                .iter()
                .position(|a| a.to == w)
                .expect("tree edge exists in the graph"),
        )
    };
    let mut parent = vec![None; n];
    let mut children = vec![Vec::new(); n];
    let mut depth = vec![0u32; n];
    for (i, (center, members)) in clusters.iter().enumerate() {
        let mut seen = std::collections::HashSet::new();
        seen.insert(*center);
        let mut q = VecDeque::from([*center]);
        let mut reached = 1usize;
        while let Some(u) = q.pop_front() {
            for &w in &tree_adj[u.0] {
                if cluster_of[w.0] == i && seen.insert(w) {
                    parent[w.0] = Some(port_to(w, u));
                    children[u.0].push(port_to(u, w));
                    depth[w.0] = depth[u.0] + 1;
                    reached += 1;
                    q.push_back(w);
                }
            }
        }
        assert_eq!(reached, members.len(), "cluster must be tree-connected");
    }
    ClusterTreePlan {
        parent,
        children,
        depth,
    }
}

/// Runs the within-cluster stage distributedly over all clusters and
/// returns (per-node dominator id, measured report).
fn run_within(
    g: &Graph,
    plan: &ClusterTreePlan,
    k: usize,
    solver: WithinCluster,
    exec: &Executor,
    config: EngineConfig,
) -> (Vec<u64>, RunReport) {
    let n = g.node_count();
    let budget = 30 * (n as u64 + k as u64) + 128;
    match solver {
        WithinCluster::DiamDom => {
            let nodes: Vec<DiamDomNode> = (0..n)
                .map(|v| {
                    DiamDomNode::new(TreeConfig {
                        parent: plan.parent[v],
                        children: plan.children[v].clone(),
                        k,
                        preset_depth: Some(plan.depth[v]),
                    })
                })
                .collect();
            let (nodes, report) = exec
                .run_phase_configured("FastDOM/within", g, nodes, budget, config)
                .unwrap_or_else(|e| panic!("DiamDOM stage failed: {e}"));
            (
                nodes
                    .iter()
                    .map(|x| x.dominator.expect("all nodes claimed"))
                    .collect(),
                report,
            )
        }
        WithinCluster::OptimalDp => {
            let nodes: Vec<TreeDpNode> = (0..n)
                .map(|v| {
                    TreeDpNode::new(DpConfig {
                        parent: plan.parent[v],
                        children: plan.children[v].clone(),
                        k,
                    })
                })
                .collect();
            let (nodes, report) = exec
                .run_phase_configured("FastDOM/within", g, nodes, budget, config)
                .unwrap_or_else(|e| panic!("DP stage failed: {e}"));
            (
                nodes
                    .iter()
                    .map(|x| x.dominator.expect("all nodes claimed"))
                    .collect(),
                report,
            )
        }
    }
}

fn clustering_from_dominators(g: &Graph, dominator_id: &[u64]) -> Clustering {
    let id_to_node: std::collections::HashMap<u64, NodeId> =
        g.nodes().map(|v| (g.id_of(v), v)).collect();
    let mut centers: Vec<NodeId> = Vec::new();
    let mut index_of = std::collections::HashMap::new();
    for v in g.nodes() {
        if dominator_id[v.0] == g.id_of(v) {
            index_of.insert(v, centers.len());
            centers.push(v);
        }
    }
    let cluster_of: Vec<usize> = g
        .nodes()
        .map(|v| index_of[&id_to_node[&dominator_id[v.0]]])
        .collect();
    Clustering::new(cluster_of, centers)
}

/// Distributed `FastDOM_T` on a tree graph.
///
/// # Panics
///
/// Panics if `g` is not a tree.
pub fn fast_dom_t_distributed(g: &Graph, k: usize, solver: WithinCluster) -> DistFastDom {
    fast_dom_t_distributed_on(g, k, solver, &Executor::Sync)
}

/// [`fast_dom_t_distributed`] on a chosen execution backend: the
/// measured within-cluster stage runs the same automata under the
/// backend (e.g. reliable α over faulty links).
///
/// # Panics
///
/// Panics if `g` is not a tree or a protocol stage fails.
pub fn fast_dom_t_distributed_on(
    g: &Graph,
    k: usize,
    solver: WithinCluster,
    exec: &Executor,
) -> DistFastDom {
    assert!(
        kdom_graph::properties::is_tree(g),
        "FastDOM_T requires a tree"
    );
    let nodes: Vec<NodeId> = g.nodes().collect();
    let edges: Vec<(NodeId, NodeId)> = g.edges().iter().map(|e| (e.u, e.v)).collect();
    let part = dom_partition(g, nodes, &edges, k);
    kdom_congest::trace::emit_phase("DOMPartition");
    kdom_congest::trace::emit_charge(part.charge.rounds);
    let mut tree_adj: Vec<Vec<NodeId>> = vec![Vec::new(); g.node_count()];
    for &(u, v) in &edges {
        tree_adj[u.0].push(v);
        tree_adj[v.0].push(u);
    }
    let plan = plan_cluster_trees(g, &part.clusters, &tree_adj);
    let (dominator_id, within_report) =
        run_within(g, &plan, k, solver, exec, EngineConfig::from_env());
    DistFastDom {
        clustering: clustering_from_dominators(g, &dominator_id),
        fragment_rounds: 0,
        partition_charge: part.charge,
        within_report,
    }
}

/// Distributed `FastDOM_G` on a connected graph: measured `SimpleMST`
/// stage, charged `DOMPartition` stage, measured within-cluster stage.
pub fn fast_dom_g_distributed(g: &Graph, k: usize, solver: WithinCluster) -> DistFastDom {
    fast_dom_g_distributed_on(g, k, solver, &Executor::Sync)
}

/// [`fast_dom_g_distributed`] on a chosen execution backend: both
/// measured stages (`SimpleMST` and within-cluster) run the same automata
/// under the backend (e.g. reliable α over faulty links).
///
/// # Panics
///
/// Panics if a protocol stage fails.
pub fn fast_dom_g_distributed_on(
    g: &Graph,
    k: usize,
    solver: WithinCluster,
    exec: &Executor,
) -> DistFastDom {
    fast_dom_g_distributed_configured(g, k, solver, exec, EngineConfig::from_env()).0
}

/// [`fast_dom_g_distributed_on`] with an explicit engine configuration
/// instead of the environment defaults, also returning the absorbed
/// [`RunReport`] of the whole composition — the measured `SimpleMST`
/// report, the charged `DOMPartition` rounds, and the measured
/// within-cluster report. This is the spec-driven entry the service
/// layer schedules and caches.
///
/// # Panics
///
/// Panics if a protocol stage fails.
pub fn fast_dom_g_distributed_configured(
    g: &Graph,
    k: usize,
    solver: WithinCluster,
    exec: &Executor,
    config: EngineConfig,
) -> (DistFastDom, RunReport) {
    let fragments = run_simple_mst_configured(g, k, exec, config);
    let mut members: Vec<Vec<NodeId>> = vec![Vec::new(); fragments.roots.len()];
    for v in g.nodes() {
        members[fragments.fragment_of[v.0]].push(v);
    }
    let mut frag_edges: Vec<Vec<(NodeId, NodeId)>> = vec![Vec::new(); fragments.roots.len()];
    let mut tree_adj: Vec<Vec<NodeId>> = vec![Vec::new(); g.node_count()];
    for &e in &fragments.tree_edges {
        let er = g.edge(e);
        frag_edges[fragments.fragment_of[er.u.0]].push((er.u, er.v));
        tree_adj[er.u.0].push(er.v);
        tree_adj[er.v.0].push(er.u);
    }
    let mut charge = Charge::default();
    let mut all_clusters = Vec::new();
    for (f, mem) in members.into_iter().enumerate() {
        let res = dom_partition(g, mem, &frag_edges[f], k);
        if res.charge.rounds > charge.rounds {
            charge = res.charge;
        }
        all_clusters.extend(res.clusters);
    }
    kdom_congest::trace::emit_phase("DOMPartition");
    kdom_congest::trace::emit_charge(charge.rounds);
    let plan = plan_cluster_trees(g, &all_clusters, &tree_adj);
    let (dominator_id, within_report) = run_within(g, &plan, k, solver, exec, config);
    let mut report = fragments.report.clone();
    report.charge_rounds(charge.rounds);
    report.absorb(&within_report);
    (
        DistFastDom {
            clustering: clustering_from_dominators(g, &dominator_id),
            fragment_rounds: fragments.report.rounds,
            partition_charge: charge,
            within_report,
        },
        report,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{check_fastdom_output, check_k_dominating};
    use kdom_graph::generators::Family;

    #[test]
    fn distributed_fastdom_t_meets_theorem_32() {
        for fam in Family::TREES {
            for k in [2usize, 5] {
                let g = fam.generate(150, 7);
                let res = fast_dom_t_distributed(&g, k, WithinCluster::OptimalDp);
                check_fastdom_output(&g, &res.clustering, k)
                    .unwrap_or_else(|e| panic!("{fam} k={k}: {e}"));
                assert!(
                    res.within_report.rounds > 0,
                    "{fam}: stage must be measured"
                );
            }
        }
    }

    #[test]
    fn distributed_fastdom_t_diamdom_solver() {
        for fam in Family::TREES {
            let k = 4;
            let g = fam.generate(120, 9);
            let res = fast_dom_t_distributed(&g, k, WithinCluster::DiamDom);
            check_k_dominating(&g, res.dominators(), k).unwrap_or_else(|e| panic!("{fam}: {e}"));
            crate::verify::check_clusters(&g, &res.clustering, 1, k as u32)
                .unwrap_or_else(|e| panic!("{fam}: {e}"));
        }
    }

    #[test]
    fn distributed_fastdom_g_meets_theorem_44() {
        for fam in [Family::Grid, Family::Gnp] {
            for k in [3usize, 6] {
                let g = fam.generate(180, 11);
                let res = fast_dom_g_distributed(&g, k, WithinCluster::OptimalDp);
                check_fastdom_output(&g, &res.clustering, k)
                    .unwrap_or_else(|e| panic!("{fam} k={k}: {e}"));
                assert!(res.fragment_rounds > 0);
            }
        }
    }

    #[test]
    fn distributed_matches_sequential_dominator_count_with_dp() {
        // both run the same partition + the same deterministic DP, so
        // the dominating sets coincide exactly
        let g = Family::RandomTree.generate(130, 13);
        let k = 4;
        let dist = fast_dom_t_distributed(&g, k, WithinCluster::OptimalDp);
        let seq = crate::fastdom::fast_dom_t(&g, k, WithinCluster::OptimalDp);
        let mut a = dist.dominators().to_vec();
        let mut b = seq.dominators().to_vec();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn repeated_runs_are_bit_identical() {
        // regression: BalancedDOM contraction once iterated a HashMap, so
        // two runs in the same process could disagree on cluster ids and
        // hence on DP tie-breaks — the fault-recovery suite needs
        // run-to-run determinism to compare backends
        let g = Family::RandomTree.generate(60, 30);
        let a = fast_dom_t_distributed(&g, 2, WithinCluster::OptimalDp);
        let b = fast_dom_t_distributed(&g, 2, WithinCluster::OptimalDp);
        assert_eq!(a.dominators(), b.dominators());
        let gg = Family::Gnp.generate(60, 30);
        let ga = fast_dom_g_distributed(&gg, 2, WithinCluster::OptimalDp);
        let gb = fast_dom_g_distributed(&gg, 2, WithinCluster::OptimalDp);
        assert_eq!(ga.dominators(), gb.dominators());
    }

    #[test]
    fn measured_within_stage_scales_with_cluster_radius_not_n() {
        let k = 3;
        let small = fast_dom_t_distributed(
            &Family::RandomTree.generate(200, 15),
            k,
            WithinCluster::OptimalDp,
        );
        let large = fast_dom_t_distributed(
            &Family::RandomTree.generate(2000, 15),
            k,
            WithinCluster::OptimalDp,
        );
        // cluster radii are ≤ 5k+2 in both, so the measured stage is flat
        assert!(
            large.within_report.rounds <= small.within_report.rounds + 40,
            "{} vs {}",
            large.within_report.rounds,
            small.within_report.rounds
        );
    }
}
