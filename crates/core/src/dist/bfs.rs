//! Distributed synchronous BFS-tree construction.
//!
//! In a synchronous network, flooding from the root yields an exact BFS
//! tree: a node's first round of arrivals comes precisely from neighbors
//! at the previous BFS layer. Each node adopts the lowest-port first
//! arrival as its parent and claims childhood, so after quiescence every
//! node knows its parent port, its depth, and its child ports — the
//! substrate Procedure `Initialize` and `Pipeline` build on.

use kdom_congest::wire::{BitReader, BitWriter, Wire, WireError};
use kdom_congest::{Message, NodeCtx, Outbox, Port, Protocol, Wake};
use kdom_graph::{Graph, NodeId};

/// BFS protocol messages.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BfsMsg {
    /// "Your distance from the root is at most this plus one."
    Dist(u32),
    /// "You are my parent."
    Child,
}

impl Wire for BfsMsg {
    fn encode(&self, w: &mut BitWriter) {
        match self {
            BfsMsg::Dist(d) => {
                w.tag(0, 2);
                w.u32(*d);
            }
            BfsMsg::Child => w.tag(1, 2),
        }
    }

    fn decode(r: &mut BitReader<'_>) -> Result<Self, WireError> {
        Ok(match r.tag(2)? {
            0 => BfsMsg::Dist(r.u32()?),
            _ => BfsMsg::Child,
        })
    }
}

impl Message for BfsMsg {}

/// Per-node BFS automaton.
#[derive(Clone, Debug)]
pub struct BfsNode {
    /// Whether this node is the BFS root.
    pub is_root: bool,
    /// Assigned depth (0 for the root).
    pub depth: Option<u32>,
    /// Parent port (`None` for the root).
    pub parent: Option<Port>,
    /// Ports leading to this node's BFS children.
    pub children: Vec<Port>,
    forwarded: bool,
}

impl BfsNode {
    /// A fresh automaton; exactly one node must have `is_root = true`.
    pub fn new(is_root: bool) -> Self {
        BfsNode {
            is_root,
            depth: None,
            parent: None,
            children: Vec::new(),
            forwarded: false,
        }
    }

    /// Tree ports: parent + children.
    pub fn tree_ports(&self) -> Vec<Port> {
        let mut p: Vec<Port> = self.parent.into_iter().collect();
        p.extend(self.children.iter().copied());
        p
    }
}

impl Protocol for BfsNode {
    type Msg = BfsMsg;

    fn round(&mut self, ctx: &NodeCtx<'_>, inbox: &[(Port, BfsMsg)], out: &mut Outbox<BfsMsg>) {
        // record child claims whenever they arrive
        for (p, m) in inbox {
            if matches!(m, BfsMsg::Child) && !self.children.contains(p) {
                self.children.push(*p);
            }
        }
        if self.is_root && ctx.round == 0 {
            self.depth = Some(0);
            out.broadcast(BfsMsg::Dist(0));
            self.forwarded = true;
            return;
        }
        if self.depth.is_none() {
            // synchronous flooding: the first Dist arrivals are all from
            // the previous layer; adopt the lowest port and forward the
            // wave in the same round, so it travels at full speed
            let best = inbox
                .iter()
                .filter_map(|(p, m)| match m {
                    BfsMsg::Dist(d) => Some((*d, *p)),
                    BfsMsg::Child => None,
                })
                .min();
            if let Some((d, p)) = best {
                self.depth = Some(d + 1);
                self.parent = Some(p);
                out.send(p, BfsMsg::Child);
                for q in ctx.ports() {
                    if q != p {
                        out.send(q, BfsMsg::Dist(d + 1));
                    }
                }
                self.forwarded = true;
            }
        }
    }

    fn is_done(&self) -> bool {
        self.depth.is_some() && self.forwarded
    }

    fn next_wake(&self, _now: u64) -> Wake {
        // purely message-driven: the root's spontaneous send happens in
        // round 0, which the engine always executes for every node
        Wake::OnMessage
    }
}

/// Runs BFS from `root` and returns the automata (with parents, depths
/// and children filled in) plus the run report.
///
/// # Panics
///
/// Panics if the graph is disconnected (the protocol would not quiesce
/// with undiscovered nodes; they keep `depth = None` and the run errors).
pub fn run_bfs(g: &Graph, root: NodeId) -> (Vec<BfsNode>, kdom_congest::RunReport) {
    let nodes = (0..g.node_count())
        .map(|v| BfsNode::new(v == root.0))
        .collect();
    kdom_congest::trace::emit_phase("BFS");
    let (nodes, report) = kdom_congest::run_protocol(g, nodes, 4 * g.node_count() as u64 + 16)
        .expect("BFS quiesces within O(n) rounds on a connected graph");
    (nodes, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdom_graph::generators::{gnp_connected, path};
    use kdom_graph::generators::{Family, GenConfig};
    use kdom_graph::properties::{bfs_distances, eccentricity};

    #[test]
    fn depths_match_reference() {
        for fam in Family::ALL {
            let g = fam.generate(50, 3);
            let (nodes, _) = run_bfs(&g, NodeId(0));
            let expect = bfs_distances(&g, NodeId(0));
            for v in 0..g.node_count() {
                assert_eq!(nodes[v].depth, Some(expect[v]), "{fam} node {v}");
            }
        }
    }

    #[test]
    fn parents_form_a_tree_with_consistent_children() {
        let g = gnp_connected(&GenConfig::with_seed(60, 5), 0.1);
        let (nodes, _) = run_bfs(&g, NodeId(0));
        let mut child_count = 0;
        for (v, node) in nodes.iter().enumerate() {
            match node.parent {
                None => assert_eq!(v, 0, "only the root lacks a parent"),
                Some(p) => {
                    let parent = g.neighbors(NodeId(v))[p.0].to;
                    assert_eq!(
                        nodes[parent.0].depth.unwrap() + 1,
                        node.depth.unwrap(),
                        "parent is one layer up"
                    );
                }
            }
            child_count += node.children.len();
        }
        assert_eq!(child_count, 59, "n-1 child links");
    }

    #[test]
    fn rounds_are_eccentricity_plus_constant() {
        let g = path(&GenConfig::with_seed(40, 1));
        let (_, report) = run_bfs(&g, NodeId(0));
        let ecc = eccentricity(&g, NodeId(0)) as u64;
        assert!(
            report.rounds <= ecc + 3,
            "rounds {} vs ecc {}",
            report.rounds,
            ecc
        );
    }

    #[test]
    fn child_ports_point_back() {
        let g = Family::Grid.generate(25, 2);
        let (nodes, _) = run_bfs(&g, NodeId(0));
        for (v, node) in nodes.iter().enumerate() {
            for &cp in &node.children {
                let child = g.neighbors(NodeId(v))[cp.0].to;
                let back = nodes[child.0].parent.expect("child has a parent");
                assert_eq!(g.neighbors(child)[back.0].to, NodeId(v));
            }
        }
    }
}
