//! Fully per-node distributed `DOMPartition_1` (Fig. 5).
//!
//! This is the honest message-passing realization of the contraction
//! cascade that the cluster engine (`crate::cluster`) otherwise executes
//! with charged rounds: every virtual operation of `BalancedDOM` on the
//! contracted cluster tree is routed through the real network —
//! intra-cluster broadcasts from the center, boundary crossings over the
//! (unique) tree edge between adjacent clusters, and aggregating
//! convergecasts back to the center. Rounds are **measured**; experiment
//! E20 compares them against the engine's charges.
//!
//! Two structural facts make the protocol lockstep-schedulable without
//! any coordination:
//!
//! * **Inherited orientation.** Each cluster is a connected subtree of
//!   the input rooted tree, so it has a unique *topmost* node whose tree
//!   parent lies outside; the cluster across that edge is the virtual
//!   parent. Every contraction level is thus properly rooted for free.
//! * **A-priori radius bounds.** Iteration `i` budgets its phases by
//!   `R_1 = 0`, `R_{i+1} = 3·R_i + 1` (the star-merge growth), so all
//!   nodes derive the same global timetable from `(k, id width)` alone —
//!   the same phase-scheduling trick `SimpleMST` uses.
//!
//! Each `BalancedDOM` virtual round is one *phase* of `2R+3` rounds:
//! a Down broadcast (`R+1`), one Cross round at the boundaries, and an
//! aggregating Up convergecast (`R+1`).

use kdom_congest::wire::{BitReader, BitWriter, Wire, WireError};
use kdom_congest::{Message, NodeCtx, Outbox, Port, Protocol, RunReport};
use kdom_graph::{Graph, NodeId, RootedTree};

use crate::dist::coloring::cv_schedule;
use crate::logstar::ceil_log2;

const NONE64: u64 = u64::MAX;

/// Width of one aggregate slot payload: a CONGEST word plus two packed
/// boolean flags. The Info segment's topmost crossing folds
/// `parent_cluster << 2 | parent_in_mis << 1 | present` into the `c`
/// slot, so slots are two bits wider than a bare 48-bit word.
const SLOT_BITS: u32 = 50;

/// Payload slots hold either a packed value (< 2^[`SLOT_BITS`]) or the
/// in-memory absence sentinel [`NONE64`]; on the wire the sentinel
/// travels as a cleared presence flag, not as 64 raw bits.
fn put_slot(w: &mut BitWriter, v: u64) {
    if v == NONE64 {
        w.flag(false);
    } else {
        w.flag(true);
        w.push(v, SLOT_BITS);
    }
}

fn get_slot(r: &mut BitReader<'_>) -> Result<u64, WireError> {
    Ok(if r.flag()? {
        r.pull(SLOT_BITS)?
    } else {
        NONE64
    })
}

/// Width of the segment-discriminator field (codes run 0..=36).
const SEG_BITS: u32 = 6;

/// Wire messages of the distributed partition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum P1Msg {
    /// Iteration-start exchange: the sender's cluster id.
    Xchg(u64),
    /// Intra-cluster broadcast away from the center.
    Down {
        /// Segment discriminator (lockstep check).
        seg: u8,
        /// Payload (color, flag, target id, fate…).
        a: u64,
    },
    /// Intra-cluster aggregating convergecast toward the center.
    Up {
        /// Segment discriminator.
        seg: u8,
        /// Min-aggregated slot.
        a: u64,
        /// Min-aggregated slot.
        b: u64,
        /// OR-aggregated slot.
        c: u64,
    },
    /// Boundary crossing: the sender's cluster id plus a payload.
    Cross {
        /// Segment discriminator.
        seg: u8,
        /// Sender's cluster id.
        cluster: u64,
        /// Payload.
        a: u64,
    },
    /// Merge wave re-homing a cluster onto its dominator.
    Wave {
        /// New cluster id (the dominator's center id).
        cluster: u64,
        /// Depth of the sender in the merged cluster.
        depth: u32,
    },
}

impl Wire for P1Msg {
    fn encode(&self, w: &mut BitWriter) {
        match self {
            P1Msg::Xchg(cl) => {
                w.tag(0, 5);
                w.word(*cl);
            }
            P1Msg::Down { seg, a } => {
                w.tag(1, 5);
                w.push(u64::from(*seg), SEG_BITS);
                put_slot(w, *a);
            }
            P1Msg::Up { seg, a, b, c } => {
                w.tag(2, 5);
                w.push(u64::from(*seg), SEG_BITS);
                put_slot(w, *a);
                put_slot(w, *b);
                put_slot(w, *c);
            }
            P1Msg::Cross { seg, cluster, a } => {
                w.tag(3, 5);
                w.push(u64::from(*seg), SEG_BITS);
                w.word(*cluster);
                put_slot(w, *a);
            }
            P1Msg::Wave { cluster, depth } => {
                w.tag(4, 5);
                w.word(*cluster);
                w.u32(*depth);
            }
        }
    }

    #[allow(clippy::cast_possible_truncation)]
    fn decode(r: &mut BitReader<'_>) -> Result<Self, WireError> {
        Ok(match r.tag(5)? {
            0 => P1Msg::Xchg(r.word()?),
            1 => P1Msg::Down {
                seg: r.pull(SEG_BITS)? as u8,
                a: get_slot(r)?,
            },
            2 => P1Msg::Up {
                seg: r.pull(SEG_BITS)? as u8,
                a: get_slot(r)?,
                b: get_slot(r)?,
                c: get_slot(r)?,
            },
            3 => P1Msg::Cross {
                seg: r.pull(SEG_BITS)? as u8,
                cluster: r.word()?,
                a: get_slot(r)?,
            },
            4 => P1Msg::Wave {
                cluster: r.word()?,
                depth: r.u32()?,
            },
            value => {
                return Err(WireError::BadTag {
                    context: "P1Msg",
                    value,
                })
            }
        })
    }
}

impl Message for P1Msg {}

/// Segment kinds within one iteration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Seg {
    Xchg,
    Cv(u32),
    Mis(u32),
    Info,
    Choose,
    Select,
    NewDom,
    Fate,
    MergePrep,
    Wave,
}

fn seg_from_code(code: u8) -> Seg {
    match code {
        0 => Seg::Xchg,
        10..=19 => Seg::Cv(u32::from(code - 10)),
        20..=25 => Seg::Mis(u32::from(code - 20)),
        30 => Seg::Info,
        31 => Seg::Choose,
        32 => Seg::Select,
        33 => Seg::NewDom,
        34 => Seg::Fate,
        35 => Seg::MergePrep,
        36 => Seg::Wave,
        _ => unreachable!("unknown segment code {code}"),
    }
}

fn seg_code(seg: Seg) -> u8 {
    match seg {
        Seg::Xchg => 0,
        Seg::Cv(j) => 10 + j as u8,
        Seg::Mis(c) => 20 + c as u8,
        Seg::Info => 30,
        Seg::Choose => 31,
        Seg::Select => 32,
        Seg::NewDom => 33,
        Seg::Fate => 34,
        Seg::MergePrep => 35,
        Seg::Wave => 36,
    }
}

/// Whether a segment is a Down/Cross/Up phase (length `2R+3`).
fn is_phase(seg: Seg) -> bool {
    matches!(
        seg,
        Seg::Cv(_) | Seg::Mis(_) | Seg::Info | Seg::Choose | Seg::Select | Seg::NewDom
    )
}

/// The deterministic global timetable shared by all nodes.
#[derive(Clone, Debug)]
pub struct Timetable {
    cv_iters: u32,
    starts: Vec<u64>,
    radius: Vec<u64>,
    /// First round after the whole schedule.
    pub end: u64,
}

impl Timetable {
    /// Builds the timetable for parameter `k` and the given id width.
    pub fn new(k: usize, id_bits: u32) -> Self {
        let iterations = ceil_log2(k as u64 + 1).max(1);
        let cv_iters = cv_schedule(id_bits);
        let mut starts = Vec::new();
        let mut radius = Vec::new();
        let mut t = 0u64;
        let mut r = 0u64;
        for _ in 0..iterations {
            starts.push(t);
            radius.push(r);
            t += Self::iteration_len(r, cv_iters);
            r = 3 * r + 1;
        }
        Timetable {
            cv_iters,
            starts,
            radius,
            end: t,
        }
    }

    fn phase_len(r: u64) -> u64 {
        2 * r + 3
    }

    fn wave_len(r: u64) -> u64 {
        2 * (3 * r + 1) + 2
    }

    fn iteration_len(r: u64, cv_iters: u32) -> u64 {
        1 + u64::from(cv_iters + 6 + 4) * Self::phase_len(r) + (r + 1) + 1 + Self::wave_len(r)
    }

    /// Segment layout of one iteration with radius bound `r`.
    fn segments(&self, r: u64) -> Vec<(Seg, u64)> {
        let mut v = Vec::new();
        v.push((Seg::Xchg, 1));
        for j in 0..self.cv_iters {
            v.push((Seg::Cv(j), Self::phase_len(r)));
        }
        for c in 0..6 {
            v.push((Seg::Mis(c), Self::phase_len(r)));
        }
        v.push((Seg::Info, Self::phase_len(r)));
        v.push((Seg::Choose, Self::phase_len(r)));
        v.push((Seg::Select, Self::phase_len(r)));
        v.push((Seg::NewDom, Self::phase_len(r)));
        v.push((Seg::Fate, r + 1));
        v.push((Seg::MergePrep, 1));
        v.push((Seg::Wave, Self::wave_len(r)));
        v
    }

    /// Locates a round: (radius bound, segment, offset, segment length).
    fn locate(&self, round: u64) -> Option<(u64, Seg, u64, u64)> {
        if round >= self.end {
            return None;
        }
        let i = match self.starts.binary_search(&round) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        let r = self.radius[i];
        let mut t = round - self.starts[i];
        for (seg, len) in self.segments(r) {
            if t < len {
                return Some((r, seg, t, len));
            }
            t -= len;
        }
        unreachable!("iteration length covers all segments")
    }
}

/// Center-only scratch for one iteration.
#[derive(Clone, Debug, Default)]
struct CenterState {
    color: u64,
    in_mis: bool,
    blocked: bool,
    has_chooser: bool,
    lone: bool,
    min_any_neighbor: u64,
}

/// Per-node automaton of the distributed `DOMPartition_1`.
#[derive(Clone, Debug)]
pub struct Partition1Node {
    t_parent: Option<Port>,
    all_ports: Vec<Port>,
    tt: Timetable,
    /// Current cluster id (= the center's unique node id).
    pub cluster: u64,
    /// Whether this node is its cluster's center.
    pub is_center: bool,
    /// Port toward the center inside the cluster (`None` at the center).
    pub pc_parent: Option<Port>,
    /// Depth inside the cluster.
    pub depth: u32,
    // per-iteration wiring
    neighbor_cluster: Vec<(Port, u64)>,
    cluster_ports: Vec<Port>,
    topmost: bool,
    // per-segment scratch
    down_val: Option<u64>,
    /// Down payload stashed by the previous segment's end (survives the
    /// segment reset).
    pending_down: Option<u64>,
    up_acc: (u64, u64, u64),
    up_recv: usize,
    up_sent: bool,
    // boundary memory for the Fig. 4 steps
    chooser_ports: Vec<(Port, u64)>,
    // fate
    stay: bool,
    merge_target: Option<u64>,
    contact: Option<(Port, u32)>, // (port to the host cluster, host depth)
    wave_done: bool,
    center: CenterState,
    done: bool,
}

impl Partition1Node {
    /// A fresh automaton for a node of the input rooted tree.
    pub fn new(t_parent: Option<Port>, all_ports: Vec<Port>, k: usize, id: u64) -> Self {
        Partition1Node {
            t_parent,
            all_ports,
            tt: Timetable::new(k, 48),
            cluster: id,
            is_center: true,
            pc_parent: None,
            depth: 0,
            neighbor_cluster: Vec::new(),
            cluster_ports: Vec::new(),
            topmost: false,
            down_val: None,
            pending_down: None,
            up_acc: (NONE64, NONE64, 0),
            up_recv: 0,
            up_sent: false,
            chooser_ports: Vec::new(),
            stay: true,
            merge_target: None,
            contact: None,
            wave_done: false,
            center: CenterState::default(),
            done: false,
        }
    }

    fn cluster_children(&self) -> Vec<Port> {
        self.cluster_ports
            .iter()
            .copied()
            .filter(|p| Some(*p) != self.pc_parent)
            .collect()
    }

    fn boundary_ports(&self) -> Vec<(Port, u64)> {
        self.neighbor_cluster
            .iter()
            .copied()
            .filter(|(_, cl)| *cl != self.cluster)
            .collect()
    }

    fn reset_segment(&mut self) {
        self.down_val = None;
        self.up_acc = (NONE64, NONE64, 0);
        self.up_recv = 0;
        self.up_sent = false;
    }

    /// The Down payload a center emits at a phase start, updating its own
    /// state in the process. `None` means the cluster sits this phase out.
    fn center_payload(&mut self, seg: Seg) -> Option<u64> {
        let cs = &mut self.center;
        match seg {
            Seg::Cv(_) => Some(cs.color),
            Seg::Mis(c) => {
                if !cs.in_mis && !cs.blocked && cs.color == u64::from(c) {
                    cs.in_mis = true;
                }
                Some(u64::from(cs.in_mis))
            }
            Seg::Info => Some(u64::from(cs.in_mis)),
            Seg::Choose | Seg::Select | Seg::NewDom | Seg::Fate => {
                // decided at the previous segment's end
                self.pending_down.take()
            }
            _ => None,
        }
    }

    /// Node-local contribution folded into the Up aggregate. Set when the
    /// Cross round delivers boundary info (see `on_cross`).
    fn fold_up(&mut self, a: u64, b: u64, c: u64) {
        self.up_acc.0 = self.up_acc.0.min(a);
        self.up_acc.1 = self.up_acc.1.min(b);
        self.up_acc.2 |= c;
    }

    /// Handles one boundary crossing during a phase's Cross round.
    fn on_cross(&mut self, seg: Seg, port: Port, their_cluster: u64, a: u64) {
        match seg {
            Seg::Cv(_)
                // parent-cluster color reaches the topmost node
                if self.topmost && Some(port) == self.t_parent => {
                    self.fold_up(a, NONE64, 0);
                }
            Seg::Mis(_)
                if a == 1 => {
                    self.fold_up(NONE64, NONE64, 1); // some neighbor joined
                }
            Seg::Info => {
                // a = neighbor's in_mis flag
                if a == 1 {
                    self.fold_up(their_cluster, their_cluster, 0);
                } else {
                    self.fold_up(NONE64, their_cluster, 0);
                }
                if self.topmost && Some(port) == self.t_parent {
                    // bit0 = parent info present, bit1 = parent in MIS,
                    // bits 2.. = the parent cluster's id
                    self.fold_up(NONE64, NONE64, 1 | (a << 1) | (their_cluster << 2));
                }
            }
            Seg::Choose
                // a == 1 marks "I choose your cluster"
                if a == 1 => {
                    self.chooser_ports.push((port, their_cluster));
                    self.fold_up(NONE64, NONE64, 1);
                }
            Seg::Select
                if a == 1 => {
                    self.fold_up(NONE64, NONE64, 1); // our cluster got selected
                }
            Seg::NewDom => {
                // a = neighbor became a dominator this iteration
                if let Some(&(_, cl)) = self.chooser_ports.iter().find(|(p, _)| *p == port) {
                    if a == 1 {
                        self.fold_up(cl, NONE64, 0); // defected chooser
                    } else {
                        self.fold_up(NONE64, NONE64, 1); // a chooser remains
                    }
                }
            }
            Seg::MergePrep
                // a = (depth << 1) | stays
                if !self.stay
                    && self.merge_target == Some(their_cluster)
                    && a & 1 == 1
                    && self.contact.is_none()
                => {
                    self.contact = Some((port, (a >> 1) as u32));
                }
            _ => {}
        }
    }

    /// Center logic at the last round of a segment, consuming aggregates
    /// and stashing the next segment's Down payload where needed.
    fn on_segment_end(&mut self, seg: Seg) {
        if !self.is_center {
            // non-centers only finalize bookkeeping
            return;
        }
        let (a, b, c) = self.up_acc;
        match seg {
            Seg::Cv(_) => {
                let cs = &mut self.center;
                let parent_color = if a != NONE64 { Some(a) } else { None };
                let pc = parent_color.unwrap_or(cs.color ^ 1);
                let diff = cs.color ^ pc;
                debug_assert_ne!(diff, 0, "virtual coloring stays proper");
                let i = diff.trailing_zeros();
                cs.color = u64::from(2 * i) + ((cs.color >> i) & 1);
            }
            Seg::Mis(_) if c & 1 == 1 => {
                self.center.blocked = true;
            }
            Seg::Info => {
                // a = min MIS neighbor, b = min neighbor, c = flags | pcl<<2
                // the whole cluster saw no foreign neighbor ⟺ lone
                self.center.lone = b == NONE64;
                let parent_in_mis = if c & 1 == 1 { Some(c & 2 != 0) } else { None };
                let parent_cluster = if c & 1 == 1 { Some(c >> 2) } else { None };
                // stash the Choose payload: target cluster id or NONE
                self.pending_down = if !self.center.in_mis && !self.center.lone {
                    let target = match (parent_in_mis, parent_cluster) {
                        (Some(true), Some(pcl)) => pcl,
                        _ => a, // min-id MIS neighbor (MIS maximality: exists)
                    };
                    debug_assert_ne!(target, NONE64, "an MIS neighbor must exist");
                    self.merge_target = Some(target);
                    self.stay = false;
                    Some(target)
                } else {
                    None
                };
                // remember min-any neighbor for a potential Select
                self.center.has_chooser = false;
                self.center.min_any_neighbor = b;
            }
            Seg::Choose => {
                let _ = b;
                let min_any = self.center.min_any_neighbor;
                if c & 1 == 1 {
                    self.center.has_chooser = true;
                }
                // stash the Select payload
                self.pending_down =
                    if self.center.in_mis && !self.center.has_chooser && !self.center.lone {
                        // deserted singleton: follow the min-id neighbor
                        debug_assert_ne!(min_any, NONE64);
                        self.merge_target = Some(min_any);
                        self.stay = false;
                        Some(min_any)
                    } else {
                        None
                    };
            }
            Seg::Select => {
                // stash the NewDom payload: did we just get selected?
                self.pending_down = if c & 1 == 1 {
                    // we become a dominator; cancel our own choose
                    self.merge_target = None;
                    self.stay = true;
                    Some(1)
                } else {
                    None
                };
            }
            Seg::NewDom => {
                // a = min defected chooser, c = a chooser remains
                if self.center.in_mis && self.center.has_chooser && c & 1 == 0 {
                    // deserted center: follow a departed member
                    debug_assert_ne!(a, NONE64, "Lemma 3.3: someone departed");
                    self.merge_target = Some(a);
                    self.stay = false;
                }
                // stash the Fate payload
                self.pending_down = Some(self.merge_target.unwrap_or(NONE64));
            }
            _ => {}
        }
    }
}

impl Protocol for Partition1Node {
    type Msg = P1Msg;

    fn round(&mut self, ctx: &NodeCtx<'_>, inbox: &[(Port, P1Msg)], out: &mut Outbox<P1Msg>) {
        let Some((r, seg, off, len)) = self.tt.locate(ctx.round) else {
            self.done = true;
            return;
        };
        let code = seg_code(seg);
        let cross_round = r + 1; // within Down/Cross/Up phases
        let up_start = r + 2;

        // ——— intake ———
        for (p, m) in inbox {
            match m {
                P1Msg::Xchg(cl) => self.neighbor_cluster.push((*p, *cl)),
                P1Msg::Down { seg: s, a } => {
                    debug_assert_eq!(*s, code, "lockstep violated (down)");
                    self.down_val = Some(*a);
                    for q in self.cluster_children() {
                        out.send(q, P1Msg::Down { seg: *s, a: *a });
                    }
                    // record Fate payloads at members
                    if seg == Seg::Fate {
                        if *a == NONE64 {
                            self.stay = true;
                            self.merge_target = None;
                        } else {
                            self.stay = false;
                            self.merge_target = Some(*a);
                        }
                    }
                }
                P1Msg::Up { seg: s, a, b, c } => {
                    debug_assert_eq!(*s, code, "lockstep violated (up)");
                    self.up_recv += 1;
                    self.fold_up(*a, *b, *c);
                }
                P1Msg::Cross { seg: s, cluster, a } => {
                    // crossings sent in a segment's last round (MergePrep)
                    // arrive in the next segment: dispatch by their tag
                    self.on_cross(seg_from_code(*s), *p, *cluster, *a);
                }
                P1Msg::Wave { cluster, depth } => {
                    if !self.wave_done {
                        let old = self.cluster;
                        self.cluster = *cluster;
                        self.depth = depth + 1;
                        self.pc_parent = Some(*p);
                        self.is_center = false;
                        self.wave_done = true;
                        for (q, ncl) in self.neighbor_cluster.clone() {
                            if ncl == old && q != *p {
                                out.send(
                                    q,
                                    P1Msg::Wave {
                                        cluster: *cluster,
                                        depth: self.depth,
                                    },
                                );
                            }
                        }
                    }
                }
            }
        }

        // ——— slot-start actions ———
        if off == 0 {
            match seg {
                Seg::Xchg => {
                    self.neighbor_cluster.clear();
                    self.chooser_ports.clear();
                    self.stay = true;
                    self.merge_target = None;
                    self.contact = None;
                    self.wave_done = false;
                    self.reset_segment();
                    if self.is_center {
                        self.center = CenterState {
                            color: ctx.id,
                            ..CenterState::default()
                        };
                    }
                    for &p in &self.all_ports.clone() {
                        out.send(p, P1Msg::Xchg(self.cluster));
                    }
                }
                Seg::MergePrep => {
                    let payload = (u64::from(self.depth) << 1) | u64::from(self.stay);
                    for (p, _) in self.boundary_ports() {
                        out.send(
                            p,
                            P1Msg::Cross {
                                seg: code,
                                cluster: self.cluster,
                                a: payload,
                            },
                        );
                    }
                }
                Seg::Wave => {
                    if let Some((port, host_depth)) = self.contact {
                        let old = self.cluster;
                        self.cluster = self.merge_target.expect("contact implies a target");
                        self.depth = host_depth + 1;
                        self.pc_parent = Some(port);
                        self.is_center = false;
                        self.wave_done = true;
                        for (q, ncl) in self.neighbor_cluster.clone() {
                            if ncl == old {
                                out.send(
                                    q,
                                    P1Msg::Wave {
                                        cluster: self.cluster,
                                        depth: self.depth,
                                    },
                                );
                            }
                        }
                    }
                }
                _ => {
                    self.reset_segment();
                    if seg == Seg::Cv(0) {
                        // wiring for the fresh contraction level
                        self.cluster_ports = self
                            .neighbor_cluster
                            .iter()
                            .filter(|(_, cl)| *cl == self.cluster)
                            .map(|(p, _)| *p)
                            .collect();
                        self.topmost = match self.t_parent {
                            None => true,
                            Some(tp) => self
                                .neighbor_cluster
                                .iter()
                                .any(|(p, cl)| *p == tp && *cl != self.cluster),
                        };
                        // NOTE: "lone" (no neighboring cluster anywhere)
                        // is only known after the Info convergecast
                    }
                    if self.is_center && is_phase(seg) {
                        if let Some(a) = self.center_payload(seg) {
                            self.down_val = Some(a);
                            for q in self.cluster_children() {
                                out.send(q, P1Msg::Down { seg: code, a });
                            }
                        }
                    }
                    if self.is_center && seg == Seg::Fate {
                        let a = self.pending_down.take().unwrap_or(NONE64);
                        for q in self.cluster_children() {
                            out.send(q, P1Msg::Down { seg: code, a });
                        }
                        if a == NONE64 {
                            self.stay = true;
                        } else {
                            self.stay = false;
                            self.merge_target = Some(a);
                        }
                    }
                }
            }
        }

        // ——— phase cross round ———
        if is_phase(seg) && off == cross_round {
            match seg {
                Seg::Cv(_) | Seg::Mis(_) | Seg::Info => {
                    // broadcast the cluster's value across every boundary
                    let a = self.down_val.unwrap_or_else(|| {
                        debug_assert!(self.is_center, "members got the Down by now");
                        0
                    });
                    for (p, _) in self.boundary_ports() {
                        out.send(
                            p,
                            P1Msg::Cross {
                                seg: code,
                                cluster: self.cluster,
                                a,
                            },
                        );
                    }
                }
                Seg::Choose | Seg::Select => {
                    // directed crossing to the target cluster only
                    if let Some(target) = self.down_val {
                        if target != NONE64 {
                            for (p, cl) in self.boundary_ports() {
                                if cl == target {
                                    out.send(
                                        p,
                                        P1Msg::Cross {
                                            seg: code,
                                            cluster: self.cluster,
                                            a: 1,
                                        },
                                    );
                                }
                            }
                        }
                    }
                }
                Seg::NewDom => {
                    let a = self.down_val.unwrap_or(0);
                    for (p, _) in self.boundary_ports() {
                        out.send(
                            p,
                            P1Msg::Cross {
                                seg: code,
                                cluster: self.cluster,
                                a,
                            },
                        );
                    }
                }
                _ => unreachable!("phases only"),
            }
        }

        // ——— phase up window ———
        if is_phase(seg)
            && off >= up_start
            && !self.up_sent
            && !self.is_center
            && self.up_recv >= self.cluster_children().len()
        {
            let (a, b, c) = self.up_acc;
            out.send(
                self.pc_parent.expect("non-center has a center-ward port"),
                P1Msg::Up { seg: code, a, b, c },
            );
            self.up_sent = true;
        }

        // ——— segment end: centers consume ———
        if off + 1 == len && is_phase(seg) {
            self.on_segment_end(seg);
        }

        if ctx.round + 1 >= self.tt.end {
            self.done = true;
        }
    }

    fn is_done(&self) -> bool {
        self.done
    }
}

/// Runs the distributed `DOMPartition_1` over a tree graph rooted at
/// `root`; returns the automata (cluster assignments) and the report.
///
/// # Panics
///
/// Panics if `g` is not a tree.
pub fn run_partition1(g: &Graph, root: NodeId, k: usize) -> (Vec<Partition1Node>, RunReport) {
    let t = RootedTree::from_graph(g, root);
    let nodes: Vec<Partition1Node> = g
        .nodes()
        .map(|v| {
            let t_parent = t.parent(v).map(|p| {
                Port(
                    g.neighbors(v)
                        .iter()
                        .position(|a| a.to == p)
                        .expect("tree edge"),
                )
            });
            let ports = (0..g.degree(v)).map(Port).collect();
            Partition1Node::new(t_parent, ports, k, g.id_of(v))
        })
        .collect();
    let budget = Timetable::new(k, 48).end + 16;
    kdom_congest::run_protocol(g, nodes, budget).expect("partition1 quiesces")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fastdom::clusters_to_clustering;
    use crate::verify::check_clusters;
    use kdom_graph::generators::Family;

    fn check_run(g: &Graph, k: usize) -> (usize, RunReport) {
        let (nodes, report) = run_partition1(g, NodeId(0), k);
        // reconstruct clusters from per-node state
        let id_to_node: std::collections::HashMap<u64, NodeId> =
            g.nodes().map(|v| (g.id_of(v), v)).collect();
        let mut members: std::collections::HashMap<u64, Vec<NodeId>> =
            std::collections::HashMap::new();
        for v in g.nodes() {
            members.entry(nodes[v.0].cluster).or_default().push(v);
        }
        let clusters: Vec<(NodeId, Vec<NodeId>)> = members
            .iter()
            .map(|(cid, m)| (id_to_node[cid], m.clone()))
            .collect();
        // centers flagged consistently
        for (center, m) in &clusters {
            assert!(nodes[center.0].is_center, "center flag at {center:?}");
            assert!(m.contains(center));
        }
        let cl = clusters_to_clustering(g.node_count(), &clusters);
        // connected clusters; Fig. 5 radius bound 4k² (loose)
        check_clusters(g, &cl, 1, 4 * (k as u32) * (k as u32).max(1)).unwrap();
        // size ≥ k+1 (Lemma 3.4) when the tree is big enough
        if g.node_count() > k {
            let min = clusters.iter().map(|(_, m)| m.len()).min().unwrap();
            assert!(min > k, "cluster of {min} < {}", k + 1);
        }
        // depths consistent with pc_parent pointers
        for v in g.nodes() {
            if let Some(p) = nodes[v.0].pc_parent {
                let w = g.neighbors(v)[p.0].to;
                assert_eq!(
                    nodes[w.0].cluster, nodes[v.0].cluster,
                    "{v:?} points inside"
                );
                assert_eq!(nodes[w.0].depth + 1, nodes[v.0].depth, "{v:?} depth chain");
            } else {
                assert_eq!(nodes[v.0].depth, 0);
                assert!(nodes[v.0].is_center);
            }
        }
        (clusters.len(), report)
    }

    #[test]
    fn partitions_paths() {
        for (n, k) in [(16usize, 1usize), (40, 3), (100, 7)] {
            let g = Family::Path.generate(n, 3);
            let (count, _) = check_run(&g, k);
            assert!(count >= 1 && count <= n / (k + 1).max(1) + 1);
        }
    }

    #[test]
    fn partitions_tree_families() {
        for fam in Family::TREES {
            for k in [1usize, 3, 7] {
                let g = fam.generate(80, 11);
                check_run(&g, k);
            }
        }
    }

    #[test]
    fn measured_rounds_match_timetable() {
        let g = Family::RandomTree.generate(120, 5);
        let k = 7;
        let (_, report) = check_run(&g, k);
        let tt = Timetable::new(k, 48);
        assert!(report.rounds >= tt.end - 1 && report.rounds <= tt.end + 2);
    }

    #[test]
    fn rounds_grow_with_k_not_n() {
        let k = 5;
        let tt = Timetable::new(k, 48);
        let (_, small) = check_run(&Family::RandomTree.generate(60, 7), k);
        let (_, large) = check_run(&Family::RandomTree.generate(600, 7), k);
        assert!(small.rounds.abs_diff(large.rounds) <= 2);
        assert!(large.rounds <= tt.end + 2);
    }
}
