//! Distributed `SimpleMST` (§4.3): phase-scheduled MST fragment growth.
//!
//! All nodes follow the same global schedule (phase `i` occupies a window
//! of `5·2^i + 8` rounds), so fragments stay in lockstep without any
//! global coordinator — exactly the paper's design. Within phase `i`
//! (`B = 2^i`, offsets `t` from the phase start):
//!
//! | t            | step |
//! |--------------|------|
//! | `0 .. 2B+1`  | depth probe to depth `B` with echo (halts deep fragments); refreshes fragment ids along the way |
//! | `2B+2..3B+2` | the root of an active fragment broadcasts `Activate` |
//! | `3B+3`       | **every** node transmits its (possibly stale) fragment id on all edges — stale ids never misclassify an active fragment's edges (see the module test) |
//! | `3B+4..4B+4` | MWOE convergecast, deepest nodes first |
//! | `4B+5..5B+5` | rootship transfer along the marked path, flipping parent pointers |
//! | `5B+6..5B+7` | `Connect` over the MWOE; same-edge pairs resolve by higher id |
//!
//! Measured rounds total `Σ(5·2^i + 8) = O(k)` (Lemma 4.1); the output is
//! cross-checked for exact structural equality against the sequential
//! reference in [`crate::fragments`].

use kdom_congest::wire::{BitReader, BitWriter, Wire, WireError};
use kdom_congest::{Message, NodeCtx, Outbox, Port, Protocol, RunReport, Wake};
use kdom_graph::{EdgeId, Graph, NodeId};

use crate::logstar::ceil_log2;

/// `SimpleMST` messages.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrMsg {
    /// Depth probe with remaining hops and the (fresh) root id.
    Probe {
        /// Remaining hops the probe may travel.
        hops: u32,
        /// The fragment root's id, refreshing ids along the way.
        root_id: u64,
    },
    /// Echo: "my subtree exceeds the probe depth".
    EchoDeep(bool),
    /// The fragment is active this phase.
    Activate,
    /// Fragment-id exchange for edge classification.
    FragId(u64),
    /// Convergecast of the minimum outgoing edge weight (`None` = no
    /// outgoing edge in this subtree).
    MwoeUp(Option<u64>),
    /// Rootship transfer toward the MWOE endpoint.
    Transfer,
    /// Merge request over the MWOE, carrying the sender's id.
    Connect(u64),
}

impl Wire for FrMsg {
    fn encode(&self, w: &mut BitWriter) {
        match self {
            FrMsg::Probe { hops, root_id } => {
                w.tag(0, 7);
                w.u32(*hops);
                w.word(*root_id);
            }
            FrMsg::EchoDeep(deep) => {
                w.tag(1, 7);
                w.flag(*deep);
            }
            FrMsg::Activate => w.tag(2, 7),
            FrMsg::FragId(id) => {
                w.tag(3, 7);
                w.word(*id);
            }
            FrMsg::MwoeUp(best) => {
                w.tag(4, 7);
                w.opt_word(*best);
            }
            FrMsg::Transfer => w.tag(5, 7),
            FrMsg::Connect(id) => {
                w.tag(6, 7);
                w.word(*id);
            }
        }
    }

    fn decode(r: &mut BitReader<'_>) -> Result<Self, WireError> {
        Ok(match r.tag(7)? {
            0 => FrMsg::Probe {
                hops: r.u32()?,
                root_id: r.word()?,
            },
            1 => FrMsg::EchoDeep(r.flag()?),
            2 => FrMsg::Activate,
            3 => FrMsg::FragId(r.word()?),
            4 => FrMsg::MwoeUp(r.opt_word()?),
            5 => FrMsg::Transfer,
            6 => FrMsg::Connect(r.word()?),
            value => {
                return Err(WireError::BadTag {
                    context: "FrMsg",
                    value,
                })
            }
        })
    }
}

impl Message for FrMsg {}

/// Where a subtree's best outgoing edge came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum BestSrc {
    Own(Port),
    Child(Port),
}

/// Per-node `SimpleMST` automaton.
#[derive(Clone, Debug)]
pub struct FragmentNode {
    k: usize,
    /// Port to the parent in the fragment tree (`None` at fragment roots).
    pub parent: Option<Port>,
    /// Ports to the children in the fragment tree.
    pub children: Vec<Port>,
    /// This node's current (possibly stale) fragment id.
    pub frag_id: u64,
    // per-phase scratch
    probe_depth: Option<u32>,
    echo_deep: bool,
    echo_count: usize,
    active: bool,
    best: Option<(u64, BestSrc)>,
    mwoe_port: Option<Port>,
    sent_connect: bool,
    done: bool,
}

/// Total number of phases for parameter `k`.
pub fn phase_count(k: usize) -> u32 {
    ceil_log2(k as u64 + 1)
}

/// Window length of phase `i` (1-based).
fn window(i: u32) -> u64 {
    5 * (1u64 << i) + 8
}

/// First round of phase `i` (1-based).
fn phase_start(i: u32) -> u64 {
    (1..i).map(window).sum()
}

/// The round after the last phase ends.
pub fn schedule_end(k: usize) -> u64 {
    phase_start(phase_count(k) + 1)
}

impl FragmentNode {
    /// A fresh singleton-fragment automaton; `id` must be the node's
    /// unique identifier (as reported by the simulator context).
    pub fn new(k: usize, id: u64) -> Self {
        FragmentNode {
            k,
            parent: None,
            children: Vec::new(),
            frag_id: id,
            probe_depth: None,
            echo_deep: false,
            echo_count: 0,
            active: false,
            best: None,
            mwoe_port: None,
            sent_connect: false,
            done: false,
        }
    }

    fn is_root(&self) -> bool {
        self.parent.is_none()
    }

    /// Phase index (1-based) and offset for a round, or `None` after the
    /// schedule ends.
    fn locate(&self, round: u64) -> Option<(u32, u64)> {
        let phases = phase_count(self.k);
        let mut start = 0u64;
        for i in 1..=phases {
            let w = window(i);
            if round < start + w {
                return Some((i, round - start));
            }
            start += w;
        }
        None
    }

    /// Re-hangs this node's tree pointers when the rootship path passes
    /// through it toward `next`.
    fn flip_toward(&mut self, next: Port) {
        self.children.retain(|&c| c != next);
        if let Some(p) = self.parent {
            self.children.push(p);
        }
        self.parent = Some(next);
    }
}

impl Protocol for FragmentNode {
    type Msg = FrMsg;

    fn round(&mut self, ctx: &NodeCtx<'_>, inbox: &[(Port, FrMsg)], out: &mut Outbox<FrMsg>) {
        let Some((i, t)) = self.locate(ctx.round) else {
            self.done = true;
            return;
        };
        let b = 1u64 << i;

        // ——— phase reset ———
        if t == 0 {
            self.probe_depth = None;
            self.echo_deep = false;
            self.echo_count = 0;
            self.active = false;
            self.best = None;
            self.mwoe_port = None;
            self.sent_connect = false;
            if self.is_root() {
                self.frag_id = ctx.id;
                self.probe_depth = Some(0);
                if self.children.is_empty() {
                    self.active = true; // depth 0 ≤ B, trivially
                } else {
                    // `hops` counts the forwards still allowed after the
                    // receipt, so a receiver's depth is B - hops and a
                    // node seeing hops = 0 sits exactly at depth B
                    for &c in &self.children.clone() {
                        out.send(
                            c,
                            FrMsg::Probe {
                                hops: b as u32 - 1,
                                root_id: ctx.id,
                            },
                        );
                    }
                }
            }
        }

        // ——— intake ———
        let mut connects: Vec<(Port, u64)> = Vec::new();
        let mut neighbor_ids: Vec<(Port, u64)> = Vec::new();
        for (p, m) in inbox {
            match m {
                FrMsg::Probe { hops, root_id } => {
                    self.probe_depth = Some(b as u32 - hops);
                    self.frag_id = *root_id;
                    if *hops == 0 {
                        // probe exhausted: deep iff the tree continues
                        out.send(*p, FrMsg::EchoDeep(!self.children.is_empty()));
                    } else if self.children.is_empty() {
                        out.send(*p, FrMsg::EchoDeep(false));
                    } else {
                        for &c in &self.children.clone() {
                            out.send(
                                c,
                                FrMsg::Probe {
                                    hops: hops - 1,
                                    root_id: *root_id,
                                },
                            );
                        }
                    }
                }
                FrMsg::EchoDeep(deep) => {
                    self.echo_deep |= deep;
                    self.echo_count += 1;
                    if self.echo_count == self.children.len() {
                        if let Some(parent) = self.parent {
                            out.send(parent, FrMsg::EchoDeep(self.echo_deep));
                        } else {
                            self.active = !self.echo_deep;
                        }
                    }
                }
                FrMsg::Activate => {
                    self.active = true;
                    for &c in &self.children.clone() {
                        out.send(c, FrMsg::Activate);
                    }
                }
                FrMsg::FragId(fid) => neighbor_ids.push((*p, *fid)),
                FrMsg::MwoeUp(w) => {
                    if let Some(w) = w {
                        let cand = (*w, BestSrc::Child(*p));
                        if self.best.is_none_or(|(bw, _)| *w < bw) {
                            self.best = Some(cand);
                        }
                    }
                }
                FrMsg::Transfer => {
                    // the rootship path reaches this node
                    match self.best {
                        Some((_, BestSrc::Own(q))) => {
                            // I am the MWOE endpoint: become root
                            let old_parent = self.parent.expect("transfer came from my parent");
                            self.children.push(old_parent);
                            self.parent = None;
                            self.mwoe_port = Some(q);
                        }
                        Some((_, BestSrc::Child(c))) => {
                            out.send(c, FrMsg::Transfer);
                            self.flip_toward(c);
                        }
                        None => unreachable!("transfer follows recorded best pointers"),
                    }
                }
                FrMsg::Connect(their_id) => connects.push((*p, *their_id)),
            }
        }

        // ——— fixed-slot actions ———
        // root announces activity
        if t == 2 * b + 2 && self.is_root() && self.active && !self.children.is_empty() {
            for &c in &self.children.clone() {
                out.send(c, FrMsg::Activate);
            }
        }
        // universal fragment-id exchange
        if t == 3 * b + 3 {
            out.broadcast(FrMsg::FragId(self.frag_id));
        }
        // classification + convergecast start (deepest slots first)
        if t == 3 * b + 4 && self.active {
            // neighbor_ids collected this round: classify and seed best
            for (p, fid) in &neighbor_ids {
                if *fid != self.frag_id {
                    let w = ctx.edge_weight(*p);
                    if self.best.is_none_or(|(bw, _)| w < bw) {
                        self.best = Some((w, BestSrc::Own(*p)));
                    }
                }
            }
        }
        if self.active {
            if let Some(d) = self.probe_depth {
                let slot = 3 * b + 4 + (b - u64::from(d).min(b));
                if t == slot && !self.is_root() {
                    let w = self.best.map(|(w, _)| w);
                    out.send(self.parent.expect("non-root"), FrMsg::MwoeUp(w));
                }
            }
        }
        // root launches the transfer
        if t == 4 * b + 5 && self.is_root() && self.active {
            match self.best {
                Some((_, BestSrc::Own(q))) => self.mwoe_port = Some(q),
                Some((_, BestSrc::Child(c))) => {
                    out.send(c, FrMsg::Transfer);
                    self.flip_toward(c);
                }
                None => {} // fragment spans its component
            }
        }
        // the MWOE endpoint connects
        if t == 5 * b + 6 {
            if let Some(q) = self.mwoe_port {
                out.send(q, FrMsg::Connect(ctx.id));
                self.sent_connect = true;
            }
        }
        // connect resolution
        if t == 5 * b + 7 {
            if self.sent_connect {
                let q = self.mwoe_port.expect("sent connect over the MWOE");
                match connects.iter().find(|(p, _)| *p == q) {
                    Some(&(_, their_id)) => {
                        // both fragments chose this edge: higher id roots
                        if ctx.id > their_id {
                            self.children.push(q);
                        } else {
                            self.parent = Some(q);
                        }
                    }
                    None => {
                        // one-sided: we merge into the other fragment
                        self.parent = Some(q);
                    }
                }
                connects.retain(|(p, _)| *p != q);
            }
            // all remaining connects are inbound attachments
            for (p, _) in connects {
                if !self.children.contains(&p) {
                    self.children.push(p);
                }
            }
        }

        if ctx.round + 1 >= schedule_end(self.k) {
            self.done = true;
        }
    }

    fn is_done(&self) -> bool {
        self.done
    }

    fn next_wake(&self, now: u64) -> Wake {
        // The schedule is fixed: a node acts spontaneously only at the
        // phase reset (t = 0) and the fixed slots of the current phase;
        // everything else is a reaction to an arrival (which wakes the
        // node regardless, after which the promise is recomputed — so
        // slots gated on state a message may change, like the
        // probe-depth convergecast slot, are re-added as soon as that
        // state exists).
        let Some((i, t)) = self.locate(now) else {
            return Wake::OnMessage; // past the schedule: done
        };
        let b = 1u64 << i;
        let phase_start = now - t;
        let mwoe_slot = match self.probe_depth {
            Some(d) => 3 * b + 4 + (b - u64::from(d).min(b)),
            None => u64::MAX,
        };
        let slots = [
            2 * b + 2, // root announces activity
            3 * b + 3, // universal fragment-id exchange
            3 * b + 4, // edge classification
            mwoe_slot, // depth-scheduled MWOE convergecast
            4 * b + 5, // root launches the transfer
            5 * b + 6, // MWOE endpoint connects
            5 * b + 7, // connect resolution + done transition
        ];
        match slots.iter().filter(|&&s| s > t && s != u64::MAX).min() {
            Some(&s) => Wake::At(phase_start + s),
            // nothing left in this phase: wake at t = 0 of the next
            None => Wake::At(phase_start + window(i)),
        }
    }
}

/// Output of the distributed `SimpleMST`.
#[derive(Clone, Debug)]
pub struct DistFragments {
    /// Fragment index per node.
    pub fragment_of: Vec<usize>,
    /// The root node of each fragment.
    pub roots: Vec<NodeId>,
    /// Selected MST edges.
    pub tree_edges: Vec<EdgeId>,
    /// Per-node parent ports (the fragment trees as the nodes know them).
    pub parents: Vec<Option<Port>>,
    /// Simulator report (measured rounds = `O(k)`).
    pub report: RunReport,
}

/// Runs the distributed `SimpleMST` and extracts the fragment forest.
///
/// # Panics
///
/// Panics if the protocol exceeds its (generous) round budget.
pub fn run_simple_mst(g: &Graph, k: usize) -> DistFragments {
    run_simple_mst_on(g, k, &crate::dist::executor::Executor::Sync)
}

/// [`run_simple_mst`] on a chosen execution backend: the same automata
/// run under synchronizer α with faults and recovery when asked.
///
/// # Panics
///
/// Panics if the run fails (budget exhaustion, stall, delivery failure);
/// the message carries the simulator's structured diagnosis.
pub fn run_simple_mst_on(
    g: &Graph,
    k: usize,
    exec: &crate::dist::executor::Executor,
) -> DistFragments {
    run_simple_mst_configured(g, k, exec, kdom_congest::EngineConfig::from_env())
}

/// [`run_simple_mst_on`] with an explicit engine configuration instead of
/// the environment defaults, so tests can pin thread counts without
/// mutating the process environment.
///
/// # Panics
///
/// Panics if the run fails, as [`run_simple_mst_on`].
pub fn run_simple_mst_configured(
    g: &Graph,
    k: usize,
    exec: &crate::dist::executor::Executor,
    config: kdom_congest::EngineConfig,
) -> DistFragments {
    let nodes: Vec<FragmentNode> = g
        .nodes()
        .map(|v| FragmentNode::new(k, g.id_of(v)))
        .collect();
    let budget = exec.watchdog_budget(schedule_end(k) + 8);
    kdom_congest::trace::emit_phase("SimpleMST");
    let (nodes, report) = exec
        .run_configured(g, nodes, budget, config)
        .unwrap_or_else(|e| panic!("SimpleMST failed to quiesce: {e}"));

    let parents: Vec<Option<Port>> = nodes.iter().map(|x| x.parent).collect();
    let (fragment_of, roots, tree_edges) = forest_from_parents(g, &parents);
    DistFragments {
        fragment_of,
        roots,
        tree_edges,
        parents,
        report,
    }
}

/// Extracts the fragment forest from per-node parent ports: selected
/// tree edges, roots in node order, and the fragment index of every
/// node. This is the **single** numbering rule shared by the full run
/// and the incremental re-fixup splice ([`crate::dist::refixup`]) — any
/// divergence between the two paths would otherwise hide in renumbering.
///
/// # Panics
///
/// Panics if the parent pointers do not form a forest with exactly one
/// root per tree (e.g. two roots joined by tree edges).
pub fn forest_from_parents(
    g: &Graph,
    parents: &[Option<Port>],
) -> (Vec<usize>, Vec<NodeId>, Vec<EdgeId>) {
    let n = g.node_count();
    let mut tree_edges = Vec::new();
    let mut dsu = kdom_graph::Dsu::new(n);
    for v in g.nodes() {
        if let Some(p) = parents[v.0] {
            let arc = g.neighbors(v)[p.0];
            tree_edges.push(arc.edge);
            dsu.union(v, arc.to);
        }
    }
    let mut root_index = std::collections::HashMap::new();
    let mut roots = Vec::new();
    for v in g.nodes() {
        if parents[v.0].is_none() {
            root_index.insert(v, roots.len());
            roots.push(v);
        }
    }
    // map every DSU representative to the (unique) root in its component
    let mut rep_to_frag = std::collections::HashMap::new();
    for (&r, &idx) in &root_index {
        let rep = dsu.find(r);
        assert!(
            rep_to_frag.insert(rep, idx).is_none(),
            "two roots in one fragment"
        );
    }
    let fragment_of: Vec<usize> = g
        .nodes()
        .map(|v| {
            let rep = dsu.find(v);
            *rep_to_frag
                .get(&rep)
                .unwrap_or_else(|| panic!("fragment of {v:?} has no root"))
        })
        .collect();
    (fragment_of, roots, tree_edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragments::simple_mst_forest;
    use kdom_graph::generators::Family;

    fn cross_check(g: &Graph, k: usize) {
        let dist = run_simple_mst(g, k);
        let seq = simple_mst_forest(g, k);
        // identical edge sets
        let mut de = dist.tree_edges.clone();
        de.sort_unstable();
        let mut se = seq.tree_edges.clone();
        se.sort_unstable();
        assert_eq!(de, se, "tree edges differ (k = {k})");
        // identical partitions (up to renumbering)
        let mut map = std::collections::HashMap::new();
        for v in 0..g.node_count() {
            let d = dist.fragment_of[v];
            let s = seq.fragment_of[v];
            assert_eq!(
                *map.entry(d).or_insert(s),
                s,
                "partition differs at node {v}"
            );
        }
        // identical roots
        let mut dr = dist.roots.clone();
        dr.sort_unstable();
        let mut sr = seq.roots.clone();
        sr.sort_unstable();
        assert_eq!(dr, sr, "roots differ (k = {k})");
    }

    #[test]
    fn matches_sequential_on_all_families() {
        for fam in Family::ALL {
            for k in [1usize, 3, 7] {
                let g = fam.generate(48, 6);
                cross_check(&g, k);
            }
        }
    }

    #[test]
    fn matches_sequential_on_random_seeds() {
        for seed in 0..8u64 {
            let g = Family::Gnp.generate(60, seed);
            cross_check(&g, 5);
        }
    }

    #[test]
    fn measured_rounds_linear_in_k() {
        let g = Family::Grid.generate(400, 2);
        let mut prev = 0u64;
        for k in [1usize, 3, 7, 15, 31] {
            let dist = run_simple_mst(&g, k);
            let end = schedule_end(k);
            assert!(
                dist.report.rounds >= end - 1 && dist.report.rounds <= end + 2,
                "fixed schedule: {} vs {end}",
                dist.report.rounds
            );
            assert!(dist.report.rounds >= prev);
            prev = dist.report.rounds;
        }
        // O(k): schedule_end(k) ≤ 10(k+1) + 8 log(k+1) + slack
        assert!(schedule_end(31) <= 10 * 64 + 8 * 6 + 16);
    }

    #[test]
    fn fragment_sizes_meet_k_plus_one() {
        let g = Family::RandomTree.generate(120, 9);
        let k = 7;
        let dist = run_simple_mst(&g, k);
        let mut sizes = vec![0usize; dist.roots.len()];
        for &f in &dist.fragment_of {
            sizes[f] += 1;
        }
        for s in sizes {
            assert!(s > k, "fragment of {s} nodes");
        }
    }

    #[test]
    fn stale_ids_never_misclassify() {
        // After many phases with deep fragments, check the classification
        // invariant on a long path: every selected edge is an MST edge and
        // no internal edge was ever reported (implied by edge-set equality
        // with the sequential reference, which never misclassifies).
        let g = Family::Path.generate(64, 4);
        cross_check(&g, 15);
    }
}
