//! Distributed exact tree k-domination (the DP of [`crate::treedp`]) over
//! a forest of rooted trees.
//!
//! One convergecast carries each subtree's `(need, have, height)` triple
//! to the cluster root; the root performs the final fix-up and announces
//! the claim-phase start round; selected nodes then flood claims so every
//! node learns its dominator. Total: `2·height + k + O(1)` measured
//! rounds per cluster, all clusters in parallel — the same complexity
//! class as `DiamDOM`, with the theorem-exact `⌊|C|/(k+1)⌋` output size.

use kdom_congest::wire::{BitReader, BitWriter, Wire, WireError};
use kdom_congest::{Message, NodeCtx, Outbox, Port, Protocol};

/// Distributed-DP messages.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DpMsg {
    /// Convergecast payload: the subtree's DP state and height.
    Up {
        /// Distance to the farthest still-undominated node (`None` if
        /// all covered).
        need: Option<u32>,
        /// Distance to the nearest selected node that can still help
        /// above (`None` if none within k).
        have: Option<u32>,
        /// Height of the subtree below the sender.
        height: u32,
    },
    /// The claim phase starts at the given round (root broadcast).
    Start {
        /// Global round at which dominators flood claims.
        t: u64,
    },
    /// Dominator claim with the dominator's id.
    Claim(u64),
}

impl Wire for DpMsg {
    fn encode(&self, w: &mut BitWriter) {
        match self {
            DpMsg::Up { need, have, height } => {
                w.tag(0, 3);
                w.opt_u32(*need);
                w.opt_u32(*have);
                w.u32(*height);
            }
            DpMsg::Start { t } => {
                w.tag(1, 3);
                w.word(*t); // rounds stay far below 2^48
            }
            DpMsg::Claim(id) => {
                w.tag(2, 3);
                w.word(*id);
            }
        }
    }

    fn decode(r: &mut BitReader<'_>) -> Result<Self, WireError> {
        Ok(match r.tag(3)? {
            0 => DpMsg::Up {
                need: r.opt_u32()?,
                have: r.opt_u32()?,
                height: r.u32()?,
            },
            1 => DpMsg::Start { t: r.word()? },
            2 => DpMsg::Claim(r.word()?),
            value => {
                return Err(WireError::BadTag {
                    context: "DpMsg",
                    value,
                })
            }
        })
    }
}

impl Message for DpMsg {}

/// Static per-node configuration (cluster tree around this node).
#[derive(Clone, Debug)]
pub struct DpConfig {
    /// Port to the parent (`None` at cluster roots).
    pub parent: Option<Port>,
    /// Ports to the children.
    pub children: Vec<Port>,
    /// The domination radius.
    pub k: usize,
}

/// Per-node automaton of the distributed DP.
#[derive(Clone, Debug)]
pub struct TreeDpNode {
    cfg: DpConfig,
    child_states: Vec<(Option<u32>, Option<u32>, u32)>,
    /// Whether this node selected itself into the dominating set.
    pub selected: bool,
    /// The id of this node's dominator, once claimed.
    pub dominator: Option<u64>,
    start_at: Option<u64>,
    claimed: bool,
    reported: bool,
}

impl TreeDpNode {
    /// A fresh automaton.
    pub fn new(cfg: DpConfig) -> Self {
        TreeDpNode {
            cfg,
            child_states: Vec::new(),
            selected: false,
            dominator: None,
            start_at: None,
            claimed: false,
            reported: false,
        }
    }

    fn tree_ports(&self) -> Vec<Port> {
        let mut p: Vec<Port> = self.cfg.parent.into_iter().collect();
        p.extend(self.cfg.children.iter().copied());
        p
    }

    /// Combines children states exactly like the sequential DP.
    fn combine(&mut self) -> (Option<u32>, Option<u32>, u32) {
        let k = self.cfg.k as u32;
        let mut need: Option<u32> = None;
        let mut have: Option<u32> = None;
        let mut height = 0u32;
        for &(cn, ch, chh) in &self.child_states {
            height = height.max(chh + 1);
            if let Some(nc) = cn {
                need = Some(need.map_or(nc + 1, |x| x.max(nc + 1)));
            }
            if let Some(hc) = ch {
                if hc < k {
                    have = Some(have.map_or(hc + 1, |x| x.min(hc + 1)));
                }
            }
        }
        let covered = have.is_some_and(|h| h <= k);
        if !covered {
            need = Some(need.unwrap_or(0));
        }
        if let (Some(nd), Some(hv)) = (need, have) {
            if nd + hv <= k {
                need = None;
            }
        }
        if need == Some(k) {
            self.selected = true;
            have = Some(0);
            need = None;
        }
        (need, have, height)
    }
}

impl Protocol for TreeDpNode {
    type Msg = DpMsg;

    fn round(&mut self, ctx: &NodeCtx<'_>, inbox: &[(Port, DpMsg)], out: &mut Outbox<DpMsg>) {
        let mut claims: Vec<(Port, u64)> = Vec::new();
        for (p, m) in inbox {
            match m {
                DpMsg::Up { need, have, height } => {
                    self.child_states.push((*need, *have, *height));
                }
                DpMsg::Start { t } => {
                    self.start_at = Some(*t);
                    for &c in &self.cfg.children.clone() {
                        out.send(c, DpMsg::Start { t: *t });
                    }
                }
                DpMsg::Claim(dom) => claims.push((*p, *dom)),
            }
        }

        // convergecast: fire once all children reported (leaves at round 0)
        if !self.reported && self.child_states.len() == self.cfg.children.len() {
            self.reported = true;
            let (need, have, height) = self.combine();
            match self.cfg.parent {
                Some(parent) => out.send(parent, DpMsg::Up { need, have, height }),
                None => {
                    // root fix-up: leftover needs are within k of the root
                    if need.is_some() {
                        self.selected = true;
                    }
                    let t = ctx.round + u64::from(height) + 2;
                    self.start_at = Some(t);
                    for &c in &self.cfg.children.clone() {
                        out.send(c, DpMsg::Start { t });
                    }
                }
            }
        }

        // claim phase
        if let Some(t) = self.start_at {
            if self.selected && !self.claimed && ctx.round >= t {
                self.dominator = Some(ctx.id);
                for p in self.tree_ports() {
                    out.send(p, DpMsg::Claim(ctx.id));
                }
                self.claimed = true;
            }
        }
        if self.dominator.is_none() {
            if let Some(&(from, dom)) = claims.first() {
                self.dominator = Some(dom);
                for p in self.tree_ports() {
                    if p != from {
                        out.send(p, DpMsg::Claim(dom));
                    }
                }
            }
        }
    }

    fn is_done(&self) -> bool {
        self.dominator.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::treedp::min_k_dominating_tree;
    use crate::verify::{check_dominating_size, check_k_dominating};
    use kdom_graph::generators::{random_tree, Family, GenConfig};
    use kdom_graph::{Graph, NodeId, RootedTree};

    fn run(g: &Graph, k: usize) -> (Vec<TreeDpNode>, kdom_congest::RunReport) {
        let t = RootedTree::from_graph(g, NodeId(0));
        let port_to = |v: NodeId, to: NodeId| {
            Port(
                g.neighbors(v)
                    .iter()
                    .position(|a| a.to == to)
                    .expect("tree edge"),
            )
        };
        let nodes = (0..g.node_count())
            .map(|v| {
                let v = NodeId(v);
                TreeDpNode::new(DpConfig {
                    parent: t.parent(v).map(|p| port_to(v, p)),
                    children: t.children(v).iter().map(|&c| port_to(v, c)).collect(),
                    k,
                })
            })
            .collect();
        kdom_congest::run_protocol(g, nodes, 10 * g.node_count() as u64 + 64)
            .expect("distributed DP quiesces")
    }

    #[test]
    fn matches_sequential_dp_exactly() {
        for seed in 0..20u64 {
            let n = 2 + (seed as usize * 11) % 90;
            for k in [1usize, 2, 4] {
                let g = random_tree(&GenConfig::with_seed(n, seed));
                let (nodes, _) = run(&g, k);
                let dist: Vec<NodeId> =
                    (0..n).map(NodeId).filter(|v| nodes[v.0].selected).collect();
                let t = RootedTree::from_graph(&g, NodeId(0));
                let seq = min_k_dominating_tree(&t, k);
                assert_eq!(dist, seq, "n={n} k={k} seed={seed}");
            }
        }
    }

    #[test]
    fn output_meets_lemma21() {
        for fam in Family::TREES {
            let g = fam.generate(120, 3);
            let n = g.node_count();
            let k = 4;
            let (nodes, _) = run(&g, k);
            let d: Vec<NodeId> = (0..n).map(NodeId).filter(|v| nodes[v.0].selected).collect();
            check_k_dominating(&g, &d, k).unwrap_or_else(|e| panic!("{fam}: {e}"));
            check_dominating_size(n, k, d.len()).unwrap_or_else(|e| panic!("{fam}: {e}"));
            // every node claimed a dominator that is selected
            for (v, node) in nodes.iter().enumerate().take(n) {
                assert!(node.dominator.is_some(), "{fam}: node {v} unclaimed");
            }
        }
    }

    #[test]
    fn rounds_linear_in_height_plus_k() {
        let g = Family::Path.generate(200, 5);
        let (_, report) = run(&g, 3);
        // height 199: converge + broadcast + claims ≈ 2h + k + c
        assert!(
            report.rounds <= 2 * 200 + 3 + 16,
            "rounds {}",
            report.rounds
        );
    }

    #[test]
    fn single_node_cluster() {
        let g = kdom_graph::GraphBuilder::new(1).build();
        let (nodes, _) = run(&g, 2);
        assert!(nodes[0].selected);
        assert!(nodes[0].dominator.is_some());
    }
}
