//! Synchronous leader election by max-id flooding.
//!
//! `DiamDOM` and `Pipeline` assume a distinguished root ("given a graph G
//! and a root node r"); the paper cites \[P\] for time-optimal leader
//! election. This module provides the standard `O(Diam)` synchronous
//! flooding election so the compositions can run root-free: every node
//! repeatedly forwards the largest id it has seen; after quiescence the
//! unique maximum has flooded everywhere and its holder knows it is the
//! leader.

use kdom_congest::wire::{BitReader, BitWriter, Wire, WireError};
use kdom_congest::{Message, NodeCtx, Outbox, Port, Protocol, RunReport};
use kdom_graph::{Graph, NodeId};

/// The largest id seen so far: a single 48-bit CONGEST word.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Best(pub u64);

impl Wire for Best {
    fn encode(&self, w: &mut BitWriter) {
        w.word(self.0);
    }

    fn decode(r: &mut BitReader<'_>) -> Result<Self, WireError> {
        Ok(Best(r.word()?))
    }
}

impl Message for Best {}

/// Per-node election automaton.
#[derive(Clone, Debug)]
pub struct ElectionNode {
    /// Largest id seen so far (own id initially).
    pub best: u64,
    started: bool,
}

impl ElectionNode {
    /// A fresh automaton.
    pub fn new() -> Self {
        ElectionNode {
            best: 0,
            started: false,
        }
    }

    /// Whether this node believes itself elected (call after the run).
    pub fn is_leader(&self, own_id: u64) -> bool {
        self.best == own_id
    }
}

impl Default for ElectionNode {
    fn default() -> Self {
        Self::new()
    }
}

impl Protocol for ElectionNode {
    type Msg = Best;

    fn round(&mut self, ctx: &NodeCtx<'_>, inbox: &[(Port, Best)], out: &mut Outbox<Best>) {
        let before = self.best;
        if !self.started {
            self.best = ctx.id;
            self.started = true;
        }
        for (_, m) in inbox {
            self.best = self.best.max(m.0);
        }
        if self.best != before {
            out.broadcast(Best(self.best));
        }
    }

    fn is_done(&self) -> bool {
        self.started
    }
}

/// Elects the maximum-id node of a connected graph.
///
/// Returns the leader and the run report (`O(Diam)` rounds).
///
/// # Panics
///
/// Panics if the graph is empty or disconnected.
pub fn elect_leader(g: &Graph) -> (NodeId, RunReport) {
    assert!(g.node_count() > 0, "cannot elect on an empty graph");
    let nodes = (0..g.node_count()).map(|_| ElectionNode::new()).collect();
    let (nodes, report) = kdom_congest::run_protocol(g, nodes, 4 * g.node_count() as u64 + 16)
        .expect("election quiesces on a connected graph");
    let max_id = g.nodes().map(|v| g.id_of(v)).max().expect("non-empty");
    let leader = g.node_with_id(max_id).expect("max id exists");
    for v in g.nodes() {
        assert_eq!(nodes[v.0].best, max_id, "{v:?} did not learn the leader");
    }
    (leader, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdom_graph::generators::Family;
    use kdom_graph::properties::diameter;

    #[test]
    fn elects_max_id_everywhere() {
        for fam in Family::ALL {
            let g = fam.generate(80, 19);
            let (leader, _) = elect_leader(&g);
            let max_id = g.nodes().map(|v| g.id_of(v)).max().unwrap();
            assert_eq!(g.id_of(leader), max_id, "{fam}");
        }
    }

    #[test]
    fn rounds_track_diameter() {
        let g = Family::Path.generate(120, 4);
        let (_, report) = elect_leader(&g);
        let d = u64::from(diameter(&g));
        assert!(
            report.rounds <= 2 * d + 4,
            "{} rounds vs diam {d}",
            report.rounds
        );
    }

    #[test]
    fn single_node() {
        let g = kdom_graph::GraphBuilder::new(1).build();
        let (leader, report) = elect_leader(&g);
        assert_eq!(leader, NodeId(0));
        assert!(report.rounds <= 2);
    }

    #[test]
    fn messages_bounded() {
        // each node re-broadcasts only on improvement: O(m · improvements)
        let g = Family::Gnp.generate(100, 8);
        let (_, report) = elect_leader(&g);
        assert!(report.messages < 100 * g.edge_count() as u64);
        assert_eq!(report.max_message_bits, 48);
    }
}
