//! Incremental re-fixup after churn epochs.
//!
//! When the topology changes under a finished run, a full restart is
//! always correct — but it re-pays `O(k)` rounds for every node in the
//! graph, even when one edge-weight nudge touched two fragments. This
//! module recomputes only what an epoch's events could have touched:
//!
//! 1. **Dirty closure.** An event marks *old final fragments* dirty: the
//!    endpoints of a changed/inserted/removed edge, a leaving node's
//!    fragment plus its neighbors' fragments, a join's link targets.
//!    Fresh nodes (joins) are dirty by definition. The dirty scope is
//!    the union of those fragments' members, mapped into the new graph.
//! 2. **Local re-run.** The distributed `SimpleMST` runs on the induced
//!    subgraph of the dirty scope, carrying the original application
//!    ids (so tie-breaking matches a global run) and original weights.
//! 3. **Splice.** Clean nodes keep their old parent ports — valid
//!    because the dirty closure guarantees a clean node's adjacency list
//!    is unchanged (every modified edge endpoint is dirty, surviving
//!    edges keep their relative order, and inserted edges only append).
//!    Dirty nodes take their parents from the local run, translated
//!    back to global ports. The forest is re-extracted with the *same*
//!    numbering rule as a full run
//!    ([`crate::dist::fragments::forest_from_parents`]).
//! 4. **Certificate.** The spliced forest is compared against the
//!    sequential oracle on the full new graph
//!    ([`crate::fragments::simple_mst_forest`]): identical edge sets,
//!    identical partition (up to renumbering), identical root sets. A
//!    mismatch — e.g. a merge that should have crossed the dirty/clean
//!    boundary — falls back to a full distributed restart, so the
//!    incremental path can only ever trade rounds, never correctness.
//!
//! For `DOMPartition_1` the story is simpler and is implemented in
//! [`refixup_partition1`]: the partition never reads edge weights and a
//! weight-only epoch keeps every port identical, so it is a certified
//! no-op; structural events restart the partition, because the DFS
//! segmentation is globally order-dependent — a single subtree size
//! change can relabel every cluster downstream, so there is no local
//! scope to exploit.
//!
//! Every decision is recorded in the trace stream (`KDOM_TRACE`): the
//! epoch's churn events, then a `refixup` event claiming the scope. For
//! an incremental decision the trace validator audits that the next run
//! simulates **at most `scope` nodes** — an over-eager "incremental"
//! path that secretly re-runs the world fails validation.

use std::collections::HashMap;

use kdom_congest::faults::{apply_churn, ChurnError, ChurnEvent, ChurnRemap};
use kdom_congest::{EngineConfig, FaultPlan, Port};
use kdom_graph::{Graph, GraphBuilder, NodeId};

use crate::dist::executor::Executor;
use crate::dist::fragments::{forest_from_parents, run_simple_mst_configured, DistFragments};
use crate::fragments::{simple_mst_forest, Fragments};

/// Outcome of one fragment re-fixup.
#[derive(Clone, Debug)]
pub struct FragRefixup {
    /// The repaired forest on the new graph.
    pub fragments: DistFragments,
    /// Nodes in the dirty scope (the incremental path simulated at most
    /// this many; equals the node count on a full restart).
    pub scope: usize,
    /// Whether the full-restart fallback ran (dirty scope covered the
    /// graph, or the certificate rejected the splice).
    pub full_restart: bool,
}

/// Marks the old fragments an epoch's events touch and returns the
/// dirty node set **of the new graph**, in ascending node order. Fresh
/// nodes (no old counterpart) are always dirty.
pub fn dirty_scope(
    old_g: &Graph,
    old: &DistFragments,
    new_g: &Graph,
    remap: &ChurnRemap,
    events: &[ChurnEvent],
) -> Vec<NodeId> {
    let mut dirty_frag = vec![false; old.roots.len()];
    // ids born earlier in the same epoch miss the lookup; their nodes
    // are fresh in the new graph and therefore dirty anyway
    fn mark(dirty: &mut [bool], old_g: &Graph, old: &DistFragments, id: u64) {
        if let Some(v) = old_g.node_with_id(id) {
            dirty[old.fragment_of[v.0]] = true;
        }
    }
    for ev in events {
        match ev {
            ChurnEvent::NodeLeave { id } => {
                if let Some(v) = old_g.node_with_id(*id) {
                    dirty_frag[old.fragment_of[v.0]] = true;
                    for a in old_g.neighbors(v) {
                        dirty_frag[old.fragment_of[a.to.0]] = true;
                    }
                }
            }
            ChurnEvent::NodeJoin { links, .. } => {
                for (target, _) in links {
                    mark(&mut dirty_frag, old_g, old, *target);
                }
            }
            ChurnEvent::EdgeWeightChange { a, b, .. }
            | ChurnEvent::EdgeInsert { a, b, .. }
            | ChurnEvent::EdgeRemove { a, b } => {
                mark(&mut dirty_frag, old_g, old, *a);
                mark(&mut dirty_frag, old_g, old, *b);
            }
        }
    }
    new_g
        .nodes()
        .filter(|&v| match remap.new_to_old[v.0] {
            Some(o) => dirty_frag[old.fragment_of[o.0]],
            None => true,
        })
        .collect()
}

/// Whether a candidate forest equals the sequential oracle: same edge
/// set, same root set, and the same partition up to renumbering.
fn matches_oracle(cand: &DistFragments, oracle: &Fragments) -> bool {
    let mut ce = cand.tree_edges.clone();
    ce.sort_unstable();
    let mut oe = oracle.tree_edges.clone();
    oe.sort_unstable();
    if ce != oe {
        return false;
    }
    let mut cr = cand.roots.clone();
    cr.sort_unstable();
    let mut or = oracle.roots.clone();
    or.sort_unstable();
    if cr != or {
        return false;
    }
    if cand.fragment_of.len() != oracle.fragment_of.len() {
        return false;
    }
    let mut fwd = HashMap::new();
    let mut bwd = HashMap::new();
    for (c, o) in cand.fragment_of.iter().zip(&oracle.fragment_of) {
        if *fwd.entry(*c).or_insert(*o) != *o || *bwd.entry(*o).or_insert(*c) != *c {
            return false;
        }
    }
    true
}

/// Repairs a `SimpleMST` forest after one churn epoch.
///
/// `old` is the forest computed on `old_g`; `new_g`/`remap` come from
/// [`apply_churn`] over `events`. The incremental path re-runs the
/// distributed protocol only on the dirty scope and splices the result
/// (see the module docs); it is certified against the sequential oracle
/// and falls back to a full distributed restart on any mismatch, so the
/// returned forest is always oracle-correct. `epoch` tags the trace
/// events.
///
/// # Panics
///
/// Panics if a protocol run fails to quiesce (as
/// [`run_simple_mst_configured`]).
#[allow(clippy::too_many_arguments)]
pub fn refixup_fragments(
    old_g: &Graph,
    old: &DistFragments,
    new_g: &Graph,
    remap: &ChurnRemap,
    events: &[ChurnEvent],
    k: usize,
    exec: &Executor,
    config: EngineConfig,
    epoch: u64,
) -> FragRefixup {
    let n = new_g.node_count();
    let dirty = dirty_scope(old_g, old, new_g, remap, events);

    let full = |why_full: bool| -> FragRefixup {
        kdom_congest::trace::emit_refixup(epoch, n, n, true);
        FragRefixup {
            fragments: run_simple_mst_configured(new_g, k, exec, config),
            scope: n,
            full_restart: why_full,
        }
    };
    if dirty.len() == n {
        return full(true);
    }

    // splice: clean nodes keep their old parent ports
    let mut in_dirty = vec![false; n];
    for &v in &dirty {
        in_dirty[v.0] = true;
    }
    let mut parents: Vec<Option<Port>> = vec![None; n];
    for v in new_g.nodes() {
        if !in_dirty[v.0] {
            let o = remap.new_to_old[v.0].expect("clean nodes survive the epoch");
            parents[v.0] = old.parents[o.0];
        }
    }

    // local re-run on the induced dirty subgraph (original ids and
    // weights, so every tie-break matches a global run); a run over
    // at most `dirty.len()` nodes — which the trace validator audits.
    // Dirty nodes with no dirty neighbor are left out of the run: they
    // induce degree-0 vertices, every executor computes the same thing
    // for a singleton fragment (no parent), and the α synchronizer
    // cannot clock an isolated node past pulse 0 at all.
    let wired: Vec<NodeId> = dirty
        .iter()
        .copied()
        .filter(|&v| new_g.neighbors(v).iter().any(|a| in_dirty[a.to.0]))
        .collect();
    let mut local_report = kdom_congest::RunReport::default();
    if !wired.is_empty() {
        kdom_congest::trace::emit_refixup(epoch, dirty.len(), n, false);
        let mut b = GraphBuilder::new(wired.len());
        b.ids(wired.iter().map(|&v| new_g.id_of(v)).collect());
        let sub_index: HashMap<NodeId, usize> =
            wired.iter().enumerate().map(|(i, &v)| (v, i)).collect();
        for e in new_g.edges() {
            if let (Some(&su), Some(&sv)) = (sub_index.get(&e.u), sub_index.get(&e.v)) {
                b.add_edge(NodeId(su), NodeId(sv), e.weight);
            }
        }
        let sub = b.build();
        let local = run_simple_mst_configured(&sub, k, exec, config);
        local_report = local.report.clone();
        for (si, &v) in wired.iter().enumerate() {
            if let Some(p) = local.parents[si] {
                let target = wired[sub.neighbors(NodeId(si))[p.0].to.0];
                let port = new_g
                    .neighbors(v)
                    .iter()
                    .position(|a| a.to == target)
                    .expect("subgraph edges exist in the host graph");
                parents[v.0] = Some(Port(port));
            }
        }
    }

    let (fragment_of, roots, tree_edges) = forest_from_parents(new_g, &parents);
    // the candidate's report is the *local* run's: the rounds and
    // messages the repair actually spent (zero for a pure splice)
    let candidate = DistFragments {
        fragment_of,
        roots,
        tree_edges,
        parents,
        report: local_report,
    };
    let oracle = simple_mst_forest(new_g, k);
    if matches_oracle(&candidate, &oracle) {
        FragRefixup {
            fragments: candidate,
            scope: dirty.len(),
            full_restart: false,
        }
    } else {
        // a merge crossed the dirty/clean boundary: the heuristic was
        // too optimistic, correctness falls back to the full path
        full(true)
    }
}

/// Outcome of one partition re-fixup.
#[derive(Clone, Debug)]
pub struct P1Refixup {
    /// Cluster id (the center's application id) per node of the new
    /// graph.
    pub clusters: Vec<u64>,
    /// Center flag per node of the new graph.
    pub centers: Vec<bool>,
    /// Nodes the recovery touched (0 for the certified no-op).
    pub scope: usize,
    /// Whether the partition restarted from scratch.
    pub full_restart: bool,
}

/// Repairs a `DOMPartition_1` clustering after one churn epoch.
///
/// A weight-only epoch is a certified no-op: the partition never reads
/// edge weights, and [`apply_churn`] keeps node order and edge order —
/// hence every port — identical, so the old assignment is the correct
/// assignment and `scope == 0`. Any structural event restarts the
/// partition: the DFS segmentation behind `DOMPartition_1` is globally
/// order-dependent (one subtree size change relabels every cluster
/// after it in DFS order), so no useful local scope exists.
///
/// # Panics
///
/// Panics if `new_g` is not a tree when a restart is needed, as
/// [`crate::dist::partition1::run_partition1`].
pub fn refixup_partition1(
    old_clusters: &[u64],
    old_centers: &[bool],
    new_g: &Graph,
    events: &[ChurnEvent],
    root: NodeId,
    k: usize,
    epoch: u64,
) -> P1Refixup {
    let weight_only = events
        .iter()
        .all(|e| matches!(e, ChurnEvent::EdgeWeightChange { .. }));
    if weight_only {
        // no refixup trace event: no recovery run happens, and the
        // validator audits scope claims against the *next* run
        return P1Refixup {
            clusters: old_clusters.to_vec(),
            centers: old_centers.to_vec(),
            scope: 0,
            full_restart: false,
        };
    }
    let n = new_g.node_count();
    kdom_congest::trace::emit_refixup(epoch, n, n, true);
    let (nodes, _) = crate::dist::partition1::run_partition1(new_g, root, k);
    P1Refixup {
        clusters: nodes.iter().map(|x| x.cluster).collect(),
        centers: nodes.iter().map(|x| x.is_center).collect(),
        scope: n,
        full_restart: true,
    }
}

/// The state after one epoch of [`run_fragment_epochs`]: the topology,
/// the repaired forest, and how much work the repair did.
#[derive(Clone, Debug)]
pub struct FragmentEpochOutcome {
    /// The topology this forest lives on.
    pub graph: Graph,
    /// The (oracle-correct) forest.
    pub fragments: DistFragments,
    /// Nodes the computation touched (node count for the initial run
    /// and full restarts).
    pub scope: usize,
    /// Whether this outcome came from a full run.
    pub full_restart: bool,
}

/// Runs `SimpleMST` across all churn epochs of `plan`: one full run on
/// the base graph, then one [`refixup_fragments`] per epoch. Returns
/// `plan.epochs.len() + 1` outcomes, each oracle-correct for its
/// topology. Churn and refixup decisions land in the trace stream.
///
/// The plan's *transient* faults are not interpreted here — pass an
/// [`Executor::ReliableAlpha`] carrying them to run the protocol legs
/// under loss; the epochs are consumed from `plan` directly.
///
/// # Errors
///
/// Returns the [`ChurnError`] of the first epoch whose events do not
/// apply to the topology they arrived at.
///
/// # Panics
///
/// Panics if a protocol run fails to quiesce.
pub fn run_fragment_epochs(
    g: &Graph,
    plan: &FaultPlan,
    k: usize,
    exec: &Executor,
    config: EngineConfig,
) -> Result<Vec<FragmentEpochOutcome>, ChurnError> {
    let mut out = Vec::with_capacity(plan.epochs.len() + 1);
    out.push(FragmentEpochOutcome {
        graph: g.clone(),
        fragments: run_simple_mst_configured(g, k, exec, config),
        scope: g.node_count(),
        full_restart: true,
    });
    for (i, ep) in plan.epochs.iter().enumerate() {
        for ev in &ep.events {
            kdom_congest::trace::emit_churn(i as u64, ev);
        }
        let prev = out.last().expect("seeded with the initial run");
        let (next, remap) = apply_churn(&prev.graph, &ep.events)?;
        let fix = refixup_fragments(
            &prev.graph,
            &prev.fragments,
            &next,
            &remap,
            &ep.events,
            k,
            exec,
            config,
            i as u64,
        );
        out.push(FragmentEpochOutcome {
            graph: next,
            fragments: fix.fragments,
            scope: fix.scope,
            full_restart: fix.full_restart,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdom_graph::generators::Family;

    fn canonical(f: &DistFragments) -> (Vec<kdom_graph::EdgeId>, Vec<NodeId>, Vec<usize>) {
        let mut e = f.tree_edges.clone();
        e.sort_unstable();
        let mut r = f.roots.clone();
        r.sort_unstable();
        // renumber fragments by first appearance
        let mut seen = HashMap::new();
        let frag = f
            .fragment_of
            .iter()
            .map(|&x| {
                let next = seen.len();
                *seen.entry(x).or_insert(next)
            })
            .collect();
        (e, r, frag)
    }

    /// Re-weights the globally heaviest edge to `max + 1`: every weight
    /// comparison is unchanged, so the oracle output is identical and
    /// the incremental path must certify.
    fn weight_change_epoch(g: &Graph) -> Vec<ChurnEvent> {
        let e = g.edges().iter().max_by_key(|x| x.weight).unwrap();
        vec![ChurnEvent::EdgeWeightChange {
            a: g.id_of(e.u),
            b: g.id_of(e.v),
            weight: e.weight + 1,
        }]
    }

    #[test]
    fn incremental_matches_full_restart_on_weight_change() {
        let g = Family::Gnp.generate(60, 3);
        let k = 3;
        let exec = Executor::Sync;
        let cfg = EngineConfig::default();
        let old = run_simple_mst_configured(&g, k, &exec, cfg);
        // a *disruptive* change: the lightest edge becomes the heaviest,
        // so merge decisions genuinely differ and the certificate (or
        // the fallback) has to earn its keep
        let e = g.edges().iter().min_by_key(|x| x.weight).unwrap();
        let max_w = g.edges().iter().map(|x| x.weight).max().unwrap();
        let events = vec![ChurnEvent::EdgeWeightChange {
            a: g.id_of(e.u),
            b: g.id_of(e.v),
            weight: max_w + 1,
        }];
        let (new_g, remap) = apply_churn(&g, &events).unwrap();
        let fix = refixup_fragments(&g, &old, &new_g, &remap, &events, k, &exec, cfg, 0);
        let full = run_simple_mst_configured(&new_g, k, &exec, cfg);
        assert_eq!(canonical(&fix.fragments), canonical(&full));
        assert!(fix.scope <= new_g.node_count());
    }

    #[test]
    fn incremental_matches_full_restart_on_node_leave() {
        let g = Family::Grid.generate(49, 5);
        let k = 2;
        let exec = Executor::Sync;
        let cfg = EngineConfig::default();
        let old = run_simple_mst_configured(&g, k, &exec, cfg);
        // remove an interior node (grid stays connected)
        let v = g
            .nodes()
            .find(|&v| {
                g.degree(v) == 4 && {
                    // removal keeps the grid connected: any interior node
                    true
                }
            })
            .unwrap();
        let events = vec![ChurnEvent::NodeLeave { id: g.id_of(v) }];
        let (new_g, remap) = apply_churn(&g, &events).unwrap();
        let fix = refixup_fragments(&g, &old, &new_g, &remap, &events, k, &exec, cfg, 0);
        let full = run_simple_mst_configured(&new_g, k, &exec, cfg);
        assert_eq!(canonical(&fix.fragments), canonical(&full));
    }

    #[test]
    fn scope_shrinks_on_a_path() {
        // On a long path with small k there are many fragments; one
        // weight change must not re-run the whole world.
        let g = Family::Path.generate(120, 7);
        let k = 1;
        let exec = Executor::Sync;
        let cfg = EngineConfig::default();
        let old = run_simple_mst_configured(&g, k, &exec, cfg);
        assert!(
            old.roots.len() >= 10,
            "path should split into many fragments"
        );
        let events = weight_change_epoch(&g);
        let (new_g, remap) = apply_churn(&g, &events).unwrap();
        let fix = refixup_fragments(&g, &old, &new_g, &remap, &events, k, &exec, cfg, 0);
        assert!(
            !fix.full_restart && fix.scope < new_g.node_count() / 2,
            "scope {} of {} (full_restart = {})",
            fix.scope,
            new_g.node_count(),
            fix.full_restart
        );
        let full = run_simple_mst_configured(&new_g, k, &exec, cfg);
        assert_eq!(canonical(&fix.fragments), canonical(&full));
    }

    #[test]
    fn epoch_driver_chains_refixups() {
        let g = Family::Gnp.generate(40, 11);
        let max_w = g.edges().iter().map(|x| x.weight).max().unwrap();
        let e0 = &g.edges()[1];
        let plan = FaultPlan::new(0)
            .epoch(
                5,
                vec![ChurnEvent::EdgeWeightChange {
                    a: g.id_of(e0.u),
                    b: g.id_of(e0.v),
                    weight: max_w + 1,
                }],
            )
            .epoch(
                9,
                vec![ChurnEvent::NodeJoin {
                    id: 1 << 40,
                    links: vec![
                        (g.id_of(NodeId(0)), max_w + 2),
                        (g.id_of(NodeId(1)), max_w + 3),
                    ],
                }],
            );
        let out =
            run_fragment_epochs(&g, &plan, 3, &Executor::Sync, EngineConfig::default()).unwrap();
        assert_eq!(out.len(), 3);
        for o in &out {
            // every epoch's output verifies against the oracle
            let oracle = simple_mst_forest(&o.graph, 3);
            assert!(matches_oracle(&o.fragments, &oracle));
        }
        assert_eq!(out[2].graph.node_count(), g.node_count() + 1);
    }

    #[test]
    fn partition1_weight_only_is_a_certified_noop() {
        let g = Family::RandomTree.generate(60, 13);
        let k = 3;
        let (nodes, _) = crate::dist::partition1::run_partition1(&g, NodeId(0), k);
        let clusters: Vec<u64> = nodes.iter().map(|x| x.cluster).collect();
        let centers: Vec<bool> = nodes.iter().map(|x| x.is_center).collect();
        let events = weight_change_epoch(&g);
        let (new_g, _) = apply_churn(&g, &events).unwrap();
        let fix = refixup_partition1(&clusters, &centers, &new_g, &events, NodeId(0), k, 0);
        assert!(!fix.full_restart);
        assert_eq!(fix.scope, 0);
        // the no-op claim: a fresh run on the new graph agrees exactly
        let (renodes, _) = crate::dist::partition1::run_partition1(&new_g, NodeId(0), k);
        let reclusters: Vec<u64> = renodes.iter().map(|x| x.cluster).collect();
        assert_eq!(fix.clusters, reclusters);
    }
}
