//! Self-contained deterministic pseudo-randomness for the kdom workspace.
//!
//! Every randomized component of the reproduction — graph generators,
//! the synchronizer-α delay model, the fault injector, the seeded-loop
//! property tests — draws from this crate, so runs are reproducible from
//! a single `u64` seed with **no external dependencies**. The generator
//! is xoshiro256++ (Blackman–Vigna), seeded through SplitMix64; both are
//! public-domain algorithms with well-studied statistical quality, far
//! more than sufficient for simulation workloads.
//!
//! The API mirrors the subset of `rand` the workspace used to consume
//! (`seed_from_u64`, `random_range`, `random_bool`), plus slice
//! shuffling and distinct-index sampling.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A seedable deterministic random number generator (xoshiro256++).
///
/// Equal seeds produce equal streams on every platform; the generator
/// never allocates and is `Clone`, so simulations can fork deterministic
/// sub-streams.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl StdRng {
    /// Creates a generator whose stream is fully determined by `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        StdRng { s }
    }

    /// Next raw 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.s;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.s = s;
        result
    }

    /// Uniform value in `[0, n)` (Lemire's multiply-shift reduction).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty sampling range");
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// Uniform sample from an integer range, e.g. `rng.random_range(0..n)`
    /// or `rng.random_range(1..=max)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    pub fn random_range<R: SampleRange>(&mut self, range: R) -> R::Out {
        range.sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    #[inline]
    pub fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        // 53 high-quality mantissa bits, exactly representable in f64
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn random_unit(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// `m` pairwise-distinct indices drawn uniformly from `0..space`
    /// (Floyd's algorithm; order is not uniform — shuffle if needed).
    ///
    /// # Panics
    ///
    /// Panics if `m > space`.
    pub fn sample_indices(&mut self, space: usize, m: usize) -> Vec<usize> {
        assert!(m <= space, "cannot draw {m} distinct values from {space}");
        let mut chosen = std::collections::HashSet::with_capacity(m);
        let mut out = Vec::with_capacity(m);
        for j in space - m..space {
            let t = self.below(j as u64 + 1) as usize;
            let pick = if chosen.insert(t) { t } else { j };
            if pick != t {
                chosen.insert(pick);
            }
            out.push(pick);
        }
        out
    }

    /// Forks an independent deterministic sub-stream keyed by `tag`
    /// (used to give each simulated link its own fault stream).
    pub fn fork(&self, tag: u64) -> StdRng {
        let mut base = 0u64;
        for (i, w) in self.s.iter().enumerate() {
            base ^= w.rotate_left(17 * (i as u32 + 1));
        }
        StdRng::seed_from_u64(base ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

/// Integer ranges [`StdRng::random_range`] can sample from.
pub trait SampleRange {
    /// The sampled integer type.
    type Out;
    /// Draws one uniform sample.
    fn sample(self, rng: &mut StdRng) -> Self::Out;
}

impl SampleRange for std::ops::Range<usize> {
    type Out = usize;
    #[inline]
    fn sample(self, rng: &mut StdRng) -> usize {
        assert!(self.start < self.end, "empty range {self:?}");
        self.start + rng.below((self.end - self.start) as u64) as usize
    }
}

impl SampleRange for std::ops::Range<u64> {
    type Out = u64;
    #[inline]
    fn sample(self, rng: &mut StdRng) -> u64 {
        assert!(self.start < self.end, "empty range {self:?}");
        self.start + rng.below(self.end - self.start)
    }
}

impl SampleRange for std::ops::Range<u32> {
    type Out = u32;
    #[inline]
    fn sample(self, rng: &mut StdRng) -> u32 {
        assert!(self.start < self.end, "empty range {self:?}");
        self.start + rng.below(u64::from(self.end - self.start)) as u32
    }
}

impl SampleRange for std::ops::RangeInclusive<u64> {
    type Out = u64;
    #[inline]
    fn sample(self, rng: &mut StdRng) -> u64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range {lo}..={hi}");
        if lo == 0 && hi == u64::MAX {
            return rng.next_u64();
        }
        lo + rng.below(hi - lo + 1)
    }
}

impl SampleRange for std::ops::RangeInclusive<usize> {
    type Out = usize;
    #[inline]
    fn sample(self, rng: &mut StdRng) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range {lo}..={hi}");
        lo + rng.below((hi - lo) as u64 + 1) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.random_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.random_range(5u64..=9);
            assert!((5..=9).contains(&y));
            let z = rng.random_range(0u32..2);
            assert!(z < 2);
        }
    }

    #[test]
    fn range_endpoints_reachable() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.random_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all range values occur");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        StdRng::seed_from_u64(0).random_range(4usize..4);
    }

    #[test]
    fn bool_probability_is_roughly_p() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((27_000..33_000).contains(&hits), "{hits} hits for p=0.3");
        assert!((0..1000).all(|_| !rng.random_bool(0.0)));
        assert!((0..1000).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut xs: Vec<usize> = (0..100).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(xs, (0..100).collect::<Vec<_>>(), "astronomically unlikely");
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut rng = StdRng::seed_from_u64(9);
        for (space, m) in [(10, 10), (100, 7), (5000, 100)] {
            let idx = rng.sample_indices(space, m);
            assert_eq!(idx.len(), m);
            let set: std::collections::HashSet<_> = idx.iter().collect();
            assert_eq!(set.len(), m, "indices must be distinct");
            assert!(idx.iter().all(|&i| i < space));
        }
    }

    #[test]
    fn forked_streams_differ_by_tag() {
        let rng = StdRng::seed_from_u64(5);
        let mut a = rng.fork(1);
        let mut b = rng.fork(2);
        let mut a2 = rng.fork(1);
        assert_eq!(a.next_u64(), a2.next_u64(), "same tag, same stream");
        assert_ne!(a.next_u64(), b.next_u64(), "tags separate streams");
    }

    #[test]
    fn full_u64_inclusive_range() {
        let mut rng = StdRng::seed_from_u64(2);
        // must not overflow
        let _ = rng.random_range(0u64..=u64::MAX);
    }
}
