//! Deterministic fault injection for the simulators.
//!
//! The paper's model (§1.2) assumes perfectly reliable synchronous links.
//! This module makes that assumption a *toggle*: a [`FaultPlan`] describes
//! a reproducible adversary — per-link message loss, duplication, bounded
//! extra delivery delay (for the asynchronous executor), fail-stop node
//! crashes, and link down-intervals — and a [`FaultInjector`] plays it
//! back deterministically from a seed. The synchronous [`crate::Simulator`]
//! and the synchronizer-α executor ([`crate::AlphaSimulator`]) both accept
//! a plan; the reliable-delivery layer ([`crate::reliable`]) restores
//! exactly-once semantics on top so unmodified protocols stay correct.
//!
//! All decisions are drawn from a single [`StdRng`] stream in simulation
//! event order, so a `(plan, executor seed)` pair fully determines a run.
//!
//! Beyond transient faults, a plan may also schedule **churn epochs**
//! ([`ChurnEpoch`]): batches of topology changes ([`ChurnEvent`]) applied
//! at round boundaries. [`NodeLeave`](ChurnEvent::NodeLeave) generalizes
//! crash-stop — the node is removed from the topology rather than merely
//! silenced — and joins, edge insertions/removals, and weight changes
//! model the rest of a production graph's life. [`apply_churn`] rebuilds
//! the (immutable) [`Graph`] deterministically and returns a
//! [`ChurnRemap`] so surviving per-node state can be carried across; the
//! epoch driver in [`crate::engine`] uses it to re-enter protocols.

use std::collections::{HashMap, HashSet};
use std::fmt;

use kdom_graph::{EdgeId, Graph, GraphBuilder, NodeId};
use kdom_rng::StdRng;

/// A declarative, seeded description of the faults to inject into a run.
///
/// The default plan is fault-free, which reproduces the paper's reliable
/// synchronous model exactly.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Seed of the fault stream; equal plans replay identical faults.
    pub seed: u64,
    /// Per-transmission probability that a message is silently lost.
    pub drop_prob: f64,
    /// Per-transmission probability that a message is delivered twice.
    pub dup_prob: f64,
    /// Upper bound on the *extra* delivery delay (in virtual time units)
    /// a message may suffer, drawn uniformly from `0..=max_extra_delay`.
    /// Only the asynchronous executor interprets delays; the synchronous
    /// simulator ignores this field.
    pub max_extra_delay: u64,
    /// Fail-stop crashes: each named node permanently halts when it
    /// reaches the given round (synchronous) or pulse (α executor).
    pub crashes: Vec<Crash>,
    /// Intervals during which a link delivers nothing in either direction.
    pub link_downs: Vec<LinkDown>,
    /// Scheduled churn epochs, sorted by round by the builder. The
    /// simulators themselves do not interpret these (a [`Graph`] is
    /// immutable for the lifetime of a run); the epoch driver
    /// ([`crate::engine::run_epochs`]) cuts the run at each boundary,
    /// applies the events and re-enters the protocol.
    pub epochs: Vec<ChurnEpoch>,
}

/// One topology change, addressed by **application-level node ids** (the
/// `u64` identifiers), which stay stable across graph rebuilds — dense
/// [`NodeId`] indices shift when nodes leave.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChurnEvent {
    /// The node is removed from the topology together with all incident
    /// edges. This generalizes crash-stop: a crashed node still occupies
    /// its slot and darkens its links, a departed node is *gone*.
    NodeLeave {
        /// Application-level id of the leaving node.
        id: u64,
    },
    /// A new node appears, wired to existing nodes.
    NodeJoin {
        /// Fresh application-level id of the joining node.
        id: u64,
        /// `(neighbor id, edge weight)` per new link; weights must keep
        /// the graph's distinct-weights invariant.
        links: Vec<(u64, u64)>,
    },
    /// The weight of an existing edge changes (staying globally distinct).
    EdgeWeightChange {
        /// One endpoint id.
        a: u64,
        /// The other endpoint id.
        b: u64,
        /// The new (distinct) weight.
        weight: u64,
    },
    /// A new edge appears between two existing nodes.
    EdgeInsert {
        /// One endpoint id.
        a: u64,
        /// The other endpoint id.
        b: u64,
        /// The (distinct) weight of the new edge.
        weight: u64,
    },
    /// An existing edge disappears.
    EdgeRemove {
        /// One endpoint id.
        a: u64,
        /// The other endpoint id.
        b: u64,
    },
}

impl ChurnEvent {
    /// Stable snake_case label of the event kind (used by the trace
    /// layer's `churn` records).
    pub fn kind(&self) -> &'static str {
        match self {
            ChurnEvent::NodeLeave { .. } => "node_leave",
            ChurnEvent::NodeJoin { .. } => "node_join",
            ChurnEvent::EdgeWeightChange { .. } => "weight_change",
            ChurnEvent::EdgeInsert { .. } => "edge_insert",
            ChurnEvent::EdgeRemove { .. } => "edge_remove",
        }
    }

    /// The application-level ids the event names: `(primary, secondary)`.
    pub fn endpoints(&self) -> (u64, Option<u64>) {
        match *self {
            ChurnEvent::NodeLeave { id } | ChurnEvent::NodeJoin { id, .. } => (id, None),
            ChurnEvent::EdgeWeightChange { a, b, .. }
            | ChurnEvent::EdgeInsert { a, b, .. }
            | ChurnEvent::EdgeRemove { a, b } => (a, Some(b)),
        }
    }

    /// The weight the event carries, for weight-bearing events.
    pub fn weight(&self) -> Option<u64> {
        match *self {
            ChurnEvent::EdgeWeightChange { weight, .. } | ChurnEvent::EdgeInsert { weight, .. } => {
                Some(weight)
            }
            _ => None,
        }
    }
}

/// A batch of churn events applied atomically at one round boundary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChurnEpoch {
    /// The round boundary (rounds since the current protocol entry) at
    /// which the batch applies; a run that quiesces earlier applies the
    /// batch at quiescence.
    pub at: u64,
    /// The events of the batch, applied in order.
    pub events: Vec<ChurnEvent>,
}

/// A churn event could not be applied to the current graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChurnError {
    /// An event named an application id not present in the graph.
    UnknownNode {
        /// The missing id.
        id: u64,
    },
    /// A `NodeJoin` reused an id that is already present.
    DuplicateNode {
        /// The clashing id.
        id: u64,
    },
    /// An edge event named a pair of nodes with no edge between them.
    UnknownEdge {
        /// One endpoint id.
        a: u64,
        /// The other endpoint id.
        b: u64,
    },
    /// An `EdgeInsert` (or a join link) would create a parallel edge.
    DuplicateEdge {
        /// One endpoint id.
        a: u64,
        /// The other endpoint id.
        b: u64,
    },
    /// A new or changed weight collides with an existing edge weight,
    /// breaking the paper's distinct-weights assumption.
    WeightClash {
        /// The colliding weight.
        weight: u64,
    },
    /// An edge event named the same node twice.
    SelfLoop {
        /// The offending id.
        id: u64,
    },
    /// A `NodeLeave` would remove the last node of the graph.
    EmptyGraph,
}

impl fmt::Display for ChurnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChurnError::UnknownNode { id } => write!(f, "no node with id {id}"),
            ChurnError::DuplicateNode { id } => write!(f, "a node with id {id} already exists"),
            ChurnError::UnknownEdge { a, b } => write!(f, "no edge between ids {a} and {b}"),
            ChurnError::DuplicateEdge { a, b } => {
                write!(f, "an edge between ids {a} and {b} already exists")
            }
            ChurnError::WeightClash { weight } => {
                write!(f, "weight {weight} is already used by another edge")
            }
            ChurnError::SelfLoop { id } => write!(f, "event names id {id} on both endpoints"),
            ChurnError::EmptyGraph => write!(f, "cannot remove the last node of the graph"),
        }
    }
}

impl std::error::Error for ChurnError {}

/// How node indices moved across [`apply_churn`]: surviving nodes keep
/// their relative order, joined nodes are appended in event order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChurnRemap {
    /// For each old [`NodeId`]: its new index, or `None` if it left.
    pub old_to_new: Vec<Option<NodeId>>,
    /// For each new [`NodeId`]: its old index, or `None` if it joined.
    pub new_to_old: Vec<Option<NodeId>>,
}

impl ChurnRemap {
    /// The identity remap over `n` nodes (an epoch with no membership
    /// changes).
    pub fn identity(n: usize) -> Self {
        ChurnRemap {
            old_to_new: (0..n).map(|v| Some(NodeId(v))).collect(),
            new_to_old: (0..n).map(|v| Some(NodeId(v))).collect(),
        }
    }
}

/// Applies a batch of churn events to `g`, returning the rebuilt graph
/// and the index remap.
///
/// The rebuild is deterministic: surviving nodes keep their relative
/// order (joins appended in event order), surviving edges keep their
/// relative order (insertions appended in event order), so equal inputs
/// produce byte-identical graphs — ports included. Events are validated
/// against the *evolving* graph, so one epoch may insert an edge and a
/// later epoch may remove it.
///
/// # Errors
///
/// Returns the first [`ChurnError`] encountered; the graph is unchanged
/// (the input is never mutated — on success a fresh [`Graph`] is built).
pub fn apply_churn(g: &Graph, events: &[ChurnEvent]) -> Result<(Graph, ChurnRemap), ChurnError> {
    // working copy: app ids in node order, (a_id, b_id, weight) in edge order
    let mut ids: Vec<u64> = g.nodes().map(|v| g.id_of(v)).collect();
    let mut edges: Vec<(u64, u64, u64)> = g
        .edges()
        .iter()
        .map(|e| (g.id_of(e.u), g.id_of(e.v), e.weight))
        .collect();
    let mut weights: HashSet<u64> = edges.iter().map(|&(_, _, w)| w).collect();
    let mut present: HashSet<u64> = ids.iter().copied().collect();
    let has_edge = |edges: &[(u64, u64, u64)], a: u64, b: u64| {
        edges
            .iter()
            .position(|&(x, y, _)| (x == a && y == b) || (x == b && y == a))
    };

    for ev in events {
        match ev {
            ChurnEvent::NodeLeave { id } => {
                if !present.remove(id) {
                    return Err(ChurnError::UnknownNode { id: *id });
                }
                if present.is_empty() {
                    return Err(ChurnError::EmptyGraph);
                }
                ids.retain(|x| x != id);
                edges.retain(|&(a, b, w)| {
                    let keep = a != *id && b != *id;
                    if !keep {
                        weights.remove(&w);
                    }
                    keep
                });
            }
            ChurnEvent::NodeJoin { id, links } => {
                if !present.insert(*id) {
                    return Err(ChurnError::DuplicateNode { id: *id });
                }
                ids.push(*id);
                for &(nb, w) in links {
                    if nb == *id {
                        return Err(ChurnError::SelfLoop { id: *id });
                    }
                    if !present.contains(&nb) {
                        return Err(ChurnError::UnknownNode { id: nb });
                    }
                    if has_edge(&edges, *id, nb).is_some() {
                        return Err(ChurnError::DuplicateEdge { a: *id, b: nb });
                    }
                    if !weights.insert(w) {
                        return Err(ChurnError::WeightClash { weight: w });
                    }
                    edges.push((*id, nb, w));
                }
            }
            ChurnEvent::EdgeWeightChange { a, b, weight } => {
                if a == b {
                    return Err(ChurnError::SelfLoop { id: *a });
                }
                let at =
                    has_edge(&edges, *a, *b).ok_or(ChurnError::UnknownEdge { a: *a, b: *b })?;
                let old_w = edges[at].2;
                if *weight != old_w {
                    weights.remove(&old_w);
                    if !weights.insert(*weight) {
                        weights.insert(old_w);
                        return Err(ChurnError::WeightClash { weight: *weight });
                    }
                    edges[at].2 = *weight;
                }
            }
            ChurnEvent::EdgeInsert { a, b, weight } => {
                if a == b {
                    return Err(ChurnError::SelfLoop { id: *a });
                }
                for id in [a, b] {
                    if !present.contains(id) {
                        return Err(ChurnError::UnknownNode { id: *id });
                    }
                }
                if has_edge(&edges, *a, *b).is_some() {
                    return Err(ChurnError::DuplicateEdge { a: *a, b: *b });
                }
                if !weights.insert(*weight) {
                    return Err(ChurnError::WeightClash { weight: *weight });
                }
                edges.push((*a, *b, *weight));
            }
            ChurnEvent::EdgeRemove { a, b } => {
                let at =
                    has_edge(&edges, *a, *b).ok_or(ChurnError::UnknownEdge { a: *a, b: *b })?;
                let (_, _, w) = edges.remove(at);
                weights.remove(&w);
            }
        }
    }

    let index: HashMap<u64, usize> = ids.iter().enumerate().map(|(i, &id)| (id, i)).collect();
    let mut b = GraphBuilder::new(ids.len());
    b.ids(ids.clone());
    for &(a_id, b_id, w) in &edges {
        b.add_edge(NodeId(index[&a_id]), NodeId(index[&b_id]), w);
    }
    let new_g = b.build();

    let old_to_new: Vec<Option<NodeId>> = g
        .nodes()
        .map(|v| index.get(&g.id_of(v)).map(|&i| NodeId(i)))
        .collect();
    let old_index: HashMap<u64, usize> = g.nodes().map(|v| (g.id_of(v), v.0)).collect();
    let new_to_old: Vec<Option<NodeId>> = ids
        .iter()
        .map(|id| old_index.get(id).map(|&i| NodeId(i)))
        .collect();
    Ok((
        new_g,
        ChurnRemap {
            old_to_new,
            new_to_old,
        },
    ))
}

/// A plan builder input was rejected.
///
/// The panicking builder methods ([`FaultPlan::drop_prob`] & co.) wrap
/// the `try_*` variants and panic with this error's [`fmt::Display`]
/// message, so both APIs reject exactly the same inputs.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultPlanError {
    /// A probability was NaN or outside its legal range.
    ProbabilityOutOfRange {
        /// Which knob: `"drop"` or `"dup"`.
        what: &'static str,
        /// The rejected value (possibly NaN).
        p: f64,
    },
    /// A node already has a scheduled crash.
    DuplicateCrash {
        /// The doubly-crashed node.
        node: NodeId,
    },
    /// A link down-interval was empty or inverted (`from >= until`).
    EmptyLinkDown {
        /// The affected edge.
        edge: EdgeId,
        /// Claimed start of the outage.
        from: u64,
        /// Claimed end of the outage.
        until: u64,
    },
    /// A churn epoch is already scheduled at the same round.
    DuplicateEpoch {
        /// The clashing round boundary.
        at: u64,
    },
    /// A churn epoch carried no events.
    EmptyEpoch {
        /// The round boundary of the empty epoch.
        at: u64,
    },
}

impl fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultPlanError::ProbabilityOutOfRange { what: "drop", p } => {
                write!(f, "drop probability {p} must be in [0, 1)")
            }
            FaultPlanError::ProbabilityOutOfRange { what, p } => {
                write!(f, "{what} probability {p} out of range")
            }
            FaultPlanError::DuplicateCrash { node } => {
                write!(f, "{node:?} already has a scheduled crash")
            }
            FaultPlanError::EmptyLinkDown { edge, from, until } => {
                write!(f, "empty down-interval [{from}, {until}) for {edge:?}")
            }
            FaultPlanError::DuplicateEpoch { at } => {
                write!(f, "an epoch is already scheduled at round {at}")
            }
            FaultPlanError::EmptyEpoch { at } => {
                write!(f, "epoch at round {at} has no events")
            }
        }
    }
}

impl std::error::Error for FaultPlanError {}

/// A fail-stop crash of one node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Crash {
    /// The crashing node.
    pub node: NodeId,
    /// First round/pulse the node does **not** execute (`0` = the node
    /// never participates at all, i.e. a degraded topology).
    pub at: u64,
}

/// A down-interval of one link: transmissions in `from..until` (in rounds
/// for the synchronous simulator, virtual time for α) are lost.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkDown {
    /// The affected undirected edge.
    pub edge: EdgeId,
    /// First failing instant (inclusive).
    pub from: u64,
    /// First working instant again (exclusive end of the outage).
    pub until: u64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            drop_prob: 0.0,
            dup_prob: 0.0,
            max_extra_delay: 0,
            crashes: Vec::new(),
            link_downs: Vec::new(),
            epochs: Vec::new(),
        }
    }
}

impl FaultPlan {
    /// A fault-free plan with the given seed (faults are opted into via
    /// the builder methods).
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Sets the per-transmission drop probability.
    ///
    /// # Panics
    ///
    /// Panics if `p` is NaN or not in `[0, 1)` — a drop probability of 1
    /// can never be recovered from and would hang any retransmission
    /// scheme. [`FaultPlan::try_drop_prob`] reports the same rejection as
    /// a typed error.
    pub fn drop_prob(self, p: f64) -> Self {
        self.try_drop_prob(p).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Sets the per-transmission drop probability, rejecting NaN and
    /// out-of-`[0, 1)` values.
    ///
    /// # Errors
    ///
    /// [`FaultPlanError::ProbabilityOutOfRange`] on a rejected value.
    pub fn try_drop_prob(mut self, p: f64) -> Result<Self, FaultPlanError> {
        if !(0.0..1.0).contains(&p) {
            // NaN fails every range check and lands here too
            return Err(FaultPlanError::ProbabilityOutOfRange { what: "drop", p });
        }
        self.drop_prob = p;
        Ok(self)
    }

    /// Sets the per-transmission duplication probability.
    ///
    /// # Panics
    ///
    /// Panics if `p` is NaN or not in `[0, 1]`
    /// ([`FaultPlan::try_dup_prob`] is the non-panicking variant).
    pub fn dup_prob(self, p: f64) -> Self {
        self.try_dup_prob(p).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Sets the per-transmission duplication probability, rejecting NaN
    /// and out-of-`[0, 1]` values.
    ///
    /// # Errors
    ///
    /// [`FaultPlanError::ProbabilityOutOfRange`] on a rejected value.
    pub fn try_dup_prob(mut self, p: f64) -> Result<Self, FaultPlanError> {
        if !(0.0..=1.0).contains(&p) {
            return Err(FaultPlanError::ProbabilityOutOfRange {
                what: "duplication",
                p,
            });
        }
        self.dup_prob = p;
        Ok(self)
    }

    /// Sets the maximum extra delivery delay for the α executor.
    pub fn max_extra_delay(mut self, d: u64) -> Self {
        self.max_extra_delay = d;
        self
    }

    /// Schedules a fail-stop crash of `node` at round/pulse `at`.
    ///
    /// # Panics
    ///
    /// Panics if `node` already has a scheduled crash — a second crash
    /// of the same node is always a plan-construction bug (the injector
    /// would silently keep the earlier one). [`FaultPlan::try_crash`] is
    /// the non-panicking variant.
    pub fn crash(self, node: NodeId, at: u64) -> Self {
        self.try_crash(node, at).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Schedules a fail-stop crash, rejecting a second crash for a node
    /// that already has one.
    ///
    /// # Errors
    ///
    /// [`FaultPlanError::DuplicateCrash`] if `node` is already scheduled.
    pub fn try_crash(mut self, node: NodeId, at: u64) -> Result<Self, FaultPlanError> {
        if self.crashes.iter().any(|c| c.node == node) {
            return Err(FaultPlanError::DuplicateCrash { node });
        }
        self.crashes.push(Crash { node, at });
        Ok(self)
    }

    /// Schedules a down-interval `[from, until)` for `edge`.
    ///
    /// # Panics
    ///
    /// Panics if `from >= until` ([`FaultPlan::try_link_down`] is the
    /// non-panicking variant).
    pub fn link_down(self, edge: EdgeId, from: u64, until: u64) -> Self {
        self.try_link_down(edge, from, until)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Schedules a down-interval, rejecting empty or inverted intervals
    /// (`from >= until`).
    ///
    /// # Errors
    ///
    /// [`FaultPlanError::EmptyLinkDown`] on a rejected interval.
    pub fn try_link_down(
        mut self,
        edge: EdgeId,
        from: u64,
        until: u64,
    ) -> Result<Self, FaultPlanError> {
        if from >= until {
            return Err(FaultPlanError::EmptyLinkDown { edge, from, until });
        }
        self.link_downs.push(LinkDown { edge, from, until });
        Ok(self)
    }

    /// Schedules a churn epoch: `events` applied atomically at round
    /// boundary `at` (rounds since the current protocol entry). Epochs
    /// are kept sorted by round.
    ///
    /// # Panics
    ///
    /// Panics on an empty batch or a second epoch at the same round
    /// ([`FaultPlan::try_epoch`] is the non-panicking variant).
    pub fn epoch(self, at: u64, events: Vec<ChurnEvent>) -> Self {
        self.try_epoch(at, events).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Schedules a churn epoch, rejecting empty batches and duplicate
    /// round boundaries.
    ///
    /// # Errors
    ///
    /// [`FaultPlanError::EmptyEpoch`] or [`FaultPlanError::DuplicateEpoch`].
    pub fn try_epoch(mut self, at: u64, events: Vec<ChurnEvent>) -> Result<Self, FaultPlanError> {
        if events.is_empty() {
            return Err(FaultPlanError::EmptyEpoch { at });
        }
        if self.epochs.iter().any(|e| e.at == at) {
            return Err(FaultPlanError::DuplicateEpoch { at });
        }
        self.epochs.push(ChurnEpoch { at, events });
        self.epochs.sort_by_key(|e| e.at);
        Ok(self)
    }

    /// Whether the plan injects any fault at all (scheduled churn epochs
    /// count: they change the topology under the protocol).
    pub fn is_fault_free(&self) -> bool {
        self.drop_prob == 0.0
            && self.dup_prob == 0.0
            && self.max_extra_delay == 0
            && self.crashes.is_empty()
            && self.link_downs.is_empty()
            && self.epochs.is_empty()
    }

    /// Whether the plan carries any per-run (non-churn) faults that need a
    /// [`FaultInjector`]: message loss, duplication, extra delay, crashes
    /// or link down-intervals. Churn epochs are excluded — they are
    /// interpreted by the epoch driver, not the injector.
    pub fn has_transient_faults(&self) -> bool {
        self.drop_prob > 0.0
            || self.dup_prob > 0.0
            || self.max_extra_delay > 0
            || !self.crashes.is_empty()
            || !self.link_downs.is_empty()
    }
}

/// The fate of a single physical transmission.
///
/// `copies` holds one entry per delivered copy — the entry is the *extra*
/// delay of that copy. Empty means the transmission was lost.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Transmission {
    /// Extra delay per delivered copy.
    pub copies: Vec<u64>,
    /// Whether a loss was caused by a link down-interval rather than the
    /// random drop stream (always `false` when copies were delivered).
    /// The trace layer records this so drops stay attributable.
    pub down: bool,
}

impl Transmission {
    /// Whether the transmission was dropped entirely.
    pub fn dropped(&self) -> bool {
        self.copies.is_empty()
    }

    /// Extra copies beyond the first (0 or 1 with the current injector).
    pub fn duplicates(&self) -> u64 {
        (self.copies.len() as u64).saturating_sub(1)
    }
}

/// Deterministic executor of a [`FaultPlan`].
///
/// Counters ([`FaultInjector::dropped`], [`FaultInjector::duplicated`])
/// accumulate across the run and are copied into the run reports.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    rng: StdRng,
    drop_prob: f64,
    dup_prob: f64,
    max_extra_delay: u64,
    crash_at: HashMap<usize, u64>,
    downs: HashMap<usize, Vec<(u64, u64)>>,
    dropped: u64,
    duplicated: u64,
}

impl FaultInjector {
    /// Compiles a plan into a replayable injector.
    pub fn new(plan: &FaultPlan) -> Self {
        let mut crash_at = HashMap::new();
        for c in &plan.crashes {
            // keep the earliest crash if a node is named twice
            let e = crash_at.entry(c.node.0).or_insert(c.at);
            *e = (*e).min(c.at);
        }
        let mut downs: HashMap<usize, Vec<(u64, u64)>> = HashMap::new();
        for d in &plan.link_downs {
            downs.entry(d.edge.0).or_default().push((d.from, d.until));
        }
        FaultInjector {
            rng: StdRng::seed_from_u64(plan.seed),
            drop_prob: plan.drop_prob,
            dup_prob: plan.dup_prob,
            max_extra_delay: plan.max_extra_delay,
            crash_at,
            downs,
            dropped: 0,
            duplicated: 0,
        }
    }

    /// Whether `node` has crashed at or before round/pulse `now`.
    pub fn is_crashed(&self, node: NodeId, now: u64) -> bool {
        self.crash_at.get(&node.0).is_some_and(|&at| at <= now)
    }

    /// The round/pulse at which `node` crashes, if any.
    pub fn crash_time(&self, node: NodeId) -> Option<u64> {
        self.crash_at.get(&node.0).copied()
    }

    /// Every scheduled crash as `(round, node)`, sorted. The round
    /// engine consumes this as a static event queue so quiescence
    /// horizons can be computed without polling each node's crash time.
    pub(crate) fn crash_schedule(&self) -> Vec<(u64, u32)> {
        let mut events: Vec<(u64, u32)> = self
            .crash_at
            .iter()
            .map(|(&node, &at)| (at, node as u32))
            .collect();
        events.sort_unstable();
        events
    }

    /// Whether `edge` is inside a down-interval at `now`.
    pub fn link_is_down(&self, edge: EdgeId, now: u64) -> bool {
        self.downs
            .get(&edge.0)
            .is_some_and(|iv| iv.iter().any(|&(f, u)| f <= now && now < u))
    }

    /// Decides the fate of one transmission over `edge` at time `now`,
    /// advancing the deterministic fault stream.
    pub fn transmit(&mut self, edge: EdgeId, now: u64) -> Transmission {
        if self.link_is_down(edge, now) {
            self.dropped += 1;
            return Transmission {
                copies: Vec::new(),
                down: true,
            };
        }
        if self.drop_prob > 0.0 && self.rng.random_bool(self.drop_prob) {
            self.dropped += 1;
            return Transmission {
                copies: Vec::new(),
                down: false,
            };
        }
        let mut copies = Vec::with_capacity(1);
        copies.push(self.extra_delay());
        if self.dup_prob > 0.0 && self.rng.random_bool(self.dup_prob) {
            self.duplicated += 1;
            copies.push(self.extra_delay());
        }
        Transmission {
            copies,
            down: false,
        }
    }

    fn extra_delay(&mut self) -> u64 {
        if self.max_extra_delay == 0 {
            0
        } else {
            self.rng.random_range(0..=self.max_extra_delay)
        }
    }

    /// Messages lost so far (drops plus down-interval losses).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Extra copies injected so far.
    pub fn duplicated(&self) -> u64 {
        self.duplicated
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_fault_free() {
        let plan = FaultPlan::default();
        assert!(plan.is_fault_free());
        let mut inj = FaultInjector::new(&plan);
        for t in 0..1000 {
            let tx = inj.transmit(EdgeId(0), t);
            assert_eq!(tx.copies, vec![0]);
        }
        assert_eq!(inj.dropped(), 0);
        assert_eq!(inj.duplicated(), 0);
    }

    #[test]
    fn injector_is_deterministic() {
        let plan = FaultPlan::new(7)
            .drop_prob(0.3)
            .dup_prob(0.2)
            .max_extra_delay(5);
        let mut a = FaultInjector::new(&plan);
        let mut b = FaultInjector::new(&plan);
        for t in 0..500 {
            assert_eq!(
                a.transmit(EdgeId(t as usize % 9), t),
                b.transmit(EdgeId(t as usize % 9), t)
            );
        }
        assert_eq!(a.dropped(), b.dropped());
        assert_eq!(a.duplicated(), b.duplicated());
    }

    #[test]
    fn drop_rate_tracks_probability() {
        let plan = FaultPlan::new(3).drop_prob(0.25);
        let mut inj = FaultInjector::new(&plan);
        let n = 20_000;
        for t in 0..n {
            inj.transmit(EdgeId(0), t);
        }
        let rate = inj.dropped() as f64 / n as f64;
        assert!((0.22..0.28).contains(&rate), "observed drop rate {rate}");
    }

    #[test]
    fn duplication_produces_two_copies() {
        let plan = FaultPlan::new(5).dup_prob(1.0).max_extra_delay(3);
        let mut inj = FaultInjector::new(&plan);
        let tx = inj.transmit(EdgeId(1), 0);
        assert_eq!(tx.copies.len(), 2);
        assert!(tx.copies.iter().all(|&d| d <= 3));
        assert_eq!(inj.duplicated(), 1);
    }

    #[test]
    fn crashes_and_earliest_wins() {
        // the builder rejects duplicate crashes; a hand-built plan may
        // still carry them, and the injector keeps the earliest
        let plan = FaultPlan {
            crashes: vec![
                Crash {
                    node: NodeId(4),
                    at: 10,
                },
                Crash {
                    node: NodeId(4),
                    at: 3,
                },
            ],
            ..FaultPlan::new(0)
        };
        let inj = FaultInjector::new(&plan);
        assert!(!inj.is_crashed(NodeId(4), 2));
        assert!(inj.is_crashed(NodeId(4), 3));
        assert!(inj.is_crashed(NodeId(4), 11));
        assert_eq!(inj.crash_time(NodeId(4)), Some(3));
        assert_eq!(inj.crash_time(NodeId(5)), None);
    }

    #[test]
    fn link_down_interval_is_half_open() {
        let plan = FaultPlan::new(0).link_down(EdgeId(2), 5, 8);
        let mut inj = FaultInjector::new(&plan);
        assert!(!inj.link_is_down(EdgeId(2), 4));
        assert!(inj.link_is_down(EdgeId(2), 5));
        assert!(inj.link_is_down(EdgeId(2), 7));
        assert!(!inj.link_is_down(EdgeId(2), 8));
        assert!(!inj.link_is_down(EdgeId(3), 6));
        assert!(inj.transmit(EdgeId(2), 6).dropped());
        assert_eq!(inj.dropped(), 1);
    }

    #[test]
    fn down_interval_losses_are_attributed() {
        let plan = FaultPlan::new(0).link_down(EdgeId(2), 5, 8).dup_prob(1.0);
        let mut inj = FaultInjector::new(&plan);
        assert!(inj.transmit(EdgeId(2), 6).down);
        let tx = inj.transmit(EdgeId(2), 9);
        assert!(!tx.down);
        assert_eq!(tx.duplicates(), 1);
    }

    #[test]
    #[should_panic(expected = "drop probability")]
    fn full_drop_rejected() {
        let _ = FaultPlan::new(0).drop_prob(1.0);
    }

    #[test]
    fn builder_inputs_rejected_with_typed_errors() {
        match FaultPlan::new(0).try_drop_prob(f64::NAN) {
            Err(FaultPlanError::ProbabilityOutOfRange { what: "drop", p }) => {
                assert!(p.is_nan())
            }
            other => panic!("expected out-of-range error, got {other:?}"),
        }
        assert!(FaultPlan::new(0).try_drop_prob(1.0).is_err());
        assert!(FaultPlan::new(0).try_drop_prob(-0.1).is_err());
        assert!(FaultPlan::new(0).try_drop_prob(0.999).is_ok());
        assert!(FaultPlan::new(0).try_dup_prob(f64::NAN).is_err());
        assert!(FaultPlan::new(0).try_dup_prob(1.0 + f64::EPSILON).is_err());
        assert!(FaultPlan::new(0).try_dup_prob(1.0).is_ok());
        assert_eq!(
            FaultPlan::new(0)
                .try_crash(NodeId(3), 5)
                .unwrap()
                .try_crash(NodeId(3), 9),
            Err(FaultPlanError::DuplicateCrash { node: NodeId(3) })
        );
        assert_eq!(
            FaultPlan::new(0).try_link_down(EdgeId(1), 7, 7),
            Err(FaultPlanError::EmptyLinkDown {
                edge: EdgeId(1),
                from: 7,
                until: 7
            })
        );
        assert_eq!(
            FaultPlan::new(0).try_link_down(EdgeId(1), 9, 2),
            Err(FaultPlanError::EmptyLinkDown {
                edge: EdgeId(1),
                from: 9,
                until: 2
            })
        );
        assert!(FaultPlan::new(0).try_link_down(EdgeId(1), 2, 9).is_ok());
        assert_eq!(
            FaultPlan::new(0).try_epoch(4, Vec::new()),
            Err(FaultPlanError::EmptyEpoch { at: 4 })
        );
        let ev = vec![ChurnEvent::NodeLeave { id: 1 }];
        assert_eq!(
            FaultPlan::new(0)
                .try_epoch(4, ev.clone())
                .unwrap()
                .try_epoch(4, ev),
            Err(FaultPlanError::DuplicateEpoch { at: 4 })
        );
        // NaN errors display something actionable
        let e = FaultPlan::new(0).try_drop_prob(f64::NAN).unwrap_err();
        assert!(e.to_string().contains("drop probability NaN"));
    }

    #[test]
    #[should_panic(expected = "already has a scheduled crash")]
    fn duplicate_crash_panics_in_builder() {
        let _ = FaultPlan::new(0).crash(NodeId(4), 10).crash(NodeId(4), 3);
    }

    #[test]
    fn epochs_are_sorted_and_count_as_faults() {
        let plan = FaultPlan::new(0)
            .epoch(9, vec![ChurnEvent::NodeLeave { id: 2 }])
            .epoch(4, vec![ChurnEvent::EdgeRemove { a: 0, b: 1 }]);
        assert_eq!(plan.epochs[0].at, 4);
        assert_eq!(plan.epochs[1].at, 9);
        assert!(!plan.is_fault_free());
    }

    fn square() -> Graph {
        // 0-1-2-3-0 cycle with a chord 0-2
        let mut b = kdom_graph::GraphBuilder::new(4);
        b.ids(vec![10, 11, 12, 13]);
        b.add_edge(NodeId(0), NodeId(1), 1);
        b.add_edge(NodeId(1), NodeId(2), 2);
        b.add_edge(NodeId(2), NodeId(3), 3);
        b.add_edge(NodeId(3), NodeId(0), 4);
        b.add_edge(NodeId(0), NodeId(2), 5);
        b.build()
    }

    #[test]
    fn churn_leave_rewires_and_remaps() {
        let g = square();
        let (h, remap) = apply_churn(&g, &[ChurnEvent::NodeLeave { id: 11 }]).unwrap();
        assert_eq!(h.node_count(), 3);
        assert_eq!(h.edge_count(), 3); // lost 10-11 and 11-12
        assert_eq!(remap.old_to_new[1], None);
        assert_eq!(remap.old_to_new[0], Some(NodeId(0)));
        assert_eq!(remap.old_to_new[2], Some(NodeId(1)));
        assert_eq!(remap.old_to_new[3], Some(NodeId(2)));
        assert_eq!(
            remap.new_to_old,
            vec![Some(NodeId(0)), Some(NodeId(2)), Some(NodeId(3))]
        );
        assert_eq!(h.id_of(NodeId(1)), 12);
        assert!(h.has_distinct_weights());
    }

    #[test]
    fn churn_join_appends_node_and_edges() {
        let g = square();
        let (h, remap) = apply_churn(
            &g,
            &[ChurnEvent::NodeJoin {
                id: 99,
                links: vec![(10, 100), (12, 101)],
            }],
        )
        .unwrap();
        assert_eq!(h.node_count(), 5);
        assert_eq!(h.id_of(NodeId(4)), 99);
        assert_eq!(remap.new_to_old[4], None);
        assert_eq!(h.degree(NodeId(4)), 2);
        assert!(h.edge_between(NodeId(4), NodeId(0)).is_some());
    }

    #[test]
    fn churn_edge_events_validate() {
        let g = square();
        // weight change to a colliding weight
        assert_eq!(
            apply_churn(
                &g,
                &[ChurnEvent::EdgeWeightChange {
                    a: 10,
                    b: 11,
                    weight: 3
                }]
            ),
            Err(ChurnError::WeightClash { weight: 3 })
        );
        // no-op weight change to its own weight is fine
        let (h, _) = apply_churn(
            &g,
            &[ChurnEvent::EdgeWeightChange {
                a: 10,
                b: 11,
                weight: 1,
            }],
        )
        .unwrap();
        assert_eq!(h.edge_between(NodeId(0), NodeId(1)).unwrap().weight, 1);
        // insert a parallel edge
        assert_eq!(
            apply_churn(
                &g,
                &[ChurnEvent::EdgeInsert {
                    a: 11,
                    b: 10,
                    weight: 50
                }]
            ),
            Err(ChurnError::DuplicateEdge { a: 11, b: 10 })
        );
        // remove + reinsert with a new weight, across one batch
        let (h, remap) = apply_churn(
            &g,
            &[
                ChurnEvent::EdgeRemove { a: 10, b: 12 },
                ChurnEvent::EdgeInsert {
                    a: 11,
                    b: 13,
                    weight: 7,
                },
            ],
        )
        .unwrap();
        assert_eq!(remap, ChurnRemap::identity(4));
        assert!(h.edge_between(NodeId(0), NodeId(2)).is_none());
        assert_eq!(h.edge_between(NodeId(1), NodeId(3)).unwrap().weight, 7);
        // unknown nodes / edges
        assert_eq!(
            apply_churn(&g, &[ChurnEvent::NodeLeave { id: 77 }]),
            Err(ChurnError::UnknownNode { id: 77 })
        );
        assert_eq!(
            apply_churn(&g, &[ChurnEvent::EdgeRemove { a: 11, b: 13 }]),
            Err(ChurnError::UnknownEdge { a: 11, b: 13 })
        );
    }

    #[test]
    fn churn_rebuild_is_deterministic() {
        let g = square();
        let events = [
            ChurnEvent::NodeLeave { id: 13 },
            ChurnEvent::NodeJoin {
                id: 20,
                links: vec![(12, 40)],
            },
            ChurnEvent::EdgeWeightChange {
                a: 10,
                b: 11,
                weight: 9,
            },
        ];
        let (a, ra) = apply_churn(&g, &events).unwrap();
        let (b, rb) = apply_churn(&g, &events).unwrap();
        assert_eq!(a, b);
        assert_eq!(ra, rb);
    }
}
