//! Deterministic fault injection for the simulators.
//!
//! The paper's model (§1.2) assumes perfectly reliable synchronous links.
//! This module makes that assumption a *toggle*: a [`FaultPlan`] describes
//! a reproducible adversary — per-link message loss, duplication, bounded
//! extra delivery delay (for the asynchronous executor), fail-stop node
//! crashes, and link down-intervals — and a [`FaultInjector`] plays it
//! back deterministically from a seed. The synchronous [`crate::Simulator`]
//! and the synchronizer-α executor ([`crate::AlphaSimulator`]) both accept
//! a plan; the reliable-delivery layer ([`crate::reliable`]) restores
//! exactly-once semantics on top so unmodified protocols stay correct.
//!
//! All decisions are drawn from a single [`StdRng`] stream in simulation
//! event order, so a `(plan, executor seed)` pair fully determines a run.

use std::collections::HashMap;

use kdom_graph::{EdgeId, NodeId};
use kdom_rng::StdRng;

/// A declarative, seeded description of the faults to inject into a run.
///
/// The default plan is fault-free, which reproduces the paper's reliable
/// synchronous model exactly.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Seed of the fault stream; equal plans replay identical faults.
    pub seed: u64,
    /// Per-transmission probability that a message is silently lost.
    pub drop_prob: f64,
    /// Per-transmission probability that a message is delivered twice.
    pub dup_prob: f64,
    /// Upper bound on the *extra* delivery delay (in virtual time units)
    /// a message may suffer, drawn uniformly from `0..=max_extra_delay`.
    /// Only the asynchronous executor interprets delays; the synchronous
    /// simulator ignores this field.
    pub max_extra_delay: u64,
    /// Fail-stop crashes: each named node permanently halts when it
    /// reaches the given round (synchronous) or pulse (α executor).
    pub crashes: Vec<Crash>,
    /// Intervals during which a link delivers nothing in either direction.
    pub link_downs: Vec<LinkDown>,
}

/// A fail-stop crash of one node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Crash {
    /// The crashing node.
    pub node: NodeId,
    /// First round/pulse the node does **not** execute (`0` = the node
    /// never participates at all, i.e. a degraded topology).
    pub at: u64,
}

/// A down-interval of one link: transmissions in `from..until` (in rounds
/// for the synchronous simulator, virtual time for α) are lost.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkDown {
    /// The affected undirected edge.
    pub edge: EdgeId,
    /// First failing instant (inclusive).
    pub from: u64,
    /// First working instant again (exclusive end of the outage).
    pub until: u64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            drop_prob: 0.0,
            dup_prob: 0.0,
            max_extra_delay: 0,
            crashes: Vec::new(),
            link_downs: Vec::new(),
        }
    }
}

impl FaultPlan {
    /// A fault-free plan with the given seed (faults are opted into via
    /// the builder methods).
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Sets the per-transmission drop probability.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1)` — a drop probability of 1 can
    /// never be recovered from and would hang any retransmission scheme.
    pub fn drop_prob(mut self, p: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "drop probability {p} must be in [0, 1)"
        );
        self.drop_prob = p;
        self
    }

    /// Sets the per-transmission duplication probability.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn dup_prob(mut self, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "duplication probability {p} out of range"
        );
        self.dup_prob = p;
        self
    }

    /// Sets the maximum extra delivery delay for the α executor.
    pub fn max_extra_delay(mut self, d: u64) -> Self {
        self.max_extra_delay = d;
        self
    }

    /// Schedules a fail-stop crash of `node` at round/pulse `at`.
    pub fn crash(mut self, node: NodeId, at: u64) -> Self {
        self.crashes.push(Crash { node, at });
        self
    }

    /// Schedules a down-interval `[from, until)` for `edge`.
    ///
    /// # Panics
    ///
    /// Panics if `from >= until`.
    pub fn link_down(mut self, edge: EdgeId, from: u64, until: u64) -> Self {
        assert!(from < until, "empty down-interval [{from}, {until})");
        self.link_downs.push(LinkDown { edge, from, until });
        self
    }

    /// Whether the plan injects any fault at all.
    pub fn is_fault_free(&self) -> bool {
        self.drop_prob == 0.0
            && self.dup_prob == 0.0
            && self.max_extra_delay == 0
            && self.crashes.is_empty()
            && self.link_downs.is_empty()
    }
}

/// The fate of a single physical transmission.
///
/// `copies` holds one entry per delivered copy — the entry is the *extra*
/// delay of that copy. Empty means the transmission was lost.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Transmission {
    /// Extra delay per delivered copy.
    pub copies: Vec<u64>,
    /// Whether a loss was caused by a link down-interval rather than the
    /// random drop stream (always `false` when copies were delivered).
    /// The trace layer records this so drops stay attributable.
    pub down: bool,
}

impl Transmission {
    /// Whether the transmission was dropped entirely.
    pub fn dropped(&self) -> bool {
        self.copies.is_empty()
    }

    /// Extra copies beyond the first (0 or 1 with the current injector).
    pub fn duplicates(&self) -> u64 {
        (self.copies.len() as u64).saturating_sub(1)
    }
}

/// Deterministic executor of a [`FaultPlan`].
///
/// Counters ([`FaultInjector::dropped`], [`FaultInjector::duplicated`])
/// accumulate across the run and are copied into the run reports.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    rng: StdRng,
    drop_prob: f64,
    dup_prob: f64,
    max_extra_delay: u64,
    crash_at: HashMap<usize, u64>,
    downs: HashMap<usize, Vec<(u64, u64)>>,
    dropped: u64,
    duplicated: u64,
}

impl FaultInjector {
    /// Compiles a plan into a replayable injector.
    pub fn new(plan: &FaultPlan) -> Self {
        let mut crash_at = HashMap::new();
        for c in &plan.crashes {
            // keep the earliest crash if a node is named twice
            let e = crash_at.entry(c.node.0).or_insert(c.at);
            *e = (*e).min(c.at);
        }
        let mut downs: HashMap<usize, Vec<(u64, u64)>> = HashMap::new();
        for d in &plan.link_downs {
            downs.entry(d.edge.0).or_default().push((d.from, d.until));
        }
        FaultInjector {
            rng: StdRng::seed_from_u64(plan.seed),
            drop_prob: plan.drop_prob,
            dup_prob: plan.dup_prob,
            max_extra_delay: plan.max_extra_delay,
            crash_at,
            downs,
            dropped: 0,
            duplicated: 0,
        }
    }

    /// Whether `node` has crashed at or before round/pulse `now`.
    pub fn is_crashed(&self, node: NodeId, now: u64) -> bool {
        self.crash_at.get(&node.0).is_some_and(|&at| at <= now)
    }

    /// The round/pulse at which `node` crashes, if any.
    pub fn crash_time(&self, node: NodeId) -> Option<u64> {
        self.crash_at.get(&node.0).copied()
    }

    /// Every scheduled crash as `(round, node)`, sorted. The round
    /// engine consumes this as a static event queue so quiescence
    /// horizons can be computed without polling each node's crash time.
    pub(crate) fn crash_schedule(&self) -> Vec<(u64, u32)> {
        let mut events: Vec<(u64, u32)> = self
            .crash_at
            .iter()
            .map(|(&node, &at)| (at, node as u32))
            .collect();
        events.sort_unstable();
        events
    }

    /// Whether `edge` is inside a down-interval at `now`.
    pub fn link_is_down(&self, edge: EdgeId, now: u64) -> bool {
        self.downs
            .get(&edge.0)
            .is_some_and(|iv| iv.iter().any(|&(f, u)| f <= now && now < u))
    }

    /// Decides the fate of one transmission over `edge` at time `now`,
    /// advancing the deterministic fault stream.
    pub fn transmit(&mut self, edge: EdgeId, now: u64) -> Transmission {
        if self.link_is_down(edge, now) {
            self.dropped += 1;
            return Transmission {
                copies: Vec::new(),
                down: true,
            };
        }
        if self.drop_prob > 0.0 && self.rng.random_bool(self.drop_prob) {
            self.dropped += 1;
            return Transmission {
                copies: Vec::new(),
                down: false,
            };
        }
        let mut copies = Vec::with_capacity(1);
        copies.push(self.extra_delay());
        if self.dup_prob > 0.0 && self.rng.random_bool(self.dup_prob) {
            self.duplicated += 1;
            copies.push(self.extra_delay());
        }
        Transmission {
            copies,
            down: false,
        }
    }

    fn extra_delay(&mut self) -> u64 {
        if self.max_extra_delay == 0 {
            0
        } else {
            self.rng.random_range(0..=self.max_extra_delay)
        }
    }

    /// Messages lost so far (drops plus down-interval losses).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Extra copies injected so far.
    pub fn duplicated(&self) -> u64 {
        self.duplicated
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_fault_free() {
        let plan = FaultPlan::default();
        assert!(plan.is_fault_free());
        let mut inj = FaultInjector::new(&plan);
        for t in 0..1000 {
            let tx = inj.transmit(EdgeId(0), t);
            assert_eq!(tx.copies, vec![0]);
        }
        assert_eq!(inj.dropped(), 0);
        assert_eq!(inj.duplicated(), 0);
    }

    #[test]
    fn injector_is_deterministic() {
        let plan = FaultPlan::new(7)
            .drop_prob(0.3)
            .dup_prob(0.2)
            .max_extra_delay(5);
        let mut a = FaultInjector::new(&plan);
        let mut b = FaultInjector::new(&plan);
        for t in 0..500 {
            assert_eq!(
                a.transmit(EdgeId(t as usize % 9), t),
                b.transmit(EdgeId(t as usize % 9), t)
            );
        }
        assert_eq!(a.dropped(), b.dropped());
        assert_eq!(a.duplicated(), b.duplicated());
    }

    #[test]
    fn drop_rate_tracks_probability() {
        let plan = FaultPlan::new(3).drop_prob(0.25);
        let mut inj = FaultInjector::new(&plan);
        let n = 20_000;
        for t in 0..n {
            inj.transmit(EdgeId(0), t);
        }
        let rate = inj.dropped() as f64 / n as f64;
        assert!((0.22..0.28).contains(&rate), "observed drop rate {rate}");
    }

    #[test]
    fn duplication_produces_two_copies() {
        let plan = FaultPlan::new(5).dup_prob(1.0).max_extra_delay(3);
        let mut inj = FaultInjector::new(&plan);
        let tx = inj.transmit(EdgeId(1), 0);
        assert_eq!(tx.copies.len(), 2);
        assert!(tx.copies.iter().all(|&d| d <= 3));
        assert_eq!(inj.duplicated(), 1);
    }

    #[test]
    fn crashes_and_earliest_wins() {
        let plan = FaultPlan::new(0).crash(NodeId(4), 10).crash(NodeId(4), 3);
        let inj = FaultInjector::new(&plan);
        assert!(!inj.is_crashed(NodeId(4), 2));
        assert!(inj.is_crashed(NodeId(4), 3));
        assert!(inj.is_crashed(NodeId(4), 11));
        assert_eq!(inj.crash_time(NodeId(4)), Some(3));
        assert_eq!(inj.crash_time(NodeId(5)), None);
    }

    #[test]
    fn link_down_interval_is_half_open() {
        let plan = FaultPlan::new(0).link_down(EdgeId(2), 5, 8);
        let mut inj = FaultInjector::new(&plan);
        assert!(!inj.link_is_down(EdgeId(2), 4));
        assert!(inj.link_is_down(EdgeId(2), 5));
        assert!(inj.link_is_down(EdgeId(2), 7));
        assert!(!inj.link_is_down(EdgeId(2), 8));
        assert!(!inj.link_is_down(EdgeId(3), 6));
        assert!(inj.transmit(EdgeId(2), 6).dropped());
        assert_eq!(inj.dropped(), 1);
    }

    #[test]
    fn down_interval_losses_are_attributed() {
        let plan = FaultPlan::new(0).link_down(EdgeId(2), 5, 8).dup_prob(1.0);
        let mut inj = FaultInjector::new(&plan);
        assert!(inj.transmit(EdgeId(2), 6).down);
        let tx = inj.transmit(EdgeId(2), 9);
        assert!(!tx.down);
        assert_eq!(tx.duplicates(), 1);
    }

    #[test]
    #[should_panic(expected = "drop probability")]
    fn full_drop_rejected() {
        let _ = FaultPlan::new(0).drop_prob(1.0);
    }
}
