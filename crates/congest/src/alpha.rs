//! Asynchronous execution via **synchronizer α** (Awerbuch \[Al\]).
//!
//! The paper's model discussion (§1.2) notes that assuming synchrony "is
//! not essential, since our decision to ignore communication costs allows
//! us to freely use a synchronizer of our choice; for example, we can use
//! the simple synchronizer α whose cost in an asynchronous network is one
//! message over each edge in each direction per round". This module makes
//! that argument executable: an event-driven network with per-message
//! delivery delays runs any synchronous [`Protocol`] *unchanged* under
//! synchronizer α, and the tests check the outputs coincide with the
//! synchronous executions.
//!
//! The classic α recipe, per pulse `p`:
//!
//! 1. a node entering pulse `p` runs its synchronous round with the
//!    payload messages its neighbors sent at pulse `p−1`;
//! 2. every payload is acknowledged; once all of a node's pulse-`p`
//!    payloads are acknowledged the node is *safe* and tells every
//!    neighbor;
//! 3. a node advances to pulse `p+1` once it is safe and every neighbor
//!    reported safe for pulse `p` — at which point all pulse-`p` traffic
//!    toward it has provably arrived.
//!
//! Measured overheads (report fields): the payload/control message split
//! and the virtual completion time under random delays.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use kdom_graph::graph::{Graph, NodeId};

use crate::sim::{NodeCtx, Outbox, Port, Protocol, SimError};

/// Statistics of an asynchronous (synchronizer-α) execution.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AlphaReport {
    /// Highest pulse any node entered (should match the synchronous
    /// round count up to the final drain).
    pub pulses: u64,
    /// Virtual completion time (max delivery timestamp processed).
    pub virtual_time: u64,
    /// Payload (protocol) messages delivered.
    pub payload_messages: u64,
    /// Control messages (acks + safe notifications) delivered.
    pub control_messages: u64,
}

/// Wire format: a payload with its pulse tag, or α control traffic.
#[derive(Clone, Debug)]
enum Wire<M> {
    Payload { pulse: u64, msg: M },
    Ack { pulse: u64 },
    Safe { pulse: u64 },
}

struct NodeState<P: Protocol> {
    inner: P,
    pulse: u64,
    ran_current: bool,
    pending_acks: u64,
    safe_sent: bool,
    /// payloads received, keyed by the sender's pulse
    payloads: HashMap<u64, Vec<(Port, P::Msg)>>,
    /// safe notifications received, keyed by pulse
    safes: HashMap<u64, HashSet<Port>>,
}

/// Event-driven asynchronous executor wrapping synchronous protocols
/// with synchronizer α.
pub struct AlphaSimulator<'g, P: Protocol> {
    graph: &'g Graph,
    nodes: Vec<NodeState<P>>,
    queue: BinaryHeap<Reverse<(u64, u64, usize, usize, WireBox<P>)>>,
    seq: u64,
    rng: StdRng,
    max_delay: u64,
    report: AlphaReport,
}

// BinaryHeap needs Ord; box the wire behind a sequence number and keep
// comparison on (time, seq) only.
struct WireBox<P: Protocol>(Wire<P::Msg>);

impl<P: Protocol> PartialEq for WireBox<P> {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}
impl<P: Protocol> Eq for WireBox<P> {}
impl<P: Protocol> PartialOrd for WireBox<P> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<P: Protocol> Ord for WireBox<P> {
    fn cmp(&self, _: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

impl<'g, P: Protocol> AlphaSimulator<'g, P> {
    /// Creates the asynchronous executor. `max_delay ≥ 1` bounds the
    /// per-message delivery delay, drawn deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `nodes.len() != graph.node_count()` or `max_delay == 0`.
    pub fn new(graph: &'g Graph, nodes: Vec<P>, seed: u64, max_delay: u64) -> Self {
        assert_eq!(nodes.len(), graph.node_count(), "one automaton per node");
        assert!(max_delay >= 1, "delays are at least one time unit");
        let nodes = nodes
            .into_iter()
            .map(|inner| NodeState {
                inner,
                pulse: 0,
                ran_current: false,
                pending_acks: 0,
                safe_sent: false,
                payloads: HashMap::new(),
                safes: HashMap::new(),
            })
            .collect();
        AlphaSimulator {
            graph,
            nodes,
            queue: BinaryHeap::new(),
            seq: 0,
            rng: StdRng::seed_from_u64(seed),
            max_delay,
            report: AlphaReport::default(),
        }
    }

    fn send(&mut self, now: u64, from: usize, port: Port, wire: Wire<P::Msg>) {
        let arc = self.graph.neighbors(NodeId(from))[port.0];
        let to = arc.to.0;
        let back = self
            .graph
            .neighbors(arc.to)
            .iter()
            .position(|a| a.edge == arc.edge)
            .expect("edge present on both endpoints");
        let delay = self.rng.random_range(1..=self.max_delay);
        self.seq += 1;
        self.queue
            .push(Reverse((now + delay, self.seq, to, back, WireBox(wire))));
    }

    /// Runs the node's synchronous round for its current pulse and ships
    /// the outputs.
    fn run_round(&mut self, now: u64, v: usize) {
        let pulse = self.nodes[v].pulse;
        debug_assert!(!self.nodes[v].ran_current);
        let inbox = {
            let st = &mut self.nodes[v];
            let mut inbox = if pulse == 0 {
                Vec::new()
            } else {
                st.payloads.remove(&(pulse - 1)).unwrap_or_default()
            };
            inbox.sort_by_key(|(p, _)| *p);
            inbox
        };
        let ids: Vec<u64> = (0..self.graph.node_count())
            .map(|u| self.graph.id_of(NodeId(u)))
            .collect();
        let ctx = NodeCtx::new(
            NodeId(v),
            ids[v],
            pulse,
            self.graph.neighbors(NodeId(v)),
            &ids,
        );
        let mut out = Outbox::with_degree(ctx.degree());
        self.nodes[v].inner.round(&ctx, &inbox, &mut out);
        let slots = out.into_slots();
        let mut sent = 0u64;
        for (p, slot) in slots.into_iter().enumerate() {
            if let Some(msg) = slot {
                sent += 1;
                self.send(now, v, Port(p), Wire::Payload { pulse, msg });
            }
        }
        self.nodes[v].ran_current = true;
        self.nodes[v].pending_acks = sent;
        self.nodes[v].safe_sent = false;
        self.maybe_safe(now, v);
    }

    /// Declares safety once all payloads of the current pulse are acked.
    fn maybe_safe(&mut self, now: u64, v: usize) {
        if self.nodes[v].ran_current
            && self.nodes[v].pending_acks == 0
            && !self.nodes[v].safe_sent
        {
            self.nodes[v].safe_sent = true;
            let pulse = self.nodes[v].pulse;
            for p in 0..self.graph.degree(NodeId(v)) {
                self.send(now, v, Port(p), Wire::Safe { pulse });
            }
            self.maybe_advance(now, v);
        }
    }

    /// Advances to the next pulse once safe and all neighbors are safe.
    fn maybe_advance(&mut self, now: u64, v: usize) {
        let pulse = self.nodes[v].pulse;
        let degree = self.graph.degree(NodeId(v));
        let ready = {
            let st = &self.nodes[v];
            st.ran_current
                && st.safe_sent
                && st.safes.get(&pulse).map_or(degree == 0, |s| s.len() == degree)
        };
        if ready {
            let st = &mut self.nodes[v];
            st.safes.remove(&pulse);
            st.pulse += 1;
            st.ran_current = false;
            self.report.pulses = self.report.pulses.max(self.nodes[v].pulse);
            self.run_round(now, v);
        }
    }

    fn all_quiet(&self) -> bool {
        self.nodes
            .iter()
            .all(|st| st.inner.is_done() && st.payloads.values().all(Vec::is_empty))
            && !self
                .queue
                .iter()
                .any(|Reverse((_, _, _, _, w))| matches!(w.0, Wire::Payload { .. }))
    }

    /// Runs to protocol quiescence.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::RoundLimitExceeded`] if more than `max_pulses`
    /// pulses elapse.
    pub fn run(&mut self, max_pulses: u64) -> Result<AlphaReport, SimError> {
        // pulse 0 for everyone
        for v in 0..self.nodes.len() {
            self.run_round(0, v);
        }
        while !self.all_quiet() {
            let Some(Reverse((time, _, to, back, wire))) = self.queue.pop() else {
                break; // no events left: quiescent or stuck-by-design
            };
            if self.report.pulses > max_pulses {
                return Err(SimError::RoundLimitExceeded { limit: max_pulses });
            }
            self.report.virtual_time = self.report.virtual_time.max(time);
            match wire.0 {
                Wire::Payload { pulse, msg } => {
                    self.report.payload_messages += 1;
                    self.nodes[to]
                        .payloads
                        .entry(pulse)
                        .or_default()
                        .push((Port(back), msg));
                    self.send(time, to, Port(back), Wire::Ack { pulse });
                }
                Wire::Ack { pulse } => {
                    self.report.control_messages += 1;
                    if self.nodes[to].pulse == pulse {
                        self.nodes[to].pending_acks -= 1;
                        self.maybe_safe(time, to);
                    }
                }
                Wire::Safe { pulse } => {
                    self.report.control_messages += 1;
                    self.nodes[to].safes.entry(pulse).or_default().insert(Port(back));
                    if self.nodes[to].pulse == pulse {
                        self.maybe_advance(time, to);
                    }
                }
            }
        }
        Ok(self.report.clone())
    }

    /// The wrapped automata (for output extraction).
    pub fn into_nodes(self) -> Vec<P> {
        self.nodes.into_iter().map(|st| st.inner).collect()
    }
}

/// Convenience: runs `nodes` under synchronizer α with random delays in
/// `1..=max_delay` and returns the automata plus the report.
///
/// # Errors
///
/// Propagates [`SimError::RoundLimitExceeded`].
pub fn run_protocol_alpha<P: Protocol>(
    graph: &Graph,
    nodes: Vec<P>,
    seed: u64,
    max_delay: u64,
    max_pulses: u64,
) -> Result<(Vec<P>, AlphaReport), SimError> {
    let mut sim = AlphaSimulator::new(graph, nodes, seed, max_delay);
    let report = sim.run(max_pulses)?;
    Ok((sim.into_nodes(), report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{run_protocol, Message};
    use kdom_graph::generators::{gnp_connected, path, GenConfig};
    use kdom_graph::properties::bfs_distances;

    /// The BFS protocol from the synchronous tests, reused verbatim.
    #[derive(Clone, Debug)]
    struct Dist(u32);
    impl Message for Dist {
        fn size_bits(&self) -> u64 {
            32
        }
    }

    #[derive(Debug)]
    struct Bfs {
        source: bool,
        dist: Option<u32>,
    }

    impl Protocol for Bfs {
        type Msg = Dist;
        fn round(&mut self, ctx: &NodeCtx<'_>, inbox: &[(Port, Dist)], out: &mut Outbox<Dist>) {
            if self.dist.is_some() {
                return;
            }
            if self.source && ctx.round == 0 {
                self.dist = Some(0);
                out.broadcast(Dist(0));
            } else if let Some((p, m)) = inbox.iter().min_by_key(|(_, m)| m.0) {
                self.dist = Some(m.0 + 1);
                out.broadcast_except(Dist(m.0 + 1), *p);
            }
        }
        fn is_done(&self) -> bool {
            self.dist.is_some()
        }
    }

    fn bfs_nodes(n: usize) -> Vec<Bfs> {
        (0..n).map(|i| Bfs { source: i == 0, dist: None }).collect()
    }

    #[test]
    fn alpha_bfs_matches_synchronous_output() {
        for seed in 0..5u64 {
            let g = gnp_connected(&GenConfig::with_seed(40, seed), 0.1);
            let (sync_nodes, _) = run_protocol(&g, bfs_nodes(40), 10_000).unwrap();
            let (async_nodes, report) =
                run_protocol_alpha(&g, bfs_nodes(40), seed, 5, 10_000).unwrap();
            let want = bfs_distances(&g, kdom_graph::NodeId(0));
            for v in 0..40 {
                assert_eq!(async_nodes[v].dist, sync_nodes[v].dist, "seed {seed} node {v}");
                assert_eq!(async_nodes[v].dist, Some(want[v]));
            }
            assert!(report.control_messages > 0, "α control traffic exists");
        }
    }

    #[test]
    fn alpha_pulse_count_matches_synchronous_rounds_shape() {
        let g = path(&GenConfig::with_seed(30, 0));
        let (_, sync_report) = run_protocol(&g, bfs_nodes(30), 10_000).unwrap();
        let (_, alpha_report) = run_protocol_alpha(&g, bfs_nodes(30), 7, 3, 10_000).unwrap();
        // α keeps *adjacent* nodes within one pulse, so across a path the
        // fastest node can run ahead by up to the diameter before global
        // quiescence is detected: rounds ≤ pulses ≤ rounds + Diam + O(1)
        assert!(alpha_report.pulses >= sync_report.rounds - 1);
        assert!(alpha_report.pulses <= sync_report.rounds + 30 + 3);
    }

    #[test]
    fn alpha_is_deterministic_per_seed() {
        let g = gnp_connected(&GenConfig::with_seed(30, 3), 0.15);
        let (_, a) = run_protocol_alpha(&g, bfs_nodes(30), 11, 4, 10_000).unwrap();
        let (_, b) = run_protocol_alpha(&g, bfs_nodes(30), 11, 4, 10_000).unwrap();
        assert_eq!(a, b);
        let (_, c) = run_protocol_alpha(&g, bfs_nodes(30), 12, 4, 10_000).unwrap();
        assert_ne!(a.virtual_time, c.virtual_time, "different delays, different time");
    }

    #[test]
    fn alpha_overhead_is_per_edge_per_pulse() {
        let g = gnp_connected(&GenConfig::with_seed(50, 9), 0.1);
        let (_, report) = run_protocol_alpha(&g, bfs_nodes(50), 2, 3, 10_000).unwrap();
        // acks ≤ payloads; safes ≈ 2·|E| per pulse — the [Al] bound
        let bound = (report.pulses + 2) * 2 * g.edge_count() as u64
            + report.payload_messages;
        assert!(
            report.control_messages <= bound,
            "{} control msgs > bound {bound}",
            report.control_messages
        );
    }
}
