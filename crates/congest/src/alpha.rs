//! Asynchronous execution via **synchronizer α** (Awerbuch \[Al\]).
//!
//! The paper's model discussion (§1.2) notes that assuming synchrony "is
//! not essential, since our decision to ignore communication costs allows
//! us to freely use a synchronizer of our choice; for example, we can use
//! the simple synchronizer α whose cost in an asynchronous network is one
//! message over each edge in each direction per round". This module makes
//! that argument executable: an event-driven network with per-message
//! delivery delays runs any synchronous [`Protocol`] *unchanged* under
//! synchronizer α, and the tests check the outputs coincide with the
//! synchronous executions.
//!
//! The classic α recipe, per pulse `p`:
//!
//! 1. a node entering pulse `p` runs its synchronous round with the
//!    payload messages its neighbors sent at pulse `p−1`;
//! 2. every payload is acknowledged; once all of a node's pulse-`p`
//!    payloads are acknowledged the node is *safe* and tells every
//!    neighbor;
//! 3. a node advances to pulse `p+1` once it is safe and every neighbor
//!    reported safe for pulse `p` — at which point all pulse-`p` traffic
//!    toward it has provably arrived.
//!
//! # Faults and recovery
//!
//! The executor optionally plays back a [`FaultPlan`]: transmissions can
//! be dropped, duplicated, or delayed, links can go down for intervals,
//! and nodes can fail-stop at a chosen pulse. Under loss the bare
//! synchronizer deadlocks (a lost payload is never acked; a lost *safe*
//! blocks a pulse forever) — the watchdog then reports
//! [`SimError::Stalled`] with the stuck nodes instead of hanging.
//! Layering the [`reliable`](crate::reliable) ARQ machinery under the
//! synchronizer ([`AlphaSimulator::reliable`]) restores exactly-once
//! delivery, making every protocol's output *identical* to its fault-free
//! synchronous execution — the property the recovery tests assert.
//!
//! Crashes use a perfect failure detector: a dying node emits `Down`
//! frames (immune to faults, as is standard for failure-detector
//! abstractions) so neighbors stop waiting for its acks and safes.
//!
//! Measured overheads (report fields): the payload/control message split,
//! the virtual completion time under random delays, and the fault/
//! recovery counters.
//!
//! # Quiescence fast-forward
//!
//! The synchronous engine skips provably-empty rounds explicitly
//! ([`crate::engine`]); this executor needs no analogue, because its
//! event queue *is* a "next event time" min-tracker. Execution is a
//! single FIFO-stable [`EventQueue`](crate::events::EventQueue) — the
//! shared event core also backing the engine's timer heap — covering
//! payload deliveries, ARQ retransmission timers, and (via the reliable
//! layer's delay queues) every fault-injected extra delay. Popping the
//! queue jumps the virtual clock directly to the next event — silent
//! stretches of virtual time cost nothing by construction, and there is
//! no per-pulse scan to skip. The counters in [`AlphaReport`] are keyed
//! to events, not wall ticks, so they are trivially identical to the
//! "unskipped" execution (no such execution exists to diverge from).

use std::collections::{HashMap, HashSet};

use kdom_graph::graph::{Graph, NodeId};
use kdom_rng::StdRng;

use crate::engine::{self, reverse_port_table};
use crate::events::EventQueue;
use crate::faults::{FaultInjector, FaultPlan};
use crate::reliable::{LinkState, ReliableConfig, RetxDecision};
use crate::sim::{Message, Port, Protocol, SimError, StallReport};
use crate::trace::{TraceEvent, TraceSink};
use crate::wire::{BitReader, BitWriter, CodecScratch, Wire, WireError, WireFrame};

/// Statistics of an asynchronous (synchronizer-α) execution.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AlphaReport {
    /// Highest pulse any node entered (should match the synchronous
    /// round count up to the final drain).
    pub pulses: u64,
    /// Virtual completion time (max delivery timestamp processed).
    pub virtual_time: u64,
    /// Payload (protocol) messages delivered.
    pub payload_messages: u64,
    /// Control messages (acks + safe notifications) delivered.
    pub control_messages: u64,
    /// Messages lost to injected faults (drops, down-intervals, and
    /// traffic to/from crashed nodes).
    pub dropped_messages: u64,
    /// Extra copies injected by fault duplication.
    pub duplicated_messages: u64,
    /// Retransmissions performed by the reliable-delivery layer.
    pub retransmissions: u64,
    /// Link-layer bits of payload-carrying frames delivered to live
    /// nodes: the *encoded* frame size, so α pulse tags and (in reliable
    /// mode) ARQ sequence-number framing are priced honestly on top of
    /// the protocol payload.
    pub payload_bits: u64,
    /// Link-layer bits of control frames delivered to live nodes — α
    /// acks and safe notifications, ARQ link-acks and retransmitted
    /// duplicates, and failure-detector `Down` frames.
    pub control_bits: u64,
}

impl From<AlphaReport> for crate::RunReport {
    /// Projects an asynchronous run onto the synchronous metrics, so
    /// compositions can account an α-executed stage like any other:
    /// pulses count as rounds and delivered payloads as messages. The
    /// bit-level fields are α-specific (control traffic dominates) and
    /// are left at zero rather than reported misleadingly.
    fn from(a: AlphaReport) -> Self {
        crate::RunReport {
            rounds: a.pulses,
            messages: a.payload_messages,
            dropped_messages: a.dropped_messages,
            duplicated_messages: a.duplicated_messages,
            retransmissions: a.retransmissions,
            ..crate::RunReport::default()
        }
    }
}

/// α wire format: a payload with its pulse tag, or α control traffic.
/// (Named `AlphaWire` so the codec trait [`Wire`] keeps the short name.)
#[derive(Clone, Debug)]
pub(crate) enum AlphaWire<M> {
    Payload { pulse: u64, msg: M },
    Ack { pulse: u64 },
    Safe { pulse: u64 },
}

impl<M> AlphaWire<M> {
    fn is_payload(&self) -> bool {
        matches!(self, AlphaWire::Payload { .. })
    }
}

/// Encoding: 2-bit tag, pulse as one CONGEST word, and — for payloads —
/// the protocol message as the *tail* of the frame, so its (possibly
/// length-delimited) decoder sees exactly its own bits as the remainder.
impl<M: Message> Wire for AlphaWire<M> {
    fn encode(&self, w: &mut BitWriter) {
        match self {
            AlphaWire::Payload { pulse, msg } => {
                w.tag(0, 3);
                w.word(*pulse);
                msg.encode(w);
            }
            AlphaWire::Ack { pulse } => {
                w.tag(1, 3);
                w.word(*pulse);
            }
            AlphaWire::Safe { pulse } => {
                w.tag(2, 3);
                w.word(*pulse);
            }
        }
    }

    fn decode(r: &mut BitReader<'_>) -> Result<Self, WireError> {
        Ok(match r.tag(3)? {
            0 => AlphaWire::Payload {
                pulse: r.word()?,
                msg: M::decode(r)?,
            },
            1 => AlphaWire::Ack { pulse: r.word()? },
            2 => AlphaWire::Safe { pulse: r.word()? },
            value => {
                return Err(WireError::BadTag {
                    context: "AlphaWire",
                    value,
                })
            }
        })
    }
}

/// Physical frame on a link: raw α traffic, ARQ-wrapped traffic, its
/// acknowledgement, or a failure notification.
#[derive(Clone, Debug)]
enum Frame<M> {
    /// Unreliable transport (the fault-free fast path).
    Raw(AlphaWire<M>),
    /// Reliable transport: a wire tagged with a link sequence number.
    Data { seq: u64, wire: AlphaWire<M> },
    /// Link-level acknowledgement of a `Data` frame.
    LinkAck { seq: u64 },
    /// Failure-detector notification: the sender has crashed.
    Down,
}

impl<M> Frame<M> {
    fn carries_payload(&self) -> bool {
        match self {
            Frame::Raw(w) | Frame::Data { wire: w, .. } => w.is_payload(),
            Frame::LinkAck { .. } | Frame::Down => false,
        }
    }
}

/// Encoding: 2-bit tag, ARQ sequence numbers as CONGEST words, and the
/// wrapped α wire as the tail (see [`AlphaWire`]'s encoding note).
impl<M: Message> Wire for Frame<M> {
    fn encode(&self, w: &mut BitWriter) {
        match self {
            Frame::Raw(wire) => {
                w.tag(0, 4);
                wire.encode(w);
            }
            Frame::Data { seq, wire } => {
                w.tag(1, 4);
                w.word(*seq);
                wire.encode(w);
            }
            Frame::LinkAck { seq } => {
                w.tag(2, 4);
                w.word(*seq);
            }
            Frame::Down => w.tag(3, 4),
        }
    }

    fn decode(r: &mut BitReader<'_>) -> Result<Self, WireError> {
        Ok(match r.tag(4)? {
            0 => Frame::Raw(AlphaWire::decode(r)?),
            1 => Frame::Data {
                seq: r.word()?,
                wire: AlphaWire::decode(r)?,
            },
            2 => Frame::LinkAck { seq: r.word()? },
            _ => Frame::Down,
        })
    }
}

/// What actually travels through the event queue: the in-memory frame on
/// the default path, or — under wire-exact execution — the encoded bit
/// frame, decoded only at delivery. The payload flag is stored so
/// in-flight accounting never needs to decode.
#[derive(Clone, Debug)]
enum Packet<M> {
    Typed(Frame<M>),
    Bits { frame: WireFrame, payload: bool },
}

impl<M: Message> Packet<M> {
    fn carries_payload(&self) -> bool {
        match self {
            Packet::Typed(f) => f.carries_payload(),
            Packet::Bits { payload, .. } => *payload,
        }
    }

    /// Encoded link-layer size of this frame, identical on both paths.
    fn bits(&self) -> u64 {
        match self {
            Packet::Typed(f) => f.encoded_bits(),
            Packet::Bits { frame, .. } => frame.bits(),
        }
    }
}

/// A scheduled simulation event.
enum Event<M> {
    /// `pkt` arrives at `to` over its local `port`.
    Deliver {
        to: usize,
        port: Port,
        pkt: Packet<M>,
    },
    /// The retransmission timer of `(from, port, seq)` fires.
    Retx { from: usize, port: Port, seq: u64 },
}

struct NodeState<P: Protocol> {
    inner: P,
    pulse: u64,
    ran_current: bool,
    pending_acks: u64,
    /// Unacked payloads of the current pulse, per port — lets a dead
    /// neighbor's outstanding acks be cancelled precisely.
    awaiting: Vec<u64>,
    safe_sent: bool,
    /// payloads received, keyed by the sender's pulse
    payloads: HashMap<u64, Vec<(Port, P::Msg)>>,
    /// safe notifications received, keyed by pulse
    safes: HashMap<u64, HashSet<Port>>,
}

/// Event-driven asynchronous executor wrapping synchronous protocols
/// with synchronizer α, with optional fault injection and an optional
/// reliable-delivery layer.
pub struct AlphaSimulator<'g, P: Protocol> {
    graph: &'g Graph,
    nodes: Vec<NodeState<P>>,
    /// Time-ordered, FIFO-stable event queue from the shared event core.
    queue: EventQueue<Event<P::Msg>>,
    rng: StdRng,
    max_delay: u64,
    report: AlphaReport,
    /// Application ids, hoisted out of the per-pulse hot path.
    ids: Vec<u64>,
    /// `rev_port[v][p]`: port of edge `(v, p)` at its other endpoint.
    rev_port: Vec<Vec<Option<Port>>>,
    injector: Option<FaultInjector>,
    arq: Option<ReliableConfig>,
    /// ARQ endpoint state per `(node, port)` (reliable mode only).
    links: Vec<Vec<LinkState<AlphaWire<P::Msg>>>>,
    dead: Vec<bool>,
    /// `dead_ports[v][p]`: v has learned (via `Down`) that the neighbor
    /// across port p crashed.
    dead_ports: Vec<Vec<bool>>,
    /// Payloads lost because an endpoint had crashed.
    crash_dropped: u64,
    /// Payload-bearing frames currently in the event queue.
    inflight_payloads: u64,
    /// Payload wires registered with the ARQ layer and not yet acked.
    unacked_payloads: u64,
    last_activity: u64,
    /// Pooled outbox slab handed to the shared round executor.
    outbox_pool: Vec<Option<P::Msg>>,
    /// Wire-exact execution (the default; `KDOM_WIRE=off` or
    /// [`AlphaSimulator::wire_exact`] disables it): frames are encoded
    /// at send and decoded at delivery (see [`Packet`]).
    exact: bool,
    /// Reused codec buffers for the wire-exact delivery check.
    codec: CodecScratch,
    /// First CONGEST violation observed; surfaced by [`Self::run`].
    violation: Option<SimError>,
    /// Evidence stream (`KDOM_TRACE` / [`AlphaSimulator::set_trace`]);
    /// `None` keeps every emission site a never-taken branch.
    trace: Option<Box<dyn TraceSink>>,
}

impl<'g, P: Protocol> AlphaSimulator<'g, P> {
    /// Creates the asynchronous executor. `max_delay ≥ 1` bounds the
    /// per-message delivery delay, drawn deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `nodes.len() != graph.node_count()` or `max_delay == 0`.
    pub fn new(graph: &'g Graph, nodes: Vec<P>, seed: u64, max_delay: u64) -> Self {
        assert_eq!(nodes.len(), graph.node_count(), "one automaton per node");
        assert!(max_delay >= 1, "delays are at least one time unit");
        let n = graph.node_count();
        let nodes = nodes
            .into_iter()
            .enumerate()
            .map(|(v, inner)| NodeState {
                inner,
                pulse: 0,
                ran_current: false,
                pending_acks: 0,
                awaiting: vec![0; graph.degree(NodeId(v))],
                safe_sent: false,
                payloads: HashMap::new(),
                safes: HashMap::new(),
            })
            .collect();
        let ids = (0..n).map(|v| graph.id_of(NodeId(v))).collect();
        let rev_port = reverse_port_table(graph);
        let links = (0..n)
            .map(|v| {
                (0..graph.degree(NodeId(v)))
                    .map(|_| LinkState::new())
                    .collect()
            })
            .collect();
        let dead_ports = (0..n)
            .map(|v| vec![false; graph.degree(NodeId(v))])
            .collect();
        AlphaSimulator {
            graph,
            nodes,
            queue: EventQueue::new(),
            rng: StdRng::seed_from_u64(seed),
            max_delay,
            report: AlphaReport::default(),
            ids,
            rev_port,
            injector: None,
            arq: None,
            links,
            dead: vec![false; n],
            dead_ports,
            crash_dropped: 0,
            inflight_payloads: 0,
            unacked_payloads: 0,
            last_activity: 0,
            outbox_pool: Vec::new(),
            // same fail-fast alias table as `EngineConfig::from_env`
            exact: kdom_graph::knob::knob_enum(
                "KDOM_WIRE",
                true,
                &[
                    (&["off", "0", "false", "no", "zero-copy"], false),
                    (&["exact", "1", "on", "true", "yes", "wire-exact"], true),
                ],
            ),
            codec: CodecScratch::new(),
            violation: None,
            trace: crate::trace::from_env(),
        }
    }

    /// Enables (or disables) wire-exact execution explicitly, overriding
    /// the environment default (**on** unless `KDOM_WIRE=off`): every
    /// frame is encoded to its bit representation at send and decoded
    /// back at delivery, with a round-trip mismatch surfacing as
    /// [`SimError::WireMismatch`]. Reports are byte-identical to the
    /// zero-copy in-memory path.
    pub fn wire_exact(mut self, on: bool) -> Self {
        self.exact = on;
        self
    }

    /// Attaches a [`TraceSink`] for this run, replacing the
    /// environment-selected one; the `run_start` event is emitted when
    /// [`AlphaSimulator::run`] begins (its mode depends on whether the
    /// reliable layer is enabled).
    pub fn set_trace(&mut self, sink: Box<dyn TraceSink>) {
        self.trace = Some(sink);
    }

    /// Creates an executor that injects the faults described by `plan`
    /// (crash times are interpreted as pulses). Without the reliable
    /// layer most protocols *stall* under loss — enable it with
    /// [`AlphaSimulator::reliable`] to recover exactly-once delivery.
    ///
    /// # Panics
    ///
    /// Panics if `nodes.len() != graph.node_count()` or `max_delay == 0`.
    pub fn with_faults(
        graph: &'g Graph,
        nodes: Vec<P>,
        seed: u64,
        max_delay: u64,
        plan: &FaultPlan,
    ) -> Self {
        let mut sim = Self::new(graph, nodes, seed, max_delay);
        sim.injector = Some(FaultInjector::new(plan));
        sim
    }

    /// Enables the link-level ARQ layer ([`crate::reliable`]): every wire
    /// is sequence-numbered, acknowledged, retransmitted with exponential
    /// backoff until acked, and deduplicated at the receiver.
    pub fn reliable(mut self, cfg: ReliableConfig) -> Self {
        self.arq = Some(cfg);
        self
    }

    /// Pushes `ev` at absolute time `at`, maintaining payload accounting.
    fn enqueue(&mut self, at: u64, ev: Event<P::Msg>) {
        if let Event::Deliver { pkt, .. } = &ev {
            if pkt.carries_payload() {
                self.inflight_payloads += 1;
            }
        }
        self.queue.push(at, ev);
    }

    /// Commits `frame` to its link representation: the encoded bit frame
    /// under wire-exact execution, the in-memory frame otherwise.
    fn packetize(&self, frame: Frame<P::Msg>) -> Packet<P::Msg> {
        if self.exact {
            Packet::Bits {
                payload: frame.carries_payload(),
                frame: frame.to_frame(),
            }
        } else {
            Packet::Typed(frame)
        }
    }

    /// Physically transmits `frame` over `(from, port)` through the fault
    /// injector (drops, duplicates, extra delay, down links). The frame
    /// is packetized *before* the injector and delay draws, so the RNG
    /// stream — and therefore the whole run — is identical with and
    /// without wire-exact execution.
    fn physical_send(&mut self, now: u64, from: usize, port: Port, frame: Frame<P::Msg>) {
        let arc = self.graph.neighbors(NodeId(from))[port.0];
        let to = arc.to.0;
        // validated in run(); BrokenTopology is reported there
        let back = self.rev_port[from][port.0].expect("validated topology");
        let pkt = self.packetize(frame);
        match self.injector.as_mut() {
            None => {
                let delay = self.rng.random_range(1..=self.max_delay);
                self.enqueue(
                    now + delay,
                    Event::Deliver {
                        to,
                        port: back,
                        pkt,
                    },
                );
            }
            Some(inj) => {
                let tx = inj.transmit(arc.edge, now);
                if let Some(t) = self.trace.as_mut() {
                    if tx.copies.is_empty() {
                        t.event(&TraceEvent::Drop {
                            time: now,
                            link_down: tx.down,
                        });
                    } else if tx.copies.len() > 1 {
                        t.event(&TraceEvent::Duplicate { time: now });
                    }
                }
                engine::fan_out(tx.copies, pkt, |extra, pkt| {
                    let delay = self.rng.random_range(1..=self.max_delay) + extra;
                    self.enqueue(
                        now + delay,
                        Event::Deliver {
                            to,
                            port: back,
                            pkt,
                        },
                    );
                });
            }
        }
    }

    /// Sends an α wire over the configured transport (raw or ARQ).
    fn transport_send(&mut self, now: u64, from: usize, port: Port, wire: AlphaWire<P::Msg>) {
        if self.dead[from] || self.dead_ports[from][port.0] {
            if wire.is_payload() {
                self.crash_dropped += 1;
                if let Some(t) = self.trace.as_mut() {
                    t.event(&TraceEvent::CrashDrop { lost: 1 });
                }
            }
            return;
        }
        match self.arq {
            None => self.physical_send(now, from, port, Frame::Raw(wire)),
            Some(cfg) => {
                if wire.is_payload() {
                    self.unacked_payloads += 1;
                }
                let seq = self.links[from][port.0].register_send(wire.clone(), &cfg);
                self.physical_send(now, from, port, Frame::Data { seq, wire });
                self.enqueue(now + cfg.base_timeout, Event::Retx { from, port, seq });
            }
        }
    }

    /// Emits failure-detector `Down` frames on every port of `v`. These
    /// bypass the fault injector (a perfect detector) and arrive after
    /// one time unit.
    fn broadcast_down(&mut self, now: u64, v: usize) {
        for p in 0..self.graph.degree(NodeId(v)) {
            let arc = self.graph.neighbors(NodeId(v))[p];
            let back = self.rev_port[v][p].expect("validated topology");
            let pkt = self.packetize(Frame::Down);
            self.enqueue(
                now + 1,
                Event::Deliver {
                    to: arc.to.0,
                    port: back,
                    pkt,
                },
            );
        }
    }

    /// Fail-stops `v`: it executes nothing further, its pending traffic
    /// is abandoned, and every neighbor is notified.
    fn die(&mut self, now: u64, v: usize) {
        if self.dead[v] {
            return;
        }
        self.dead[v] = true;
        for link in &mut self.links[v] {
            for w in link.clear() {
                if w.is_payload() {
                    self.unacked_payloads = self.unacked_payloads.saturating_sub(1);
                    self.crash_dropped += 1;
                    if let Some(t) = self.trace.as_mut() {
                        t.event(&TraceEvent::CrashDrop { lost: 1 });
                    }
                }
            }
        }
        self.nodes[v].payloads.clear();
        self.nodes[v].safes.clear();
        self.broadcast_down(now, v);
    }

    /// Runs the node's synchronous round for its current pulse and ships
    /// the outputs.
    fn run_round(&mut self, now: u64, v: usize) {
        if self.dead[v] {
            return;
        }
        let pulse = self.nodes[v].pulse;
        debug_assert!(!self.nodes[v].ran_current);
        let inbox = {
            let st = &mut self.nodes[v];
            let mut inbox = if pulse == 0 {
                Vec::new()
            } else {
                st.payloads.remove(&(pulse - 1)).unwrap_or_default()
            };
            inbox.sort_by_key(|(p, _)| *p);
            inbox
        };
        let violation = engine::execute_node_round(
            self.graph,
            &self.ids,
            v,
            pulse,
            &mut self.nodes[v].inner,
            &inbox,
            &mut self.outbox_pool,
        );
        if let Some(port) = violation {
            self.violation.get_or_insert(SimError::CongestViolation {
                node: NodeId(v),
                port,
                round: pulse,
            });
        }
        let mut slots = std::mem::take(&mut self.outbox_pool);
        let mut sent = 0u64;
        self.nodes[v].awaiting.iter_mut().for_each(|a| *a = 0);
        for (p, slot) in slots.iter_mut().enumerate() {
            let Some(msg) = slot.take() else { continue };
            if self.dead_ports[v][p] {
                // neighbor is gone: the payload is undeliverable and no
                // ack will ever come — don't wait for one
                self.crash_dropped += 1;
                if let Some(t) = self.trace.as_mut() {
                    t.event(&TraceEvent::CrashDrop { lost: 1 });
                }
                continue;
            }
            sent += 1;
            self.nodes[v].awaiting[p] = 1;
            self.transport_send(now, v, Port(p), AlphaWire::Payload { pulse, msg });
        }
        self.outbox_pool = slots;
        self.nodes[v].ran_current = true;
        self.nodes[v].pending_acks = sent;
        self.nodes[v].safe_sent = false;
        self.maybe_safe(now, v);
    }

    /// Declares safety once all payloads of the current pulse are acked.
    fn maybe_safe(&mut self, now: u64, v: usize) {
        if self.dead[v] {
            return;
        }
        if self.nodes[v].ran_current && self.nodes[v].pending_acks == 0 && !self.nodes[v].safe_sent
        {
            self.nodes[v].safe_sent = true;
            let pulse = self.nodes[v].pulse;
            for p in 0..self.graph.degree(NodeId(v)) {
                if !self.dead_ports[v][p] {
                    self.transport_send(now, v, Port(p), AlphaWire::Safe { pulse });
                }
            }
            self.maybe_advance(now, v);
        }
    }

    /// Advances to the next pulse once safe and all *live* neighbors are
    /// safe (dead neighbors, learned via `Down`, are excused).
    fn maybe_advance(&mut self, now: u64, v: usize) {
        if self.dead[v] {
            return;
        }
        let pulse = self.nodes[v].pulse;
        let degree = self.graph.degree(NodeId(v));
        // A node with no live neighbors can never receive anything again:
        // suspend it rather than let it pulse in an unbounded self-loop.
        let isolated = (0..degree).all(|p| self.dead_ports[v][p]);
        let ready = !isolated && {
            let st = &self.nodes[v];
            st.ran_current
                && st.safe_sent
                && (0..degree).all(|p| {
                    self.dead_ports[v][p]
                        || st.safes.get(&pulse).is_some_and(|s| s.contains(&Port(p)))
                })
        };
        if ready {
            let st = &mut self.nodes[v];
            st.safes.remove(&pulse);
            st.pulse += 1;
            st.ran_current = false;
            let next = st.pulse;
            if next > self.report.pulses {
                self.report.pulses = next;
                if let Some(t) = self.trace.as_mut() {
                    t.event(&TraceEvent::Pulse { pulse: next });
                }
            }
            if self
                .injector
                .as_ref()
                .and_then(|inj| inj.crash_time(NodeId(v)))
                .is_some_and(|at| next >= at)
            {
                self.die(now, v);
            } else {
                self.run_round(now, v);
            }
        }
    }

    /// Marks the neighbor across `port` as crashed and releases every
    /// wait that depended on it.
    fn handle_down(&mut self, now: u64, v: usize, port: Port) {
        if self.dead[v] || self.dead_ports[v][port.0] {
            return;
        }
        self.dead_ports[v][port.0] = true;
        for w in self.links[v][port.0].clear() {
            if w.is_payload() {
                self.unacked_payloads = self.unacked_payloads.saturating_sub(1);
                self.crash_dropped += 1;
                if let Some(t) = self.trace.as_mut() {
                    t.event(&TraceEvent::CrashDrop { lost: 1 });
                }
            }
        }
        let owed = std::mem::take(&mut self.nodes[v].awaiting[port.0]);
        self.nodes[v].pending_acks = self.nodes[v].pending_acks.saturating_sub(owed);
        self.maybe_safe(now, v);
        self.maybe_advance(now, v);
    }

    /// Processes one α wire delivered to `v` on `port`.
    fn deliver_wire(&mut self, time: u64, v: usize, port: Port, wire: AlphaWire<P::Msg>) {
        match wire {
            AlphaWire::Payload { pulse, msg } => {
                self.report.payload_messages += 1;
                if let Some(t) = self.trace.as_mut() {
                    t.event(&TraceEvent::Deliver {
                        time,
                        node: v as u32,
                        port: port.0 as u32,
                        bits: msg.size_bits(),
                    });
                }
                self.nodes[v]
                    .payloads
                    .entry(pulse)
                    .or_default()
                    .push((port, msg));
                self.transport_send(time, v, port, AlphaWire::Ack { pulse });
            }
            AlphaWire::Ack { pulse } => {
                self.report.control_messages += 1;
                if self.nodes[v].pulse == pulse && self.nodes[v].awaiting[port.0] > 0 {
                    self.nodes[v].awaiting[port.0] -= 1;
                    self.nodes[v].pending_acks = self.nodes[v].pending_acks.saturating_sub(1);
                    self.maybe_safe(time, v);
                }
            }
            AlphaWire::Safe { pulse } => {
                self.report.control_messages += 1;
                self.nodes[v].safes.entry(pulse).or_default().insert(port);
                if self.nodes[v].pulse == pulse {
                    self.maybe_advance(time, v);
                }
            }
        }
    }

    fn all_quiet(&self) -> bool {
        self.inflight_payloads == 0
            && self.unacked_payloads == 0
            && self.nodes.iter().enumerate().all(|(v, st)| {
                self.dead[v] || (st.inner.is_done() && st.payloads.values().all(Vec::is_empty))
            })
    }

    fn stall_report(&self) -> StallReport {
        StallReport {
            not_done: (0..self.nodes.len())
                .filter(|&v| !self.dead[v] && !self.nodes[v].inner.is_done())
                .map(NodeId)
                .collect(),
            pending: self
                .nodes
                .iter()
                .enumerate()
                .map(|(v, st)| (NodeId(v), st.payloads.values().map(Vec::len).sum::<usize>()))
                .filter(|(_, d)| *d > 0)
                .collect(),
            last_activity: self.last_activity,
            crashed: (0..self.nodes.len())
                .filter(|&v| self.dead[v])
                .map(NodeId)
                .collect(),
            live: (0..self.nodes.len())
                .filter(|&v| !self.dead[v])
                .map(NodeId)
                .collect(),
            stopped_at: self.report.pulses,
        }
    }

    /// Surfaces a recorded CONGEST violation as the run's error.
    fn take_violation(&mut self) -> Result<(), SimError> {
        match self.violation.take() {
            Some(e) => {
                self.sync_fault_counters();
                Err(e)
            }
            None => Ok(()),
        }
    }

    fn sync_fault_counters(&mut self) {
        if let Some(inj) = &self.injector {
            self.report.dropped_messages = inj.dropped() + self.crash_dropped;
            self.report.duplicated_messages = inj.duplicated();
        } else {
            self.report.dropped_messages = self.crash_dropped;
        }
    }

    /// Runs to protocol quiescence.
    ///
    /// # Errors
    ///
    /// - [`SimError::RoundLimitExceeded`] if more than `max_pulses` pulses
    ///   elapse, with a [`StallReport`] naming who is behind;
    /// - [`SimError::Stalled`] if the event queue drains before
    ///   quiescence (lost messages with no recovery layer);
    /// - [`SimError::DeliveryExhausted`] if the ARQ layer gives up a link;
    /// - [`SimError::CongestViolation`] if a node double-sent on a port
    ///   (matching the synchronous executor's watchdog);
    /// - [`SimError::BrokenTopology`] on an asymmetric adjacency list.
    pub fn run(&mut self, max_pulses: u64) -> Result<AlphaReport, SimError> {
        for v in 0..self.nodes.len() {
            for (p, rp) in self.rev_port[v].iter().enumerate() {
                if rp.is_none() {
                    return Err(SimError::BrokenTopology {
                        node: NodeId(v),
                        port: Port(p),
                    });
                }
            }
        }
        if let Some(t) = self.trace.as_mut() {
            t.event(&TraceEvent::RunStart {
                mode: if self.arq.is_some() {
                    "reliable-alpha"
                } else {
                    "alpha"
                },
                nodes: self.graph.node_count(),
                edges: self.graph.edge_count(),
                bit_budget: None,
                fixed_mem: None,
            });
        }
        // initial crashes (pulse 0): these nodes never participate — a
        // degraded topology
        let initial_dead: Vec<usize> = (0..self.nodes.len())
            .filter(|&v| {
                self.injector
                    .as_ref()
                    .and_then(|inj| inj.crash_time(NodeId(v)))
                    .is_some_and(|at| at == 0)
            })
            .collect();
        for v in initial_dead {
            self.die(0, v);
        }
        // pulse 0 for everyone alive
        for v in 0..self.nodes.len() {
            if !self.dead[v] {
                self.run_round(0, v);
            }
        }
        while !self.all_quiet() {
            self.take_violation()?;
            let Some((time, ev)) = self.queue.pop() else {
                self.sync_fault_counters();
                return Err(SimError::Stalled {
                    stall: self.stall_report(),
                });
            };
            if self.report.pulses > max_pulses {
                self.sync_fault_counters();
                return Err(SimError::RoundLimitExceeded {
                    limit: max_pulses,
                    stall: self.stall_report(),
                });
            }
            self.report.virtual_time = self.report.virtual_time.max(time);
            match ev {
                Event::Deliver { to, port, pkt } => {
                    let is_payload = pkt.carries_payload();
                    if is_payload {
                        self.inflight_payloads -= 1;
                    }
                    self.last_activity = time;
                    if self.dead[to] {
                        if is_payload {
                            self.crash_dropped += 1;
                            if let Some(t) = self.trace.as_mut() {
                                t.event(&TraceEvent::CrashDrop { lost: 1 });
                            }
                        }
                        // in reliable mode the sender's state is settled
                        // by the Down frame, not by an ack
                        continue;
                    }
                    let link_bits = pkt.bits();
                    let frame = match pkt {
                        Packet::Typed(frame) => frame,
                        Packet::Bits { frame: wf, .. } => {
                            match self.codec.check_frame::<Frame<P::Msg>>(&wf) {
                                Ok(decoded) => decoded,
                                Err(detail) => {
                                    self.violation.get_or_insert(SimError::WireMismatch {
                                        node: NodeId(to),
                                        port,
                                        round: time,
                                        detail,
                                    });
                                    continue;
                                }
                            }
                        }
                    };
                    if is_payload {
                        self.report.payload_bits += link_bits;
                    } else {
                        self.report.control_bits += link_bits;
                    }
                    match frame {
                        Frame::Raw(wire) => self.deliver_wire(time, to, port, wire),
                        Frame::Data { seq, wire } => {
                            // always re-ack: the previous LinkAck may have
                            // been lost
                            self.physical_send(time, to, port, Frame::LinkAck { seq });
                            if self.links[to][port.0].accept(seq) {
                                self.deliver_wire(time, to, port, wire);
                            }
                        }
                        Frame::LinkAck { seq } => {
                            if let Some(w) = self.links[to][port.0].on_link_ack(seq) {
                                if w.is_payload() {
                                    self.unacked_payloads -= 1;
                                }
                            }
                        }
                        Frame::Down => self.handle_down(time, to, port),
                    }
                }
                Event::Retx { from, port, seq } => {
                    if self.dead[from] || self.dead_ports[from][port.0] {
                        continue; // link state already cleared
                    }
                    let cfg = self.arq.expect("retx only scheduled in reliable mode");
                    match self.links[from][port.0].on_retx_timer(seq, &cfg) {
                        RetxDecision::Acked => {}
                        RetxDecision::Resend {
                            wire,
                            next_timeout,
                            attempt,
                        } => {
                            self.report.retransmissions += 1;
                            if let Some(t) = self.trace.as_mut() {
                                t.event(&TraceEvent::Retx {
                                    time,
                                    node: from as u32,
                                    port: port.0 as u32,
                                    seq,
                                    attempt,
                                });
                            }
                            self.physical_send(time, from, port, Frame::Data { seq, wire });
                            self.enqueue(time + next_timeout, Event::Retx { from, port, seq });
                        }
                        RetxDecision::Exhausted { attempts } => {
                            self.sync_fault_counters();
                            return Err(SimError::DeliveryExhausted {
                                node: NodeId(from),
                                port,
                                attempts,
                            });
                        }
                    }
                }
            }
        }
        self.take_violation()?;
        self.sync_fault_counters();
        if self.trace.is_some() {
            let projected = crate::RunReport::from(self.report.clone());
            if let Some(t) = self.trace.as_mut() {
                t.event(&TraceEvent::RunEnd { report: &projected });
                t.flush();
            }
        }
        Ok(self.report.clone())
    }

    /// The wrapped automata (for output extraction).
    pub fn into_nodes(self) -> Vec<P> {
        self.nodes.into_iter().map(|st| st.inner).collect()
    }
}

/// Convenience: runs `nodes` under synchronizer α with random delays in
/// `1..=max_delay` and returns the automata plus the report.
///
/// # Errors
///
/// Propagates every [`SimError`] of [`AlphaSimulator::run`].
pub fn run_protocol_alpha<P: Protocol>(
    graph: &Graph,
    nodes: Vec<P>,
    seed: u64,
    max_delay: u64,
    max_pulses: u64,
) -> Result<(Vec<P>, AlphaReport), SimError> {
    let mut sim = AlphaSimulator::new(graph, nodes, seed, max_delay);
    let report = sim.run(max_pulses)?;
    Ok((sim.into_nodes(), report))
}

/// Convenience: α execution with injected faults and *no* recovery layer.
/// Under loss most protocols stall — useful for testing the watchdog.
///
/// # Errors
///
/// Propagates every [`SimError`] of [`AlphaSimulator::run`].
pub fn run_protocol_alpha_faulty<P: Protocol>(
    graph: &Graph,
    nodes: Vec<P>,
    seed: u64,
    max_delay: u64,
    plan: &FaultPlan,
    max_pulses: u64,
) -> Result<(Vec<P>, AlphaReport), SimError> {
    let mut sim = AlphaSimulator::with_faults(graph, nodes, seed, max_delay, plan);
    let report = sim.run(max_pulses)?;
    Ok((sim.into_nodes(), report))
}

/// Convenience: α execution with injected faults *and* the reliable
/// ARQ layer, sized for the run's delay bounds. Protocol outputs match
/// the fault-free synchronous execution (on the surviving component).
///
/// # Errors
///
/// Propagates every [`SimError`] of [`AlphaSimulator::run`].
pub fn run_protocol_alpha_reliable<P: Protocol>(
    graph: &Graph,
    nodes: Vec<P>,
    seed: u64,
    max_delay: u64,
    plan: &FaultPlan,
    max_pulses: u64,
) -> Result<(Vec<P>, AlphaReport), SimError> {
    let cfg = ReliableConfig::for_delays(max_delay, plan.max_extra_delay);
    let mut sim = AlphaSimulator::with_faults(graph, nodes, seed, max_delay, plan).reliable(cfg);
    let report = sim.run(max_pulses)?;
    Ok((sim.into_nodes(), report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{run_protocol, Message, NodeCtx, Outbox};
    use kdom_graph::generators::{gnp_connected, path, GenConfig};
    use kdom_graph::properties::bfs_distances;

    /// The BFS protocol from the synchronous tests, reused verbatim.
    #[derive(Clone, Debug, PartialEq, Eq)]
    struct Dist(u32);
    impl crate::wire::Wire for Dist {
        fn encode(&self, w: &mut crate::wire::BitWriter) {
            w.u32(self.0);
        }
        fn decode(r: &mut crate::wire::BitReader<'_>) -> Result<Self, crate::wire::WireError> {
            Ok(Dist(r.u32()?))
        }
    }
    impl Message for Dist {}

    #[derive(Debug)]
    struct Bfs {
        source: bool,
        dist: Option<u32>,
    }

    impl Protocol for Bfs {
        type Msg = Dist;
        fn round(&mut self, ctx: &NodeCtx<'_>, inbox: &[(Port, Dist)], out: &mut Outbox<Dist>) {
            if self.dist.is_some() {
                return;
            }
            if self.source && ctx.round == 0 {
                self.dist = Some(0);
                out.broadcast(Dist(0));
            } else if let Some((p, m)) = inbox.iter().min_by_key(|(_, m)| m.0) {
                self.dist = Some(m.0 + 1);
                out.broadcast_except(Dist(m.0 + 1), *p);
            }
        }
        fn is_done(&self) -> bool {
            self.dist.is_some()
        }
    }

    fn bfs_nodes(n: usize) -> Vec<Bfs> {
        (0..n)
            .map(|i| Bfs {
                source: i == 0,
                dist: None,
            })
            .collect()
    }

    #[test]
    fn alpha_bfs_matches_synchronous_output() {
        for seed in 0..5u64 {
            let g = gnp_connected(&GenConfig::with_seed(40, seed), 0.1);
            let (sync_nodes, _) = run_protocol(&g, bfs_nodes(40), 10_000).unwrap();
            let (async_nodes, report) =
                run_protocol_alpha(&g, bfs_nodes(40), seed, 5, 10_000).unwrap();
            let want = bfs_distances(&g, kdom_graph::NodeId(0));
            for v in 0..40 {
                assert_eq!(
                    async_nodes[v].dist, sync_nodes[v].dist,
                    "seed {seed} node {v}"
                );
                assert_eq!(async_nodes[v].dist, Some(want[v]));
            }
            assert!(report.control_messages > 0, "α control traffic exists");
            assert_eq!(report.dropped_messages, 0);
            assert_eq!(report.retransmissions, 0);
        }
    }

    #[test]
    fn alpha_pulse_count_matches_synchronous_rounds_shape() {
        let g = path(&GenConfig::with_seed(30, 0));
        let (_, sync_report) = run_protocol(&g, bfs_nodes(30), 10_000).unwrap();
        let (_, alpha_report) = run_protocol_alpha(&g, bfs_nodes(30), 7, 3, 10_000).unwrap();
        // α keeps *adjacent* nodes within one pulse, so across a path the
        // fastest node can run ahead by up to the diameter before global
        // quiescence is detected: rounds ≤ pulses ≤ rounds + Diam + O(1)
        assert!(alpha_report.pulses >= sync_report.rounds - 1);
        assert!(alpha_report.pulses <= sync_report.rounds + 30 + 3);
    }

    #[test]
    fn alpha_is_deterministic_per_seed() {
        let g = gnp_connected(&GenConfig::with_seed(30, 3), 0.15);
        let (_, a) = run_protocol_alpha(&g, bfs_nodes(30), 11, 4, 10_000).unwrap();
        let (_, b) = run_protocol_alpha(&g, bfs_nodes(30), 11, 4, 10_000).unwrap();
        assert_eq!(a, b);
        let (_, c) = run_protocol_alpha(&g, bfs_nodes(30), 12, 4, 10_000).unwrap();
        assert_ne!(
            a.virtual_time, c.virtual_time,
            "different delays, different time"
        );
    }

    #[test]
    fn alpha_overhead_is_per_edge_per_pulse() {
        let g = gnp_connected(&GenConfig::with_seed(50, 9), 0.1);
        let (_, report) = run_protocol_alpha(&g, bfs_nodes(50), 2, 3, 10_000).unwrap();
        // acks ≤ payloads; safes ≈ 2·|E| per pulse — the [Al] bound
        let bound = (report.pulses + 2) * 2 * g.edge_count() as u64 + report.payload_messages;
        assert!(
            report.control_messages <= bound,
            "{} control msgs > bound {bound}",
            report.control_messages
        );
    }

    #[test]
    fn lossy_alpha_without_recovery_stalls_with_diagnostics() {
        let g = path(&GenConfig::with_seed(20, 0));
        let plan = FaultPlan::new(5).drop_prob(0.5);
        let err = run_protocol_alpha_faulty(&g, bfs_nodes(20), 1, 3, &plan, 10_000).unwrap_err();
        match err {
            SimError::Stalled { stall } | SimError::RoundLimitExceeded { stall, .. } => {
                assert!(!stall.not_done.is_empty(), "stuck nodes are named");
            }
            other => panic!("expected a stall-style error, got {other:?}"),
        }
    }

    #[test]
    fn reliable_alpha_recovers_from_heavy_loss() {
        for seed in 0..3u64 {
            let g = gnp_connected(&GenConfig::with_seed(30, seed), 0.12);
            let plan = FaultPlan::new(seed + 100)
                .drop_prob(0.3)
                .dup_prob(0.1)
                .max_extra_delay(4);
            let (nodes, report) =
                run_protocol_alpha_reliable(&g, bfs_nodes(30), seed, 3, &plan, 10_000).unwrap();
            let want = bfs_distances(&g, kdom_graph::NodeId(0));
            for v in 0..30 {
                assert_eq!(nodes[v].dist, Some(want[v]), "seed {seed} node {v}");
            }
            assert!(report.dropped_messages > 0, "faults actually fired");
            assert!(report.retransmissions > 0, "recovery actually worked");
        }
    }

    #[test]
    fn reliable_alpha_is_exactly_once_without_faults() {
        let g = path(&GenConfig::with_seed(10, 0));
        let plan = FaultPlan::new(0); // fault-free, but ARQ framing active
        let (nodes, report) =
            run_protocol_alpha_reliable(&g, bfs_nodes(10), 4, 2, &plan, 10_000).unwrap();
        let want = bfs_distances(&g, kdom_graph::NodeId(0));
        for v in 0..10 {
            assert_eq!(nodes[v].dist, Some(want[v]));
        }
        assert_eq!(report.dropped_messages, 0);
    }

    #[test]
    fn crash_at_pulse_zero_degrades_topology() {
        // path 0-1-2-3-4-5: node 5 never starts; survivors complete BFS
        let g = path(&GenConfig::with_seed(6, 0));
        let plan = FaultPlan::new(9).crash(kdom_graph::NodeId(5), 0);
        let (nodes, _) =
            run_protocol_alpha_reliable(&g, bfs_nodes(6), 2, 3, &plan, 10_000).unwrap();
        for (v, node) in nodes.iter().enumerate().take(5) {
            assert_eq!(node.dist, Some(v as u32), "survivor {v}");
        }
        assert_eq!(nodes[5].dist, None, "crashed node learned nothing");
    }

    #[test]
    fn mid_run_crash_does_not_wedge_neighbors() {
        // star center crashes at pulse 2: leaves already have distances
        // (assigned at pulse 1) and the run terminates cleanly
        let g = kdom_graph::generators::star(&GenConfig::with_seed(8, 0));
        let plan = FaultPlan::new(1).crash(kdom_graph::NodeId(0), 2);
        let (nodes, _) =
            run_protocol_alpha_reliable(&g, bfs_nodes(8), 3, 2, &plan, 10_000).unwrap();
        assert_eq!(nodes[0].dist, Some(0));
        for (v, node) in nodes.iter().enumerate().skip(1) {
            assert_eq!(node.dist, Some(1), "leaf {v}");
        }
    }

    #[test]
    fn faulty_alpha_is_deterministic() {
        let g = gnp_connected(&GenConfig::with_seed(25, 1), 0.15);
        let plan = FaultPlan::new(3).drop_prob(0.2).dup_prob(0.05);
        let (na, a) = run_protocol_alpha_reliable(&g, bfs_nodes(25), 6, 3, &plan, 10_000).unwrap();
        let (nb, b) = run_protocol_alpha_reliable(&g, bfs_nodes(25), 6, 3, &plan, 10_000).unwrap();
        assert_eq!(a, b, "identical (plan, seed) ⇒ identical reports");
        for v in 0..25 {
            assert_eq!(na[v].dist, nb[v].dist);
        }
    }

    #[test]
    fn alpha_wire_and_frame_round_trip() {
        let wires: Vec<AlphaWire<Dist>> = vec![
            AlphaWire::Payload {
                pulse: 7,
                msg: Dist(41),
            },
            AlphaWire::Ack { pulse: 0 },
            AlphaWire::Safe {
                pulse: (1 << 48) - 1,
            },
        ];
        for w in &wires {
            crate::wire::round_trip(w).unwrap();
        }
        // pulse tag + optional ARQ framing is priced on the wire
        assert_eq!(wires[1].encoded_bits(), 50);
        assert_eq!(wires[0].encoded_bits(), 50 + Dist(41).encoded_bits());
        let frames: Vec<Frame<Dist>> = vec![
            Frame::Raw(wires[0].clone()),
            Frame::Data {
                seq: 3,
                wire: wires[2].clone(),
            },
            Frame::LinkAck { seq: 9 },
            Frame::Down,
        ];
        for f in &frames {
            crate::wire::round_trip(f).unwrap();
        }
        assert_eq!(frames[3].encoded_bits(), 2);
        assert_eq!(frames[2].encoded_bits(), 50);
        assert_eq!(frames[1].encoded_bits(), 50 + wires[2].encoded_bits());
    }

    #[test]
    fn wire_exact_alpha_matches_default_run() {
        let g = gnp_connected(&GenConfig::with_seed(20, 5), 0.2);
        let plan = FaultPlan::new(11).drop_prob(0.15).dup_prob(0.05);
        let run = |exact: bool| {
            let cfg = ReliableConfig::for_delays(3, plan.max_extra_delay);
            let mut sim = AlphaSimulator::with_faults(&g, bfs_nodes(20), 9, 3, &plan)
                .reliable(cfg)
                .wire_exact(exact);
            let report = sim.run(10_000).unwrap();
            (sim.into_nodes(), report)
        };
        let (na, a) = run(false);
        let (nb, b) = run(true);
        assert_eq!(a, b, "wire-exact execution must not perturb the run");
        assert!(a.payload_bits > 0 && a.control_bits > 0);
        for v in 0..20 {
            assert_eq!(na[v].dist, nb[v].dist);
        }
    }
}
