//! The shared round engine behind both executors.
//!
//! [`Simulator`](crate::Simulator) (synchronous lockstep) and
//! [`AlphaSimulator`](crate::AlphaSimulator) (synchronizer α) used to carry
//! their own copies of the round machinery — context construction, outbox
//! handling, reverse-port delivery. This module owns that machinery once,
//! rebuilt around four ideas:
//!
//! 1. **Wake-driven active sets.** Instead of scanning all `n` automata
//!    every round, the engine steps only nodes that received a message,
//!    declared [`Wake::EveryRound`], or whose [`Wake::At`] timer is due.
//!    This relies on the [`Protocol`] contract ([`Protocol::next_wake`]):
//!    between its declared wakes, a node with an empty inbox does nothing.
//!    When the active fraction exceeds [`EngineConfig::dense_pct`] the
//!    scheduler falls back to a dense `0..n` scan — cheaper than merging
//!    near-full lists. [`Scheduling::FullScan`] restores the historical
//!    scan-everything behaviour; all schedules produce byte-identical runs
//!    for contract-abiding protocols.
//!
//! 2. **Quiescence fast-forward.** The engine tracks in-flight message
//!    copies, ticking nodes, timer wakes (a lazily-invalidated
//!    [`TimerHeap`] from the shared [`events`](crate::events) core),
//!    and the fault plan's crash schedule. When no message is queued and
//!    no node ticks, every round up to the next timer/crash event is
//!    provably empty — [`RoundEngine::fast_forward`] advances the round
//!    counter there in O(1). An empty round touches nothing but the
//!    counter, so all [`RunReport`]/`StallReport` fields stay
//!    byte-identical to the unskipped execution. (The α executor needs no
//!    analogue: it is event-driven, so its virtual clock already jumps to
//!    the next delivery.)
//!
//! 3. **A flat double-buffered message arena with packed staging.**
//!    Inboxes are CSR-style slots indexed by `(node, port)` — one
//!    `Option<(msg, copies)>` per edge direction, where `copies` refcounts
//!    fault-injected duplicates of the same CONGEST message instead of
//!    deep-cloning them. Sends are staged as packed `u64` metadata words
//!    (`sender | port | size_bits`) alongside a message slab, so the
//!    sequential merge reads `size_bits` as a field and replays indices,
//!    not messages. `Outbox` slabs are pooled per worker; steady-state
//!    rounds allocate nothing.
//!
//! 4. **A deterministically parallel compute *and merge* phase.** With
//!    [`EngineConfig::threads`] > 1 the active list is split into
//!    contiguous node shards and executed under [`std::thread::scope`] —
//!    but only when each shard gets at least [`EngineConfig::shard_min`]
//!    active nodes (spawn overhead dominates tiny rounds). In the
//!    fault-free, untraced common case the merge is **destination-
//!    sharded**: while computing, each worker buckets its staged sends by
//!    the destination's shard; the buckets are exchanged over persistent
//!    channels, and each worker then delivers — in parallel — only into
//!    the inbox slots of its own node range. No worker ever touches
//!    another worker's arena slice, every `(receiver, port)` slot has
//!    exactly one writer, and all counters are order-independent sums, so
//!    a parallel run is **byte-identical** to a single-threaded one: same
//!    outputs, same [`RunReport`]. (The old design funnelled every round
//!    through a single sequential merge on the caller's thread, which is
//!    why `active-set-4t` used to *lose* to 1t: the merge serialised the
//!    per-message work that dominates dense rounds.) When a fault
//!    injector or a trace sink needs globally ordered per-message
//!    effects — the RNG stream, `send` events — the engine falls back to
//!    that sequential merge, which replays staged sends in ascending
//!    node order, the exact order the single-threaded loop produces, so
//!    traced and fault-injected runs remain byte-identical across thread
//!    counts too. Wire-exact mode (the default) rides the bucketed merge:
//!    each worker round-trips its own staged frames through a reused
//!    [`CodecScratch`](crate::wire::CodecScratch) at staging time —
//!    verification is per-message-local, so it needs no global order —
//!    and stages the *decoded* message. After an error
//!    ([`SimError::CongestViolation`] / [`SimError::BrokenTopology`] /
//!    [`SimError::WireMismatch`]) the reported counters still match the
//!    sequential run (the bucketed path detects all three conditions
//!    during compute and re-sorts the buckets to replay the sequential
//!    cut-off exactly), but node automata beyond the failing node are in
//!    an unspecified state (they may have executed the failing round);
//!    errors abort the run, so no caller observes that state through the
//!    public API.
//!
//! Configuration comes from [`EngineConfig`], which the convenience
//! runners fill from the environment: `KDOM_THREADS`, `KDOM_SCHED`,
//! `KDOM_FASTFWD`, `KDOM_DENSE_PCT`, and `KDOM_SHARD_MIN`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::time::Instant;

use kdom_graph::graph::{Graph, NodeId};

use crate::events::TimerHeap;
use crate::faults::{apply_churn, ChurnError, ChurnRemap, FaultInjector, FaultPlan};
use crate::report::RunReport;
use crate::sim::{Message, NodeCtx, Outbox, Port, Protocol, SimError, StallReport, Wake};
use crate::trace::{TraceEvent, TraceSink};
use crate::wire::CodecScratch;

/// Execution knobs of the round engine: worker threads, scheduling,
/// fast-forward, and the adaptive thresholds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EngineConfig {
    /// Worker threads for the compute phase. `1` runs everything inline
    /// on the calling thread (no spawns); higher values shard the active
    /// set. Results are byte-identical either way.
    pub threads: usize,
    /// Which nodes are stepped each round.
    pub scheduling: Scheduling,
    /// Skip provably-empty rounds in O(1) (see [`RoundEngine::fast_forward`]).
    /// On by default; `KDOM_FASTFWD=0` disables it. No effect under
    /// [`Scheduling::FullScan`], which promises to step every node every
    /// round.
    pub fast_forward: bool,
    /// Active-fraction percentage at which [`Scheduling::ActiveSet`] falls
    /// back to a dense `0..n` scan instead of merging near-full lists.
    /// `0` forces the dense scan every round; values above 300 can never
    /// trigger (the merged estimate counts each node at most thrice).
    pub dense_pct: usize,
    /// Minimum active nodes per worker shard before the compute phase
    /// splits across threads; below `threads * shard_min` active nodes
    /// fewer (or no) workers are spawned.
    pub shard_min: usize,
    /// Debug-build CONGEST budget: when set, every staged message asserts
    /// `size_bits() <= bit_budget` (see [`crate::congest_budget`]).
    /// Release builds ignore it.
    pub bit_budget: Option<u64>,
    /// Wire-exact execution: encode every message to its bit frame at
    /// send and deliver the *decoded* frame (a decode failure — or, in
    /// debug builds and the sequential merge, any round-trip mismatch —
    /// aborts with [`SimError::WireMismatch`]). Proves the automata
    /// depend only on what is actually on the wire; reports are
    /// byte-identical to the zero-copy path. **On by default** since the
    /// branchless codec made it nearly free; `KDOM_WIRE=off` restores
    /// the zero-copy path.
    pub wire_exact: bool,
    /// Accumulate wall-clock spent in the wire codec (wire-exact mode's
    /// per-send encode+decode transcodes), readable via
    /// [`RoundEngine::codec_stats`]. Off by default — the hot path then
    /// carries no timer calls. Never part of [`RunReport`], so reports
    /// stay byte-identical whether or not profiling ran.
    pub codec_profile: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            threads: 1,
            scheduling: Scheduling::ActiveSet,
            fast_forward: true,
            dense_pct: 75,
            shard_min: 1024,
            bit_budget: None,
            wire_exact: true,
            codec_profile: false,
        }
    }
}

impl EngineConfig {
    /// Reads the configuration from the environment:
    ///
    /// - `KDOM_THREADS`: worker count in `1..=256`;
    /// - `KDOM_SCHED`: `full`/`full-scan`/`fullscan` for
    ///   [`Scheduling::FullScan`], `active`/`active-set`/`activeset` for
    ///   [`Scheduling::ActiveSet`] (the default when unset);
    /// - `KDOM_FASTFWD`: `0`/`off`/`false`/`no` disables fast-forward,
    ///   `1`/`on`/`true`/`yes` keeps it on (the default when unset);
    /// - `KDOM_DENSE_PCT`: dense-scan fallback threshold in `0..=300`
    ///   percent (the merged estimate counts each node at most thrice, so
    ///   larger values could never trigger);
    /// - `KDOM_SHARD_MIN`: minimum active nodes per worker shard, at
    ///   least 1;
    /// - `KDOM_WIRE`: `off` (or `0`/`false`/`no`/`zero-copy`) disables
    ///   wire-exact execution, `exact` (or `1`/`on`/`true`/`yes`/
    ///   `wire-exact`) keeps the wire-exact default.
    ///
    /// # Panics
    ///
    /// Panics, naming the variable and the offending value, when a knob
    /// is set but malformed or out of range (via
    /// [`kdom_graph::knob`]) — a typo'd knob must not silently run the
    /// default configuration.
    pub fn from_env() -> Self {
        use kdom_graph::knob::{knob_checked, knob_enum};
        let defaults = EngineConfig::default();
        let threads = knob_checked("KDOM_THREADS", 1usize, |&t| {
            if (1..=256).contains(&t) {
                Ok(())
            } else {
                Err("worker count must be in 1..=256".into())
            }
        });
        let scheduling = knob_enum(
            "KDOM_SCHED",
            Scheduling::ActiveSet,
            &[
                (&["full", "full-scan", "fullscan"], Scheduling::FullScan),
                (
                    &["active", "active-set", "activeset"],
                    Scheduling::ActiveSet,
                ),
            ],
        );
        let fast_forward = knob_enum(
            "KDOM_FASTFWD",
            true,
            &[
                (&["0", "off", "false", "no"], false),
                (&["1", "on", "true", "yes"], true),
            ],
        );
        let dense_pct = knob_checked("KDOM_DENSE_PCT", defaults.dense_pct, |&p| {
            if p <= 300 {
                Ok(())
            } else {
                Err("dense-scan threshold above 300% can never trigger".into())
            }
        });
        let shard_min = knob_checked("KDOM_SHARD_MIN", defaults.shard_min, |&m| {
            if m >= 1 {
                Ok(())
            } else {
                Err("shard size must be at least 1".into())
            }
        });
        let wire_exact = knob_enum(
            "KDOM_WIRE",
            true,
            &[
                (&["off", "0", "false", "no", "zero-copy"], false),
                (&["exact", "1", "on", "true", "yes", "wire-exact"], true),
            ],
        );
        EngineConfig {
            threads,
            scheduling,
            fast_forward,
            dense_pct,
            shard_min,
            bit_budget: None,
            wire_exact,
            codec_profile: false,
        }
    }

    /// Returns the config with the worker count replaced.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Returns the config with the scheduling policy replaced.
    pub fn with_scheduling(mut self, scheduling: Scheduling) -> Self {
        self.scheduling = scheduling;
        self
    }

    /// Returns the config with quiescence fast-forward enabled or not.
    pub fn with_fast_forward(mut self, on: bool) -> Self {
        self.fast_forward = on;
        self
    }

    /// Returns the config with the dense-scan threshold replaced.
    pub fn with_dense_pct(mut self, pct: usize) -> Self {
        self.dense_pct = pct;
        self
    }

    /// Returns the config with the minimum shard size replaced.
    pub fn with_shard_min(mut self, shard_min: usize) -> Self {
        self.shard_min = shard_min.max(1);
        self
    }

    /// Returns the config with a debug-build CONGEST bit budget.
    pub fn with_bit_budget(mut self, bits: u64) -> Self {
        self.bit_budget = Some(bits);
        self
    }

    /// Returns the config with wire-exact execution enabled or not.
    pub fn with_wire_exact(mut self, on: bool) -> Self {
        self.wire_exact = on;
        self
    }

    /// Returns the config with codec wall-clock profiling enabled or not.
    pub fn with_codec_profile(mut self, on: bool) -> Self {
        self.codec_profile = on;
        self
    }
}

/// Node-scheduling policy of the engine.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Scheduling {
    /// Step every automaton every round (the historical behaviour).
    FullScan,
    /// Step only automata that received a message or whose declared
    /// [`Wake`] is due, with a dense-scan fallback above
    /// [`EngineConfig::dense_pct`].
    #[default]
    ActiveSet,
}

/// Precomputes, for every `(node, port)`, the port the same edge occupies
/// at the other endpoint (`None` marks a corrupted, asymmetric topology).
pub(crate) fn reverse_port_table(graph: &Graph) -> Vec<Vec<Option<Port>>> {
    (0..graph.node_count())
        .map(|v| {
            graph
                .neighbors(NodeId(v))
                .iter()
                .map(|arc| {
                    graph
                        .neighbors(arc.to)
                        .iter()
                        .position(|a| a.edge == arc.edge)
                        .map(Port)
                })
                .collect()
        })
        .collect()
}

/// Runs one synchronous protocol round for node `v`: builds the context,
/// recycles `outbox_buf` into a fresh [`Outbox`], executes
/// [`Protocol::round`], and leaves the sends in `outbox_buf` (one
/// optional message per port). Returns the port of the first CONGEST
/// violation, if the node double-sent.
///
/// Both executors call this — it is the single place a protocol's round
/// function runs.
pub(crate) fn execute_node_round<P: Protocol>(
    graph: &Graph,
    ids: &[u64],
    v: usize,
    round: u64,
    node: &mut P,
    inbox: &[(Port, P::Msg)],
    outbox_buf: &mut Vec<Option<P::Msg>>,
) -> Option<Port> {
    let ctx = NodeCtx::new(NodeId(v), ids[v], round, graph.neighbors(NodeId(v)), ids);
    let mut out = Outbox::recycle(std::mem::take(outbox_buf), ctx.degree());
    node.round(&ctx, inbox, &mut out);
    let violation = out.violation();
    *outbox_buf = out.into_slots();
    violation
}

/// Hands `item` to `deliver` once per tag in `tags`, cloning for every
/// copy but the last (the common single-copy case moves without cloning).
pub(crate) fn fan_out<T: Clone, E>(tags: Vec<E>, item: T, mut deliver: impl FnMut(E, T)) {
    let n = tags.len();
    let mut item = Some(item);
    for (i, tag) in tags.into_iter().enumerate() {
        let it = if i + 1 == n {
            item.take().expect("one item per fan-out")
        } else {
            item.clone().expect("one item per fan-out")
        };
        deliver(tag, it);
    }
}

/// One arena slot: the message queued on an edge direction plus the
/// number of identical copies the fault injector delivered — duplicates
/// are refcounted here, not deep-cloned.
type Slot<M> = Option<(M, u32)>;

/// Width of the packed `size_bits` field in a staged-send metadata word.
/// The maximum value doubles as a "recompute at merge" sentinel for the
/// rare message wider than 2^20 - 1 bits.
const META_BITS: u64 = (1 << 20) - 1;

/// Packs one staged send into a metadata word:
/// `sender (24 bits) | port (20 bits) | size_bits (20 bits)`.
/// Capacity limits are asserted once at engine construction.
#[inline]
fn pack_meta(sender: u32, port: usize, size_bits: u64) -> u64 {
    (u64::from(sender) << 40) | ((port as u64) << 20) | size_bits.min(META_BITS)
}

/// One bucket of staged sends in flight between workers during the
/// destination-sharded merge: `(source shard, packed metadata, messages)`.
type BucketBatch<M> = (usize, Vec<u64>, Vec<M>);

/// Persistent channels for the destination-sharded merge: worker `d`
/// receives every shard's bucket for its node range on `rxs[d]`; row `s`
/// of `txs` holds worker `s`'s own clones of all senders. Created once
/// (sized by the configured thread count) and reused every round — the
/// bucket `Vec`s themselves are recycled through [`WorkerScratch`], so
/// steady-state rounds allocate nothing.
struct Exchange<M> {
    txs: Vec<Vec<mpsc::Sender<BucketBatch<M>>>>,
    rxs: Vec<mpsc::Receiver<BucketBatch<M>>>,
}

impl<M> Exchange<M> {
    fn new(workers: usize) -> Self {
        let (txs0, rxs): (Vec<_>, Vec<_>) = (0..workers).map(|_| mpsc::channel()).unzip();
        let txs = (0..workers).map(|_| txs0.clone()).collect();
        Exchange { txs, rxs }
    }
}

/// What a stepped node needs next, recorded by the compute phase and
/// applied to the schedule by the sequential merge.
#[derive(Clone, Copy, Debug)]
enum NodeOutcome {
    /// Crashed: never scheduled by timer again (arrivals still reach it,
    /// and are lost there).
    Crashed,
    /// `is_done()`: unscheduled until a message arrives.
    Done,
    /// Not done and ticking: step it next round.
    Tick,
    /// Not done, acts only on messages.
    Sleep,
    /// Not done, timer-armed for the given future round (> now + 1).
    Park(u64),
}

/// Per-worker reusable state: the materialised inbox, the pooled outbox
/// slab, the packed staged-send slab, and the shard's contribution to the
/// next round's schedule.
struct WorkerScratch<M> {
    inbox: Vec<(Port, M)>,
    outbox: Vec<Option<M>>,
    /// Packed metadata per staged send (see [`pack_meta`]), in the
    /// shard's (ascending-node) execution order.
    staged_meta: Vec<u64>,
    /// The staged messages, aligned index-for-index with `staged_meta`.
    staged_msgs: Vec<M>,
    /// `(node, outcome)` for every node this shard executed.
    sched: Vec<(u32, NodeOutcome)>,
    /// Queued copies consumed by crashed nodes this round.
    crash_lost: u64,
    /// First CONGEST violation in this shard, by node order.
    violation: Option<(u32, Port)>,
    /// Bucketed mode: staged sends grouped by destination shard,
    /// `(packed metadata, messages)` per destination.
    buckets: Vec<(Vec<u64>, Vec<M>)>,
    /// Bucketed mode: the batches this worker received, indexed by
    /// source shard; their capacity is recycled into `buckets`.
    incoming: Vec<(Vec<u64>, Vec<M>)>,
    /// Bucketed mode: nodes in this worker's destination range that
    /// received their first message this round.
    dest_receivers: Vec<u32>,
    /// Bucketed mode: messages this shard staged.
    sent_msgs: u64,
    /// Bucketed mode: total bits this shard staged (true widths, not
    /// the packed-field cap).
    sent_bits: u64,
    /// Bucketed mode: widest message this shard staged, in bits.
    max_bits: u64,
    /// Bucketed mode: copies this worker delivered into its range.
    delivered: u64,
    /// Bucketed mode: first asymmetric-topology send in this shard, by
    /// node order (checked during compute so delivery can't index with
    /// a missing reverse port).
    broken: Option<(u32, Port)>,
    /// Reused wire-codec buffers for wire-exact round trips; staging
    /// allocates nothing per frame.
    codec: CodecScratch,
    /// Bucketed wire-exact: a round trip failed in this shard. The
    /// sequential fallback replays every frame in global order so the
    /// mismatch surfaces at its exact sequential position.
    wire_bad: bool,
    /// Nanoseconds this shard spent in codec round trips (only
    /// accumulated under [`EngineConfig::codec_profile`]).
    codec_ns: u64,
    /// Round trips this shard performed (only under profiling).
    codec_msgs: u64,
}

impl<M> Default for WorkerScratch<M> {
    fn default() -> Self {
        WorkerScratch {
            inbox: Vec::new(),
            outbox: Vec::new(),
            staged_meta: Vec::new(),
            staged_msgs: Vec::new(),
            sched: Vec::new(),
            crash_lost: 0,
            violation: None,
            buckets: Vec::new(),
            incoming: Vec::new(),
            dest_receivers: Vec::new(),
            sent_msgs: 0,
            sent_bits: 0,
            max_bits: 0,
            delivered: 0,
            broken: None,
            codec: CodecScratch::new(),
            wire_bad: false,
            codec_ns: 0,
            codec_msgs: 0,
        }
    }
}

/// Executes the active nodes of one contiguous shard. `nodes` and
/// `slots` are the shard's windows into the automata array and the
/// inbox arena; `node_base`/`slot_base` translate global indices into
/// them. Purely local: all cross-node effects are staged in `scratch`.
///
/// With `track_wakes` false (full-scan, which steps everyone anyway)
/// the per-node [`Protocol::next_wake`] query is skipped and `sched`
/// records only done-status *transitions* against the read-only
/// `done_flag` snapshot, keeping the sequential schedule merge O(changes)
/// instead of O(active).
/// With `bucketed` true (the destination-sharded merge) sends go into
/// `scratch.buckets`, keyed by which entry of `dest_bounds` — the
/// destination shards' node-range boundaries, `len = shards + 1` —
/// contains the receiving node; reverse-port asymmetry is detected here
/// (recorded in `scratch.broken`) so the parallel delivery never has to.
/// With `wire_exact` additionally true, each staged frame is
/// transcoded through the shard's [`CodecScratch`] *here* — the check
/// is per-message-local, so the bucketed merge keeps its order-freedom
/// — and the **decoded** message is what gets staged, with the bit
/// count taken from the same encode; a decode failure sets
/// `scratch.wire_bad`, stages the original, and the sequential
/// fallback (or [`RoundEngine::merge_staged`]'s full replay) re-derives
/// the error in global replay order. The caller passes `wire_exact`
/// as false when a fault injector or trace sink is attached: those
/// runs take the sequential merge, which performs the round trip
/// itself in exact replay order.
#[allow(clippy::too_many_arguments)]
fn run_shard<P: Protocol>(
    graph: &Graph,
    ids: &[u64],
    off: &[usize],
    rev_port: &[usize],
    injector: Option<&FaultInjector>,
    round: u64,
    bit_budget: Option<u64>,
    wire_exact: bool,
    codec_profile: bool,
    track_wakes: bool,
    done_flag: &[bool],
    active: &[u32],
    node_base: usize,
    nodes: &mut [P],
    slot_base: usize,
    slots: &mut [Slot<P::Msg>],
    bucketed: bool,
    dest_bounds: &[u32],
    scratch: &mut WorkerScratch<P::Msg>,
) {
    scratch.staged_meta.clear();
    scratch.staged_msgs.clear();
    scratch.sched.clear();
    scratch.crash_lost = 0;
    scratch.violation = None;
    scratch.sent_msgs = 0;
    scratch.sent_bits = 0;
    scratch.max_bits = 0;
    scratch.broken = None;
    scratch.wire_bad = false;
    if bucketed {
        let shards = dest_bounds.len() - 1;
        if scratch.buckets.len() < shards {
            scratch.buckets.resize_with(shards, Default::default);
        }
        if scratch.incoming.len() < shards {
            scratch.incoming.resize_with(shards, Default::default);
        }
        for (meta, msgs) in &mut scratch.buckets[..shards] {
            meta.clear();
            msgs.clear();
        }
    }
    for &v32 in active {
        let v = v32 as usize;
        let deg = graph.degree(NodeId(v));
        let s0 = off[v] - slot_base;
        if injector.is_some_and(|inj| inj.is_crashed(NodeId(v), round)) {
            // a crashed node consumes nothing and sends nothing; its
            // queued arrivals are lost
            for slot in &mut slots[s0..s0 + deg] {
                if let Some((_, copies)) = slot.take() {
                    scratch.crash_lost += u64::from(copies);
                }
            }
            if track_wakes {
                scratch.sched.push((v32, NodeOutcome::Crashed));
            }
            continue;
        }
        scratch.inbox.clear();
        for (p, slot) in slots[s0..s0 + deg].iter_mut().enumerate() {
            if let Some((msg, copies)) = slot.take() {
                for _ in 1..copies {
                    scratch.inbox.push((Port(p), msg.clone()));
                }
                scratch.inbox.push((Port(p), msg));
            }
        }
        let node = &mut nodes[v - node_base];
        let violation = execute_node_round(
            graph,
            ids,
            v,
            round,
            node,
            &scratch.inbox,
            &mut scratch.outbox,
        );
        if let Some(port) = violation {
            if scratch.violation.is_none() {
                scratch.violation = Some((v32, port));
            }
        }
        let arcs = graph.neighbors(NodeId(v));
        for (p, slot) in scratch.outbox.iter_mut().enumerate() {
            if let Some(msg) = slot.take() {
                // Wire-exact: what gets staged is the *decoded* frame,
                // so delivery hands the automaton exactly the bits that
                // were on the wire. The encode that produces those bits
                // doubles as the accounting pass — no separate
                // `size_bits` walk on this path.
                let (msg, bits) = if wire_exact {
                    let t0 = codec_profile.then(Instant::now);
                    let tripped = scratch.codec.transcode(&msg);
                    if let Some(t0) = t0 {
                        scratch.codec_ns += t0.elapsed().as_nanos() as u64;
                        scratch.codec_msgs += 1;
                    }
                    match tripped {
                        Ok(pair) => pair,
                        Err(_) => {
                            // stage the original: the sequential
                            // fallback replays every frame in global
                            // order and re-derives the error there
                            scratch.wire_bad = true;
                            let bits = msg.size_bits();
                            (msg, bits)
                        }
                    }
                } else {
                    let bits = msg.size_bits();
                    (msg, bits)
                };
                #[cfg(debug_assertions)]
                if let Some(budget) = bit_budget {
                    assert!(
                        bits <= budget,
                        "CONGEST budget exceeded: node {v} sent {bits} bits on port {p} \
                         in round {round} (budget {budget})",
                    );
                }
                #[cfg(not(debug_assertions))]
                let _ = bit_budget;
                if bucketed {
                    if rev_port[off[v] + p] == usize::MAX && scratch.broken.is_none() {
                        scratch.broken = Some((v32, Port(p)));
                    }
                    let to = arcs[p].to.0 as u32;
                    let d = dest_bounds.partition_point(|&b| b <= to) - 1;
                    let (meta, msgs) = &mut scratch.buckets[d];
                    meta.push(pack_meta(v32, p, bits));
                    msgs.push(msg);
                    scratch.sent_msgs += 1;
                    scratch.sent_bits += bits;
                    scratch.max_bits = scratch.max_bits.max(bits);
                } else {
                    scratch.staged_meta.push(pack_meta(v32, p, bits));
                    scratch.staged_msgs.push(msg);
                }
            }
        }
        let now_done = node.is_done();
        if track_wakes {
            let outcome = if now_done {
                NodeOutcome::Done
            } else {
                match node.next_wake(round) {
                    Wake::EveryRound => NodeOutcome::Tick,
                    Wake::OnMessage => NodeOutcome::Sleep,
                    Wake::At(r) if r > round + 1 => NodeOutcome::Park(r),
                    Wake::At(_) => NodeOutcome::Tick,
                }
            };
            scratch.sched.push((v32, outcome));
        } else if now_done != done_flag[v] {
            let outcome = if now_done {
                NodeOutcome::Done
            } else {
                NodeOutcome::Tick // un-done: re-count toward quiescence
            };
            scratch.sched.push((v32, outcome));
        }
    }
}

/// The engine proper: owns the automata, the arena, the schedule
/// bookkeeping, and the accounting shared by every execution mode.
pub(crate) struct RoundEngine<'g, P: Protocol> {
    graph: &'g Graph,
    config: EngineConfig,
    nodes: Vec<P>,
    /// Application-level node ids, hoisted out of the round loop.
    ids: Vec<u64>,
    /// `rev_port[off[v] + p]`: the port of the edge `(v, p)` at its
    /// other endpoint, flattened CSR-style so delivery is O(1) per
    /// message with no nested indirection. `usize::MAX` marks a
    /// corrupted, asymmetric topology.
    rev_port: Vec<usize>,
    /// CSR offsets: node `v`'s arena slots are `off[v]..off[v + 1]`.
    off: Vec<usize>,
    /// Arena being consumed this round (last round's deliveries).
    inbox: Vec<Slot<P::Msg>>,
    /// Arena receiving this round's sends (next round's inbox).
    pending: Vec<Slot<P::Msg>>,
    /// Message copies queued in `pending`.
    pending_count: u64,
    /// Epoch stamps marking nodes already in `receivers` this round.
    recv_mark: Vec<u64>,
    /// Nodes with queued messages in `pending`, in delivery order
    /// (sorted on demand when the active list is merged).
    receivers: Vec<u32>,
    /// Not-done nodes that asked to tick next round, sorted.
    ticking: Vec<u32>,
    /// Per-node one-shot timers: the authoritative `wake_at` table plus
    /// the lazily-invalidated parked heap, both owned by the shared
    /// event core (see [`crate::events`]).
    timers: TimerHeap,
    /// Scratch: valid timers due this round.
    due: Vec<u32>,
    /// Scratch for the three-way active-list merge.
    merged: Vec<u32>,
    /// Scratch for the current round's active list.
    active: Vec<u32>,
    /// `!is_done()` per node, as of its last execution.
    done_flag: Vec<bool>,
    /// Count of not-done nodes not yet excused by a crash — quiescence
    /// in O(1).
    live_undone: usize,
    /// The fault plan's crash schedule, sorted by `(round, node)`, with
    /// a cursor over the events already applied to `live_undone`.
    crash_events: Vec<(u64, u32)>,
    crash_cursor: usize,
    scratch: Vec<WorkerScratch<P::Msg>>,
    /// The first step visits every node regardless of schedule, matching
    /// the historical round-0 behaviour.
    first_step: bool,
    round: u64,
    report: RunReport,
    injector: Option<FaultInjector>,
    last_activity: u64,
    /// Messages lost in the inboxes of crashed nodes (counted separately
    /// from the injector's link-level drops).
    crash_lost: u64,
    /// Evidence stream; `None` (the default) makes every emission site a
    /// single never-taken branch.
    trace: Option<Box<dyn TraceSink>>,
    /// Fast-forward jumps taken so far (kept even without a sink — the
    /// bench harness surfaces them).
    ff_jumps: u64,
    /// Rounds skipped by fast-forward so far.
    ff_skipped: u64,
    /// Fixed memory footprint in bytes (graph CSR, double-buffered
    /// arenas, tables, automata), computed once at construction from
    /// logical lengths and type sizes — deterministic across thread
    /// counts and schedulers.
    fixed_mem: u64,
    /// Sends staged in the last executed round (all shards), feeding the
    /// peak-memory high-water mark.
    round_staged: u64,
    /// Node-range boundaries of the destination shards for the bucketed
    /// merge (`len = shards + 1`), rebuilt each sharded round.
    dest_bounds: Vec<u32>,
    /// Persistent cross-worker channels for the bucketed merge, created
    /// on the first multi-shard round.
    exchange: Option<Exchange<P::Msg>>,
    /// Reused wire-codec buffers for the sequential merge's wire-exact
    /// round trips (workers carry their own in [`WorkerScratch`]).
    codec: CodecScratch,
    /// Codec nanoseconds spent in the sequential merge (profiling only;
    /// worker shards accumulate theirs in scratch).
    codec_ns: u64,
    /// Codec round trips performed in the sequential merge (profiling
    /// only).
    codec_msgs: u64,
}

impl<'g, P: Protocol> RoundEngine<'g, P> {
    /// Bytes one staged send occupies: the packed metadata word plus its
    /// message slab slot. Defined from type sizes so the peak-memory
    /// figure is identical whichever merge path ran.
    const STAGED_BYTES: u64 = 8 + std::mem::size_of::<P::Msg>() as u64;

    /// Creates an engine with one automaton per node.
    ///
    /// # Panics
    ///
    /// Panics if `nodes.len() != graph.node_count()`, if the graph
    /// exceeds the packed-metadata capacity (2^24 nodes, 2^20 ports per
    /// node), or if a node starts beyond a scheduled crash.
    pub fn new(
        graph: &'g Graph,
        nodes: Vec<P>,
        config: EngineConfig,
        injector: Option<FaultInjector>,
    ) -> Self {
        assert_eq!(
            nodes.len(),
            graph.node_count(),
            "one automaton per node required"
        );
        let n = graph.node_count();
        assert!(n <= 1 << 24, "packed staging supports up to 2^24 nodes");
        let ids: Vec<u64> = (0..n).map(|v| graph.id_of(NodeId(v))).collect();
        let mut off = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        off.push(0);
        for v in 0..n {
            let deg = graph.degree(NodeId(v));
            assert!(deg < 1 << 20, "packed staging supports degrees below 2^20");
            acc += deg;
            off.push(acc);
        }
        let mut rev_port = vec![usize::MAX; acc];
        for v in 0..n {
            for (p, arc) in graph.neighbors(NodeId(v)).iter().enumerate() {
                if let Some(rp) = graph
                    .neighbors(arc.to)
                    .iter()
                    .position(|a| a.edge == arc.edge)
                {
                    rev_port[off[v] + p] = rp;
                }
            }
        }
        // The run's fixed footprint, from logical lengths and type sizes
        // (not allocator capacities, which scheduling could perturb): the
        // graph CSR, the ids, the offset and reverse-port tables, both
        // message arenas, the per-node schedule state (wake_at 8 +
        // recv_mark 8 + done_flag 1 bytes), and the automata themselves.
        let usize_b = std::mem::size_of::<usize>() as u64;
        let fixed_mem = graph.memory_bytes()
            + (n as u64) * 8
            + ((n + 1) as u64 + acc as u64) * usize_b
            + 2 * (acc as u64) * std::mem::size_of::<Slot<P::Msg>>() as u64
            + (n as u64) * 17
            + (n as u64) * std::mem::size_of::<P>() as u64;
        let done_flag: Vec<bool> = nodes.iter().map(Protocol::is_done).collect();
        let live_undone = done_flag.iter().filter(|&&d| !d).count();
        let crash_events = injector
            .as_ref()
            .map(FaultInjector::crash_schedule)
            .unwrap_or_default();
        let mut engine = RoundEngine {
            graph,
            config,
            nodes,
            ids,
            rev_port,
            off,
            inbox: (0..acc).map(|_| None).collect(),
            pending: (0..acc).map(|_| None).collect(),
            pending_count: 0,
            recv_mark: vec![0; n],
            receivers: Vec::new(),
            ticking: Vec::new(),
            timers: TimerHeap::new(n),
            due: Vec::new(),
            merged: Vec::new(),
            active: Vec::new(),
            done_flag,
            live_undone,
            crash_events,
            crash_cursor: 0,
            scratch: Vec::new(),
            first_step: true,
            round: 0,
            report: RunReport {
                peak_memory_bytes: fixed_mem,
                ..RunReport::default()
            },
            injector,
            last_activity: 0,
            crash_lost: 0,
            trace: None,
            ff_jumps: 0,
            ff_skipped: 0,
            fixed_mem,
            round_staged: 0,
            dest_bounds: Vec::new(),
            exchange: None,
            codec: CodecScratch::new(),
            codec_ns: 0,
            codec_msgs: 0,
        };
        engine.advance_crash_epoch();
        engine.attach_trace(crate::trace::from_env());
        engine
    }

    /// Attaches an evidence sink and announces the run to it; `None` is
    /// a no-op (the environment default when `KDOM_TRACE` is unset).
    pub fn attach_trace(&mut self, sink: Option<Box<dyn TraceSink>>) {
        if let Some(mut t) = sink {
            t.event(&TraceEvent::RunStart {
                mode: "sync",
                nodes: self.graph.node_count(),
                edges: self.graph.edge_count(),
                bit_budget: self.config.bit_budget,
                fixed_mem: Some(self.fixed_mem),
            });
            self.trace = Some(t);
        }
    }

    /// Emits the final report to the trace stream and flushes it; called
    /// by the simulator when a run reaches quiescence.
    pub fn trace_run_end(&mut self) {
        if let Some(t) = self.trace.as_mut() {
            t.event(&TraceEvent::RunEnd {
                report: &self.report,
            });
            t.flush();
        }
    }

    /// `(jumps, skipped_rounds)` taken by quiescence fast-forward so far.
    pub fn fast_forward_stats(&self) -> (u64, u64) {
        (self.ff_jumps, self.ff_skipped)
    }

    /// `(nanoseconds, round_trips)` spent in the wire codec so far,
    /// summed over the sequential merge and every worker shard. All
    /// zeros unless [`EngineConfig::codec_profile`] is set (and then
    /// only wire-exact runs pay codec time).
    pub fn codec_stats(&self) -> (u64, u64) {
        let mut ns = self.codec_ns;
        let mut msgs = self.codec_msgs;
        for s in &self.scratch {
            ns += s.codec_ns;
            msgs += s.codec_msgs;
        }
        (ns, msgs)
    }

    pub fn nodes(&self) -> &[P] {
        &self.nodes
    }

    pub fn into_parts(self) -> (Vec<P>, RunReport) {
        (self.nodes, self.report)
    }

    pub fn report(&self) -> &RunReport {
        &self.report
    }

    pub fn round(&self) -> u64 {
        self.round
    }

    /// Whether every surviving node is done and no messages are queued.
    /// Crash excuses are evaluated at the *current* round (the crash
    /// cursor is advanced with it), so a node scheduled to crash later
    /// still counts as unfinished now.
    pub fn quiescent(&self) -> bool {
        self.pending_count == 0 && self.live_undone == 0
    }

    /// Applies every crash event scheduled at or before the current
    /// round: an unfinished node that crashes stops counting toward
    /// quiescence, and its timer (if any) is cancelled.
    fn advance_crash_epoch(&mut self) {
        while let Some(&(at, v)) = self.crash_events.get(self.crash_cursor) {
            if at > self.round {
                break;
            }
            self.crash_cursor += 1;
            if !self.done_flag[v as usize] {
                self.live_undone -= 1;
            }
            self.timers.cancel(v);
        }
    }

    /// Skips ahead over provably-empty rounds: when nothing is queued and
    /// no node ticks, every round before the next due timer, the next
    /// scheduled crash, or `limit` executes nothing — advance the round
    /// counter (and nothing else) straight there. A skipped round is
    /// byte-identical to stepping it: an empty step only increments the
    /// counter, so every report field, the fault-injector RNG, and all
    /// node states are untouched either way.
    ///
    /// No-ops under [`Scheduling::FullScan`] (which must step everyone),
    /// before the first step, or when disabled via the config.
    pub fn fast_forward(&mut self, limit: u64) {
        if !self.config.fast_forward
            || self.config.scheduling == Scheduling::FullScan
            || self.first_step
            || self.pending_count != 0
            || !self.ticking.is_empty()
        {
            return;
        }
        let mut target = limit;
        if let Some(wake) = self.timers.next_valid() {
            if wake <= self.round {
                return; // a timer is due: the next step is a real one
            }
            target = target.min(wake);
        }
        if let Some(&(at, _)) = self.crash_events.get(self.crash_cursor) {
            target = target.min(at);
        }
        if target <= self.round {
            return;
        }
        if let Some(t) = self.trace.as_mut() {
            t.event(&TraceEvent::FastForward {
                from: self.round,
                to: target,
            });
        }
        self.ff_jumps += 1;
        self.ff_skipped += target - self.round;
        self.round = target;
        self.report.rounds = target;
        self.advance_crash_epoch();
    }

    /// Snapshot of who is stuck: unfinished survivors, per-node queued
    /// message counts (copies included, read straight from the arena),
    /// and crash context.
    pub fn stall_report(&self) -> StallReport {
        let round = self.round;
        let is_crashed = |v: usize| {
            self.injector
                .as_ref()
                .is_some_and(|inj| inj.is_crashed(NodeId(v), round))
        };
        let mut pending: Vec<(NodeId, usize)> = self
            .receivers
            .iter()
            .map(|&v| (NodeId(v as usize), self.queued_at(v as usize)))
            .filter(|&(_, depth)| depth > 0)
            .collect();
        pending.sort_unstable_by_key(|&(v, _)| v.0);
        StallReport {
            not_done: (0..self.nodes.len())
                .filter(|&v| !self.done_flag[v] && !is_crashed(v))
                .map(NodeId)
                .collect(),
            pending,
            last_activity: self.last_activity,
            crashed: (0..self.nodes.len())
                .filter(|&v| is_crashed(v))
                .map(NodeId)
                .collect(),
            live: (0..self.nodes.len())
                .filter(|&v| !is_crashed(v))
                .map(NodeId)
                .collect(),
            stopped_at: round,
        }
    }

    /// Runs until quiescence or until the round counter reaches the
    /// `boundary` (whichever comes first), returning whether the engine
    /// is quiescent. This is the epoch driver's primitive: a churn epoch
    /// scheduled at round `r` cuts the run at exactly `r`, whatever the
    /// protocol was doing — fast-forward is bounded by the boundary so a
    /// jump never overshoots it.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::RoundLimitExceeded`] if `limit` rounds elapse
    /// before either the boundary or quiescence, and propagates every
    /// error of [`RoundEngine::step`].
    pub fn run_to(&mut self, boundary: u64, limit: u64) -> Result<bool, SimError> {
        loop {
            if self.quiescent() {
                return Ok(true);
            }
            self.fast_forward(boundary.min(limit));
            if self.quiescent() {
                return Ok(true);
            }
            if self.round >= boundary {
                return Ok(false);
            }
            if self.round >= limit {
                return Err(SimError::RoundLimitExceeded {
                    limit,
                    stall: self.stall_report(),
                });
            }
            self.step()?;
        }
    }

    /// Message copies queued for `v` in the pending arena.
    fn queued_at(&self, v: usize) -> usize {
        self.pending[self.off[v]..self.off[v + 1]]
            .iter()
            .filter_map(|s| s.as_ref().map(|&(_, copies)| copies as usize))
            .sum()
    }

    /// Rebuilds the per-node pending queues in the legacy
    /// `Vec<Vec<(Port, Msg)>>` shape (sorted by port, duplicates
    /// adjacent) for invariant checks. Allocates; only called when
    /// invariants are registered.
    pub fn materialize_pending(&self) -> Vec<Vec<(Port, P::Msg)>> {
        (0..self.nodes.len())
            .map(|v| {
                let mut queue = Vec::new();
                for (p, slot) in self.pending[self.off[v]..self.off[v + 1]]
                    .iter()
                    .enumerate()
                {
                    if let Some((msg, copies)) = slot {
                        for _ in 0..*copies {
                            queue.push((Port(p), msg.clone()));
                        }
                    }
                }
                queue
            })
            .collect()
    }

    /// Executes a single round: delivers queued messages, steps the
    /// scheduled automata (sharded across workers when configured), and
    /// merges the staged sends in node order.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CongestViolation`] on a double send and
    /// [`SimError::BrokenTopology`] on an asymmetric adjacency list.
    pub fn step(&mut self) -> Result<(), SimError> {
        let n = self.graph.node_count();
        if let Some(t) = self.trace.as_mut() {
            t.event(&TraceEvent::Round { round: self.round });
        }
        // the drained inbox arena becomes the next pending buffer:
        // zero allocation per round
        std::mem::swap(&mut self.inbox, &mut self.pending);
        self.pending_count = 0;

        // pop timers due this round: the event core discards stale
        // entries (superseded wakes) and returns the valid ones sorted
        // and deduplicated — see `TimerHeap::pop_due` for why the dedup
        // is load-bearing (the PR 3 double-step class)
        self.timers.pop_due(self.round, &mut self.due);

        self.active.clear();
        let estimate = self.ticking.len() + self.due.len() + self.receivers.len();
        if self.first_step
            || self.config.scheduling == Scheduling::FullScan
            || estimate * 100 >= n.saturating_mul(self.config.dense_pct)
        {
            // dense fallback: when most nodes are active anyway, the
            // 0..n scan beats merging near-full sorted lists
            self.active.extend(0..n as u32);
        } else {
            self.receivers.sort_unstable();
            self.merged.clear();
            merge_sorted_dedup(&self.ticking, &self.due, &mut self.merged);
            merge_sorted_dedup(&self.merged, &self.receivers, &mut self.active);
        }
        self.first_step = false;
        self.receivers.clear();

        // Shard count: `per` from the configured ceiling, then the *true*
        // chunk count — div_ceil can produce fewer non-empty chunks than
        // the first estimate, and iterating stale scratch for the missing
        // chunks would double-count its previous round's state.
        let shards0 = self
            .config
            .threads
            .min(self.active.len() / self.config.shard_min.max(1))
            .max(1);
        let per = self.active.len().div_ceil(shards0).max(1);
        let shards = self.active.len().div_ceil(per).max(1);
        if self.scratch.len() < shards {
            self.scratch.resize_with(shards, WorkerScratch::default);
        }

        let track_wakes = self.config.scheduling == Scheduling::ActiveSet;
        let round_msgs;
        if shards == 1 {
            run_shard(
                self.graph,
                &self.ids,
                &self.off,
                &self.rev_port,
                self.injector.as_ref(),
                self.round,
                self.config.bit_budget,
                self.config.wire_exact && self.injector.is_none() && self.trace.is_none(),
                self.config.codec_profile,
                track_wakes,
                &self.done_flag,
                &self.active,
                0,
                &mut self.nodes,
                0,
                &mut self.inbox,
                false,
                &[],
                &mut self.scratch[0],
            );
            round_msgs = self.merge_staged(1)?;
        } else {
            // The destination-sharded merge needs per-message effects to
            // be order-free; a fault injector (RNG stream) and a trace
            // sink (send events) demand the sequential replay order, so
            // they take the sequential merge. Wire-exact verification is
            // per-message-local and rides the bucketed path: workers
            // round-trip their own frames at staging time.
            let bucketed = self.injector.is_none() && self.trace.is_none();
            self.dest_bounds.clear();
            if bucketed {
                // Worker s owns delivery for nodes [bounds[s], bounds[s+1]):
                // ranges anchored at each compute chunk's first node so
                // the tiles cover 0..n contiguously.
                self.dest_bounds.push(0);
                for s in 1..shards {
                    self.dest_bounds.push(self.active[s * per]);
                }
                self.dest_bounds.push(n as u32);
                if self.exchange.is_none() {
                    self.exchange = Some(Exchange::new(self.config.threads));
                }
            }
            let graph = self.graph;
            let ids = &self.ids;
            let off = &self.off;
            let rev_port = &self.rev_port;
            let injector = self.injector.as_ref();
            let round = self.round;
            let epoch = round + 1;
            let bit_budget = self.config.bit_budget;
            // staging-time transcode needs no injector/trace attached —
            // exactly the bucketed-eligibility condition
            let wire_exact = self.config.wire_exact && bucketed;
            let codec_profile = self.config.codec_profile;
            let done_flag = &self.done_flag;
            let active = &self.active;
            let dest_bounds = &self.dest_bounds;
            let fallback = AtomicBool::new(false);
            let fallback_ref = &fallback;
            let mut nodes_tail: &mut [P] = &mut self.nodes;
            let mut slots_tail: &mut [Slot<P::Msg>] = &mut self.inbox;
            let mut pend_tail: &mut [Slot<P::Msg>] = &mut self.pending;
            let mut mark_tail: &mut [u64] = &mut self.recv_mark;
            let mut nodes_cut = 0usize;
            let mut slots_cut = 0usize;
            let mut scratch_iter = self.scratch.iter_mut();
            let (mut tx_iter, mut rx_iter) = match self.exchange.as_mut() {
                Some(e) if bucketed => (e.txs.iter_mut(), e.rxs.iter_mut()),
                _ => ([].iter_mut(), [].iter_mut()),
            };
            std::thread::scope(|scope| {
                for s in 0..shards {
                    let chunk = &active[s * per..((s + 1) * per).min(active.len())];
                    let node_lo = chunk[0] as usize;
                    let node_hi = *chunk.last().expect("chunks are non-empty") as usize + 1;
                    let (head_n, tail_n) =
                        std::mem::take(&mut nodes_tail).split_at_mut(node_hi - nodes_cut);
                    let shard_nodes = &mut head_n[node_lo - nodes_cut..];
                    nodes_tail = tail_n;
                    let (slot_lo, slot_hi) = (off[node_lo], off[node_hi]);
                    let (head_s, tail_s) =
                        std::mem::take(&mut slots_tail).split_at_mut(slot_hi - slots_cut);
                    let shard_slots = &mut head_s[slot_lo - slots_cut..];
                    slots_tail = tail_s;
                    nodes_cut = node_hi;
                    slots_cut = slot_hi;
                    let scratch = scratch_iter.next().expect("one scratch per shard");
                    // Bucketed: this worker's delivery tile of the pending
                    // arena and the receiver marks. The tiles are
                    // contiguous, so successive splits need no offset.
                    let (dest_lo, dest_slots, dest_marks, txs, rx) = if bucketed {
                        let (lo, hi) = (dest_bounds[s] as usize, dest_bounds[s + 1] as usize);
                        let (ds, rest_p) =
                            std::mem::take(&mut pend_tail).split_at_mut(off[hi] - off[lo]);
                        pend_tail = rest_p;
                        let (dm, rest_m) = std::mem::take(&mut mark_tail).split_at_mut(hi - lo);
                        mark_tail = rest_m;
                        (
                            lo,
                            ds,
                            dm,
                            Some(tx_iter.next().expect("one sender row per worker")),
                            Some(rx_iter.next().expect("one receiver per worker")),
                        )
                    } else {
                        (0, Default::default(), Default::default(), None, None)
                    };
                    let run = move || {
                        run_shard(
                            graph,
                            ids,
                            off,
                            rev_port,
                            injector,
                            round,
                            bit_budget,
                            wire_exact,
                            codec_profile,
                            track_wakes,
                            done_flag,
                            chunk,
                            node_lo,
                            shard_nodes,
                            slot_lo,
                            shard_slots,
                            bucketed,
                            dest_bounds,
                            scratch,
                        );
                        if !bucketed {
                            return;
                        }
                        // A violation, asymmetry, or wire mismatch
                        // poisons the parallel delivery; flag it
                        // *before* sending so every worker's
                        // post-exchange check observes it.
                        if scratch.violation.is_some()
                            || scratch.broken.is_some()
                            || scratch.wire_bad
                        {
                            fallback_ref.store(true, Ordering::Relaxed);
                        }
                        let txs = txs.expect("bucketed workers have senders");
                        let rx = rx.expect("bucketed workers have a receiver");
                        for (d, tx) in txs.iter().enumerate().take(shards) {
                            let (meta, msgs) = std::mem::take(&mut scratch.buckets[d]);
                            let _ = tx.send((s, meta, msgs));
                        }
                        scratch.delivered = 0;
                        scratch.dest_receivers.clear();
                        // The receive loop doubles as the round barrier:
                        // every worker's flag store happens-before its
                        // sends, so once all batches are in, all flags are
                        // visible.
                        for _ in 0..shards {
                            let (src, meta, msgs) = rx.recv().expect("peer worker panicked");
                            scratch.incoming[src] = (meta, msgs);
                        }
                        if fallback_ref.load(Ordering::Relaxed) {
                            // leave `incoming` for the sequential replay;
                            // the pending arena is untouched
                            return;
                        }
                        let pend_base = off[dest_lo];
                        for src in 0..shards {
                            let (meta_v, msgs_v) = &mut scratch.incoming[src];
                            for (&meta, msg) in meta_v.iter().zip(msgs_v.drain(..)) {
                                let v = (meta >> 40) as usize;
                                let p = ((meta >> 20) & 0xF_FFFF) as usize;
                                let rp = rev_port[off[v] + p];
                                let to = graph.neighbors(NodeId(v))[p].to.0;
                                let slot = &mut dest_slots[off[to] + rp - pend_base];
                                debug_assert!(
                                    slot.is_none(),
                                    "one sender per edge direction per round"
                                );
                                *slot = Some((msg, 1));
                                scratch.delivered += 1;
                                let m = &mut dest_marks[to - dest_lo];
                                if *m != epoch {
                                    *m = epoch;
                                    scratch.dest_receivers.push(to as u32);
                                }
                            }
                            meta_v.clear();
                        }
                        // recycle the drained batches as next round's
                        // bucket capacity
                        for d in 0..shards {
                            scratch.buckets[d] = std::mem::take(&mut scratch.incoming[d]);
                        }
                    };
                    if s + 1 == shards {
                        // the caller's thread works the final shard
                        // instead of idling in join
                        run();
                    } else {
                        scope.spawn(run);
                    }
                }
            });
            if bucketed {
                if fallback.into_inner() {
                    return Err(self.merge_bucketed_fallback(shards));
                }
                let mut sent = 0u64;
                let mut bits = 0u64;
                let mut max_bits = 0u64;
                let mut delivered = 0u64;
                for s in &self.scratch[..shards] {
                    sent += s.sent_msgs;
                    bits += s.sent_bits;
                    max_bits = max_bits.max(s.max_bits);
                    delivered += s.delivered;
                }
                self.report.messages += sent;
                self.report.total_bits += bits;
                self.report.max_message_bits = self.report.max_message_bits.max(max_bits);
                self.pending_count += delivered;
                let RoundEngine {
                    receivers, scratch, ..
                } = self;
                for s in &mut scratch[..shards] {
                    // order differs from the sequential merge, but the
                    // list is sorted before every use
                    receivers.extend_from_slice(&s.dest_receivers);
                    s.dest_receivers.clear();
                }
                self.round_staged = sent;
                round_msgs = sent;
            } else {
                round_msgs = self.merge_staged(shards)?;
            }
        }
        self.apply_schedule(shards);
        self.report.peak_memory_bytes = self
            .report
            .peak_memory_bytes
            .max(self.fixed_mem + self.round_staged * Self::STAGED_BYTES);

        if let Some(inj) = &self.injector {
            self.report.dropped_messages = inj.dropped() + self.crash_lost;
            self.report.duplicated_messages = inj.duplicated();
        }
        self.report.peak_messages_per_round = self.report.peak_messages_per_round.max(round_msgs);
        if round_msgs > 0 {
            self.last_activity = self.round;
        }
        self.round += 1;
        self.report.rounds = self.round;
        self.advance_crash_epoch();
        Ok(())
    }

    /// Folds the shards' per-node outcomes into next round's schedule:
    /// the ticking list, the timer heap, and the O(1) quiescence counter.
    /// Shards cover ascending node ranges, so concatenation keeps
    /// `ticking` sorted.
    fn apply_schedule(&mut self, shards: usize) {
        let next = self.round + 1;
        let RoundEngine {
            scratch,
            ticking,
            timers,
            done_flag,
            live_undone,
            ..
        } = self;
        ticking.clear();
        for s in scratch[..shards].iter_mut() {
            for (v32, outcome) in s.sched.drain(..) {
                let v = v32 as usize;
                match outcome {
                    NodeOutcome::Crashed => timers.cancel(v32),
                    NodeOutcome::Done => {
                        if !done_flag[v] {
                            done_flag[v] = true;
                            *live_undone -= 1;
                        }
                        timers.cancel(v32);
                    }
                    NodeOutcome::Tick | NodeOutcome::Sleep | NodeOutcome::Park(_) => {
                        if done_flag[v] {
                            // un-done: a message re-activated the node
                            done_flag[v] = false;
                            *live_undone += 1;
                        }
                        match outcome {
                            NodeOutcome::Tick => {
                                // the ticking list schedules the node;
                                // `note` only invalidates parked entries
                                timers.note(v32, next);
                                ticking.push(v32);
                            }
                            NodeOutcome::Sleep => timers.cancel(v32),
                            // `park` skips the push when the heap
                            // already holds this exact wake —
                            // re-parking an unchanged timer is free
                            NodeOutcome::Park(r) => timers.park(v32, r),
                            _ => unreachable!(),
                        }
                    }
                }
            }
        }
    }

    /// Replays the staged sends of every shard in ascending node order:
    /// message accounting (`size_bits` read from the packed metadata
    /// word), fault-injector transmission (the *only* place its RNG
    /// advances), and arena delivery. Returns the number of messages
    /// sent this round.
    fn merge_staged(&mut self, shards: usize) -> Result<u64, SimError> {
        let round = self.round;
        // On a double send the sequential loop aborts at the violating
        // node: its sends and every later node's sends never happen.
        // Reproduce that cut-off exactly.
        let cut = self.scratch[..shards]
            .iter()
            .filter_map(|s| s.violation)
            .min_by_key(|&(v, _)| v);
        let cut_node = cut.map_or(u32::MAX, |(v, _)| v);
        // With no injector/trace attached, `run_shard` already transcoded
        // every staged message (the decoded frame is what sits in the
        // slab), so the merge only replays the round trip when staging
        // could not (sequential-order runs) or when a staging transcode
        // failed and the error must be re-derived at its exact replay
        // position.
        let pretranscoded = self.injector.is_none() && self.trace.is_none();
        let any_bad = self.scratch[..shards].iter().any(|s| s.wire_bad);
        let wire_exact = self.config.wire_exact && (!pretranscoded || any_bad);
        let codec_profile = self.config.codec_profile;
        let mut round_msgs = 0u64;
        let RoundEngine {
            graph,
            rev_port,
            off,
            pending,
            pending_count,
            recv_mark,
            receivers,
            injector,
            report,
            scratch,
            crash_lost,
            trace,
            round_staged,
            codec,
            codec_ns,
            codec_msgs,
            ..
        } = self;
        let epoch = round + 1;
        // One flush and one crash-loss event per round, aggregated over
        // all shards, so the trace stream is byte-identical whatever
        // KDOM_THREADS was.
        let staged_total: u64 = scratch[..shards]
            .iter()
            .map(|s| s.staged_meta.len() as u64)
            .sum();
        *round_staged = staged_total;
        let lost_total: u64 = scratch[..shards].iter().map(|s| s.crash_lost).sum();
        if let Some(t) = trace.as_mut() {
            t.event(&TraceEvent::ShardFlush {
                round,
                staged: staged_total,
                bytes: staged_total * Self::STAGED_BYTES,
            });
            if lost_total > 0 {
                t.event(&TraceEvent::CrashLost {
                    round,
                    copies: lost_total,
                });
            }
        }
        *crash_lost += lost_total;
        for s in scratch[..shards].iter_mut() {
            for (meta, msg) in s.staged_meta.drain(..).zip(s.staged_msgs.drain(..)) {
                let v32 = (meta >> 40) as u32;
                if v32 >= cut_node {
                    continue;
                }
                let (v, p) = (v32 as usize, ((meta >> 20) & 0xF_FFFF) as usize);
                let rp = rev_port[off[v] + p];
                if rp == usize::MAX {
                    return Err(SimError::BrokenTopology {
                        node: NodeId(v),
                        port: Port(p),
                    });
                }
                let arc = graph.neighbors(NodeId(v))[p];
                let field = meta & META_BITS;
                let bits = if field == META_BITS {
                    msg.size_bits() // wider than the packed field
                } else {
                    field
                };
                debug_assert_eq!(bits, msg.size_bits(), "packed word out of sync");
                // Wire-exact: what continues from here is the *decoded*
                // frame, so the receiving automaton provably depends only
                // on the bits that were on the wire. The round trip runs
                // in the engine's reused scratch buffers — no per-frame
                // allocation.
                let msg = if wire_exact {
                    let t0 = codec_profile.then(Instant::now);
                    let tripped = codec.round_trip(&msg);
                    if let Some(t0) = t0 {
                        *codec_ns += t0.elapsed().as_nanos() as u64;
                        *codec_msgs += 1;
                    }
                    match tripped {
                        Ok(decoded) => decoded,
                        Err(detail) => {
                            return Err(SimError::WireMismatch {
                                node: NodeId(v),
                                port: Port(p),
                                round,
                                detail,
                            });
                        }
                    }
                } else {
                    msg
                };
                report.messages += 1;
                report.total_bits += bits;
                report.max_message_bits = report.max_message_bits.max(bits);
                round_msgs += 1;
                let (copies, down) = match injector.as_mut() {
                    None => (1, false),
                    Some(inj) => {
                        let tx = inj.transmit(arc.edge, round);
                        (tx.copies.len() as u32, tx.down)
                    }
                };
                if let Some(t) = trace.as_mut() {
                    t.event(&TraceEvent::Send {
                        round,
                        sender: v32,
                        port: p as u32,
                        bits,
                        copies,
                        link_down: down,
                    });
                }
                if copies == 0 {
                    continue; // dropped on the wire
                }
                let to = arc.to.0;
                let slot = &mut pending[off[to] + rp];
                match slot {
                    // only fault duplication can target an occupied slot:
                    // one sender per edge direction per round
                    Some((_, existing)) => *existing += copies,
                    None => *slot = Some((msg, copies)),
                }
                *pending_count += u64::from(copies);
                if recv_mark[to] != epoch {
                    recv_mark[to] = epoch;
                    receivers.push(to as u32);
                }
            }
        }
        if let Some((v, port)) = cut {
            return Err(SimError::CongestViolation {
                node: NodeId(v as usize),
                port,
                round,
            });
        }
        Ok(round_msgs)
    }

    /// Sequential replay of a bucketed round on which a shard flagged a
    /// CONGEST violation, an asymmetric topology, or a wire mismatch.
    /// The workers left all exchanged batches in their `incoming` slots
    /// and the pending arena untouched; sorting the packed metadata
    /// words restores the exact ascending `(sender, port)` order of the
    /// sequential merge (the words are unique per edge direction), so
    /// the partial accounting and delivery state at the abort match a
    /// single-threaded run byte for byte. In wire-exact mode every frame
    /// is round-tripped again in that order — idempotent for the frames
    /// that already passed at staging time, and re-deriving the mismatch
    /// at its exact sequential position for the one that failed (a wire
    /// error at a lower node beats a violation cut at a higher one,
    /// matching [`RoundEngine::merge_staged`]'s mid-loop return). Always
    /// returns the error — this path only runs when one exists.
    fn merge_bucketed_fallback(&mut self, shards: usize) -> SimError {
        let round = self.round;
        let cut = self.scratch[..shards]
            .iter()
            .filter_map(|s| s.violation)
            .min_by_key(|&(v, _)| v);
        let cut_node = cut.map_or(u32::MAX, |(v, _)| v);
        let mut entries: Vec<(u64, P::Msg)> = Vec::new();
        for s in &mut self.scratch[..shards] {
            for (meta, msgs) in &mut s.incoming[..shards] {
                entries.extend(meta.drain(..).zip(msgs.drain(..)));
            }
        }
        entries.sort_unstable_by_key(|&(meta, _)| meta);
        self.round_staged = entries.len() as u64;
        let epoch = round + 1;
        for (meta, msg) in entries {
            let v32 = (meta >> 40) as u32;
            if v32 >= cut_node {
                continue;
            }
            let (v, p) = (v32 as usize, ((meta >> 20) & 0xF_FFFF) as usize);
            let rp = self.rev_port[self.off[v] + p];
            if rp == usize::MAX {
                return SimError::BrokenTopology {
                    node: NodeId(v),
                    port: Port(p),
                };
            }
            let to = self.graph.neighbors(NodeId(v))[p].to.0;
            let field = meta & META_BITS;
            let bits = if field == META_BITS {
                msg.size_bits() // wider than the packed field
            } else {
                field
            };
            debug_assert_eq!(bits, msg.size_bits(), "packed word out of sync");
            let msg = if self.config.wire_exact {
                match self.codec.round_trip(&msg) {
                    Ok(decoded) => decoded,
                    Err(detail) => {
                        return SimError::WireMismatch {
                            node: NodeId(v),
                            port: Port(p),
                            round,
                            detail,
                        };
                    }
                }
            } else {
                msg
            };
            self.report.messages += 1;
            self.report.total_bits += bits;
            self.report.max_message_bits = self.report.max_message_bits.max(bits);
            let slot = &mut self.pending[self.off[to] + rp];
            match slot {
                Some((_, existing)) => *existing += 1,
                None => *slot = Some((msg, 1)),
            }
            self.pending_count += 1;
            if self.recv_mark[to] != epoch {
                self.recv_mark[to] = epoch;
                self.receivers.push(to as u32);
            }
        }
        // wire and topology errors return mid-loop, so reaching here
        // means a violation triggered the fallback
        let (v, port) = cut.expect("fallback without violation implies a wire/topology error");
        SimError::CongestViolation {
            node: NodeId(v as usize),
            port,
            round,
        }
    }
}

/// The **pre-engine reference loop**, retained verbatim as a benchmarking
/// baseline: per-node `Vec<Vec<(Port, Msg)>>` inboxes with a per-round
/// `sort_by_key`, a freshly allocated [`Outbox`] per node per round, and a
/// full scan of all `n` automata every round. Fault-free only. The engine
/// must produce byte-identical `(nodes, RunReport)` to this loop; the
/// `engine` bench and experiment E21 measure the speedup against it.
pub fn run_reference_loop<P: Protocol>(
    graph: &Graph,
    mut nodes: Vec<P>,
    max_rounds: u64,
) -> Result<(Vec<P>, RunReport), SimError> {
    let n = graph.node_count();
    assert_eq!(nodes.len(), n, "one automaton per node");
    let ids: Vec<u64> = graph.nodes().map(|v| graph.id_of(v)).collect();
    let rev = reverse_port_table(graph);
    let mut inboxes: Vec<Vec<(Port, P::Msg)>> = vec![Vec::new(); n];
    let mut pending: Vec<Vec<(Port, P::Msg)>> = vec![Vec::new(); n];
    let mut report = RunReport::default();
    let mut round = 0u64;
    while !(pending.iter().all(Vec::is_empty) && nodes.iter().all(Protocol::is_done)) {
        if round >= max_rounds {
            return Err(SimError::RoundLimitExceeded {
                limit: max_rounds,
                stall: StallReport {
                    not_done: (0..n)
                        .filter(|&v| !nodes[v].is_done())
                        .map(NodeId)
                        .collect(),
                    pending: (0..n)
                        .filter(|&v| !pending[v].is_empty())
                        .map(|v| (NodeId(v), pending[v].len()))
                        .collect(),
                    last_activity: round,
                    crashed: Vec::new(),
                    live: (0..n).map(NodeId).collect(),
                    stopped_at: round,
                },
            });
        }
        std::mem::swap(&mut inboxes, &mut pending);
        let mut round_msgs = 0u64;
        for v in 0..n {
            let mut inbox = std::mem::take(&mut inboxes[v]);
            inbox.sort_by_key(|&(p, _)| p);
            let arcs = graph.neighbors(NodeId(v));
            let ctx = NodeCtx::new(NodeId(v), ids[v], round, arcs, &ids);
            let mut out = Outbox::with_degree(arcs.len());
            nodes[v].round(&ctx, &inbox, &mut out);
            if let Some(port) = out.violation() {
                return Err(SimError::CongestViolation {
                    node: NodeId(v),
                    port,
                    round,
                });
            }
            for (p, slot) in out.into_slots().into_iter().enumerate() {
                let Some(msg) = slot else { continue };
                let Some(rp) = rev[v][p] else {
                    return Err(SimError::BrokenTopology {
                        node: NodeId(v),
                        port: Port(p),
                    });
                };
                let bits = msg.size_bits();
                report.messages += 1;
                report.total_bits += bits;
                report.max_message_bits = report.max_message_bits.max(bits);
                round_msgs += 1;
                pending[arcs[p].to.0].push((rp, msg));
            }
        }
        report.peak_messages_per_round = report.peak_messages_per_round.max(round_msgs);
        round += 1;
        report.rounds = round;
    }
    Ok((nodes, report))
}

/// Why [`run_epochs`] aborted: a segment's simulation failed, or a churn
/// event did not apply to the topology it arrived at.
///
/// Segments are 0-based: segment `i` runs *before* epoch `i`'s events are
/// applied, and the final segment (after the last epoch) has index
/// `plan.epochs.len()`.
#[derive(Debug)]
pub enum EpochError {
    /// Segment `epoch` hit a simulation error (congestion violation,
    /// round-limit stall, wire mismatch, ...).
    Sim {
        /// Index of the failing segment.
        epoch: usize,
        /// The underlying engine error (boxed: [`SimError`] carries a
        /// full [`StallReport`], which would bloat every `Ok` result).
        error: Box<SimError>,
    },
    /// Epoch `epoch`'s events reference nodes or edges that do not exist
    /// in (or clash with) the topology they arrived at.
    Churn {
        /// Index of the failing epoch.
        epoch: usize,
        /// The underlying churn-application error.
        error: ChurnError,
    },
}

impl std::fmt::Display for EpochError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EpochError::Sim { epoch, error } => {
                write!(f, "segment {epoch} failed: {error}")
            }
            EpochError::Churn { epoch, error } => {
                write!(f, "epoch {epoch} does not apply: {error}")
            }
        }
    }
}

impl std::error::Error for EpochError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EpochError::Sim { error, .. } => Some(error.as_ref()),
            EpochError::Churn { error, .. } => Some(error),
        }
    }
}

/// Outcome of [`run_epochs`]: the final topology, the automata after the
/// last segment quiesced, and per-segment execution evidence.
#[derive(Debug)]
pub struct EpochRun<P> {
    /// Topology after the last epoch (a clone of the input graph when the
    /// plan schedules no epochs).
    pub graph: Graph,
    /// Automata after the final segment reached quiescence.
    pub nodes: Vec<P>,
    /// One [`RunReport`] per segment — `plan.epochs.len() + 1` entries.
    pub segments: Vec<RunReport>,
    /// For each epoch, whether its boundary cut a still-running segment
    /// (`true`) or the segment had already quiesced on its own (`false`).
    pub cut: Vec<bool>,
}

/// Runs a protocol across the churn epochs scheduled in `plan`.
///
/// A [`Graph`] is immutable for the lifetime of a [`RoundEngine`], so a
/// topology change cannot happen mid-run. Instead the driver slices the
/// execution into **segments**: it runs the current automata until either
/// they quiesce or the next epoch's round boundary (`ChurnEpoch::at`,
/// measured in rounds since the segment started) is reached, applies the
/// epoch's events with [`apply_churn`], asks `reenter` to build the
/// automata for the rebuilt topology, and continues. Transient faults
/// (loss, duplication, crashes, link downs) are re-armed per segment with
/// a fresh [`FaultInjector`] seeded from the same plan, so every segment
/// replays deterministically.
///
/// `reenter` receives the rebuilt graph, the [`ChurnRemap`] between the
/// old and new node indices, and the automata from the finished segment;
/// it must return exactly one automaton per node of the new graph.
/// Protocol state carried across an epoch is the *caller's* choice:
/// returning fresh automata restarts the protocol, while migrating state
/// through the remap implements warm re-entry.
///
/// `max_rounds` bounds every segment individually; a segment that neither
/// quiesces nor reaches its boundary within the budget fails with
/// [`SimError::RoundLimitExceeded`] wrapped in [`EpochError::Sim`].
pub fn run_epochs<P, F>(
    graph: &Graph,
    nodes: Vec<P>,
    plan: &FaultPlan,
    config: EngineConfig,
    max_rounds: u64,
    mut reenter: F,
) -> Result<EpochRun<P>, EpochError>
where
    P: Protocol,
    F: FnMut(&Graph, &ChurnRemap, Vec<P>) -> Vec<P>,
{
    let mut cur = graph.clone();
    let mut nodes = nodes;
    let mut segments = Vec::with_capacity(plan.epochs.len() + 1);
    let mut cut = Vec::with_capacity(plan.epochs.len());
    for i in 0..=plan.epochs.len() {
        let injector = plan
            .has_transient_faults()
            .then(|| FaultInjector::new(plan));
        let mut engine = RoundEngine::new(&cur, nodes, config, injector);
        let boundary = plan.epochs.get(i).map_or(u64::MAX, |e| e.at);
        let quiesced = engine
            .run_to(boundary, max_rounds)
            .map_err(|error| EpochError::Sim {
                epoch: i,
                error: Box::new(error),
            })?;
        engine.trace_run_end();
        let (taken, report) = engine.into_parts();
        segments.push(report);
        nodes = taken;
        if let Some(epoch) = plan.epochs.get(i) {
            cut.push(!quiesced);
            let (next, remap) = apply_churn(&cur, &epoch.events)
                .map_err(|error| EpochError::Churn { epoch: i, error })?;
            nodes = reenter(&next, &remap, nodes);
            assert_eq!(
                nodes.len(),
                next.node_count(),
                "reenter must return one automaton per node of the new graph"
            );
            cur = next;
        }
    }
    Ok(EpochRun {
        graph: cur,
        nodes,
        segments,
        cut,
    })
}

/// Merges two sorted, duplicate-free lists into `out`, deduplicating.
/// Shared with the socket transport's coordinator, which rebuilds the
/// same active-set merge over its frame arena.
pub(crate) fn merge_sorted_dedup(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_dedup_interleaves() {
        let mut out = Vec::new();
        merge_sorted_dedup(&[1, 3, 5], &[2, 3, 6], &mut out);
        assert_eq!(out, vec![1, 2, 3, 5, 6]);
        out.clear();
        merge_sorted_dedup(&[], &[4, 9], &mut out);
        assert_eq!(out, vec![4, 9]);
    }

    #[test]
    fn fan_out_moves_last_copy() {
        let mut seen = Vec::new();
        fan_out(vec![10u64, 20], "msg".to_string(), |tag, m| {
            seen.push((tag, m));
        });
        assert_eq!(seen.len(), 2);
        assert_eq!(seen[0], (10, "msg".to_string()));
        assert_eq!(seen[1], (20, "msg".to_string()));
        let mut none = 0;
        fan_out(Vec::<u64>::new(), "x", |_, _| none += 1);
        assert_eq!(none, 0);
    }

    #[test]
    fn config_env_parsing_defaults() {
        let cfg = EngineConfig::default();
        assert_eq!(cfg.threads, 1);
        assert_eq!(cfg.scheduling, Scheduling::ActiveSet);
        assert!(cfg.fast_forward);
        assert_eq!(cfg.dense_pct, 75);
        assert_eq!(cfg.shard_min, 1024);
        assert_eq!(cfg.bit_budget, None);
        assert!(cfg.wire_exact, "wire-exact is the default mode");
        assert!(!cfg.codec_profile);
        let cfg = cfg
            .with_threads(4)
            .with_scheduling(Scheduling::FullScan)
            .with_fast_forward(false)
            .with_dense_pct(50)
            .with_shard_min(32)
            .with_bit_budget(96)
            .with_wire_exact(false)
            .with_codec_profile(true);
        assert_eq!(cfg.threads, 4);
        assert_eq!(cfg.scheduling, Scheduling::FullScan);
        assert!(!cfg.fast_forward);
        assert_eq!(cfg.dense_pct, 50);
        assert_eq!(cfg.shard_min, 32);
        assert_eq!(cfg.bit_budget, Some(96));
        assert!(!cfg.wire_exact);
        assert!(cfg.codec_profile);
        assert_eq!(cfg.with_threads(0).threads, 1, "zero clamps to one");
        assert_eq!(cfg.with_shard_min(0).shard_min, 1, "zero clamps to one");
    }

    #[test]
    fn packed_meta_round_trips() {
        for (v, p, bits) in [
            (0u32, 0usize, 0u64),
            (7, 19, 144),
            ((1 << 24) - 1, (1 << 20) - 1, META_BITS - 1),
        ] {
            let w = pack_meta(v, p, bits);
            assert_eq!((w >> 40) as u32, v);
            assert_eq!(((w >> 20) & 0xF_FFFF) as usize, p);
            assert_eq!(w & META_BITS, bits);
        }
        // oversized messages collapse into the recompute sentinel
        let w = pack_meta(3, 1, META_BITS + 999);
        assert_eq!(w & META_BITS, META_BITS);
    }

    // ---- epoch driver -------------------------------------------------

    use crate::faults::ChurnEvent;

    /// Min-id flooding: every node converges to the smallest application
    /// id in its connected component. `fresh` forces one initial
    /// broadcast; afterwards activity is purely message-driven.
    #[derive(Clone, Debug)]
    struct IdMsg(u64);
    impl crate::wire::Wire for IdMsg {
        fn encode(&self, w: &mut crate::wire::BitWriter) {
            w.word(self.0);
        }
        fn decode(r: &mut crate::wire::BitReader<'_>) -> Result<Self, crate::wire::WireError> {
            Ok(IdMsg(r.word()?))
        }
    }
    impl Message for IdMsg {}

    #[derive(Debug)]
    struct MinId {
        best: u64,
        fresh: bool,
    }
    impl Protocol for MinId {
        type Msg = IdMsg;
        fn round(&mut self, _: &NodeCtx<'_>, inbox: &[(Port, IdMsg)], out: &mut Outbox<IdMsg>) {
            let mut improved = self.fresh;
            self.fresh = false;
            for (_, m) in inbox {
                if m.0 < self.best {
                    self.best = m.0;
                    improved = true;
                }
            }
            if improved {
                out.broadcast(IdMsg(self.best));
            }
        }
        fn is_done(&self) -> bool {
            !self.fresh
        }
    }

    fn min_id_nodes(g: &Graph) -> Vec<MinId> {
        (0..g.node_count())
            .map(|v| MinId {
                best: g.id_of(NodeId(v)),
                fresh: true,
            })
            .collect()
    }

    fn id_path(ids: &[u64]) -> Graph {
        let mut b = kdom_graph::graph::GraphBuilder::new(ids.len());
        b.ids(ids.to_vec());
        for i in 1..ids.len() {
            b.add_edge(NodeId(i - 1), NodeId(i), 100 + i as u64);
        }
        b.build()
    }

    #[test]
    fn epochs_rebuild_and_reenter() {
        // Path 10-5-7-9; everyone floods to 5. The epoch removes node 5,
        // splitting {10} from {7, 9}; the fresh re-entry re-floods on the
        // rebuilt topology.
        let g = id_path(&[10, 5, 7, 9]);
        let plan = FaultPlan::new(1).epoch(1_000, vec![ChurnEvent::NodeLeave { id: 5 }]);
        let run = run_epochs(
            &g,
            min_id_nodes(&g),
            &plan,
            EngineConfig::default(),
            10_000,
            |new_g, remap, old| {
                // Node 5 had dense index 1; everything after shifts down.
                assert_eq!(remap.old_to_new[1], None);
                assert_eq!(remap.old_to_new[2], Some(NodeId(1)));
                assert_eq!(remap.new_to_old[2], Some(NodeId(3)));
                // The finished segment did converge to the global min.
                assert!(old.iter().all(|n| n.best == 5));
                min_id_nodes(new_g)
            },
        )
        .unwrap();
        assert_eq!(run.segments.len(), 2);
        assert_eq!(run.cut, vec![false], "segment 0 quiesced before round 1000");
        assert_eq!(run.graph.node_count(), 3);
        let best: Vec<u64> = run.nodes.iter().map(|n| n.best).collect();
        assert_eq!(best, vec![10, 7, 7], "node 10 is now isolated from 7-9");
    }

    #[test]
    fn epoch_boundary_cuts_running_segment() {
        // A 6-node path needs ~5 rounds to flood; the epoch at round 1
        // cuts the segment mid-run. The weight change is a topology no-op,
        // so the re-entered protocol still converges on the same path.
        let ids = [40, 41, 44, 43, 47, 42];
        let g = id_path(&ids);
        let plan = FaultPlan::new(1).epoch(
            1,
            vec![ChurnEvent::EdgeWeightChange {
                a: 40,
                b: 41,
                weight: 999,
            }],
        );
        let run = run_epochs(
            &g,
            min_id_nodes(&g),
            &plan,
            EngineConfig::default(),
            10_000,
            |new_g, remap, _| {
                assert_eq!(
                    remap.old_to_new[3],
                    Some(NodeId(3)),
                    "weight change keeps ids"
                );
                min_id_nodes(new_g)
            },
        )
        .unwrap();
        assert_eq!(run.cut, vec![true], "round-1 boundary interrupts the flood");
        assert_eq!(run.segments[0].rounds, 1);
        assert!(run.nodes.iter().all(|n| n.best == 40));
        let e = run.graph.edge_between(NodeId(0), NodeId(1));
        assert!(e.is_some_and(|er| er.weight == 999));
    }

    #[test]
    fn epoch_churn_errors_carry_the_epoch_index() {
        let g = id_path(&[1, 2]);
        let plan = FaultPlan::new(0)
            .epoch(
                10,
                vec![ChurnEvent::EdgeWeightChange {
                    a: 1,
                    b: 2,
                    weight: 7,
                }],
            )
            .epoch(20, vec![ChurnEvent::NodeLeave { id: 99 }]);
        let err = run_epochs(
            &g,
            min_id_nodes(&g),
            &plan,
            EngineConfig::default(),
            10_000,
            |new_g, _, _| min_id_nodes(new_g),
        )
        .unwrap_err();
        match err {
            EpochError::Churn { epoch, error } => {
                assert_eq!(epoch, 1);
                assert!(matches!(error, ChurnError::UnknownNode { id: 99 }));
            }
            other => panic!("expected churn error, got {other}"),
        }
    }

    #[test]
    fn epoch_segments_replay_transient_faults() {
        // Same plan, two runs: per-segment fresh injectors make the whole
        // epoch execution deterministic.
        let g = id_path(&[10, 5, 7, 9, 3, 8]);
        let plan = FaultPlan::new(42).drop_prob(0.2).epoch(
            3,
            vec![ChurnEvent::EdgeInsert {
                a: 10,
                b: 8,
                weight: 1,
            }],
        );
        let runs: Vec<_> = (0..2)
            .map(|_| {
                run_epochs(
                    &g,
                    min_id_nodes(&g),
                    &plan,
                    EngineConfig::default(),
                    10_000,
                    |new_g, _, _| min_id_nodes(new_g),
                )
                .unwrap()
            })
            .collect();
        assert_eq!(runs[0].segments, runs[1].segments);
        let best0: Vec<u64> = runs[0].nodes.iter().map(|n| n.best).collect();
        let best1: Vec<u64> = runs[1].nodes.iter().map(|n| n.best).collect();
        assert_eq!(best0, best1);
        assert!(best0.iter().all(|&b| b == 3), "drops only delay flooding");
    }
}
