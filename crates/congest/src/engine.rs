//! The shared round engine behind both executors.
//!
//! [`Simulator`](crate::Simulator) (synchronous lockstep) and
//! [`AlphaSimulator`](crate::AlphaSimulator) (synchronizer α) used to carry
//! their own copies of the round machinery — context construction, outbox
//! handling, reverse-port delivery. This module owns that machinery once,
//! rebuilt around three ideas:
//!
//! 1. **Active-set scheduling.** Instead of scanning all `n` automata every
//!    round, the engine steps only nodes that either report `!is_done()` or
//!    have messages queued. This relies on the [`Protocol`] contract: a
//!    node that is done and receives nothing does nothing (it may only
//!    "un-done" itself in response to a message, which puts it back in the
//!    active set). [`Scheduling::FullScan`] restores the historical
//!    scan-everything behaviour; the two schedules produce byte-identical
//!    runs for contract-abiding protocols.
//!
//! 2. **A flat double-buffered message arena.** Inboxes are CSR-style
//!    slots indexed by `(node, port)` — one `Option<(msg, copies)>` per
//!    edge direction, where `copies` counts fault-injected duplicates of
//!    the same CONGEST message. Delivery is a store, consumption is a
//!    take, and the per-round `sort_by_key` of the old `Vec<Vec<…>>`
//!    inboxes disappears because ports *are* the index. `Outbox` slabs are
//!    pooled per worker, so steady-state rounds allocate nothing.
//!
//! 3. **A deterministically parallel compute phase.** With
//!    [`EngineConfig::threads`] > 1 the active list is split into
//!    contiguous node shards and executed under [`std::thread::scope`];
//!    workers write sends into per-shard staging buffers, and a single
//!    sequential merge replays the staged sends in ascending node order —
//!    the exact order the single-threaded loop produces. All shared
//!    mutable effects (message counters, the fault injector's RNG stream,
//!    arena stores) happen only in the merge, so a parallel run is
//!    **byte-identical** to a single-threaded one: same outputs, same
//!    [`RunReport`], same injected-fault stream. After an error
//!    ([`SimError::CongestViolation`] / [`SimError::BrokenTopology`]) the
//!    reported counters still match the sequential run, but node automata
//!    beyond the failing node are in an unspecified state (they may have
//!    executed the failing round); errors abort the run, so no caller
//!    observes that state through the public API.
//!
//! Configuration comes from [`EngineConfig`], which the convenience
//! runners fill from the environment: `KDOM_THREADS` selects the worker
//! count and `KDOM_SCHED=full` opts back into the full scan.

use kdom_graph::graph::{Graph, NodeId};

use crate::faults::FaultInjector;
use crate::report::RunReport;
use crate::sim::{Message, NodeCtx, Outbox, Port, Protocol, SimError, StallReport};

/// Execution knobs of the round engine: worker threads and scheduling.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EngineConfig {
    /// Worker threads for the compute phase. `1` runs everything inline
    /// on the calling thread (no spawns); higher values shard the active
    /// set. Results are byte-identical either way.
    pub threads: usize,
    /// Which nodes are stepped each round.
    pub scheduling: Scheduling,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            threads: 1,
            scheduling: Scheduling::ActiveSet,
        }
    }
}

impl EngineConfig {
    /// Reads the configuration from the environment: `KDOM_THREADS` (a
    /// positive worker count, clamped to 256) and `KDOM_SCHED`
    /// (`full`/`full-scan` for [`Scheduling::FullScan`]; anything else,
    /// including unset, selects [`Scheduling::ActiveSet`]).
    pub fn from_env() -> Self {
        let threads = std::env::var("KDOM_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .map(|t| t.clamp(1, 256))
            .unwrap_or(1);
        let scheduling = match std::env::var("KDOM_SCHED").as_deref() {
            Ok("full") | Ok("full-scan") | Ok("fullscan") => Scheduling::FullScan,
            _ => Scheduling::ActiveSet,
        };
        EngineConfig {
            threads,
            scheduling,
        }
    }

    /// Returns the config with the worker count replaced.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Returns the config with the scheduling policy replaced.
    pub fn with_scheduling(mut self, scheduling: Scheduling) -> Self {
        self.scheduling = scheduling;
        self
    }
}

/// Node-scheduling policy of the engine.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Scheduling {
    /// Step every automaton every round (the historical behaviour).
    FullScan,
    /// Step only automata that are not done or have queued messages.
    #[default]
    ActiveSet,
}

/// Precomputes, for every `(node, port)`, the port the same edge occupies
/// at the other endpoint (`None` marks a corrupted, asymmetric topology).
pub(crate) fn reverse_port_table(graph: &Graph) -> Vec<Vec<Option<Port>>> {
    (0..graph.node_count())
        .map(|v| {
            graph
                .neighbors(NodeId(v))
                .iter()
                .map(|arc| {
                    graph
                        .neighbors(arc.to)
                        .iter()
                        .position(|a| a.edge == arc.edge)
                        .map(Port)
                })
                .collect()
        })
        .collect()
}

/// Runs one synchronous protocol round for node `v`: builds the context,
/// recycles `outbox_buf` into a fresh [`Outbox`], executes
/// [`Protocol::round`], and leaves the sends in `outbox_buf` (one
/// optional message per port). Returns the port of the first CONGEST
/// violation, if the node double-sent.
///
/// Both executors call this — it is the single place a protocol's round
/// function runs.
pub(crate) fn execute_node_round<P: Protocol>(
    graph: &Graph,
    ids: &[u64],
    v: usize,
    round: u64,
    node: &mut P,
    inbox: &[(Port, P::Msg)],
    outbox_buf: &mut Vec<Option<P::Msg>>,
) -> Option<Port> {
    let ctx = NodeCtx::new(NodeId(v), ids[v], round, graph.neighbors(NodeId(v)), ids);
    let mut out = Outbox::recycle(std::mem::take(outbox_buf), ctx.degree());
    node.round(&ctx, inbox, &mut out);
    let violation = out.violation();
    *outbox_buf = out.into_slots();
    violation
}

/// Hands `item` to `deliver` once per tag in `tags`, cloning for every
/// copy but the last (the common single-copy case moves without cloning).
pub(crate) fn fan_out<T: Clone, E>(tags: Vec<E>, item: T, mut deliver: impl FnMut(E, T)) {
    let n = tags.len();
    let mut item = Some(item);
    for (i, tag) in tags.into_iter().enumerate() {
        let it = if i + 1 == n {
            item.take().expect("one item per fan-out")
        } else {
            item.clone().expect("one item per fan-out")
        };
        deliver(tag, it);
    }
}

/// One arena slot: the message queued on an edge direction plus the
/// number of identical copies the fault injector delivered.
type Slot<M> = Option<(M, u32)>;

/// Per-worker reusable state: the materialised inbox, the pooled outbox
/// slab, staged sends, and the shard's contribution to the next round's
/// bookkeeping.
struct WorkerScratch<M> {
    inbox: Vec<(Port, M)>,
    outbox: Vec<Option<M>>,
    /// Sends staged for the merge: `(sender, port, message)`, in the
    /// shard's (ascending-node) execution order.
    staged: Vec<(u32, u32, M)>,
    /// Active nodes of this shard still reporting `!is_done()`.
    undone: Vec<u32>,
    /// Queued copies consumed by crashed nodes this round.
    crash_lost: u64,
    /// First CONGEST violation in this shard, by node order.
    violation: Option<(u32, Port)>,
}

impl<M> Default for WorkerScratch<M> {
    fn default() -> Self {
        WorkerScratch {
            inbox: Vec::new(),
            outbox: Vec::new(),
            staged: Vec::new(),
            undone: Vec::new(),
            crash_lost: 0,
            violation: None,
        }
    }
}

/// Executes the active nodes of one contiguous shard. `nodes` and
/// `slots` are the shard's windows into the automata array and the
/// inbox arena; `node_base`/`slot_base` translate global indices into
/// them. Purely local: all cross-node effects are staged in `scratch`.
#[allow(clippy::too_many_arguments)]
fn run_shard<P: Protocol>(
    graph: &Graph,
    ids: &[u64],
    off: &[usize],
    injector: Option<&FaultInjector>,
    round: u64,
    active: &[u32],
    node_base: usize,
    nodes: &mut [P],
    slot_base: usize,
    slots: &mut [Slot<P::Msg>],
    scratch: &mut WorkerScratch<P::Msg>,
) {
    scratch.staged.clear();
    scratch.undone.clear();
    scratch.crash_lost = 0;
    scratch.violation = None;
    for &v32 in active {
        let v = v32 as usize;
        let deg = graph.degree(NodeId(v));
        let s0 = off[v] - slot_base;
        if injector.is_some_and(|inj| inj.is_crashed(NodeId(v), round)) {
            // a crashed node consumes nothing and sends nothing; its
            // queued arrivals are lost
            for slot in &mut slots[s0..s0 + deg] {
                if let Some((_, copies)) = slot.take() {
                    scratch.crash_lost += u64::from(copies);
                }
            }
            continue;
        }
        scratch.inbox.clear();
        for (p, slot) in slots[s0..s0 + deg].iter_mut().enumerate() {
            if let Some((msg, copies)) = slot.take() {
                for _ in 1..copies {
                    scratch.inbox.push((Port(p), msg.clone()));
                }
                scratch.inbox.push((Port(p), msg));
            }
        }
        let node = &mut nodes[v - node_base];
        let violation = execute_node_round(
            graph,
            ids,
            v,
            round,
            node,
            &scratch.inbox,
            &mut scratch.outbox,
        );
        if let Some(port) = violation {
            if scratch.violation.is_none() {
                scratch.violation = Some((v32, port));
            }
        }
        for (p, slot) in scratch.outbox.iter_mut().enumerate() {
            if let Some(msg) = slot.take() {
                scratch.staged.push((v32, p as u32, msg));
            }
        }
        if !node.is_done() {
            scratch.undone.push(v32);
        }
    }
}

/// Shards smaller than this run inline even when more threads are
/// configured — spawn overhead would dominate tiny rounds.
const MIN_SHARD_NODES: usize = 32;

/// The engine proper: owns the automata, the arena, the schedule
/// bookkeeping, and the accounting shared by every execution mode.
pub(crate) struct RoundEngine<'g, P: Protocol> {
    graph: &'g Graph,
    config: EngineConfig,
    nodes: Vec<P>,
    /// Application-level node ids, hoisted out of the round loop.
    ids: Vec<u64>,
    /// `rev_port[v][p]`: the port of the edge `(v, p)` at its other
    /// endpoint, precomputed so delivery is O(1) per message.
    rev_port: Vec<Vec<Option<Port>>>,
    /// CSR offsets: node `v`'s arena slots are `off[v]..off[v + 1]`.
    off: Vec<usize>,
    /// Arena being consumed this round (last round's deliveries).
    inbox: Vec<Slot<P::Msg>>,
    /// Arena receiving this round's sends (next round's inbox).
    pending: Vec<Slot<P::Msg>>,
    /// Message copies queued in `pending`.
    pending_count: u64,
    /// Epoch stamps marking nodes already in `receivers` this round.
    recv_mark: Vec<u64>,
    /// Nodes with queued messages in `pending`, sorted after each step.
    receivers: Vec<u32>,
    /// Nodes reporting `!is_done()` as of their last execution, sorted.
    undone: Vec<u32>,
    /// Scratch for the current round's active list.
    active: Vec<u32>,
    scratch: Vec<WorkerScratch<P::Msg>>,
    /// The first step visits every node regardless of schedule, matching
    /// the historical round-0 behaviour.
    first_step: bool,
    round: u64,
    report: RunReport,
    injector: Option<FaultInjector>,
    last_activity: u64,
    /// Messages lost in the inboxes of crashed nodes (counted separately
    /// from the injector's link-level drops).
    crash_lost: u64,
}

impl<'g, P: Protocol> RoundEngine<'g, P> {
    /// Creates an engine with one automaton per node.
    ///
    /// # Panics
    ///
    /// Panics if `nodes.len() != graph.node_count()`.
    pub fn new(
        graph: &'g Graph,
        nodes: Vec<P>,
        config: EngineConfig,
        injector: Option<FaultInjector>,
    ) -> Self {
        assert_eq!(
            nodes.len(),
            graph.node_count(),
            "one automaton per node required"
        );
        let n = graph.node_count();
        let ids: Vec<u64> = (0..n).map(|v| graph.id_of(NodeId(v))).collect();
        let rev_port = reverse_port_table(graph);
        let mut off = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        off.push(0);
        for v in 0..n {
            acc += graph.degree(NodeId(v));
            off.push(acc);
        }
        let undone = (0..n as u32)
            .filter(|&v| !nodes[v as usize].is_done())
            .collect();
        RoundEngine {
            graph,
            config,
            nodes,
            ids,
            rev_port,
            off,
            inbox: (0..acc).map(|_| None).collect(),
            pending: (0..acc).map(|_| None).collect(),
            pending_count: 0,
            recv_mark: vec![0; n],
            receivers: Vec::new(),
            undone,
            active: Vec::new(),
            scratch: Vec::new(),
            first_step: true,
            round: 0,
            report: RunReport::default(),
            injector,
            last_activity: 0,
            crash_lost: 0,
        }
    }

    pub fn nodes(&self) -> &[P] {
        &self.nodes
    }

    pub fn into_parts(self) -> (Vec<P>, RunReport) {
        (self.nodes, self.report)
    }

    pub fn report(&self) -> &RunReport {
        &self.report
    }

    pub fn round(&self) -> u64 {
        self.round
    }

    /// Whether every surviving node is done and no messages are queued.
    /// Crash excuses are evaluated at the *current* round, so a node
    /// scheduled to crash later still counts as unfinished now.
    pub fn quiescent(&self) -> bool {
        self.pending_count == 0
            && match &self.injector {
                None => self.undone.is_empty(),
                Some(inj) => self
                    .undone
                    .iter()
                    .all(|&v| inj.is_crashed(NodeId(v as usize), self.round)),
            }
    }

    /// Snapshot of who is stuck: unfinished survivors, per-node queued
    /// message counts (copies included, read straight from the arena),
    /// and crash context.
    pub fn stall_report(&self) -> StallReport {
        let round = self.round;
        let is_crashed = |v: usize| {
            self.injector
                .as_ref()
                .is_some_and(|inj| inj.is_crashed(NodeId(v), round))
        };
        StallReport {
            not_done: self
                .undone
                .iter()
                .map(|&v| v as usize)
                .filter(|&v| !is_crashed(v))
                .map(NodeId)
                .collect(),
            pending: self
                .receivers
                .iter()
                .map(|&v| (NodeId(v as usize), self.queued_at(v as usize)))
                .filter(|&(_, depth)| depth > 0)
                .collect(),
            last_activity: self.last_activity,
            crashed: (0..self.nodes.len())
                .filter(|&v| is_crashed(v))
                .map(NodeId)
                .collect(),
        }
    }

    /// Message copies queued for `v` in the pending arena.
    fn queued_at(&self, v: usize) -> usize {
        self.pending[self.off[v]..self.off[v + 1]]
            .iter()
            .filter_map(|s| s.as_ref().map(|&(_, copies)| copies as usize))
            .sum()
    }

    /// Rebuilds the per-node pending queues in the legacy
    /// `Vec<Vec<(Port, Msg)>>` shape (sorted by port, duplicates
    /// adjacent) for invariant checks. Allocates; only called when
    /// invariants are registered.
    pub fn materialize_pending(&self) -> Vec<Vec<(Port, P::Msg)>> {
        (0..self.nodes.len())
            .map(|v| {
                let mut queue = Vec::new();
                for (p, slot) in self.pending[self.off[v]..self.off[v + 1]]
                    .iter()
                    .enumerate()
                {
                    if let Some((msg, copies)) = slot {
                        for _ in 0..*copies {
                            queue.push((Port(p), msg.clone()));
                        }
                    }
                }
                queue
            })
            .collect()
    }

    /// Executes a single round: delivers queued messages, steps the
    /// scheduled automata (sharded across workers when configured), and
    /// merges the staged sends in node order.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CongestViolation`] on a double send and
    /// [`SimError::BrokenTopology`] on an asymmetric adjacency list.
    pub fn step(&mut self) -> Result<(), SimError> {
        let n = self.graph.node_count();
        // the drained inbox arena becomes the next pending buffer:
        // zero allocation per round
        std::mem::swap(&mut self.inbox, &mut self.pending);
        self.pending_count = 0;

        self.active.clear();
        if self.first_step || self.config.scheduling == Scheduling::FullScan {
            self.active.extend(0..n as u32);
        } else {
            merge_sorted_dedup(&self.undone, &self.receivers, &mut self.active);
        }
        self.first_step = false;
        self.receivers.clear();

        let shards = self
            .config
            .threads
            .min(self.active.len() / MIN_SHARD_NODES)
            .max(1);
        if self.scratch.len() < shards {
            self.scratch.resize_with(shards, WorkerScratch::default);
        }

        if shards == 1 {
            run_shard(
                self.graph,
                &self.ids,
                &self.off,
                self.injector.as_ref(),
                self.round,
                &self.active,
                0,
                &mut self.nodes,
                0,
                &mut self.inbox,
                &mut self.scratch[0],
            );
        } else {
            let per = self.active.len().div_ceil(shards);
            let graph = self.graph;
            let ids = &self.ids;
            let off = &self.off;
            let injector = self.injector.as_ref();
            let round = self.round;
            let active = &self.active;
            let mut nodes_tail: &mut [P] = &mut self.nodes;
            let mut slots_tail: &mut [Slot<P::Msg>] = &mut self.inbox;
            let mut nodes_cut = 0usize;
            let mut slots_cut = 0usize;
            let mut scratch_iter = self.scratch.iter_mut();
            std::thread::scope(|scope| {
                let chunks: Vec<&[u32]> = active.chunks(per).collect();
                let last = chunks.len() - 1;
                for (ci, chunk) in chunks.into_iter().enumerate() {
                    let node_lo = chunk[0] as usize;
                    let node_hi = *chunk.last().expect("chunks are non-empty") as usize + 1;
                    let (head_n, tail_n) =
                        std::mem::take(&mut nodes_tail).split_at_mut(node_hi - nodes_cut);
                    let shard_nodes = &mut head_n[node_lo - nodes_cut..];
                    nodes_tail = tail_n;
                    let (slot_lo, slot_hi) = (off[node_lo], off[node_hi]);
                    let (head_s, tail_s) =
                        std::mem::take(&mut slots_tail).split_at_mut(slot_hi - slots_cut);
                    let shard_slots = &mut head_s[slot_lo - slots_cut..];
                    slots_tail = tail_s;
                    nodes_cut = node_hi;
                    slots_cut = slot_hi;
                    let scratch = scratch_iter.next().expect("one scratch per shard");
                    let mut run = move || {
                        run_shard(
                            graph,
                            ids,
                            off,
                            injector,
                            round,
                            chunk,
                            node_lo,
                            shard_nodes,
                            slot_lo,
                            shard_slots,
                            scratch,
                        )
                    };
                    if ci == last {
                        // the caller's thread works the final shard
                        // instead of idling in join
                        run();
                    } else {
                        scope.spawn(run);
                    }
                }
            });
        }

        let round_msgs = self.merge_staged(shards)?;

        {
            // shards cover ascending node ranges, so concatenating their
            // undone lists keeps the global list sorted
            let (undone, scratch) = (&mut self.undone, &mut self.scratch);
            undone.clear();
            for s in scratch[..shards].iter_mut() {
                undone.append(&mut s.undone);
            }
        }
        self.receivers.sort_unstable();
        if let Some(inj) = &self.injector {
            self.report.dropped_messages = inj.dropped() + self.crash_lost;
            self.report.duplicated_messages = inj.duplicated();
        }
        self.report.peak_messages_per_round = self.report.peak_messages_per_round.max(round_msgs);
        if round_msgs > 0 {
            self.last_activity = self.round;
        }
        self.round += 1;
        self.report.rounds = self.round;
        Ok(())
    }

    /// Replays the staged sends of every shard in ascending node order:
    /// message accounting, fault-injector transmission (the *only* place
    /// its RNG advances), and arena delivery. Returns the number of
    /// messages sent this round.
    fn merge_staged(&mut self, shards: usize) -> Result<u64, SimError> {
        let round = self.round;
        // On a double send the sequential loop aborts at the violating
        // node: its sends and every later node's sends never happen.
        // Reproduce that cut-off exactly.
        let cut = self.scratch[..shards]
            .iter()
            .filter_map(|s| s.violation)
            .min_by_key(|&(v, _)| v);
        let cut_node = cut.map_or(u32::MAX, |(v, _)| v);
        let mut round_msgs = 0u64;
        let RoundEngine {
            graph,
            rev_port,
            off,
            pending,
            pending_count,
            recv_mark,
            receivers,
            injector,
            report,
            scratch,
            crash_lost,
            ..
        } = self;
        let epoch = round + 1;
        for s in scratch[..shards].iter_mut() {
            *crash_lost += s.crash_lost;
            for (v32, p32, msg) in s.staged.drain(..) {
                if v32 >= cut_node {
                    continue;
                }
                let (v, p) = (v32 as usize, p32 as usize);
                let Some(rp) = rev_port[v][p] else {
                    return Err(SimError::BrokenTopology {
                        node: NodeId(v),
                        port: Port(p),
                    });
                };
                let arc = graph.neighbors(NodeId(v))[p];
                let bits = msg.size_bits();
                report.messages += 1;
                report.total_bits += bits;
                report.max_message_bits = report.max_message_bits.max(bits);
                round_msgs += 1;
                let copies = match injector.as_mut() {
                    None => 1,
                    Some(inj) => inj.transmit(arc.edge, round).copies.len() as u32,
                };
                if copies == 0 {
                    continue; // dropped on the wire
                }
                let to = arc.to.0;
                let slot = &mut pending[off[to] + rp.0];
                match slot {
                    // only fault duplication can target an occupied slot:
                    // one sender per edge direction per round
                    Some((_, existing)) => *existing += copies,
                    None => *slot = Some((msg, copies)),
                }
                *pending_count += u64::from(copies);
                if recv_mark[to] != epoch {
                    recv_mark[to] = epoch;
                    receivers.push(to as u32);
                }
            }
        }
        if let Some((v, port)) = cut {
            return Err(SimError::CongestViolation {
                node: NodeId(v as usize),
                port,
                round,
            });
        }
        Ok(round_msgs)
    }
}

/// The **pre-engine reference loop**, retained verbatim as a benchmarking
/// baseline: per-node `Vec<Vec<(Port, Msg)>>` inboxes with a per-round
/// `sort_by_key`, a freshly allocated [`Outbox`] per node per round, and a
/// full scan of all `n` automata every round. Fault-free only. The engine
/// must produce byte-identical `(nodes, RunReport)` to this loop; the
/// `engine` bench and experiment E21 measure the speedup against it.
pub fn run_reference_loop<P: Protocol>(
    graph: &Graph,
    mut nodes: Vec<P>,
    max_rounds: u64,
) -> Result<(Vec<P>, RunReport), SimError> {
    let n = graph.node_count();
    assert_eq!(nodes.len(), n, "one automaton per node");
    let ids: Vec<u64> = graph.nodes().map(|v| graph.id_of(v)).collect();
    let rev = reverse_port_table(graph);
    let mut inboxes: Vec<Vec<(Port, P::Msg)>> = vec![Vec::new(); n];
    let mut pending: Vec<Vec<(Port, P::Msg)>> = vec![Vec::new(); n];
    let mut report = RunReport::default();
    let mut round = 0u64;
    while !(pending.iter().all(Vec::is_empty) && nodes.iter().all(Protocol::is_done)) {
        if round >= max_rounds {
            return Err(SimError::RoundLimitExceeded {
                limit: max_rounds,
                stall: StallReport {
                    not_done: (0..n)
                        .filter(|&v| !nodes[v].is_done())
                        .map(NodeId)
                        .collect(),
                    pending: (0..n)
                        .filter(|&v| !pending[v].is_empty())
                        .map(|v| (NodeId(v), pending[v].len()))
                        .collect(),
                    last_activity: round,
                    crashed: Vec::new(),
                },
            });
        }
        std::mem::swap(&mut inboxes, &mut pending);
        let mut round_msgs = 0u64;
        for v in 0..n {
            let mut inbox = std::mem::take(&mut inboxes[v]);
            inbox.sort_by_key(|&(p, _)| p);
            let arcs = graph.neighbors(NodeId(v));
            let ctx = NodeCtx::new(NodeId(v), ids[v], round, arcs, &ids);
            let mut out = Outbox::with_degree(arcs.len());
            nodes[v].round(&ctx, &inbox, &mut out);
            if let Some(port) = out.violation() {
                return Err(SimError::CongestViolation {
                    node: NodeId(v),
                    port,
                    round,
                });
            }
            for (p, slot) in out.into_slots().into_iter().enumerate() {
                let Some(msg) = slot else { continue };
                let Some(rp) = rev[v][p] else {
                    return Err(SimError::BrokenTopology {
                        node: NodeId(v),
                        port: Port(p),
                    });
                };
                let bits = msg.size_bits();
                report.messages += 1;
                report.total_bits += bits;
                report.max_message_bits = report.max_message_bits.max(bits);
                round_msgs += 1;
                pending[arcs[p].to.0].push((rp, msg));
            }
        }
        report.peak_messages_per_round = report.peak_messages_per_round.max(round_msgs);
        round += 1;
        report.rounds = round;
    }
    Ok((nodes, report))
}

/// Merges two sorted, duplicate-free lists into `out`, deduplicating.
fn merge_sorted_dedup(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_dedup_interleaves() {
        let mut out = Vec::new();
        merge_sorted_dedup(&[1, 3, 5], &[2, 3, 6], &mut out);
        assert_eq!(out, vec![1, 2, 3, 5, 6]);
        out.clear();
        merge_sorted_dedup(&[], &[4, 9], &mut out);
        assert_eq!(out, vec![4, 9]);
    }

    #[test]
    fn fan_out_moves_last_copy() {
        let mut seen = Vec::new();
        fan_out(vec![10u64, 20], "msg".to_string(), |tag, m| {
            seen.push((tag, m));
        });
        assert_eq!(seen.len(), 2);
        assert_eq!(seen[0], (10, "msg".to_string()));
        assert_eq!(seen[1], (20, "msg".to_string()));
        let mut none = 0;
        fan_out(Vec::<u64>::new(), "x", |_, _| none += 1);
        assert_eq!(none, 0);
    }

    #[test]
    fn config_env_parsing_defaults() {
        let cfg = EngineConfig::default();
        assert_eq!(cfg.threads, 1);
        assert_eq!(cfg.scheduling, Scheduling::ActiveSet);
        let cfg = cfg.with_threads(4).with_scheduling(Scheduling::FullScan);
        assert_eq!(cfg.threads, 4);
        assert_eq!(cfg.scheduling, Scheduling::FullScan);
        assert_eq!(cfg.with_threads(0).threads, 1, "zero clamps to one");
    }
}
