//! The synchronous round loop, node context, and outbox.

use std::fmt;

use kdom_graph::graph::{Arc, Graph, NodeId};

use crate::report::RunReport;

/// A message that can travel over an edge.
///
/// `size_bits` feeds the CONGEST bit accounting; the default (64) models a
/// constant number of `O(log n)` words. Implementations carrying edge
/// descriptions (id, id, weight) should override it.
pub trait Message: Clone + fmt::Debug {
    /// Size of this message in bits, for the [`RunReport`] accounting.
    fn size_bits(&self) -> u64 {
        64
    }
}

/// The local port (index into a node's adjacency list) an edge occupies.
///
/// Ports are the only way a node refers to its incident edges, mirroring
/// the standard port-numbering convention of message-passing models.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Port(pub usize);

impl fmt::Debug for Port {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Read-only view a node gets of itself each round.
#[derive(Debug)]
pub struct NodeCtx<'a> {
    /// Dense index of this node (also usable as its unique id).
    pub node: NodeId,
    /// The node's unique application-level identifier.
    pub id: u64,
    /// Current round number, starting at 0.
    pub round: u64,
    /// Incident edges, indexed by [`Port`]. Each [`Arc`] exposes the edge
    /// weight; `neighbor_id` exposes the remote identifier (both are local
    /// knowledge in the paper's model).
    pub arcs: &'a [Arc],
    ids: &'a [u64],
}

impl<'a> NodeCtx<'a> {
    pub(crate) fn new(
        node: NodeId,
        id: u64,
        round: u64,
        arcs: &'a [Arc],
        ids: &'a [u64],
    ) -> Self {
        NodeCtx { node, id, round, arcs, ids }
    }
}

impl NodeCtx<'_> {
    /// Number of incident edges.
    #[inline]
    pub fn degree(&self) -> usize {
        self.arcs.len()
    }

    /// Unique identifier of the neighbor across `port`.
    #[inline]
    pub fn neighbor_id(&self, port: Port) -> u64 {
        self.ids[self.arcs[port.0].to.0]
    }

    /// Weight of the edge at `port`.
    #[inline]
    pub fn edge_weight(&self, port: Port) -> u64 {
        self.arcs[port.0].weight
    }

    /// All ports.
    pub fn ports(&self) -> impl Iterator<Item = Port> {
        (0..self.arcs.len()).map(Port)
    }
}

/// Per-round send buffer: at most one message per port.
#[derive(Debug)]
pub struct Outbox<M> {
    slots: Vec<Option<M>>,
}

impl<M: Message> Outbox<M> {
    pub(crate) fn with_degree(degree: usize) -> Self {
        Outbox { slots: (0..degree).map(|_| None).collect() }
    }

    pub(crate) fn into_slots(self) -> Vec<Option<M>> {
        self.slots
    }

    /// Sends `msg` over `port`.
    ///
    /// # Panics
    ///
    /// Panics if a message was already queued on `port` this round — that
    /// would violate the CONGEST one-message-per-edge-per-round rule.
    pub fn send(&mut self, port: Port, msg: M) {
        let slot = &mut self.slots[port.0];
        assert!(
            slot.is_none(),
            "CONGEST violation: two messages on {port:?} in one round"
        );
        *slot = Some(msg);
    }

    /// Sends a copy of `msg` over every port.
    pub fn broadcast(&mut self, msg: M) {
        for i in 0..self.slots.len() {
            self.send(Port(i), msg.clone());
        }
    }

    /// Sends a copy of `msg` over every port except `skip`.
    pub fn broadcast_except(&mut self, msg: M, skip: Port) {
        for i in 0..self.slots.len() {
            if i != skip.0 {
                self.send(Port(i), msg.clone());
            }
        }
    }

    /// Whether anything has been queued this round.
    pub fn is_empty(&self) -> bool {
        self.slots.iter().all(Option::is_none)
    }
}

/// A per-node automaton executed synchronously by the [`Simulator`].
pub trait Protocol {
    /// The message type of this protocol.
    type Msg: Message;

    /// Executes one synchronous round.
    ///
    /// `inbox` holds the messages sent to this node in the previous round,
    /// ordered by port. Messages queued in `out` are delivered at the start
    /// of the next round.
    fn round(&mut self, ctx: &NodeCtx<'_>, inbox: &[(Port, Self::Msg)], out: &mut Outbox<Self::Msg>);

    /// Local termination flag. The simulator stops once every node is done
    /// *and* no messages are in flight; a node may "un-done" itself if a
    /// later message re-activates it.
    fn is_done(&self) -> bool;
}

/// Errors the simulator can report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// The protocol did not reach quiescence within the round budget.
    RoundLimitExceeded {
        /// The budget that was exhausted.
        limit: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::RoundLimitExceeded { limit } => {
                write!(f, "protocol did not quiesce within {limit} rounds")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Deterministic lockstep executor of a [`Protocol`] over a graph.
#[derive(Debug)]
pub struct Simulator<'g, P: Protocol> {
    graph: &'g Graph,
    nodes: Vec<P>,
    /// Messages to deliver at the next round: `pending[v]` sorted by port.
    pending: Vec<Vec<(Port, P::Msg)>>,
    round: u64,
    report: RunReport,
}

impl<'g, P: Protocol> Simulator<'g, P> {
    /// Creates a simulator with one automaton per node.
    ///
    /// # Panics
    ///
    /// Panics if `nodes.len() != graph.node_count()`.
    pub fn new(graph: &'g Graph, nodes: Vec<P>) -> Self {
        assert_eq!(
            nodes.len(),
            graph.node_count(),
            "one automaton per node required"
        );
        let pending = (0..graph.node_count()).map(|_| Vec::new()).collect();
        Simulator { graph, nodes, pending, round: 0, report: RunReport::default() }
    }

    /// The node automata (for output extraction after a run).
    pub fn nodes(&self) -> &[P] {
        &self.nodes
    }

    /// Consumes the simulator, returning the automata and the report.
    pub fn into_parts(self) -> (Vec<P>, RunReport) {
        (self.nodes, self.report)
    }

    /// Statistics accumulated so far.
    pub fn report(&self) -> &RunReport {
        &self.report
    }

    /// Whether every node is done and no messages are in flight.
    pub fn quiescent(&self) -> bool {
        self.pending.iter().all(Vec::is_empty) && self.nodes.iter().all(P::is_done)
    }

    /// Executes a single round: delivers pending messages, steps every
    /// automaton, and queues the newly sent messages.
    pub fn step(&mut self) {
        let n = self.graph.node_count();
        let ids: Vec<u64> = (0..n).map(|v| self.graph.id_of(NodeId(v))).collect();
        let inboxes = std::mem::replace(
            &mut self.pending,
            (0..n).map(|_| Vec::new()).collect(),
        );
        let mut round_msgs = 0u64;
        for v in 0..n {
            let ctx = NodeCtx {
                node: NodeId(v),
                id: ids[v],
                round: self.round,
                arcs: self.graph.neighbors(NodeId(v)),
                ids: &ids,
            };
            let mut out = Outbox::with_degree(ctx.degree());
            self.nodes[v].round(&ctx, &inboxes[v], &mut out);
            for (p, slot) in out.slots.into_iter().enumerate() {
                let Some(msg) = slot else { continue };
                let arc = self.graph.neighbors(NodeId(v))[p];
                // The receiving port: position of this edge in the
                // receiver's adjacency list.
                let rp = self
                    .graph
                    .neighbors(arc.to)
                    .iter()
                    .position(|a| a.edge == arc.edge)
                    .expect("edge present on both endpoints");
                let bits = msg.size_bits();
                self.report.messages += 1;
                self.report.total_bits += bits;
                self.report.max_message_bits = self.report.max_message_bits.max(bits);
                round_msgs += 1;
                self.pending[arc.to.0].push((Port(rp), msg));
            }
        }
        for inbox in &mut self.pending {
            inbox.sort_by_key(|(p, _)| *p);
        }
        self.report.peak_messages_per_round =
            self.report.peak_messages_per_round.max(round_msgs);
        self.round += 1;
        self.report.rounds = self.round;
    }

    /// Runs until quiescence or until `max_rounds` rounds were executed.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::RoundLimitExceeded`] if the protocol is still
    /// active after `max_rounds` rounds.
    pub fn run(&mut self, max_rounds: u64) -> Result<RunReport, SimError> {
        while !self.quiescent() {
            if self.round >= max_rounds {
                return Err(SimError::RoundLimitExceeded { limit: max_rounds });
            }
            self.step();
        }
        Ok(self.report.clone())
    }
}

/// Convenience: builds a simulator, runs it to quiescence, and returns the
/// automata plus the report.
///
/// # Errors
///
/// Propagates [`SimError::RoundLimitExceeded`].
pub fn run_protocol<P: Protocol>(
    graph: &Graph,
    nodes: Vec<P>,
    max_rounds: u64,
) -> Result<(Vec<P>, RunReport), SimError> {
    let mut sim = Simulator::new(graph, nodes);
    sim.run(max_rounds)?;
    let (nodes, report) = sim.into_parts();
    Ok((nodes, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdom_graph::generators::{path, star, GenConfig};
    use kdom_graph::properties::bfs_distances;

    /// Distributed BFS used as the simulator's own smoke test.
    #[derive(Clone, Debug)]
    struct Dist(u32);
    impl Message for Dist {
        fn size_bits(&self) -> u64 {
            32
        }
    }

    struct Bfs {
        source: bool,
        dist: Option<u32>,
    }

    impl Protocol for Bfs {
        type Msg = Dist;
        fn round(&mut self, ctx: &NodeCtx<'_>, inbox: &[(Port, Dist)], out: &mut Outbox<Dist>) {
            if self.dist.is_some() {
                return;
            }
            if self.source && ctx.round == 0 {
                self.dist = Some(0);
                out.broadcast(Dist(0));
            } else if let Some((p, m)) = inbox.iter().min_by_key(|(_, m)| m.0) {
                self.dist = Some(m.0 + 1);
                out.broadcast_except(Dist(m.0 + 1), *p);
            }
        }
        fn is_done(&self) -> bool {
            self.dist.is_some()
        }
    }

    fn run_bfs(g: &kdom_graph::Graph) -> (Vec<u32>, RunReport) {
        let nodes = (0..g.node_count())
            .map(|i| Bfs { source: i == 0, dist: None })
            .collect();
        let (nodes, report) = run_protocol(g, nodes, 10_000).unwrap();
        (nodes.into_iter().map(|b| b.dist.unwrap()).collect(), report)
    }

    #[test]
    fn bfs_on_path_matches_reference() {
        let g = path(&GenConfig::with_seed(12, 0));
        let (dist, report) = run_bfs(&g);
        assert_eq!(dist, bfs_distances(&g, NodeId(0)));
        // eccentricity 11, +1 final processing round
        assert_eq!(report.rounds, 12);
        assert_eq!(report.max_message_bits, 32);
    }

    #[test]
    fn bfs_on_star_is_constant_time() {
        let g = star(&GenConfig::with_seed(100, 0));
        let (dist, report) = run_bfs(&g);
        assert_eq!(dist, bfs_distances(&g, NodeId(0)));
        assert_eq!(report.rounds, 2);
    }

    #[test]
    fn message_accounting() {
        let g = path(&GenConfig::with_seed(3, 0));
        let (_, report) = run_bfs(&g);
        // node0 sends 1 (to node1), node1 forwards 1 (to node2), node2
        // has nowhere left to forward => 2 messages
        assert_eq!(report.messages, 2);
        assert_eq!(report.total_bits, 2 * 32);
        assert!(report.peak_messages_per_round >= 1);
    }

    #[test]
    fn round_limit_errors() {
        #[derive(Debug)]
        struct Chatter;
        #[derive(Clone, Debug)]
        struct Ping;
        impl Message for Ping {}
        impl Protocol for Chatter {
            type Msg = Ping;
            fn round(&mut self, _: &NodeCtx<'_>, _: &[(Port, Ping)], out: &mut Outbox<Ping>) {
                out.broadcast(Ping);
            }
            fn is_done(&self) -> bool {
                false
            }
        }
        let g = path(&GenConfig::with_seed(2, 0));
        let err = run_protocol(&g, vec![Chatter, Chatter], 5).unwrap_err();
        assert_eq!(err, SimError::RoundLimitExceeded { limit: 5 });
        assert!(err.to_string().contains("5 rounds"));
    }

    #[test]
    #[should_panic(expected = "CONGEST violation")]
    fn double_send_panics() {
        struct Bad;
        #[derive(Clone, Debug)]
        struct Ping;
        impl Message for Ping {}
        impl Protocol for Bad {
            type Msg = Ping;
            fn round(&mut self, _: &NodeCtx<'_>, _: &[(Port, Ping)], out: &mut Outbox<Ping>) {
                out.send(Port(0), Ping);
                out.send(Port(0), Ping);
            }
            fn is_done(&self) -> bool {
                false
            }
        }
        let g = path(&GenConfig::with_seed(2, 0));
        let _ = run_protocol(&g, vec![Bad, Bad], 5);
    }

    #[test]
    fn ports_are_consistent_across_endpoints() {
        // Send a message carrying the sender's id; receiver verifies the
        // arrival port's neighbor_id matches.
        #[derive(Clone, Debug)]
        struct IdMsg(u64);
        impl Message for IdMsg {}
        struct Check {
            ok: bool,
            fired: bool,
        }
        impl Protocol for Check {
            type Msg = IdMsg;
            fn round(&mut self, ctx: &NodeCtx<'_>, inbox: &[(Port, IdMsg)], out: &mut Outbox<IdMsg>) {
                if ctx.round == 0 {
                    out.broadcast(IdMsg(ctx.id));
                    self.fired = true;
                }
                for (p, m) in inbox {
                    if ctx.neighbor_id(*p) != m.0 {
                        self.ok = false;
                    }
                }
            }
            fn is_done(&self) -> bool {
                self.fired
            }
        }
        let g = star(&GenConfig::with_seed(9, 3));
        let nodes = (0..9).map(|_| Check { ok: true, fired: false }).collect();
        let (nodes, _) = run_protocol(&g, nodes, 10).unwrap();
        assert!(nodes.iter().all(|n| n.ok));
    }

    #[test]
    fn broadcast_except_skips_port() {
        let g = path(&GenConfig::with_seed(3, 0));
        // middle node (degree 2) broadcasts except port 0 at round 0
        #[derive(Debug)]
        struct Mid {
            ticked: bool,
        }
        #[derive(Clone, Debug)]
        struct Ping;
        impl Message for Ping {}
        impl Protocol for Mid {
            type Msg = Ping;
            fn round(&mut self, ctx: &NodeCtx<'_>, _: &[(Port, Ping)], out: &mut Outbox<Ping>) {
                if ctx.round == 0 && ctx.degree() == 2 {
                    out.broadcast_except(Ping, Port(0));
                }
                self.ticked = true;
            }
            fn is_done(&self) -> bool {
                self.ticked
            }
        }
        let nodes = (0..3).map(|_| Mid { ticked: false }).collect();
        let (_, report) = run_protocol(&g, nodes, 10).unwrap();
        assert_eq!(report.messages, 1);
        assert_eq!(report.rounds, 2);
    }
}
