//! The synchronous round loop, node context, outbox, and watchdog.

use std::fmt;

use kdom_graph::graph::{Arc, Graph, NodeId};

use crate::engine::{EngineConfig, RoundEngine};
use crate::faults::{FaultInjector, FaultPlan};
use crate::report::RunReport;

/// A message that can travel over an edge.
///
/// Every message must define a bit-exact encoding via
/// [`Wire`](crate::wire::Wire) — there is deliberately no default, so an
/// unencoded message type fails to compile instead of silently
/// mis-charging the CONGEST accounting. `size_bits` is *derived* from
/// the encoded length (a zero-allocation counting pass over
/// [`Wire::encode`](crate::wire::Wire::encode)), and wire-exact
/// execution (the default; `KDOM_WIRE=off` disables) routes every send
/// through the real frame. The `Send` bound lets the engine's parallel compute phase move
/// messages across worker shards; protocol messages are plain data, so
/// it is automatic.
pub trait Message: Clone + fmt::Debug + Send + crate::wire::Wire {
    /// Exact size of this message's wire encoding in bits, for the
    /// [`RunReport`] accounting. Provided — do not override; the single
    /// source of truth is the [`Wire`](crate::wire::Wire) encoding.
    fn size_bits(&self) -> u64 {
        self.encoded_bits()
    }
}

/// Bits in one CONGEST word under this repo's conventions: node ids and
/// edge weights are `u64` values below 2^48, so a "`O(log n)`-bit word"
/// is 48 bits.
pub const CONGEST_WORD_BITS: u64 = 48;

/// The CONGEST bit budget of a message carrying `words` `O(log n)`-bit
/// fields — `words * 48` under this repo's id/weight conventions.
///
/// Pass the result to
/// [`EngineConfig::with_bit_budget`](crate::engine::EngineConfig::with_bit_budget)
/// to make debug builds assert that every
/// sent message respects the bound, or compare it against
/// [`RunReport::max_message_bits`](crate::RunReport) after a run. The
/// widest message in the repo is the pipeline's edge descriptor:
/// `(id, id, weight)` = `congest_budget(3)` = 144 bits.
pub const fn congest_budget(words: u64) -> u64 {
    words * CONGEST_WORD_BITS
}

/// The local port (index into a node's adjacency list) an edge occupies.
///
/// Ports are the only way a node refers to its incident edges, mirroring
/// the standard port-numbering convention of message-passing models.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Port(pub usize);

impl fmt::Debug for Port {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Read-only view a node gets of itself each round.
#[derive(Debug)]
pub struct NodeCtx<'a> {
    /// Dense index of this node (also usable as its unique id).
    pub node: NodeId,
    /// The node's unique application-level identifier.
    pub id: u64,
    /// Current round number, starting at 0.
    pub round: u64,
    /// Incident edges, indexed by [`Port`]. Each [`Arc`] exposes the edge
    /// weight; `neighbor_id` exposes the remote identifier (both are local
    /// knowledge in the paper's model).
    pub arcs: &'a [Arc],
    ids: &'a [u64],
}

impl<'a> NodeCtx<'a> {
    pub(crate) fn new(node: NodeId, id: u64, round: u64, arcs: &'a [Arc], ids: &'a [u64]) -> Self {
        NodeCtx {
            node,
            id,
            round,
            arcs,
            ids,
        }
    }
}

impl NodeCtx<'_> {
    /// Number of incident edges.
    #[inline]
    pub fn degree(&self) -> usize {
        self.arcs.len()
    }

    /// Unique identifier of the neighbor across `port`.
    #[inline]
    pub fn neighbor_id(&self, port: Port) -> u64 {
        self.ids[self.arcs[port.0].to.0]
    }

    /// Weight of the edge at `port`.
    #[inline]
    pub fn edge_weight(&self, port: Port) -> u64 {
        self.arcs[port.0].weight
    }

    /// All ports.
    pub fn ports(&self) -> impl Iterator<Item = Port> {
        (0..self.arcs.len()).map(Port)
    }
}

/// Per-round send buffer: at most one message per port.
#[derive(Debug)]
pub struct Outbox<M> {
    slots: Vec<Option<M>>,
    violation: Option<Port>,
}

impl<M: Message> Outbox<M> {
    /// Creates an empty outbox for a node of the given degree.
    ///
    /// Protocol code receives its outbox from the engine; this is public
    /// for custom executors and benchmark harnesses that drive
    /// [`Protocol::round`] directly.
    pub fn with_degree(degree: usize) -> Self {
        Outbox {
            slots: (0..degree).map(|_| None).collect(),
            violation: None,
        }
    }

    /// Rebuilds an outbox from a recycled slot buffer, clearing it and
    /// resizing to `degree` — the engine's allocation-free path.
    pub(crate) fn recycle(mut slots: Vec<Option<M>>, degree: usize) -> Self {
        slots.clear();
        slots.resize_with(degree, || None);
        Outbox {
            slots,
            violation: None,
        }
    }

    /// Consumes the outbox, yielding the queued message (if any) per port.
    pub fn into_slots(self) -> Vec<Option<M>> {
        self.slots
    }

    /// The first CONGEST violation recorded this round, if any.
    pub fn violation(&self) -> Option<Port> {
        self.violation
    }

    /// Sends `msg` over `port`.
    ///
    /// Queuing a second message on the same port in one round violates the
    /// CONGEST one-message-per-edge-per-round rule; the violation is
    /// recorded and surfaced by the simulator as
    /// [`SimError::CongestViolation`] (the offending message is discarded).
    pub fn send(&mut self, port: Port, msg: M) {
        let slot = &mut self.slots[port.0];
        if slot.is_some() {
            self.violation.get_or_insert(port);
            return;
        }
        *slot = Some(msg);
    }

    /// Sends a copy of `msg` over every port.
    pub fn broadcast(&mut self, msg: M) {
        for i in 0..self.slots.len() {
            self.send(Port(i), msg.clone());
        }
    }

    /// Sends a copy of `msg` over every port except `skip`.
    pub fn broadcast_except(&mut self, msg: M, skip: Port) {
        for i in 0..self.slots.len() {
            if i != skip.0 {
                self.send(Port(i), msg.clone());
            }
        }
    }

    /// Whether anything has been queued this round.
    pub fn is_empty(&self) -> bool {
        self.slots.iter().all(Option::is_none)
    }
}

/// When a node next needs to be stepped, as promised by
/// [`Protocol::next_wake`].
///
/// The engine uses this to *skip* rounds in which provably nothing can
/// happen: a round in which no messages are due and no node is ticking or
/// timer-armed advances the round counter in O(1) instead of scanning.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Wake {
    /// Step me every round (the conservative default — always correct).
    EveryRound,
    /// I act spontaneously no earlier than round `r`; until then I only
    /// need to be stepped when a message arrives.
    At(u64),
    /// I act only in response to messages; never wake me on a timer.
    OnMessage,
}

/// A per-node automaton executed synchronously by the [`Simulator`].
///
/// The `Send` bound lets the engine shard automata across worker threads
/// when `KDOM_THREADS` asks for a parallel compute phase; automata are
/// plain state machines, so it is automatic.
pub trait Protocol: Send {
    /// The message type of this protocol.
    type Msg: Message;

    /// Executes one synchronous round.
    ///
    /// `inbox` holds the messages sent to this node in the previous round,
    /// ordered by port. Messages queued in `out` are delivered at the start
    /// of the next round.
    fn round(
        &mut self,
        ctx: &NodeCtx<'_>,
        inbox: &[(Port, Self::Msg)],
        out: &mut Outbox<Self::Msg>,
    );

    /// Local termination flag. The simulator stops once every node is done
    /// *and* no messages are in flight; a node may "un-done" itself if a
    /// later message re-activates it.
    fn is_done(&self) -> bool;

    /// Declares when this node next needs to run, queried after each of
    /// its executions (with `now` = the round that just ran). The engine
    /// uses the answer both to shrink the per-round active set and to
    /// fast-forward over globally silent stretches.
    ///
    /// **Contract:** for every round `r` strictly between `now` and the
    /// promised wake, executing [`Protocol::round`] with an empty inbox
    /// must be a no-op (no sends, no observable state change, same
    /// `is_done`). Message arrivals always override the promise — a node
    /// is stepped whenever something was delivered to it, whatever it
    /// returned here. Returning a *superset* of the rounds a node acts in
    /// (e.g. [`Wake::EveryRound`], the default) is always safe; returning
    /// too few rounds silently skips protocol actions.
    fn next_wake(&self, _now: u64) -> Wake {
        Wake::EveryRound
    }
}

/// Diagnostic snapshot attached to stall-style errors: which nodes are
/// stuck, how deep their queues are, and when the run last made progress.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StallReport {
    /// Nodes whose [`Protocol::is_done`] is still `false` (crashed nodes
    /// excluded — they are expected to be unfinished).
    pub not_done: Vec<NodeId>,
    /// Nonempty pending queues: `(node, queued message count)`.
    pub pending: Vec<(NodeId, usize)>,
    /// Last round (or virtual time, for the α executor) at which any
    /// message was delivered or any node made progress.
    pub last_activity: u64,
    /// Nodes that crashed per the fault plan.
    pub crashed: Vec<NodeId>,
    /// Nodes still live (not crashed) when the report was taken — with
    /// [`StallReport::last_activity`], enough to diagnose a livelock
    /// from the report alone: who could still act, and since when nobody
    /// has.
    pub live: Vec<NodeId>,
    /// The round (or pulse) at which the watchdog took this snapshot;
    /// `stopped_at - last_activity` is how long the run sat silent.
    pub stopped_at: u64,
}

impl StallReport {
    fn describe(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "; {} node(s) not done", self.not_done.len())?;
        if !self.not_done.is_empty() {
            let head: Vec<String> = self
                .not_done
                .iter()
                .take(8)
                .map(|v| format!("{v:?}"))
                .collect();
            write!(
                f,
                " [{}{}]",
                head.join(", "),
                if self.not_done.len() > 8 { ", …" } else { "" }
            )?;
        }
        let depth: usize = self.pending.iter().map(|(_, d)| d).sum();
        write!(f, "; {depth} message(s) pending",)?;
        if !self.crashed.is_empty() {
            write!(f, "; {} node(s) crashed", self.crashed.len())?;
        }
        write!(
            f,
            "; {} node(s) live; last activity at {} ({} silent before the stop at {})",
            self.live.len(),
            self.last_activity,
            self.stopped_at.saturating_sub(self.last_activity),
            self.stopped_at
        )
    }
}

/// Errors the simulator can report.
///
/// Every variant carries enough context to debug the failing run without
/// re-running it — the watchdog philosophy is that a simulation never
/// fails silently.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// The protocol did not reach quiescence within the round budget.
    RoundLimitExceeded {
        /// The budget that was exhausted.
        limit: u64,
        /// Who is stuck and why.
        stall: StallReport,
    },
    /// The event queue drained while the protocol was still unfinished
    /// (asynchronous executor only) — typically lost messages with no
    /// recovery layer enabled.
    Stalled {
        /// Who is stuck and why.
        stall: StallReport,
    },
    /// A node queued two messages on one port in a single round.
    CongestViolation {
        /// The offending node.
        node: NodeId,
        /// The port that was double-sent.
        port: Port,
        /// The round in which it happened.
        round: u64,
    },
    /// An edge was present in one endpoint's adjacency list but not the
    /// other's — a corrupted topology.
    BrokenTopology {
        /// The sending node.
        node: NodeId,
        /// The port with no reverse entry.
        port: Port,
    },
    /// A user-registered per-round invariant check failed.
    InvariantViolation {
        /// Round at which the check failed.
        round: u64,
        /// Name the invariant was registered under.
        name: String,
        /// The checker's explanation.
        detail: String,
    },
    /// Wire-exact execution (the default; `KDOM_WIRE=off` disables)
    /// found a message whose frame failed to decode, or whose decoded
    /// form disagrees with what was sent — the codec and the message
    /// type are out of sync.
    WireMismatch {
        /// The sending node.
        node: NodeId,
        /// The port the message was sent on.
        port: Port,
        /// The round (or virtual time, for the α executor) of the send.
        round: u64,
        /// What the round trip got wrong.
        detail: String,
    },
    /// The reliable-delivery layer gave up on a link after exhausting its
    /// retransmission budget (asynchronous executor only).
    DeliveryExhausted {
        /// The sending node.
        node: NodeId,
        /// The port whose deliveries kept failing.
        port: Port,
        /// How many transmission attempts were made.
        attempts: u32,
    },
    /// A multi-process peer disappeared or went silent: its socket hit
    /// end-of-file, a read timed out past the heartbeat deadline, or its
    /// handshake disagreed about the protocol version or the graph
    /// (socket transport only).
    PeerLost {
        /// The shard index of the lost peer (`u32::MAX` for the
        /// coordinator, as seen from a worker).
        peer: u32,
        /// The round the run had reached when contact was lost.
        round: u64,
        /// What happened on the stream.
        detail: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::RoundLimitExceeded { limit, stall } => {
                write!(f, "protocol did not quiesce within {limit} rounds")?;
                stall.describe(f)
            }
            SimError::Stalled { stall } => {
                write!(f, "execution stalled: no events left before quiescence")?;
                stall.describe(f)
            }
            SimError::CongestViolation { node, port, round } => write!(
                f,
                "CONGEST violation: {node:?} sent two messages on {port:?} in round {round}"
            ),
            SimError::BrokenTopology { node, port } => write!(
                f,
                "broken topology: edge at {node:?} {port:?} is missing from its other endpoint"
            ),
            SimError::InvariantViolation {
                round,
                name,
                detail,
            } => {
                write!(f, "invariant '{name}' violated at round {round}: {detail}")
            }
            SimError::WireMismatch {
                node,
                port,
                round,
                detail,
            } => write!(
                f,
                "wire round-trip mismatch on {node:?} {port:?} at {round}: {detail}"
            ),
            SimError::DeliveryExhausted {
                node,
                port,
                attempts,
            } => write!(
                f,
                "reliable delivery exhausted after {attempts} attempts on {node:?} {port:?}"
            ),
            SimError::PeerLost {
                peer,
                round,
                detail,
            } => {
                if *peer == u32::MAX {
                    write!(f, "lost the coordinator at round {round}: {detail}")
                } else {
                    write!(f, "lost worker shard {peer} at round {round}: {detail}")
                }
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Read-only view handed to per-round invariant checks.
pub struct InvariantView<'a, P: Protocol> {
    /// The round that just executed.
    pub round: u64,
    /// All node automata.
    pub nodes: &'a [P],
    /// Messages queued for delivery next round, per node.
    pub pending: &'a [Vec<(Port, P::Msg)>],
}

type InvariantFn<P> = Box<dyn FnMut(&InvariantView<'_, P>) -> Result<(), String>>;

/// Deterministic lockstep executor of a [`Protocol`] over a graph.
///
/// A thin shell over the shared [`crate::engine`] core: the round loop,
/// message arena, scheduling, and (optional) parallel compute phase all
/// live there; this type adds the invariant hooks and the public
/// surface. Construction via [`Simulator::new`] reads the engine
/// configuration from the environment (`KDOM_THREADS`, `KDOM_SCHED`);
/// use [`Simulator::with_config`] to pin it explicitly.
pub struct Simulator<'g, P: Protocol> {
    engine: RoundEngine<'g, P>,
    invariants: Vec<(String, InvariantFn<P>)>,
}

impl<'g, P: Protocol> Simulator<'g, P> {
    /// Creates a simulator with one automaton per node, configured from
    /// the environment ([`EngineConfig::from_env`]).
    ///
    /// # Panics
    ///
    /// Panics if `nodes.len() != graph.node_count()`.
    pub fn new(graph: &'g Graph, nodes: Vec<P>) -> Self {
        Self::with_config(graph, nodes, EngineConfig::from_env())
    }

    /// Creates a simulator with an explicit engine configuration.
    ///
    /// # Panics
    ///
    /// Panics if `nodes.len() != graph.node_count()`.
    pub fn with_config(graph: &'g Graph, nodes: Vec<P>, config: EngineConfig) -> Self {
        Simulator {
            engine: RoundEngine::new(graph, nodes, config, None),
            invariants: Vec::new(),
        }
    }

    /// Creates a simulator that injects the faults described by `plan`.
    ///
    /// Crash times are interpreted as rounds; `max_extra_delay` is ignored
    /// (the synchronous model has no delivery delays). Without a recovery
    /// layer most protocols are *expected* to fail under loss — the
    /// watchdog turns that into a structured [`SimError`] instead of a
    /// hang or a wrong answer.
    ///
    /// # Panics
    ///
    /// Panics if `nodes.len() != graph.node_count()`.
    pub fn with_faults(graph: &'g Graph, nodes: Vec<P>, plan: &FaultPlan) -> Self {
        Self::with_faults_config(graph, nodes, plan, EngineConfig::from_env())
    }

    /// Like [`Simulator::with_faults`] with an explicit engine
    /// configuration. The injected fault stream is part of the
    /// deterministic run: it is identical across thread counts and
    /// scheduling policies.
    ///
    /// # Panics
    ///
    /// Panics if `nodes.len() != graph.node_count()`.
    pub fn with_faults_config(
        graph: &'g Graph,
        nodes: Vec<P>,
        plan: &FaultPlan,
        config: EngineConfig,
    ) -> Self {
        Simulator {
            engine: RoundEngine::new(graph, nodes, config, Some(FaultInjector::new(plan))),
            invariants: Vec::new(),
        }
    }

    /// Registers a per-round invariant check, run after every round; a
    /// `Err(detail)` return aborts the run with
    /// [`SimError::InvariantViolation`] naming `name`.
    pub fn add_invariant(
        &mut self,
        name: impl Into<String>,
        check: impl FnMut(&InvariantView<'_, P>) -> Result<(), String> + 'static,
    ) {
        self.invariants.push((name.into(), Box::new(check)));
    }

    /// The node automata (for output extraction after a run).
    pub fn nodes(&self) -> &[P] {
        self.engine.nodes()
    }

    /// Consumes the simulator, returning the automata and the report.
    pub fn into_parts(self) -> (Vec<P>, RunReport) {
        self.engine.into_parts()
    }

    /// Statistics accumulated so far.
    pub fn report(&self) -> &RunReport {
        self.engine.report()
    }

    /// Whether every surviving node is done and no messages are in flight.
    pub fn quiescent(&self) -> bool {
        self.engine.quiescent()
    }

    /// Attaches a [`TraceSink`](crate::trace::TraceSink) for this run,
    /// replacing the environment-selected one (`KDOM_TRACE`). The sink
    /// immediately receives the `run_start` event; the final report is
    /// emitted when [`Simulator::run`] reaches quiescence.
    pub fn set_trace(&mut self, sink: Box<dyn crate::trace::TraceSink>) {
        self.engine.attach_trace(Some(sink));
    }

    /// Skips ahead over provably-empty rounds without executing them
    /// (bounded by `limit`); a no-op unless the engine is idle-parked.
    /// [`Simulator::run`] calls this automatically — it is public so
    /// instrumented drivers (the bench harness's round profiler) can
    /// interleave skips with hand-timed [`Simulator::step`] calls.
    pub fn fast_forward(&mut self, limit: u64) {
        self.engine.fast_forward(limit);
    }

    /// `(jumps, skipped_rounds)` taken by quiescence fast-forward so far.
    pub fn fast_forward_stats(&self) -> (u64, u64) {
        self.engine.fast_forward_stats()
    }

    /// `(nanoseconds, round_trips)` spent in the wire codec so far; all
    /// zeros unless the run was configured with
    /// [`EngineConfig::with_codec_profile`](crate::EngineConfig::with_codec_profile).
    /// Profiling telemetry only — never part of [`RunReport`].
    pub fn codec_stats(&self) -> (u64, u64) {
        self.engine.codec_stats()
    }

    /// Executes a single round: delivers pending messages, steps the
    /// scheduled automata, and queues the newly sent messages.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CongestViolation`] on a double send and
    /// [`SimError::BrokenTopology`] on an asymmetric adjacency list.
    pub fn step(&mut self) -> Result<(), SimError> {
        self.engine.step()
    }

    fn check_invariants(&mut self) -> Result<(), SimError> {
        if self.invariants.is_empty() {
            return Ok(());
        }
        // The arena is flattened; rebuild the legacy per-node queue shape
        // the invariant API exposes (only paid when checks are registered).
        let pending = self.engine.materialize_pending();
        let view = InvariantView {
            round: self.engine.round(),
            nodes: self.engine.nodes(),
            pending: &pending,
        };
        for (name, check) in &mut self.invariants {
            if let Err(detail) = check(&view) {
                return Err(SimError::InvariantViolation {
                    round: view.round,
                    name: name.clone(),
                    detail,
                });
            }
        }
        Ok(())
    }

    /// Runs until quiescence or until `max_rounds` rounds were executed.
    ///
    /// When quiescence fast-forward is enabled ([`EngineConfig`], the
    /// default) and no invariant hooks are registered, stretches of rounds
    /// in which no message is due and no node is ticking are skipped in
    /// O(1) — the [`RunReport`] and any [`StallReport`] are byte-identical
    /// to the unskipped execution. Invariant hooks observe every round, so
    /// registering one disables the skip.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::RoundLimitExceeded`] (with a [`StallReport`]
    /// naming the stuck nodes) if the protocol is still active after
    /// `max_rounds` rounds, and propagates every error of [`Self::step`]
    /// and of registered invariant checks.
    pub fn run(&mut self, max_rounds: u64) -> Result<RunReport, SimError> {
        let fast_forward = self.invariants.is_empty();
        loop {
            if self.engine.quiescent() {
                break;
            }
            if fast_forward {
                self.engine.fast_forward(max_rounds);
                // the jump may have landed on a crash that excuses the
                // last unfinished nodes
                if self.engine.quiescent() {
                    break;
                }
            }
            if self.engine.round() >= max_rounds {
                return Err(SimError::RoundLimitExceeded {
                    limit: max_rounds,
                    stall: self.engine.stall_report(),
                });
            }
            self.engine.step()?;
            self.check_invariants()?;
        }
        self.engine.trace_run_end();
        Ok(self.engine.report().clone())
    }
}

/// Convenience: builds a simulator, runs it to quiescence, and returns the
/// automata plus the report. The engine configuration comes from the
/// environment (`KDOM_THREADS`, `KDOM_SCHED`).
///
/// # Errors
///
/// Propagates every [`SimError`] of [`Simulator::run`].
pub fn run_protocol<P: Protocol>(
    graph: &Graph,
    nodes: Vec<P>,
    max_rounds: u64,
) -> Result<(Vec<P>, RunReport), SimError> {
    run_protocol_with(graph, nodes, max_rounds, EngineConfig::from_env())
}

/// Like [`run_protocol`] with an explicit [`EngineConfig`].
///
/// # Errors
///
/// Propagates every [`SimError`] of [`Simulator::run`].
pub fn run_protocol_with<P: Protocol>(
    graph: &Graph,
    nodes: Vec<P>,
    max_rounds: u64,
    config: EngineConfig,
) -> Result<(Vec<P>, RunReport), SimError> {
    let mut sim = Simulator::with_config(graph, nodes, config);
    sim.run(max_rounds)?;
    Ok(sim.into_parts())
}

/// Convenience: like [`run_protocol`] but with a [`FaultPlan`] injected.
///
/// # Errors
///
/// Propagates every [`SimError`] of [`Simulator::run`].
pub fn run_protocol_faulty<P: Protocol>(
    graph: &Graph,
    nodes: Vec<P>,
    plan: &FaultPlan,
    max_rounds: u64,
) -> Result<(Vec<P>, RunReport), SimError> {
    run_protocol_faulty_with(graph, nodes, plan, max_rounds, EngineConfig::from_env())
}

/// Like [`run_protocol_faulty`] with an explicit [`EngineConfig`].
///
/// # Errors
///
/// Propagates every [`SimError`] of [`Simulator::run`].
pub fn run_protocol_faulty_with<P: Protocol>(
    graph: &Graph,
    nodes: Vec<P>,
    plan: &FaultPlan,
    max_rounds: u64,
    config: EngineConfig,
) -> Result<(Vec<P>, RunReport), SimError> {
    let mut sim = Simulator::with_faults_config(graph, nodes, plan, config);
    sim.run(max_rounds)?;
    Ok(sim.into_parts())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::reverse_port_table;
    use kdom_graph::generators::{path, star, GenConfig};
    use kdom_graph::properties::bfs_distances;

    /// Distributed BFS used as the simulator's own smoke test.
    #[derive(Clone, Debug)]
    struct Dist(u32);
    impl crate::wire::Wire for Dist {
        fn encode(&self, w: &mut crate::wire::BitWriter) {
            w.u32(self.0);
        }
        fn decode(r: &mut crate::wire::BitReader<'_>) -> Result<Self, crate::wire::WireError> {
            Ok(Dist(r.u32()?))
        }
    }
    impl Message for Dist {}

    #[derive(Debug)]
    struct Bfs {
        source: bool,
        dist: Option<u32>,
    }

    impl Protocol for Bfs {
        type Msg = Dist;
        fn round(&mut self, ctx: &NodeCtx<'_>, inbox: &[(Port, Dist)], out: &mut Outbox<Dist>) {
            if self.dist.is_some() {
                return;
            }
            if self.source && ctx.round == 0 {
                self.dist = Some(0);
                out.broadcast(Dist(0));
            } else if let Some((p, m)) = inbox.iter().min_by_key(|(_, m)| m.0) {
                self.dist = Some(m.0 + 1);
                out.broadcast_except(Dist(m.0 + 1), *p);
            }
        }
        fn is_done(&self) -> bool {
            self.dist.is_some()
        }
    }

    fn run_bfs(g: &kdom_graph::Graph) -> (Vec<u32>, RunReport) {
        let nodes = (0..g.node_count())
            .map(|i| Bfs {
                source: i == 0,
                dist: None,
            })
            .collect();
        let (nodes, report) = run_protocol(g, nodes, 10_000).unwrap();
        (nodes.into_iter().map(|b| b.dist.unwrap()).collect(), report)
    }

    #[test]
    fn bfs_on_path_matches_reference() {
        let g = path(&GenConfig::with_seed(12, 0));
        let (dist, report) = run_bfs(&g);
        assert_eq!(dist, bfs_distances(&g, NodeId(0)));
        // eccentricity 11, +1 final processing round
        assert_eq!(report.rounds, 12);
        assert_eq!(report.max_message_bits, 32);
    }

    #[test]
    fn bfs_on_star_is_constant_time() {
        let g = star(&GenConfig::with_seed(100, 0));
        let (dist, report) = run_bfs(&g);
        assert_eq!(dist, bfs_distances(&g, NodeId(0)));
        assert_eq!(report.rounds, 2);
    }

    #[test]
    fn message_accounting() {
        let g = path(&GenConfig::with_seed(3, 0));
        let (_, report) = run_bfs(&g);
        // node0 sends 1 (to node1), node1 forwards 1 (to node2), node2
        // has nowhere left to forward => 2 messages
        assert_eq!(report.messages, 2);
        assert_eq!(report.total_bits, 2 * 32);
        assert!(report.peak_messages_per_round >= 1);
        assert_eq!(report.dropped_messages, 0);
        assert_eq!(report.duplicated_messages, 0);
    }

    #[test]
    fn round_limit_reports_stuck_nodes() {
        #[derive(Debug)]
        struct Chatter;
        #[derive(Clone, Debug)]
        struct Ping;
        crate::impl_wire_empty!(Ping);
        impl Message for Ping {}
        impl Protocol for Chatter {
            type Msg = Ping;
            fn round(&mut self, _: &NodeCtx<'_>, _: &[(Port, Ping)], out: &mut Outbox<Ping>) {
                out.broadcast(Ping);
            }
            fn is_done(&self) -> bool {
                false
            }
        }
        let g = path(&GenConfig::with_seed(2, 0));
        let err = run_protocol(&g, vec![Chatter, Chatter], 5).unwrap_err();
        let SimError::RoundLimitExceeded { limit, stall } = &err else {
            panic!("expected RoundLimitExceeded, got {err:?}");
        };
        assert_eq!(*limit, 5);
        assert_eq!(
            stall.not_done,
            vec![NodeId(0), NodeId(1)],
            "stuck nodes are named"
        );
        assert!(!stall.pending.is_empty(), "queue depths are reported");
        assert!(err.to_string().contains("5 rounds"));
        assert!(err.to_string().contains("2 node(s) not done"));
    }

    #[test]
    fn double_send_is_a_typed_error() {
        #[derive(Debug)]
        struct Bad;
        #[derive(Clone, Debug)]
        struct Ping;
        crate::impl_wire_empty!(Ping);
        impl Message for Ping {}
        impl Protocol for Bad {
            type Msg = Ping;
            fn round(&mut self, _: &NodeCtx<'_>, _: &[(Port, Ping)], out: &mut Outbox<Ping>) {
                out.send(Port(0), Ping);
                out.send(Port(0), Ping);
            }
            fn is_done(&self) -> bool {
                false
            }
        }
        let g = path(&GenConfig::with_seed(2, 0));
        let err = run_protocol(&g, vec![Bad, Bad], 5).unwrap_err();
        assert_eq!(
            err,
            SimError::CongestViolation {
                node: NodeId(0),
                port: Port(0),
                round: 0
            }
        );
        assert!(err.to_string().contains("CONGEST violation"));
    }

    #[test]
    fn ports_are_consistent_across_endpoints() {
        // Send a message carrying the sender's id; receiver verifies the
        // arrival port's neighbor_id matches.
        #[derive(Clone, Debug)]
        struct IdMsg(u64);
        impl crate::wire::Wire for IdMsg {
            fn encode(&self, w: &mut crate::wire::BitWriter) {
                w.word(self.0);
            }
            fn decode(r: &mut crate::wire::BitReader<'_>) -> Result<Self, crate::wire::WireError> {
                Ok(IdMsg(r.word()?))
            }
        }
        impl Message for IdMsg {}
        struct Check {
            ok: bool,
            fired: bool,
        }
        impl Protocol for Check {
            type Msg = IdMsg;
            fn round(
                &mut self,
                ctx: &NodeCtx<'_>,
                inbox: &[(Port, IdMsg)],
                out: &mut Outbox<IdMsg>,
            ) {
                if ctx.round == 0 {
                    out.broadcast(IdMsg(ctx.id));
                    self.fired = true;
                }
                for (p, m) in inbox {
                    if ctx.neighbor_id(*p) != m.0 {
                        self.ok = false;
                    }
                }
            }
            fn is_done(&self) -> bool {
                self.fired
            }
        }
        let g = star(&GenConfig::with_seed(9, 3));
        let nodes = (0..9)
            .map(|_| Check {
                ok: true,
                fired: false,
            })
            .collect();
        let (nodes, _) = run_protocol(&g, nodes, 10).unwrap();
        assert!(nodes.iter().all(|n| n.ok));
    }

    #[test]
    fn broadcast_except_skips_port() {
        let g = path(&GenConfig::with_seed(3, 0));
        // middle node (degree 2) broadcasts except port 0 at round 0
        #[derive(Debug)]
        struct Mid {
            ticked: bool,
        }
        #[derive(Clone, Debug)]
        struct Ping;
        crate::impl_wire_empty!(Ping);
        impl Message for Ping {}
        impl Protocol for Mid {
            type Msg = Ping;
            fn round(&mut self, ctx: &NodeCtx<'_>, _: &[(Port, Ping)], out: &mut Outbox<Ping>) {
                if ctx.round == 0 && ctx.degree() == 2 {
                    out.broadcast_except(Ping, Port(0));
                }
                self.ticked = true;
            }
            fn is_done(&self) -> bool {
                self.ticked
            }
        }
        let nodes = (0..3).map(|_| Mid { ticked: false }).collect();
        let (_, report) = run_protocol(&g, nodes, 10).unwrap();
        assert_eq!(report.messages, 1);
        assert_eq!(report.rounds, 2);
    }

    #[test]
    fn reverse_port_table_matches_scan() {
        let g = kdom_graph::generators::gnp_connected(&GenConfig::with_seed(40, 5), 0.15);
        let table = reverse_port_table(&g);
        for (v, row) in table.iter().enumerate() {
            for (p, arc) in g.neighbors(NodeId(v)).iter().enumerate() {
                let rp = row[p].expect("consistent graph");
                assert_eq!(g.neighbors(arc.to)[rp.0].edge, arc.edge);
                assert_eq!(g.neighbors(arc.to)[rp.0].to, NodeId(v));
            }
        }
    }

    #[test]
    fn crash_before_round_zero_degrades_topology() {
        // path 0-1-2-3-4: crashing node 4 leaves 0..=3 reachable; BFS on
        // the survivors matches BFS on the truncated path.
        let g = path(&GenConfig::with_seed(5, 0));
        let plan = FaultPlan::new(1).crash(NodeId(4), 0);
        let nodes = (0..5)
            .map(|i| Bfs {
                source: i == 0,
                dist: None,
            })
            .collect();
        let (nodes, report) = run_protocol_faulty(&g, nodes, &plan, 100).unwrap();
        for (v, node) in nodes.iter().enumerate().take(4) {
            assert_eq!(node.dist, Some(v as u32), "survivor distances intact");
        }
        assert_eq!(nodes[4].dist, None, "crashed node learned nothing");
        assert!(
            report.dropped_messages >= 1,
            "the wave into the crashed node is lost"
        );
    }

    #[test]
    fn mid_run_crash_partitions_the_wave() {
        // path of 7, crash node 3 at round 2: the wave reaches nodes 0..=2
        // (distances 0..=2 are assigned by end of round 2) but never
        // crosses the crashed node; nodes 4..=6 stay unreached and the run
        // exceeds its budget with a stall report naming them.
        let g = path(&GenConfig::with_seed(7, 0));
        let plan = FaultPlan::new(2).crash(NodeId(3), 2);
        let nodes = (0..7)
            .map(|i| Bfs {
                source: i == 0,
                dist: None,
            })
            .collect();
        let err = run_protocol_faulty::<Bfs>(&g, nodes, &plan, 50).unwrap_err();
        let SimError::RoundLimitExceeded { stall, .. } = err else {
            panic!("expected budget exhaustion");
        };
        assert!(stall.not_done.contains(&NodeId(4)));
        assert!(stall.not_done.contains(&NodeId(6)));
        assert_eq!(stall.crashed, vec![NodeId(3)]);
    }

    #[test]
    fn duplication_duplicates_delivery() {
        #[derive(Debug, Default)]
        struct Count {
            got: usize,
            ticked: bool,
        }
        #[derive(Clone, Debug)]
        struct Ping;
        crate::impl_wire_empty!(Ping);
        impl Message for Ping {}
        impl Protocol for Count {
            type Msg = Ping;
            fn round(&mut self, ctx: &NodeCtx<'_>, inbox: &[(Port, Ping)], out: &mut Outbox<Ping>) {
                self.got += inbox.len();
                if ctx.round == 0 && ctx.node == NodeId(0) {
                    out.broadcast(Ping);
                }
                self.ticked = true;
            }
            fn is_done(&self) -> bool {
                self.ticked
            }
        }
        let g = path(&GenConfig::with_seed(2, 0));
        let plan = FaultPlan::new(3).dup_prob(1.0);
        let (nodes, report) =
            run_protocol_faulty(&g, vec![Count::default(), Count::default()], &plan, 10).unwrap();
        assert_eq!(nodes[1].got, 2, "duplicated copy arrives in the same round");
        assert_eq!(report.duplicated_messages, 1);
    }

    #[test]
    fn invariant_hook_aborts_with_context() {
        let g = path(&GenConfig::with_seed(4, 0));
        let nodes = (0..4)
            .map(|i| Bfs {
                source: i == 0,
                dist: None,
            })
            .collect();
        let mut sim = Simulator::new(&g, nodes);
        sim.add_invariant("no-depth-beyond-1", |view| {
            for (v, n) in view.nodes.iter().enumerate() {
                if n.dist.is_some_and(|d| d > 1) {
                    return Err(format!("node {v} reached depth {}", n.dist.unwrap()));
                }
            }
            Ok(())
        });
        let err = sim.run(100).unwrap_err();
        let SimError::InvariantViolation {
            name,
            round,
            detail,
        } = err
        else {
            panic!("expected invariant violation");
        };
        assert_eq!(name, "no-depth-beyond-1");
        assert!(round >= 2);
        assert!(detail.contains("depth 2"));
    }

    /// The packed per-message meta word stores `size_bits` in 20 bits;
    /// frames over `2^20 − 1` bits collapse into the all-ones sentinel and
    /// the merge recomputes their size from the message itself. Push a
    /// frame over 1 Mbit through a real run and check the accounting
    /// took the recompute path, not the truncated field.
    #[test]
    fn oversized_frame_accounting_survives_meta_sentinel() {
        /// `words` zero-words plus a 32-bit count — sized well past 2^20 bits.
        #[derive(Clone, Debug, PartialEq)]
        struct Huge {
            words: u32,
        }
        impl crate::wire::Wire for Huge {
            fn encode(&self, w: &mut crate::wire::BitWriter) {
                w.u32(self.words);
                for _ in 0..self.words {
                    w.word(0);
                }
            }
            fn decode(r: &mut crate::wire::BitReader<'_>) -> Result<Self, crate::wire::WireError> {
                let words = r.u32()?;
                for _ in 0..words {
                    r.word()?;
                }
                Ok(Huge { words })
            }
        }
        impl Message for Huge {}

        #[derive(Debug)]
        struct Shout {
            origin: bool,
            heard_bits: Option<u64>,
        }
        impl Protocol for Shout {
            type Msg = Huge;
            fn round(&mut self, ctx: &NodeCtx<'_>, inbox: &[(Port, Huge)], out: &mut Outbox<Huge>) {
                if self.origin && ctx.round == 0 {
                    out.broadcast(Huge { words: 25_000 });
                }
                if let Some((_, m)) = inbox.first() {
                    self.heard_bits = Some(m.size_bits());
                }
            }
            fn is_done(&self) -> bool {
                self.origin || self.heard_bits.is_some()
            }
        }

        let huge_bits = Huge { words: 25_000 }.size_bits();
        assert!(huge_bits > (1 << 20), "frame must exceed the meta field");
        let g = path(&GenConfig::with_seed(2, 0));
        let nodes = vec![
            Shout {
                origin: true,
                heard_bits: None,
            },
            Shout {
                origin: false,
                heard_bits: None,
            },
        ];
        let (nodes, report) = run_protocol(&g, nodes, 100).unwrap();
        assert_eq!(nodes[1].heard_bits, Some(huge_bits), "payload intact");
        assert_eq!(report.messages, 1);
        assert_eq!(report.total_bits, huge_bits, "recomputed, not truncated");
        assert_eq!(report.max_message_bits, huge_bits);
    }

    #[test]
    fn invariant_pass_leaves_run_untouched() {
        let g = path(&GenConfig::with_seed(6, 0));
        let nodes = (0..6)
            .map(|i| Bfs {
                source: i == 0,
                dist: None,
            })
            .collect();
        let mut sim = Simulator::new(&g, nodes);
        let g2 = path(&GenConfig::with_seed(6, 0));
        sim.add_invariant("pending-sorted", |view| {
            for q in view.pending {
                if !q.windows(2).all(|w| w[0].0 <= w[1].0) {
                    return Err("pending queue unsorted".into());
                }
            }
            Ok(())
        });
        let report = sim.run(100).unwrap();
        let want = bfs_distances(&g2, NodeId(0));
        for (v, n) in sim.nodes().iter().enumerate() {
            assert_eq!(n.dist, Some(want[v]));
        }
        assert!(report.rounds > 0);
    }
}
