//! A deterministic synchronous **CONGEST**-model simulator.
//!
//! The model follows Kutten–Peleg (PODC'95) §1.2:
//!
//! * computation proceeds in synchronous rounds;
//! * a node may send **at most one message per incident edge per round**
//!   (enforced — a double send panics);
//! * messages carry `O(log n)` bits (accounted via [`Message::size_bits`]
//!   and reported in [`RunReport`]; the experiments check the bound);
//! * nodes have unique identifiers and know the weights of incident edges.
//!
//! Algorithms are written as per-node automata implementing [`Protocol`];
//! the [`Simulator`] runs all automata in lockstep and measures the number
//! of rounds until global quiescence. Rounds are **measured, not modeled**.
//!
//! # Example: flooding a token
//!
//! ```
//! use kdom_congest::{Message, NodeCtx, Outbox, Port, Protocol, Simulator};
//! use kdom_graph::generators::{path, GenConfig};
//!
//! #[derive(Clone, Debug)]
//! struct Token;
//! impl Message for Token {}
//!
//! struct Flood { seen: bool, origin: bool }
//! impl Protocol for Flood {
//!     type Msg = Token;
//!     fn round(&mut self, ctx: &NodeCtx<'_>, inbox: &[(Port, Token)], out: &mut Outbox<Token>) {
//!         let newly = (self.origin && ctx.round == 0) || (!self.seen && !inbox.is_empty());
//!         if newly {
//!             self.seen = true;
//!             out.broadcast(Token);
//!         }
//!     }
//!     fn is_done(&self) -> bool { self.seen }
//! }
//!
//! let g = path(&GenConfig::with_seed(10, 0));
//! let nodes = (0..10).map(|i| Flood { seen: false, origin: i == 0 }).collect();
//! let mut sim = Simulator::new(&g, nodes);
//! let report = sim.run(100).unwrap();
//! assert!(sim.nodes().iter().all(|n| n.seen));
//! // 9 hops, one final processing step, one echo drained at the far end
//! assert_eq!(report.rounds, 11);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alpha;
mod report;
mod sim;

pub use alpha::{run_protocol_alpha, AlphaReport, AlphaSimulator};
pub use report::RunReport;
pub use sim::{run_protocol, Message, NodeCtx, Outbox, Port, Protocol, SimError, Simulator};
