//! A deterministic synchronous **CONGEST**-model simulator.
//!
//! The model follows Kutten–Peleg (PODC'95) §1.2:
//!
//! * computation proceeds in synchronous rounds;
//! * a node may send **at most one message per incident edge per round**
//!   (enforced — a double send aborts the run with
//!   [`SimError::CongestViolation`]);
//! * messages carry `O(log n)` bits (accounted via [`Message::size_bits`],
//!   which is *derived* from the message's bit-exact [`wire`] encoding,
//!   and reported in [`RunReport`]; the experiments check the bound);
//! * nodes have unique identifiers and know the weights of incident edges.
//!
//! Algorithms are written as per-node automata implementing [`Protocol`];
//! the [`Simulator`] runs all automata in lockstep and measures the number
//! of rounds until global quiescence. Rounds are **measured, not modeled**.
//!
//! # Example: flooding a token
//!
//! ```
//! use kdom_congest::{Message, NodeCtx, Outbox, Port, Protocol, Simulator};
//! use kdom_graph::generators::{path, GenConfig};
//!
//! #[derive(Clone, Debug)]
//! struct Token;
//! kdom_congest::impl_wire_empty!(Token); // zero payload bits on the wire
//! impl Message for Token {}
//!
//! struct Flood { seen: bool, origin: bool }
//! impl Protocol for Flood {
//!     type Msg = Token;
//!     fn round(&mut self, ctx: &NodeCtx<'_>, inbox: &[(Port, Token)], out: &mut Outbox<Token>) {
//!         let newly = (self.origin && ctx.round == 0) || (!self.seen && !inbox.is_empty());
//!         if newly {
//!             self.seen = true;
//!             out.broadcast(Token);
//!         }
//!     }
//!     fn is_done(&self) -> bool { self.seen }
//! }
//!
//! let g = path(&GenConfig::with_seed(10, 0));
//! let nodes = (0..10).map(|i| Flood { seen: false, origin: i == 0 }).collect();
//! let mut sim = Simulator::new(&g, nodes);
//! let report = sim.run(100).unwrap();
//! assert!(sim.nodes().iter().all(|n| n.seen));
//! // 9 hops, one final processing step, one echo drained at the far end
//! assert_eq!(report.rounds, 11);
//! ```
//!
//! # Faults and recovery
//!
//! The paper assumes reliable links and crash-free nodes. The [`faults`]
//! module makes that assumption a toggle: a seeded [`FaultPlan`] injects
//! message loss, duplication, extra delay, link outages, and fail-stop
//! crashes into either executor. The [`reliable`] module layers a
//! link-level ARQ machine under the α synchronizer so that *unmodified*
//! protocols stay correct under loss, and the watchdog turns every
//! would-be hang into a structured [`SimError`] naming the stuck nodes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alpha;
pub mod chaos;
pub mod engine;
pub mod events;
pub mod faults;
pub mod jobs;
pub mod reliable;
mod report;
mod sim;
pub mod trace;
pub mod transport;
pub mod wire;

pub use alpha::{
    run_protocol_alpha, run_protocol_alpha_faulty, run_protocol_alpha_reliable, AlphaReport,
    AlphaSimulator,
};
pub use chaos::{
    gen_schedule, gen_schedule_with_mix, random_epoch, shrink, ChaosConfig, ChaosSchedule,
    EventMix, ShrinkReport,
};
pub use engine::{run_epochs, EngineConfig, EpochError, EpochRun, Scheduling};
pub use events::{EventQueue, TimerHeap};
pub use faults::{
    apply_churn, ChurnEpoch, ChurnError, ChurnEvent, ChurnRemap, FaultInjector, FaultPlan,
    FaultPlanError, Transmission,
};
pub use jobs::{
    run_serial, Algo, CacheKey, CacheStats, ExecSpec, JobHandle, JobOutput, JobPool, JobStatus,
    PoolStats, ResultCache, RunSpec, Runner, SweepSpec,
};
pub use reliable::ReliableConfig;
pub use report::RunReport;
pub use sim::{
    congest_budget, run_protocol, run_protocol_faulty, run_protocol_faulty_with, run_protocol_with,
    InvariantView, Message, NodeCtx, Outbox, Port, Protocol, SimError, Simulator, StallReport,
    Wake, CONGEST_WORD_BITS,
};
pub use trace::{JsonlSink, MemorySink, TraceEvent, TraceSink, TraceSummary};
pub use transport::{
    coordinate, frame_to_bytes, graph_fingerprint, net_timeout, read_frame, run_worker,
    shard_bounds, Conn, CoordListener, CoordOpts, DistOutcome, Endpoint, WorkerOpts,
    TRANSPORT_VERSION,
};
pub use wire::{
    decode_from, encode_to, BitReader, BitWriter, CodecScratch, Wire, WireError, WireFrame,
};
