//! Multi-process socket transport for the round engine.
//!
//! The in-process [`Simulator`](crate::Simulator) shards its automata
//! across *threads*; this module shards them across *OS processes*
//! exchanging wire-encoded frames over TCP or Unix-domain sockets. The
//! split of responsibilities keeps the distributed run byte-identical to
//! the in-process engine:
//!
//! - The **coordinator** ([`coordinate`]) owns everything global and
//!   order-sensitive: the round clock, the wake-driven schedule (ticking
//!   list, [`TimerHeap`], receiver epochs — the exact structures of
//!   [`RoundEngine`](crate::engine)), the fault injector (whose RNG must
//!   advance in the sequential replay order), the trace sink, and the
//!   [`RunReport`] accounting. It never decodes a message: payloads move
//!   through it as opaque `(words, bits)` frames.
//! - Each **worker** ([`run_worker`]) owns a contiguous shard of the
//!   automata and is the only place protocol code runs. Workers decode
//!   their inbound frames and encode their outbound ones, so wire-exact
//!   execution genuinely crosses the process boundary: what a node
//!   observes is what was on the socket, with a canonical re-encode
//!   check on every staged send (a mismatch aborts the run with
//!   [`SimError::WireMismatch`], reported through a typed `Abort` frame).
//!
//! Because the coordinator replays sends in the same ascending
//! `(sender, port)` order as the engine's sequential merge — including
//! the fault injector's [`transmit`](crate::FaultInjector::transmit)
//! calls — a distributed run produces the same [`RunReport`] and the
//! same JSONL trace, byte for byte, as `Simulator::run` on one process.
//! `tests/transport_parity.rs` pins this.
//!
//! Crash-stop faults are deliberately unsupported here: in a
//! multi-process run a "crashed node" is modelled by killing its worker
//! process, which surfaces as [`SimError::PeerLost`] when the heartbeat
//! deadline passes. Transient faults (drops, duplication, link
//! down-intervals) are fully supported — they live coordinator-side.
//!
//! Framing is length-prefixed: a 16-byte header (magic, word count, bit
//! length) followed by little-endian `u64` words. [`frame_to_bytes`] and
//! [`read_frame`] are pure and exercised directly by the corruption
//! tests in `tests/wire_roundtrip.rs`.

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use kdom_graph::graph::{Graph, NodeId};

use crate::engine::{execute_node_round, merge_sorted_dedup, EngineConfig, Scheduling};
use crate::events::TimerHeap;
use crate::faults::{FaultInjector, FaultPlan};
use crate::report::RunReport;
use crate::sim::{Port, Protocol, SimError, StallReport, Wake};
use crate::trace::{TraceEvent, TraceSink};
use crate::wire::{decode_from, encode_to, BitReader, BitWriter, Wire, WireError};

/// Protocol version carried in the handshake; bumped on any change to
/// the control frame layout. A mismatch aborts with
/// [`SimError::PeerLost`] instead of silently misparsing frames.
pub const TRANSPORT_VERSION: u32 = 1;

/// Magic word opening every byte frame (`"KDOM"` little-endian-ish).
pub const FRAME_MAGIC: u32 = 0x4B44_4F4D;

/// Upper bound on the word count of a single frame (128 MiB of payload).
/// A header advertising more is rejected as corrupt before any
/// allocation happens — lengths read off a socket are never trusted.
pub const MAX_FRAME_WORDS: u32 = 1 << 24;

/// Environment knob naming the handshake/heartbeat deadline in
/// milliseconds (default 5000). Read through the fail-fast
/// [`knob`](kdom_graph::knob) layer: a malformed value aborts with the
/// variable name and offending text instead of being silently ignored.
pub const NET_TIMEOUT_ENV: &str = "KDOM_NET_TIMEOUT_MS";

/// The handshake/heartbeat deadline from [`NET_TIMEOUT_ENV`].
pub fn net_timeout() -> Duration {
    Duration::from_millis(kdom_graph::knob::knob(NET_TIMEOUT_ENV, 5000u64))
}

// ---------------------------------------------------------------------------
// Byte framing
// ---------------------------------------------------------------------------

/// Serializes a wire frame into `out` (cleared first): a 16-byte header
/// `[FRAME_MAGIC: u32][word count: u32][bit length: u64]`, all
/// little-endian, followed by the words. The inverse of [`read_frame`].
///
/// # Panics
///
/// If `words.len()` exceeds [`MAX_FRAME_WORDS`] or does not match
/// `bits.div_ceil(64)` — both indicate a caller bug, not wire input.
pub fn frame_to_bytes(words: &[u64], bits: u64, out: &mut Vec<u8>) {
    assert!(
        words.len() as u64 == bits.div_ceil(64),
        "frame word count {} does not match {} bits",
        words.len(),
        bits
    );
    assert!(words.len() <= MAX_FRAME_WORDS as usize, "frame too large");
    out.clear();
    out.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
    out.extend_from_slice(&(words.len() as u32).to_le_bytes());
    out.extend_from_slice(&bits.to_le_bytes());
    for w in words {
        out.extend_from_slice(&w.to_le_bytes());
    }
}

/// Reads one length-prefixed frame from `r` into `words` (cleared
/// first), returning the bit length. Every header field is validated
/// before the payload is read: a bad magic, an oversized word count, or
/// a word count disagreeing with the bit length all fail with
/// [`io::ErrorKind::InvalidData`] *before* any allocation sized by the
/// untrusted length. Truncation mid-frame is
/// [`io::ErrorKind::UnexpectedEof`].
///
/// # Errors
///
/// Any I/O error from `r`, plus the corruption cases above.
pub fn read_frame(r: &mut impl Read, words: &mut Vec<u64>) -> io::Result<u64> {
    let mut header = [0u8; 16];
    r.read_exact(&mut header)?;
    let magic = u32::from_le_bytes(header[0..4].try_into().unwrap());
    let nwords = u32::from_le_bytes(header[4..8].try_into().unwrap());
    let bits = u64::from_le_bytes(header[8..16].try_into().unwrap());
    if magic != FRAME_MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("bad frame magic {magic:#010x}"),
        ));
    }
    if nwords > MAX_FRAME_WORDS {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {nwords} words exceeds the {MAX_FRAME_WORDS}-word cap"),
        ));
    }
    if u64::from(nwords) != bits.div_ceil(64) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame header claims {nwords} words for {bits} bits"),
        ));
    }
    words.clear();
    // chunked reads: the payload length and the buffer size are both
    // multiples of 8, so every chunk splits into whole words
    let mut buf = [0u8; 4096];
    let mut remaining = nwords as usize * 8;
    while remaining > 0 {
        let take = remaining.min(buf.len());
        r.read_exact(&mut buf[..take])?;
        remaining -= take;
        for w in buf[..take].chunks_exact(8) {
            words.push(u64::from_le_bytes(w.try_into().unwrap()));
        }
    }
    Ok(bits)
}

// ---------------------------------------------------------------------------
// Endpoints and connections
// ---------------------------------------------------------------------------

/// A socket address the transport can listen on or connect to.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Endpoint {
    /// A TCP host:port pair, e.g. `127.0.0.1:7000`.
    Tcp(String),
    /// A Unix-domain socket path.
    #[cfg(unix)]
    Unix(std::path::PathBuf),
}

impl std::str::FromStr for Endpoint {
    type Err = String;

    /// Parses `tcp:HOST:PORT`, a bare `HOST:PORT`, or `unix:/PATH`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if let Some(rest) = s.strip_prefix("unix:") {
            #[cfg(unix)]
            return Ok(Endpoint::Unix(rest.into()));
            #[cfg(not(unix))]
            return Err(format!("unix sockets unsupported here: {rest}"));
        }
        let rest = s.strip_prefix("tcp:").unwrap_or(s);
        if rest.contains(':') {
            Ok(Endpoint::Tcp(rest.to_string()))
        } else {
            Err(format!(
                "endpoint {s:?} is neither tcp:host:port, host:port, nor unix:/path"
            ))
        }
    }
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Tcp(a) => write!(f, "tcp:{a}"),
            #[cfg(unix)]
            Endpoint::Unix(p) => write!(f, "unix:{}", p.display()),
        }
    }
}

impl Endpoint {
    /// Opens a client connection to this endpoint.
    ///
    /// # Errors
    ///
    /// Any socket-level connect failure.
    pub fn connect(&self) -> io::Result<Conn> {
        match self {
            Endpoint::Tcp(a) => TcpStream::connect(a.as_str()).map(Conn::Tcp),
            #[cfg(unix)]
            Endpoint::Unix(p) => std::os::unix::net::UnixStream::connect(p).map(Conn::Unix),
        }
    }
}

/// A listening socket owned by the coordinator.
pub enum CoordListener {
    /// TCP listener.
    Tcp(TcpListener),
    /// Unix-domain listener.
    #[cfg(unix)]
    Unix(std::os::unix::net::UnixListener),
}

impl CoordListener {
    /// Binds a listener on `ep`. A TCP port of `0` binds an ephemeral
    /// port; read it back with [`CoordListener::local_endpoint`].
    ///
    /// # Errors
    ///
    /// Any socket-level bind failure.
    pub fn bind(ep: &Endpoint) -> io::Result<Self> {
        match ep {
            Endpoint::Tcp(a) => TcpListener::bind(a.as_str()).map(CoordListener::Tcp),
            #[cfg(unix)]
            Endpoint::Unix(p) => std::os::unix::net::UnixListener::bind(p).map(CoordListener::Unix),
        }
    }

    /// The endpoint this listener is actually bound to (resolves an
    /// ephemeral TCP port to its real number).
    ///
    /// # Errors
    ///
    /// If the socket address cannot be read back.
    pub fn local_endpoint(&self) -> io::Result<Endpoint> {
        match self {
            CoordListener::Tcp(l) => Ok(Endpoint::Tcp(l.local_addr()?.to_string())),
            #[cfg(unix)]
            CoordListener::Unix(l) => {
                let addr = l.local_addr()?;
                let path = addr.as_pathname().ok_or_else(|| {
                    io::Error::new(io::ErrorKind::InvalidInput, "unnamed unix listener")
                })?;
                Ok(Endpoint::Unix(path.to_path_buf()))
            }
        }
    }

    /// Switches the listener between blocking and non-blocking accepts.
    /// Non-blocking mode lets a server poll [`CoordListener::accept`]
    /// alongside a shutdown flag instead of parking forever in the OS.
    ///
    /// # Errors
    ///
    /// If the OS rejects the option.
    pub fn set_nonblocking(&self, nb: bool) -> io::Result<()> {
        match self {
            CoordListener::Tcp(l) => l.set_nonblocking(nb),
            #[cfg(unix)]
            CoordListener::Unix(l) => l.set_nonblocking(nb),
        }
    }

    /// Accepts one incoming connection. In non-blocking mode an empty
    /// backlog is [`io::ErrorKind::WouldBlock`].
    ///
    /// # Errors
    ///
    /// Any socket-level accept failure.
    pub fn accept(&self) -> io::Result<Conn> {
        match self {
            CoordListener::Tcp(l) => l.accept().map(|(s, _)| Conn::Tcp(s)),
            #[cfg(unix)]
            CoordListener::Unix(l) => l.accept().map(|(s, _)| Conn::Unix(s)),
        }
    }
}

/// One established stream between a worker and the coordinator.
pub enum Conn {
    /// TCP stream.
    Tcp(TcpStream),
    /// Unix-domain stream.
    #[cfg(unix)]
    Unix(std::os::unix::net::UnixStream),
}

impl Conn {
    /// Clones the underlying socket handle (reads and writes on the
    /// clone share the same stream) — how the worker's heartbeat thread
    /// gets a writer while the main thread keeps the reader.
    ///
    /// # Errors
    ///
    /// If the OS refuses to duplicate the handle.
    pub fn try_clone(&self) -> io::Result<Conn> {
        match self {
            Conn::Tcp(s) => s.try_clone().map(Conn::Tcp),
            #[cfg(unix)]
            Conn::Unix(s) => s.try_clone().map(Conn::Unix),
        }
    }

    /// Sets (or clears, with `None`) the blocking-read deadline.
    ///
    /// # Errors
    ///
    /// If the OS rejects the option.
    pub fn set_read_timeout(&self, d: Option<Duration>) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_read_timeout(d),
            #[cfg(unix)]
            Conn::Unix(s) => s.set_read_timeout(d),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
        }
    }
}

// ---------------------------------------------------------------------------
// Sharding and handshake identity
// ---------------------------------------------------------------------------

/// Contiguous node ranges for `shards` workers over `n` nodes: worker
/// `s` owns `bounds[s]..bounds[s + 1]`. Ranges cover `0..n` exactly and
/// differ in size by at most one node.
pub fn shard_bounds(n: usize, shards: usize) -> Vec<usize> {
    assert!(shards > 0, "at least one shard");
    (0..=shards).map(|s| s * n / shards).collect()
}

/// Fingerprint of a graph's full topology, used by the handshake so a
/// worker generated from different parameters (or a different generator
/// seed) is rejected up front instead of silently desynchronizing
/// mid-run. Now an alias for the canonical [`Graph::fingerprint`] — the
/// same value keys the result cache, so a cache entry and a transport
/// handshake always agree on graph identity.
pub fn graph_fingerprint(g: &Graph) -> u64 {
    g.fingerprint()
}

// ---------------------------------------------------------------------------
// Control protocol
// ---------------------------------------------------------------------------

/// A node's requested schedule for the next round, as shipped back by a
/// worker — the wire form of the engine's internal outcome (crash-stop
/// is excluded: process death models crashes over the transport).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireOutcome {
    /// `is_done()` held after the round: unschedule until a message.
    Done,
    /// Step the node next round.
    Tick,
    /// The node acts only on messages.
    Sleep,
    /// Timer-armed for the given future round.
    Park(u64),
}

/// One staged send leaving a worker: the sender-side port plus the
/// encoded frame. The coordinator treats the payload as opaque.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SendFrame {
    /// Sender-side port.
    pub port: u32,
    /// Encoded message length in bits.
    pub bits: u64,
    /// Encoded message words.
    pub words: Vec<u64>,
}

/// One queued message delivered to a node at the start of a round.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Delivery {
    /// Receiver-side port the message arrives on.
    pub port: u32,
    /// Copies queued on this slot (fault duplication refcounts here).
    pub copies: u32,
    /// The original sender, kept for error attribution.
    pub sender: u32,
    /// The sender-side port, kept for error attribution.
    pub sender_port: u32,
    /// Encoded message length in bits.
    pub bits: u64,
    /// Encoded message words.
    pub words: Vec<u64>,
}

/// One active node's work order for a round.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StartEntry {
    /// The node to step.
    pub node: u32,
    /// Its queued messages, ascending by port.
    pub inbox: Vec<Delivery>,
}

/// One stepped node's results for a round.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NodeResult {
    /// The node that ran.
    pub node: u32,
    /// Its schedule request (`None` under full-scan scheduling when the
    /// done flag did not transition — the engine records only changes
    /// there).
    pub outcome: Option<WireOutcome>,
    /// Port of the first CONGEST violation (double send), if any.
    pub violation: Option<u32>,
    /// Its staged sends, ascending by port.
    pub sends: Vec<SendFrame>,
}

/// A control frame on a coordinator–worker stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Ctl {
    /// Worker → coordinator, once, immediately after connecting.
    Hello {
        /// The worker's [`TRANSPORT_VERSION`].
        version: u32,
        /// Which shard this worker claims.
        shard: u32,
        /// How many shards the worker believes exist.
        shards: u32,
        /// The worker's [`graph_fingerprint`] of its graph copy.
        graph_hash: u64,
        /// The engine fixed-memory constant for the worker's protocol
        /// type (workers must agree; the coordinator cannot compute it
        /// without knowing the protocol).
        fixed_mem: u64,
        /// Bytes per staged send for the protocol's message type.
        staged_bytes: u64,
        /// Initial `is_done()` per node of the worker's shard.
        done: Vec<bool>,
    },
    /// Coordinator → worker, completing the handshake.
    Welcome {
        /// Heartbeat/read deadline in milliseconds.
        timeout_ms: u64,
        /// Whether scheduling is full-scan (workers then report only
        /// done-flag transitions, mirroring the engine).
        full_scan: bool,
    },
    /// Coordinator → worker: step these nodes for `round`.
    Start {
        /// The round number.
        round: u64,
        /// Work orders, ascending by node; may be empty (the worker
        /// still replies, keeping every stream in lockstep).
        entries: Vec<StartEntry>,
    },
    /// Worker → coordinator: results for `round`.
    RoundDone {
        /// The round these results belong to.
        round: u64,
        /// Per-node results, ascending by node.
        results: Vec<NodeResult>,
    },
    /// Coordinator → worker: the run is over, send outputs.
    Finish,
    /// Worker → coordinator: harvested outputs, one row per node of the
    /// shard, ascending.
    Output {
        /// Harvest rows.
        rows: Vec<u64>,
    },
    /// Worker → coordinator: a frame failed its canonical round-trip —
    /// the run aborts with [`SimError::WireMismatch`].
    Abort {
        /// The node whose send failed.
        node: u32,
        /// The sender-side port.
        port: u32,
        /// The round of the failing send.
        round: u64,
        /// Human-readable failure detail.
        detail: String,
    },
    /// Worker → coordinator: liveness beacon between round replies.
    Heartbeat,
}

/// Variant count of [`Ctl`], for tag sizing.
const CTL_VARIANTS: u64 = 8;

fn push_words(w: &mut BitWriter, words: &[u64]) {
    w.u32(words.len() as u32);
    for &x in words {
        w.push(x, 64);
    }
}

fn pull_words(r: &mut BitReader<'_>) -> Result<Vec<u64>, WireError> {
    let len = r.u32()?;
    // push-grow: a lying length hits `Overrun` long before it can size
    // an allocation
    let mut v = Vec::new();
    for _ in 0..len {
        v.push(r.pull(64)?);
    }
    Ok(v)
}

fn push_str(w: &mut BitWriter, s: &str) {
    w.u32(s.len() as u32);
    for b in s.bytes() {
        w.push(u64::from(b), 8);
    }
}

fn pull_str(r: &mut BitReader<'_>) -> Result<String, WireError> {
    let len = r.u32()?;
    let mut bytes = Vec::new();
    for _ in 0..len {
        bytes.push(r.pull(8)? as u8);
    }
    String::from_utf8(bytes).map_err(|_| WireError::BadTag {
        context: "transport string utf-8",
        value: u64::from(len),
    })
}

impl Wire for SendFrame {
    fn encode(&self, w: &mut BitWriter) {
        w.u32(self.port);
        w.push(self.bits, 64);
        push_words(w, &self.words);
    }

    fn decode(r: &mut BitReader<'_>) -> Result<Self, WireError> {
        let port = r.u32()?;
        let bits = r.pull(64)?;
        let words = pull_words(r)?;
        if words.len() as u64 != bits.div_ceil(64) {
            return Err(WireError::BadLength {
                context: "send frame word count",
                bits,
            });
        }
        Ok(SendFrame { port, bits, words })
    }
}

impl Wire for Delivery {
    fn encode(&self, w: &mut BitWriter) {
        w.u32(self.port);
        w.u32(self.copies);
        w.u32(self.sender);
        w.u32(self.sender_port);
        w.push(self.bits, 64);
        push_words(w, &self.words);
    }

    fn decode(r: &mut BitReader<'_>) -> Result<Self, WireError> {
        let port = r.u32()?;
        let copies = r.u32()?;
        let sender = r.u32()?;
        let sender_port = r.u32()?;
        let bits = r.pull(64)?;
        let words = pull_words(r)?;
        if words.len() as u64 != bits.div_ceil(64) {
            return Err(WireError::BadLength {
                context: "delivery word count",
                bits,
            });
        }
        Ok(Delivery {
            port,
            copies,
            sender,
            sender_port,
            bits,
            words,
        })
    }
}

impl Wire for StartEntry {
    fn encode(&self, w: &mut BitWriter) {
        w.u32(self.node);
        w.u32(self.inbox.len() as u32);
        for d in &self.inbox {
            d.encode(w);
        }
    }

    fn decode(r: &mut BitReader<'_>) -> Result<Self, WireError> {
        let node = r.u32()?;
        let len = r.u32()?;
        let mut inbox = Vec::new();
        for _ in 0..len {
            inbox.push(Delivery::decode(r)?);
        }
        Ok(StartEntry { node, inbox })
    }
}

impl Wire for NodeResult {
    fn encode(&self, w: &mut BitWriter) {
        w.u32(self.node);
        let idx = match self.outcome {
            None => 0,
            Some(WireOutcome::Done) => 1,
            Some(WireOutcome::Tick) => 2,
            Some(WireOutcome::Sleep) => 3,
            Some(WireOutcome::Park(_)) => 4,
        };
        w.tag(idx, 5);
        if let Some(WireOutcome::Park(at)) = self.outcome {
            w.push(at, 64);
        }
        w.opt_u32(self.violation);
        w.u32(self.sends.len() as u32);
        for s in &self.sends {
            s.encode(w);
        }
    }

    fn decode(r: &mut BitReader<'_>) -> Result<Self, WireError> {
        let node = r.u32()?;
        let outcome = match r.tag(5)? {
            0 => None,
            1 => Some(WireOutcome::Done),
            2 => Some(WireOutcome::Tick),
            3 => Some(WireOutcome::Sleep),
            4 => Some(WireOutcome::Park(r.pull(64)?)),
            value => {
                return Err(WireError::BadTag {
                    context: "node outcome",
                    value,
                })
            }
        };
        let violation = r.opt_u32()?;
        let len = r.u32()?;
        let mut sends = Vec::new();
        for _ in 0..len {
            sends.push(SendFrame::decode(r)?);
        }
        Ok(NodeResult {
            node,
            outcome,
            violation,
            sends,
        })
    }
}

impl Wire for Ctl {
    fn encode(&self, w: &mut BitWriter) {
        match self {
            Ctl::Hello {
                version,
                shard,
                shards,
                graph_hash,
                fixed_mem,
                staged_bytes,
                done,
            } => {
                w.tag(0, CTL_VARIANTS);
                w.u32(*version);
                w.u32(*shard);
                w.u32(*shards);
                w.push(*graph_hash, 64);
                w.push(*fixed_mem, 64);
                w.push(*staged_bytes, 64);
                w.u32(done.len() as u32);
                for &d in done {
                    w.flag(d);
                }
            }
            Ctl::Welcome {
                timeout_ms,
                full_scan,
            } => {
                w.tag(1, CTL_VARIANTS);
                w.push(*timeout_ms, 64);
                w.flag(*full_scan);
            }
            Ctl::Start { round, entries } => {
                w.tag(2, CTL_VARIANTS);
                w.push(*round, 64);
                w.u32(entries.len() as u32);
                for e in entries {
                    e.encode(w);
                }
            }
            Ctl::RoundDone { round, results } => {
                w.tag(3, CTL_VARIANTS);
                w.push(*round, 64);
                w.u32(results.len() as u32);
                for res in results {
                    res.encode(w);
                }
            }
            Ctl::Finish => w.tag(4, CTL_VARIANTS),
            Ctl::Output { rows } => {
                w.tag(5, CTL_VARIANTS);
                w.u32(rows.len() as u32);
                for &x in rows {
                    w.push(x, 64);
                }
            }
            Ctl::Abort {
                node,
                port,
                round,
                detail,
            } => {
                w.tag(6, CTL_VARIANTS);
                w.u32(*node);
                w.u32(*port);
                w.push(*round, 64);
                push_str(w, detail);
            }
            Ctl::Heartbeat => w.tag(7, CTL_VARIANTS),
        }
    }

    fn decode(r: &mut BitReader<'_>) -> Result<Self, WireError> {
        Ok(match r.tag(CTL_VARIANTS)? {
            0 => {
                let version = r.u32()?;
                let shard = r.u32()?;
                let shards = r.u32()?;
                let graph_hash = r.pull(64)?;
                let fixed_mem = r.pull(64)?;
                let staged_bytes = r.pull(64)?;
                let len = r.u32()?;
                let mut done = Vec::new();
                for _ in 0..len {
                    done.push(r.flag()?);
                }
                Ctl::Hello {
                    version,
                    shard,
                    shards,
                    graph_hash,
                    fixed_mem,
                    staged_bytes,
                    done,
                }
            }
            1 => Ctl::Welcome {
                timeout_ms: r.pull(64)?,
                full_scan: r.flag()?,
            },
            2 => {
                let round = r.pull(64)?;
                let len = r.u32()?;
                let mut entries = Vec::new();
                for _ in 0..len {
                    entries.push(StartEntry::decode(r)?);
                }
                Ctl::Start { round, entries }
            }
            3 => {
                let round = r.pull(64)?;
                let len = r.u32()?;
                let mut results = Vec::new();
                for _ in 0..len {
                    results.push(NodeResult::decode(r)?);
                }
                Ctl::RoundDone { round, results }
            }
            4 => Ctl::Finish,
            5 => {
                let len = r.u32()?;
                let mut rows = Vec::new();
                for _ in 0..len {
                    rows.push(r.pull(64)?);
                }
                Ctl::Output { rows }
            }
            6 => Ctl::Abort {
                node: r.u32()?,
                port: r.u32()?,
                round: r.pull(64)?,
                detail: pull_str(r)?,
            },
            7 => Ctl::Heartbeat,
            value => {
                return Err(WireError::BadTag {
                    context: "ctl frame",
                    value,
                })
            }
        })
    }
}

// ---------------------------------------------------------------------------
// Frame I/O over a connection
// ---------------------------------------------------------------------------

/// Reusable buffers for control-frame serialization.
#[derive(Default)]
struct FrameBufs {
    words: Vec<u64>,
    bytes: Vec<u8>,
}

impl FrameBufs {
    fn serialize(&mut self, msg: &Ctl) -> &[u8] {
        let bits = encode_to(msg, &mut self.words);
        frame_to_bytes(&self.words, bits, &mut self.bytes);
        &self.bytes
    }

    fn send(&mut self, conn: &mut Conn, msg: &Ctl) -> io::Result<()> {
        self.serialize(msg);
        conn.write_all(&self.bytes)?;
        conn.flush()
    }

    fn recv(&mut self, conn: &mut Conn) -> io::Result<Ctl> {
        let bits = read_frame(conn, &mut self.words)?;
        decode_from::<Ctl>(&self.words, bits)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad ctl frame: {e}")))
    }
}

// ---------------------------------------------------------------------------
// Worker
// ---------------------------------------------------------------------------

/// Options for [`run_worker`].
#[derive(Clone, Debug)]
pub struct WorkerOpts {
    /// Where the coordinator is listening.
    pub connect: Endpoint,
    /// This worker's shard index in `0..shards`.
    pub shard: usize,
    /// Total worker count.
    pub shards: usize,
    /// Test hook: exit the process (code 3) upon receiving a `Start`
    /// for a round `>=` this value — models a mid-run worker crash for
    /// the `PeerLost` path.
    pub die_at_round: Option<u64>,
}

/// The engine's fixed-memory constant for protocol `P` on `graph`,
/// computed with the exact formula `RoundEngine::new` uses (the graph
/// CSR, ids, offset and reverse-port tables, both arenas, per-node
/// schedule state, and the automata). Workers ship this in their
/// handshake so the coordinator's `peak_memory_bytes` — and therefore
/// the whole [`RunReport`] — matches the in-process run bit for bit.
fn engine_fixed_mem<P: Protocol>(graph: &Graph) -> u64 {
    let n = graph.node_count();
    let acc: usize = (0..n).map(|v| graph.degree(NodeId(v))).sum();
    let usize_b = std::mem::size_of::<usize>() as u64;
    graph.memory_bytes()
        + (n as u64) * 8
        + ((n + 1) as u64 + acc as u64) * usize_b
        + 2 * (acc as u64) * std::mem::size_of::<Option<(P::Msg, u32)>>() as u64
        + (n as u64) * 17
        + (n as u64) * std::mem::size_of::<P>() as u64
}

/// Bytes one staged send occupies in the engine's packed slab.
fn staged_bytes_of<P: Protocol>() -> u64 {
    8 + std::mem::size_of::<P::Msg>() as u64
}

fn lost_coord(round: u64, what: &str, e: &io::Error) -> SimError {
    SimError::PeerLost {
        peer: u32::MAX,
        round,
        detail: format!("{what}: {e}"),
    }
}

/// Runs one worker process: connects to the coordinator, claims shard
/// `opts.shard` of the node range, and executes protocol rounds on
/// demand until the coordinator sends `Finish`.
///
/// `make(v, id)` constructs the automaton for global node index `v`
/// (application id `id`); `harvest` extracts one output row per node
/// once the run completes. Every process in a distributed run must
/// construct its graph and automata identically — the handshake's graph
/// fingerprint catches topology drift, but automaton construction is
/// trusted.
///
/// Inbound frames are decoded and re-encoded canonically before an
/// automaton sees them; outbound frames round-trip the same way at
/// staging. Either check failing sends a typed `Abort` upstream and
/// returns [`SimError::WireMismatch`] — nothing is silently passed
/// through.
///
/// # Errors
///
/// [`SimError::PeerLost`] when the coordinator's stream drops or the
/// handshake disagrees; [`SimError::WireMismatch`] on a non-canonical
/// frame.
pub fn run_worker<P: Protocol>(
    graph: &Graph,
    mut make: impl FnMut(usize, u64) -> P,
    harvest: impl Fn(&P) -> u64,
    opts: &WorkerOpts,
) -> Result<(), SimError> {
    assert!(
        opts.shard < opts.shards,
        "shard {} out of range for {} shards",
        opts.shard,
        opts.shards
    );
    let n = graph.node_count();
    let bounds = shard_bounds(n, opts.shards);
    let (lo, hi) = (bounds[opts.shard], bounds[opts.shard + 1]);
    let ids: Vec<u64> = (0..n).map(|v| graph.id_of(NodeId(v))).collect();
    let mut nodes: Vec<P> = (lo..hi).map(|v| make(v, ids[v])).collect();
    let mut done_flag: Vec<bool> = nodes.iter().map(Protocol::is_done).collect();

    // Connect with retry: the coordinator may not be listening yet when
    // the process fleet launches.
    let deadline = Instant::now() + net_timeout();
    let mut conn = loop {
        match opts.connect.connect() {
            Ok(c) => break c,
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(lost_coord(0, "connect", &e));
                }
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    };

    let mut bufs = FrameBufs::default();
    bufs.send(
        &mut conn,
        &Ctl::Hello {
            version: TRANSPORT_VERSION,
            shard: opts.shard as u32,
            shards: opts.shards as u32,
            graph_hash: graph_fingerprint(graph),
            fixed_mem: engine_fixed_mem::<P>(graph),
            staged_bytes: staged_bytes_of::<P>(),
            done: done_flag.clone(),
        },
    )
    .map_err(|e| lost_coord(0, "handshake send", &e))?;
    // Reads stay blocking on the worker side: a sibling shard may
    // legitimately compute for a long time while this worker waits for
    // its next Start. Liveness toward the coordinator is the heartbeat
    // thread's job; a dead coordinator surfaces here as EOF.
    let (timeout_ms, full_scan) = match bufs.recv(&mut conn) {
        Ok(Ctl::Welcome {
            timeout_ms,
            full_scan,
        }) => (timeout_ms, full_scan),
        Ok(other) => {
            return Err(SimError::PeerLost {
                peer: u32::MAX,
                round: 0,
                detail: format!("expected Welcome, got {other:?}"),
            })
        }
        Err(e) => return Err(lost_coord(0, "handshake recv", &e)),
    };

    // Heartbeat thread: a pre-serialized beacon every quarter-deadline,
    // sharing the write half with the main thread's round replies.
    let writer = Arc::new(Mutex::new(
        conn.try_clone()
            .map_err(|e| lost_coord(0, "clone stream", &e))?,
    ));
    let stop = Arc::new(AtomicBool::new(false));
    let hb = {
        let writer = Arc::clone(&writer);
        let stop = Arc::clone(&stop);
        let beat = {
            let mut b = FrameBufs::default();
            b.serialize(&Ctl::Heartbeat).to_vec()
        };
        let interval = Duration::from_millis((timeout_ms / 4).max(1));
        std::thread::spawn(move || {
            let mut last = Instant::now();
            while !stop.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_millis(25));
                if last.elapsed() >= interval {
                    let mut w = writer.lock().expect("heartbeat writer");
                    if w.write_all(&beat).and_then(|()| w.flush()).is_err() {
                        return; // coordinator gone; main thread will see EOF
                    }
                    last = Instant::now();
                }
            }
        })
    };

    let result = worker_loop(
        graph,
        &ids,
        lo,
        &mut nodes,
        &mut done_flag,
        full_scan,
        &harvest,
        opts.die_at_round,
        &mut conn,
        &writer,
    );
    stop.store(true, Ordering::Relaxed);
    let _ = hb.join();
    result
}

/// Sends a control frame through the mutex-shared write half.
fn send_shared(writer: &Mutex<Conn>, bufs: &mut FrameBufs, msg: &Ctl) -> io::Result<()> {
    bufs.serialize(msg);
    let mut w = writer.lock().expect("shared writer");
    w.write_all(&bufs.bytes)?;
    w.flush()
}

#[allow(clippy::too_many_arguments)]
fn worker_loop<P: Protocol>(
    graph: &Graph,
    ids: &[u64],
    lo: usize,
    nodes: &mut [P],
    done_flag: &mut [bool],
    full_scan: bool,
    harvest: &impl Fn(&P) -> u64,
    die_at_round: Option<u64>,
    conn: &mut Conn,
    writer: &Mutex<Conn>,
) -> Result<(), SimError> {
    let mut bufs = FrameBufs::default();
    let mut out_bufs = FrameBufs::default();
    let mut inbox: Vec<(Port, P::Msg)> = Vec::new();
    let mut outbox: Vec<Option<P::Msg>> = Vec::new();
    let mut enc_scratch: Vec<u64> = Vec::new();
    let mut renc_scratch: Vec<u64> = Vec::new();
    let mut last_round = 0u64;
    loop {
        let msg = match bufs.recv(conn) {
            Ok(m) => m,
            Err(e) => return Err(lost_coord(last_round, "read", &e)),
        };
        match msg {
            Ctl::Start { round, entries } => {
                last_round = round;
                if die_at_round.is_some_and(|r| round >= r) {
                    // test hook: model a worker crash mid-run
                    std::process::exit(3);
                }
                let mut results = Vec::with_capacity(entries.len());
                for entry in entries {
                    let v = entry.node as usize;
                    inbox.clear();
                    for d in &entry.inbox {
                        // Decode exactly what was on the socket; the
                        // canonical re-encode proves the sender and this
                        // receiver agree on the message layout.
                        let decoded = decode_from::<P::Msg>(&d.words, d.bits)
                            .map_err(|e| format!("decode: {e}"))
                            .and_then(|m| {
                                let rb = encode_to(&m, &mut renc_scratch);
                                if rb != d.bits || renc_scratch != d.words {
                                    Err(format!(
                                        "re-encode differs: {rb} bits vs {} on the wire",
                                        d.bits
                                    ))
                                } else {
                                    Ok(m)
                                }
                            });
                        let msg = match decoded {
                            Ok(m) => m,
                            Err(detail) => {
                                let abort = Ctl::Abort {
                                    node: d.sender,
                                    port: d.sender_port,
                                    round: round.saturating_sub(1),
                                    detail: detail.clone(),
                                };
                                let _ = send_shared(writer, &mut out_bufs, &abort);
                                return Err(SimError::WireMismatch {
                                    node: NodeId(d.sender as usize),
                                    port: Port(d.sender_port as usize),
                                    round: round.saturating_sub(1),
                                    detail,
                                });
                            }
                        };
                        for _ in 1..d.copies {
                            inbox.push((Port(d.port as usize), msg.clone()));
                        }
                        inbox.push((Port(d.port as usize), msg));
                    }
                    let violation = execute_node_round(
                        graph,
                        ids,
                        v,
                        round,
                        &mut nodes[v - lo],
                        &inbox,
                        &mut outbox,
                    );
                    let mut sends = Vec::new();
                    for (p, slot) in outbox.iter_mut().enumerate() {
                        let Some(msg) = slot.take() else { continue };
                        let bits = encode_to(&msg, &mut enc_scratch);
                        // the staging-side round trip of the engine's
                        // wire-exact mode, across the process boundary
                        let check = decode_from::<P::Msg>(&enc_scratch, bits)
                            .map_err(|e| format!("decode: {e}"))
                            .and_then(|m| {
                                let rb = encode_to(&m, &mut renc_scratch);
                                if rb != bits || renc_scratch != enc_scratch {
                                    Err(format!("re-encode differs: {rb} bits vs {bits}"))
                                } else {
                                    Ok(())
                                }
                            });
                        if let Err(detail) = check {
                            let abort = Ctl::Abort {
                                node: entry.node,
                                port: p as u32,
                                round,
                                detail: detail.clone(),
                            };
                            let _ = send_shared(writer, &mut out_bufs, &abort);
                            return Err(SimError::WireMismatch {
                                node: NodeId(v),
                                port: Port(p),
                                round,
                                detail,
                            });
                        }
                        sends.push(SendFrame {
                            port: p as u32,
                            bits,
                            words: enc_scratch.clone(),
                        });
                    }
                    let local = v - lo;
                    let now_done = nodes[local].is_done();
                    let outcome = if !full_scan {
                        Some(if now_done {
                            WireOutcome::Done
                        } else {
                            match nodes[local].next_wake(round) {
                                Wake::EveryRound => WireOutcome::Tick,
                                Wake::OnMessage => WireOutcome::Sleep,
                                Wake::At(r) if r > round + 1 => WireOutcome::Park(r),
                                Wake::At(_) => WireOutcome::Tick,
                            }
                        })
                    } else if now_done != done_flag[local] {
                        // full-scan scheduling records only transitions,
                        // exactly like the engine's non-tracking shard
                        Some(if now_done {
                            WireOutcome::Done
                        } else {
                            WireOutcome::Tick
                        })
                    } else {
                        None
                    };
                    done_flag[local] = now_done;
                    results.push(NodeResult {
                        node: entry.node,
                        outcome,
                        violation: violation.map(|p| p.0 as u32),
                        sends,
                    });
                }
                send_shared(writer, &mut out_bufs, &Ctl::RoundDone { round, results })
                    .map_err(|e| lost_coord(round, "round reply", &e))?;
            }
            Ctl::Finish => {
                let rows: Vec<u64> = nodes.iter().map(harvest).collect();
                send_shared(writer, &mut out_bufs, &Ctl::Output { rows })
                    .map_err(|e| lost_coord(last_round, "output reply", &e))?;
                return Ok(());
            }
            other => {
                return Err(SimError::PeerLost {
                    peer: u32::MAX,
                    round: last_round,
                    detail: format!("unexpected frame from coordinator: {other:?}"),
                })
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Coordinator
// ---------------------------------------------------------------------------

/// Options for [`coordinate`].
#[derive(Clone, Debug)]
pub struct CoordOpts {
    /// Worker process count (each owns one contiguous node shard).
    pub shards: usize,
    /// Engine configuration. `scheduling`, `fast_forward`, `dense_pct`,
    /// and `bit_budget` apply exactly as in-process; `threads` and
    /// `shard_min` are meaningless here (parallelism is the process
    /// fleet) and are ignored.
    pub config: EngineConfig,
    /// Transient-fault plan (drops, duplication, link down-intervals).
    /// Crash-stop schedules are rejected: kill a worker process to
    /// model a crash, and observe [`SimError::PeerLost`].
    pub plan: Option<FaultPlan>,
    /// Round watchdog, as in [`Simulator::run`](crate::Simulator::run).
    pub max_rounds: u64,
    /// Handshake and per-reply read deadline; workers heartbeat at a
    /// quarter of this period.
    pub timeout: Duration,
}

/// What a distributed run produces: the engine-identical report plus
/// one harvested output row per node, ascending by node index.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DistOutcome {
    /// The run's accounting, byte-identical to the in-process engine.
    pub report: RunReport,
    /// Worker-harvested rows, concatenated in shard (= node) order.
    pub outputs: Vec<u64>,
}

/// An opaque queued frame in the coordinator's message arena: the
/// process-level analogue of the engine's `Slot<Msg>`, with the sender
/// kept for error attribution.
type CSlot = Option<CFrame>;

struct CFrame {
    words: Vec<u64>,
    bits: u64,
    copies: u32,
    sender: u32,
    sender_port: u32,
}

struct WorkerLink {
    conn: Conn,
    bufs: FrameBufs,
}

impl WorkerLink {
    /// Receives the next non-heartbeat frame, under the read deadline.
    fn recv_real(&mut self, shard: usize, round: u64) -> Result<Ctl, SimError> {
        loop {
            match self.bufs.recv(&mut self.conn) {
                Ok(Ctl::Heartbeat) => continue,
                Ok(m) => return Ok(m),
                Err(e) => {
                    let what = match e.kind() {
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => {
                            "silent past the heartbeat deadline"
                        }
                        io::ErrorKind::UnexpectedEof => "stream closed",
                        _ => "stream error",
                    };
                    return Err(SimError::PeerLost {
                        peer: shard as u32,
                        round,
                        detail: format!("{what}: {e}"),
                    });
                }
            }
        }
    }

    fn send(&mut self, msg: &Ctl, shard: usize, round: u64) -> Result<(), SimError> {
        self.bufs
            .send(&mut self.conn, msg)
            .map_err(|e| SimError::PeerLost {
                peer: shard as u32,
                round,
                detail: format!("write failed: {e}"),
            })
    }
}

/// The coordinator's replica of the engine's schedule and accounting
/// state — field for field the structures `RoundEngine` keeps, minus
/// the automata (those live in the workers) and plus the socket links.
struct Coord<'g> {
    graph: &'g Graph,
    config: EngineConfig,
    off: Vec<usize>,
    rev_port: Vec<usize>,
    bounds: Vec<usize>,
    links: Vec<WorkerLink>,
    inbox: Vec<CSlot>,
    pending: Vec<CSlot>,
    pending_count: u64,
    recv_mark: Vec<u64>,
    receivers: Vec<u32>,
    ticking: Vec<u32>,
    timers: TimerHeap,
    due: Vec<u32>,
    merged: Vec<u32>,
    active: Vec<u32>,
    done_flag: Vec<bool>,
    live_undone: usize,
    first_step: bool,
    round: u64,
    report: RunReport,
    injector: Option<FaultInjector>,
    last_activity: u64,
    trace: Option<Box<dyn TraceSink>>,
    fixed_mem: u64,
    staged_bytes: u64,
    round_staged: u64,
    /// Per-round scratch: `(node, outcome)` in ascending node order.
    sched: Vec<(u32, Option<WireOutcome>)>,
    /// Per-round scratch: staged sends in ascending `(sender, port)`.
    staged: Vec<(u32, u32, CFrame)>,
    /// First CONGEST violation this round, by node order.
    violation: Option<(u32, u32)>,
}

impl Coord<'_> {
    fn quiescent(&self) -> bool {
        self.pending_count == 0 && self.live_undone == 0
    }

    fn queued_at(&self, v: usize) -> usize {
        self.pending[self.off[v]..self.off[v + 1]]
            .iter()
            .filter_map(|s| s.as_ref().map(|f| f.copies as usize))
            .sum()
    }

    fn stall_report(&self) -> StallReport {
        // no crash-stop over the transport: every node is live
        let mut pending: Vec<(NodeId, usize)> = self
            .receivers
            .iter()
            .map(|&v| (NodeId(v as usize), self.queued_at(v as usize)))
            .filter(|&(_, depth)| depth > 0)
            .collect();
        pending.sort_unstable_by_key(|&(v, _)| v.0);
        StallReport {
            not_done: (0..self.done_flag.len())
                .filter(|&v| !self.done_flag[v])
                .map(NodeId)
                .collect(),
            pending,
            last_activity: self.last_activity,
            crashed: Vec::new(),
            live: (0..self.done_flag.len()).map(NodeId).collect(),
            stopped_at: self.round,
        }
    }

    /// The engine's quiescence fast-forward, verbatim (no crash events
    /// to clamp the jump here).
    fn fast_forward(&mut self, limit: u64) {
        if !self.config.fast_forward
            || self.config.scheduling == Scheduling::FullScan
            || self.first_step
            || self.pending_count != 0
            || !self.ticking.is_empty()
        {
            return;
        }
        let mut target = limit;
        if let Some(wake) = self.timers.next_valid() {
            if wake <= self.round {
                return;
            }
            target = target.min(wake);
        }
        if target <= self.round {
            return;
        }
        if let Some(t) = self.trace.as_mut() {
            t.event(&TraceEvent::FastForward {
                from: self.round,
                to: target,
            });
        }
        self.round = target;
        self.report.rounds = target;
    }

    /// One distributed round: the engine's `step`, with the compute
    /// phase farmed out over the sockets and the merge replayed here in
    /// the exact sequential order.
    fn step(&mut self) -> Result<(), SimError> {
        let n = self.graph.node_count();
        if let Some(t) = self.trace.as_mut() {
            t.event(&TraceEvent::Round { round: self.round });
        }
        std::mem::swap(&mut self.inbox, &mut self.pending);
        self.pending_count = 0;
        self.timers.pop_due(self.round, &mut self.due);
        self.active.clear();
        let estimate = self.ticking.len() + self.due.len() + self.receivers.len();
        if self.first_step
            || self.config.scheduling == Scheduling::FullScan
            || estimate * 100 >= n.saturating_mul(self.config.dense_pct)
        {
            self.active.extend(0..n as u32);
        } else {
            self.receivers.sort_unstable();
            self.merged.clear();
            merge_sorted_dedup(&self.ticking, &self.due, &mut self.merged);
            merge_sorted_dedup(&self.merged, &self.receivers, &mut self.active);
        }
        self.first_step = false;
        self.receivers.clear();

        self.dispatch_round()?;
        let round_msgs = self.merge_staged()?;
        self.apply_schedule();
        self.report.peak_memory_bytes = self
            .report
            .peak_memory_bytes
            .max(self.fixed_mem + self.round_staged * self.staged_bytes);
        if let Some(inj) = &self.injector {
            self.report.dropped_messages = inj.dropped();
            self.report.duplicated_messages = inj.duplicated();
        }
        self.report.peak_messages_per_round = self.report.peak_messages_per_round.max(round_msgs);
        if round_msgs > 0 {
            self.last_activity = self.round;
        }
        self.round += 1;
        self.report.rounds = self.round;
        Ok(())
    }

    /// Sends every worker its shard of the active set (taking the
    /// queued inbox slots along), then collects the replies into the
    /// round's `sched`/`staged`/`violation` scratch.
    fn dispatch_round(&mut self) -> Result<(), SimError> {
        let shards = self.links.len();
        let round = self.round;
        for s in 0..shards {
            let (lo, hi) = (self.bounds[s] as u32, self.bounds[s + 1] as u32);
            let from = self.active.partition_point(|&v| v < lo);
            let to = self.active.partition_point(|&v| v < hi);
            let mut entries = Vec::with_capacity(to - from);
            for &v32 in &self.active[from..to] {
                let v = v32 as usize;
                let deg = self.graph.degree(NodeId(v));
                let base = self.off[v];
                let mut inbox = Vec::new();
                for p in 0..deg {
                    if let Some(f) = self.inbox[base + p].take() {
                        inbox.push(Delivery {
                            port: p as u32,
                            copies: f.copies,
                            sender: f.sender,
                            sender_port: f.sender_port,
                            bits: f.bits,
                            words: f.words,
                        });
                    }
                }
                entries.push(StartEntry { node: v32, inbox });
            }
            self.links[s].send(&Ctl::Start { round, entries }, s, round)?;
        }
        self.sched.clear();
        self.staged.clear();
        self.violation = None;
        for s in 0..shards {
            match self.links[s].recv_real(s, round)? {
                Ctl::RoundDone { round: r, results } => {
                    if r != round {
                        return Err(SimError::PeerLost {
                            peer: s as u32,
                            round,
                            detail: format!("round skew: replied for {r}, expected {round}"),
                        });
                    }
                    for res in results {
                        if let Some(p) = res.violation {
                            if self.violation.is_none() {
                                self.violation = Some((res.node, p));
                            }
                        }
                        for send in res.sends {
                            self.staged.push((
                                res.node,
                                send.port,
                                CFrame {
                                    words: send.words,
                                    bits: send.bits,
                                    copies: 0,
                                    sender: res.node,
                                    sender_port: send.port,
                                },
                            ));
                        }
                        self.sched.push((res.node, res.outcome));
                    }
                }
                Ctl::Abort {
                    node,
                    port,
                    round: r,
                    detail,
                } => {
                    return Err(SimError::WireMismatch {
                        node: NodeId(node as usize),
                        port: Port(port as usize),
                        round: r,
                        detail,
                    })
                }
                other => {
                    return Err(SimError::PeerLost {
                        peer: s as u32,
                        round,
                        detail: format!("unexpected reply: {other:?}"),
                    })
                }
            }
        }
        Ok(())
    }

    /// The engine's sequential merge over opaque frames: identical
    /// accounting, identical trace events, identical fault-injector
    /// call order.
    fn merge_staged(&mut self) -> Result<u64, SimError> {
        let round = self.round;
        let cut_node = self.violation.map_or(u32::MAX, |(v, _)| v);
        let staged_total = self.staged.len() as u64;
        self.round_staged = staged_total;
        if let Some(t) = self.trace.as_mut() {
            t.event(&TraceEvent::ShardFlush {
                round,
                staged: staged_total,
                bytes: staged_total * self.staged_bytes,
            });
        }
        let mut round_msgs = 0u64;
        let epoch = round + 1;
        for (v32, p32, frame) in self.staged.drain(..) {
            if v32 >= cut_node {
                continue;
            }
            let (v, p) = (v32 as usize, p32 as usize);
            let rp = self.rev_port[self.off[v] + p];
            if rp == usize::MAX {
                return Err(SimError::BrokenTopology {
                    node: NodeId(v),
                    port: Port(p),
                });
            }
            let arc = self.graph.neighbors(NodeId(v))[p];
            let bits = frame.bits;
            self.report.messages += 1;
            self.report.total_bits += bits;
            self.report.max_message_bits = self.report.max_message_bits.max(bits);
            round_msgs += 1;
            let (copies, down) = match self.injector.as_mut() {
                None => (1, false),
                Some(inj) => {
                    let tx = inj.transmit(arc.edge, round);
                    (tx.copies.len() as u32, tx.down)
                }
            };
            if let Some(t) = self.trace.as_mut() {
                t.event(&TraceEvent::Send {
                    round,
                    sender: v32,
                    port: p32,
                    bits,
                    copies,
                    link_down: down,
                });
            }
            if copies == 0 {
                continue;
            }
            let to = arc.to.0;
            let slot = &mut self.pending[self.off[to] + rp];
            match slot {
                Some(existing) => existing.copies += copies,
                None => *slot = Some(CFrame { copies, ..frame }),
            }
            self.pending_count += u64::from(copies);
            if self.recv_mark[to] != epoch {
                self.recv_mark[to] = epoch;
                self.receivers.push(to as u32);
            }
        }
        if let Some((v, port)) = self.violation {
            return Err(SimError::CongestViolation {
                node: NodeId(v as usize),
                port: Port(port as usize),
                round,
            });
        }
        Ok(round_msgs)
    }

    /// The engine's `apply_schedule` over the wire outcomes.
    fn apply_schedule(&mut self) {
        let next = self.round + 1;
        self.ticking.clear();
        for &(v32, outcome) in &self.sched {
            let v = v32 as usize;
            match outcome {
                None => {}
                Some(WireOutcome::Done) => {
                    if !self.done_flag[v] {
                        self.done_flag[v] = true;
                        self.live_undone -= 1;
                    }
                    self.timers.cancel(v32);
                }
                Some(WireOutcome::Tick | WireOutcome::Sleep | WireOutcome::Park(_)) => {
                    if self.done_flag[v] {
                        self.done_flag[v] = false;
                        self.live_undone += 1;
                    }
                    match outcome {
                        Some(WireOutcome::Tick) => {
                            self.timers.note(v32, next);
                            self.ticking.push(v32);
                        }
                        Some(WireOutcome::Sleep) => self.timers.cancel(v32),
                        Some(WireOutcome::Park(r)) => self.timers.park(v32, r),
                        _ => unreachable!(),
                    }
                }
            }
        }
        self.sched.clear();
    }
}

/// Runs the coordinator side of a distributed execution: accepts
/// `opts.shards` worker connections on `listener`, validates the
/// handshake (version, graph fingerprint, shard layout, memory-model
/// consensus), then drives the round loop to quiescence. The returned
/// report — and the stream written to `trace`, if any — is
/// byte-identical to `Simulator::with_config(..).run(max_rounds)` on a
/// single process.
///
/// # Errors
///
/// [`SimError::PeerLost`] when a worker never connects, disagrees in
/// the handshake, goes silent past the deadline, or closes its stream;
/// otherwise exactly the errors the in-process engine produces
/// ([`SimError::RoundLimitExceeded`], [`SimError::CongestViolation`],
/// [`SimError::WireMismatch`], [`SimError::BrokenTopology`]).
///
/// # Panics
///
/// If `opts.plan` schedules crash-stop faults (kill a worker process
/// instead), or `opts.shards` is zero or exceeds the node count.
pub fn coordinate(
    listener: CoordListener,
    graph: &Graph,
    opts: &CoordOpts,
    trace: Option<Box<dyn TraceSink>>,
) -> Result<DistOutcome, SimError> {
    let n = graph.node_count();
    assert!(
        opts.shards > 0 && opts.shards <= n.max(1),
        "shard count {} out of range for {n} nodes",
        opts.shards
    );
    let injector = opts.plan.as_ref().map(FaultInjector::new);
    if let Some(inj) = &injector {
        assert!(
            inj.crash_schedule().is_empty(),
            "crash-stop faults are not supported over the socket transport: \
             kill a worker process to model a crash (observed as PeerLost)"
        );
    }

    // Accept and identify the fleet.
    let mut links = accept_workers(&listener, graph, opts)?;
    let hello = |l: &HelloLink| (l.fixed_mem, l.staged_bytes);
    let (fixed_mem, staged_bytes) = hello(&links[0]);
    for (s, l) in links.iter().enumerate().skip(1) {
        if hello(l) != (fixed_mem, staged_bytes) {
            return Err(SimError::PeerLost {
                peer: s as u32,
                round: 0,
                detail: format!(
                    "memory-model disagreement: shard {s} reports ({}, {}), shard 0 ({}, {})",
                    l.fixed_mem, l.staged_bytes, fixed_mem, staged_bytes
                ),
            });
        }
    }
    let bounds = shard_bounds(n, opts.shards);
    let mut done_flag = vec![false; n];
    for (s, l) in links.iter().enumerate() {
        let want = bounds[s + 1] - bounds[s];
        if l.done.len() != want {
            return Err(SimError::PeerLost {
                peer: s as u32,
                round: 0,
                detail: format!("shard {s} reported {} nodes, expected {want}", l.done.len()),
            });
        }
        done_flag[bounds[s]..bounds[s + 1]].copy_from_slice(&l.done);
    }
    let live_undone = done_flag.iter().filter(|&&d| !d).count();

    // Complete the handshake.
    let welcome = Ctl::Welcome {
        timeout_ms: opts.timeout.as_millis() as u64,
        full_scan: opts.config.scheduling == Scheduling::FullScan,
    };
    let mut wlinks = Vec::with_capacity(links.len());
    for (s, mut l) in links.drain(..).enumerate() {
        l.link
            .conn
            .set_read_timeout(Some(opts.timeout))
            .map_err(|e| SimError::PeerLost {
                peer: s as u32,
                round: 0,
                detail: format!("set timeout: {e}"),
            })?;
        l.link.send(&welcome, s, 0)?;
        wlinks.push(l.link);
    }

    // CSR offsets and the flattened reverse-port table, as the engine
    // builds them.
    let mut off = Vec::with_capacity(n + 1);
    off.push(0usize);
    for v in 0..n {
        off.push(off[v] + graph.degree(NodeId(v)));
    }
    let acc = off[n];
    let mut rev_port = vec![usize::MAX; acc];
    for v in 0..n {
        for (p, arc) in graph.neighbors(NodeId(v)).iter().enumerate() {
            if let Some(rp) = graph
                .neighbors(arc.to)
                .iter()
                .position(|a| a.edge == arc.edge)
            {
                rev_port[off[v] + p] = rp;
            }
        }
    }

    let mut coord = Coord {
        graph,
        config: opts.config,
        off,
        rev_port,
        bounds,
        links: wlinks,
        inbox: (0..acc).map(|_| None).collect(),
        pending: (0..acc).map(|_| None).collect(),
        pending_count: 0,
        recv_mark: vec![0; n],
        receivers: Vec::new(),
        ticking: Vec::new(),
        timers: TimerHeap::new(n),
        due: Vec::new(),
        merged: Vec::new(),
        active: Vec::new(),
        done_flag,
        live_undone,
        first_step: true,
        round: 0,
        report: RunReport {
            peak_memory_bytes: fixed_mem,
            ..RunReport::default()
        },
        injector,
        last_activity: 0,
        trace,
        fixed_mem,
        staged_bytes,
        round_staged: 0,
        sched: Vec::new(),
        staged: Vec::new(),
        violation: None,
    };

    if let Some(t) = coord.trace.as_mut() {
        t.event(&TraceEvent::RunStart {
            mode: "sync",
            nodes: n,
            edges: graph.edge_count(),
            bit_budget: coord.config.bit_budget,
            fixed_mem: Some(coord.fixed_mem),
        });
    }

    // The run loop of `Simulator::run`, verbatim.
    loop {
        if coord.quiescent() {
            break;
        }
        coord.fast_forward(opts.max_rounds);
        if coord.quiescent() {
            break;
        }
        if coord.round >= opts.max_rounds {
            return Err(SimError::RoundLimitExceeded {
                limit: opts.max_rounds,
                stall: coord.stall_report(),
            });
        }
        coord.step()?;
    }
    if let Some(t) = coord.trace.as_mut() {
        t.event(&TraceEvent::RunEnd {
            report: &coord.report,
        });
        t.flush();
    }

    // Harvest.
    let mut outputs = Vec::with_capacity(n);
    let round = coord.round;
    for s in 0..coord.links.len() {
        coord.links[s].send(&Ctl::Finish, s, round)?;
    }
    for s in 0..coord.links.len() {
        match coord.links[s].recv_real(s, round)? {
            Ctl::Output { rows } => {
                let want = coord.bounds[s + 1] - coord.bounds[s];
                if rows.len() != want {
                    return Err(SimError::PeerLost {
                        peer: s as u32,
                        round,
                        detail: format!("shard {s} harvested {} rows, expected {want}", rows.len()),
                    });
                }
                outputs.extend_from_slice(&rows);
            }
            other => {
                return Err(SimError::PeerLost {
                    peer: s as u32,
                    round,
                    detail: format!("expected Output, got {other:?}"),
                })
            }
        }
    }
    Ok(DistOutcome {
        report: coord.report,
        outputs,
    })
}

/// A worker link paired with its validated handshake data.
struct HelloLink {
    link: WorkerLink,
    fixed_mem: u64,
    staged_bytes: u64,
    done: Vec<bool>,
}

/// Accepts `opts.shards` connections, reads and validates each Hello,
/// and returns the links ordered by shard index.
fn accept_workers(
    listener: &CoordListener,
    graph: &Graph,
    opts: &CoordOpts,
) -> Result<Vec<HelloLink>, SimError> {
    let deadline = Instant::now() + opts.timeout;
    listener
        .set_nonblocking(true)
        .map_err(|e| SimError::PeerLost {
            peer: 0,
            round: 0,
            detail: format!("listener setup: {e}"),
        })?;
    let mut slots: Vec<Option<HelloLink>> = (0..opts.shards).map(|_| None).collect();
    let mut filled = 0usize;
    let expect_hash = graph_fingerprint(graph);
    while filled < opts.shards {
        let conn = match listener.accept() {
            Ok(c) => c,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if Instant::now() >= deadline {
                    let missing = slots.iter().position(Option::is_none).unwrap_or(0);
                    return Err(SimError::PeerLost {
                        peer: missing as u32,
                        round: 0,
                        detail: format!(
                            "only {filled} of {} workers connected before the deadline",
                            opts.shards
                        ),
                    });
                }
                std::thread::sleep(Duration::from_millis(5));
                continue;
            }
            Err(e) => {
                return Err(SimError::PeerLost {
                    peer: 0,
                    round: 0,
                    detail: format!("accept: {e}"),
                })
            }
        };
        conn.set_read_timeout(Some(opts.timeout))
            .map_err(|e| SimError::PeerLost {
                peer: 0,
                round: 0,
                detail: format!("set timeout: {e}"),
            })?;
        let mut link = WorkerLink {
            conn,
            bufs: FrameBufs::default(),
        };
        let hello = link.recv_real(0, 0)?;
        let Ctl::Hello {
            version,
            shard,
            shards,
            graph_hash,
            fixed_mem,
            staged_bytes,
            done,
        } = hello
        else {
            return Err(SimError::PeerLost {
                peer: 0,
                round: 0,
                detail: format!("expected Hello, got {hello:?}"),
            });
        };
        let reject = |detail: String| SimError::PeerLost {
            peer: shard,
            round: 0,
            detail,
        };
        if version != TRANSPORT_VERSION {
            return Err(reject(format!(
                "transport version mismatch: worker speaks v{version}, coordinator v{TRANSPORT_VERSION}"
            )));
        }
        if shards as usize != opts.shards {
            return Err(reject(format!(
                "shard-count mismatch: worker expects {shards} shards, coordinator {}",
                opts.shards
            )));
        }
        if shard as usize >= opts.shards {
            return Err(reject(format!("shard index {shard} out of range")));
        }
        if graph_hash != expect_hash {
            return Err(reject(format!(
                "graph fingerprint mismatch: worker {graph_hash:#018x}, coordinator {expect_hash:#018x}"
            )));
        }
        let slot = &mut slots[shard as usize];
        if slot.is_some() {
            return Err(reject(format!("duplicate connection for shard {shard}")));
        }
        *slot = Some(HelloLink {
            link,
            fixed_mem,
            staged_bytes,
            done,
        });
        filled += 1;
    }
    listener.set_nonblocking(false).ok();
    Ok(slots.into_iter().map(|s| s.expect("filled")).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn roundtrip(msg: &Ctl) -> Ctl {
        let mut words = Vec::new();
        let bits = encode_to(msg, &mut words);
        let mut bytes = Vec::new();
        frame_to_bytes(&words, bits, &mut bytes);
        let mut back = Vec::new();
        let got_bits = read_frame(&mut Cursor::new(&bytes), &mut back).expect("read back");
        assert_eq!(got_bits, bits);
        assert_eq!(back, words);
        decode_from(&back, got_bits).expect("decode back")
    }

    fn sample_frames() -> Vec<Ctl> {
        vec![
            Ctl::Hello {
                version: TRANSPORT_VERSION,
                shard: 2,
                shards: 4,
                graph_hash: 0xdead_beef_cafe_f00d,
                fixed_mem: 123_456,
                staged_bytes: 24,
                done: vec![true, false, true],
            },
            Ctl::Welcome {
                timeout_ms: 5000,
                full_scan: true,
            },
            Ctl::Start {
                round: 7,
                entries: vec![
                    StartEntry {
                        node: 3,
                        inbox: vec![Delivery {
                            port: 1,
                            copies: 2,
                            sender: 9,
                            sender_port: 0,
                            bits: 65,
                            words: vec![u64::MAX, 1],
                        }],
                    },
                    StartEntry {
                        node: 4,
                        inbox: vec![],
                    },
                ],
            },
            Ctl::RoundDone {
                round: 7,
                results: vec![NodeResult {
                    node: 3,
                    outcome: Some(WireOutcome::Park(19)),
                    violation: Some(2),
                    sends: vec![SendFrame {
                        port: 0,
                        bits: 3,
                        words: vec![5],
                    }],
                }],
            },
            Ctl::Finish,
            Ctl::Output {
                rows: vec![0, u64::MAX, 42],
            },
            Ctl::Abort {
                node: 1,
                port: 2,
                round: 3,
                detail: "re-encode differs: 7 bits vs 9".into(),
            },
            Ctl::Heartbeat,
        ]
    }

    #[test]
    fn every_ctl_variant_survives_the_byte_frame() {
        for msg in sample_frames() {
            assert_eq!(roundtrip(&msg), msg);
        }
    }

    #[test]
    fn node_outcomes_roundtrip() {
        for outcome in [
            None,
            Some(WireOutcome::Done),
            Some(WireOutcome::Tick),
            Some(WireOutcome::Sleep),
            Some(WireOutcome::Park(u64::MAX)),
        ] {
            let res = NodeResult {
                node: 0,
                outcome,
                violation: None,
                sends: vec![],
            };
            let frame = res.to_frame();
            assert_eq!(NodeResult::from_frame(&frame).expect("roundtrip"), res);
        }
    }

    #[test]
    fn bad_magic_is_invalid_data_not_a_panic() {
        let mut bytes = Vec::new();
        frame_to_bytes(&[1, 2], 128, &mut bytes);
        bytes[0] ^= 0xFF;
        let mut words = Vec::new();
        let err = read_frame(&mut Cursor::new(&bytes), &mut words).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_frame_is_unexpected_eof() {
        let mut bytes = Vec::new();
        frame_to_bytes(&[1, 2, 3], 192, &mut bytes);
        for cut in [1, 8, 15, 16, 17, bytes.len() - 1] {
            let mut words = Vec::new();
            let err = read_frame(&mut Cursor::new(&bytes[..cut]), &mut words).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "cut at {cut}");
        }
    }

    #[test]
    fn word_count_bit_length_disagreement_is_rejected() {
        let mut bytes = Vec::new();
        frame_to_bytes(&[7], 64, &mut bytes);
        // claim 2 words in the header while the bit length says 1
        bytes[4..8].copy_from_slice(&2u32.to_le_bytes());
        let mut words = Vec::new();
        let err = read_frame(&mut Cursor::new(&bytes), &mut words).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn oversized_word_count_is_rejected_before_allocation() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
        bytes.extend_from_slice(&(MAX_FRAME_WORDS + 1).to_le_bytes());
        bytes.extend_from_slice(&(u64::from(MAX_FRAME_WORDS + 1) * 64).to_le_bytes());
        let mut words = Vec::new();
        let err = read_frame(&mut Cursor::new(&bytes), &mut words).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn corrupt_payload_decodes_to_a_typed_error() {
        // a NodeResult whose outcome tag (5 variants, 3 bits) carries the
        // invalid value 7
        let mut w = BitWriter::new();
        w.u32(0);
        w.tag(7, 8);
        let frame = w.finish();
        let err = NodeResult::from_frame(&frame).unwrap_err();
        assert!(matches!(
            err,
            WireError::BadTag {
                context: "node outcome",
                value: 7
            }
        ));
        // and a truncated Ctl frame overruns instead of panicking
        let hello = sample_frames().remove(0);
        let full = hello.to_frame();
        let mut w = BitWriter::new();
        w.push(0, 3); // the Hello tag alone, nothing after it
        let truncated = w.finish();
        assert!(full.bits() > truncated.bits());
        assert!(matches!(
            Ctl::from_frame(&truncated).unwrap_err(),
            WireError::Overrun { .. }
        ));
    }

    #[test]
    fn shard_bounds_cover_everything_evenly() {
        for n in [0usize, 1, 2, 7, 100, 2500] {
            for shards in [1usize, 2, 3, 4, 7] {
                let b = shard_bounds(n, shards);
                assert_eq!(b.len(), shards + 1);
                assert_eq!(b[0], 0);
                assert_eq!(b[shards], n);
                for s in 0..shards {
                    assert!(b[s] <= b[s + 1]);
                    // balanced within one node
                    let size = b[s + 1] - b[s];
                    assert!(size * shards <= n + shards && (size + 1) * shards >= n);
                }
            }
        }
    }

    #[test]
    fn endpoints_parse_and_display() {
        let tcp: Endpoint = "127.0.0.1:7000".parse().expect("bare tcp");
        assert_eq!(tcp, Endpoint::Tcp("127.0.0.1:7000".into()));
        let tcp2: Endpoint = "tcp:localhost:0".parse().expect("prefixed tcp");
        assert_eq!(tcp2, Endpoint::Tcp("localhost:0".into()));
        assert!("no-colon-here".parse::<Endpoint>().is_err());
        #[cfg(unix)]
        {
            let ux: Endpoint = "unix:/tmp/kdom.sock".parse().expect("unix");
            assert_eq!(ux.to_string(), "unix:/tmp/kdom.sock");
        }
    }

    #[test]
    fn graph_fingerprint_separates_topologies() {
        use kdom_graph::generators::Family;
        let a = Family::Grid.generate(16, 1);
        let b = Family::Grid.generate(16, 2);
        let c = Family::Grid.generate(25, 1);
        assert_eq!(graph_fingerprint(&a), graph_fingerprint(&a));
        assert_ne!(graph_fingerprint(&a), graph_fingerprint(&b));
        assert_ne!(graph_fingerprint(&a), graph_fingerprint(&c));
    }
}
