//! Bit-exact wire codec: the ground truth behind every `size_bits`.
//!
//! The CONGEST model's defining constraint is `O(log n)`-bit messages,
//! but an accounting layer is only as honest as its byte counts. This
//! module replaces hand-maintained size constants with a real encoding:
//! every [`Message`](crate::Message) implements [`Wire`], and
//! `size_bits` is *derived* from the encoded length (a zero-allocation
//! counting pass over [`Wire::encode`]). The engine's wire-exact mode
//! ([`EngineConfig::with_wire_exact`](crate::EngineConfig::with_wire_exact),
//! `KDOM_WIRE=exact`) goes further: it routes every message through
//! [`Wire::to_frame`] at send and [`Wire::from_frame`] at delivery,
//! proving the automata depend only on what is actually on the wire.
//!
//! # Conventions
//!
//! * Fields are written LSB-first into a little-endian `u64` stream.
//! * A "word" is [`CONGEST_WORD_BITS`] = 48 bits — the repo-wide
//!   convention that node ids and edge weights are `u64` values below
//!   2^48. The [`BitWriter::word`] helper *asserts* that convention, so
//!   an out-of-range id can no longer be silently under-priced.
//! * Enum discriminants use fixed-width tags of [`tag_bits`]`(variants)`
//!   bits ([`BitWriter::tag`] / [`BitReader::tag`]).
//! * Frames are length-delimited (real links frame their payloads, and
//!   the simulator's packed metadata carries `size_bits` anyway), so a
//!   decoder may branch on [`BitReader::remaining`]. Enums whose widest
//!   variant cannot afford a tag (the MST pipeline's 3-word edge
//!   descriptor) use this to stay within their word budget. For
//!   length-based dispatch to compose, a message payload must always be
//!   the *tail* of any enclosing frame — the α/ARQ control frames keep
//!   that invariant.

use std::fmt;

use crate::sim::CONGEST_WORD_BITS;

/// Number of bits a fixed-width enum tag needs for `variants` variants:
/// `ceil(log2(variants))`, with 0 for single-variant types.
#[must_use]
pub const fn tag_bits(variants: u64) -> u32 {
    if variants <= 1 {
        0
    } else {
        64 - (variants - 1).leading_zeros()
    }
}

/// An encoded message: the exact bits that travel over a link.
///
/// Equality is bit-exact — two frames are equal iff they have the same
/// length and the same bit content.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireFrame {
    words: Vec<u64>,
    bits: u64,
}

impl WireFrame {
    /// Length of the frame in bits — by construction equal to the
    /// encoder's bit count, and therefore to `Message::size_bits`.
    #[must_use]
    pub fn bits(&self) -> u64 {
        self.bits
    }
}

/// Errors a [`Wire::decode`] implementation can report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The decoder tried to read past the end of the frame.
    Overrun {
        /// Bit position at which the read started.
        at: u64,
        /// Width of the attempted read.
        want: u32,
        /// Total frame length in bits.
        len: u64,
    },
    /// A discriminant value matched no variant.
    BadTag {
        /// The type being decoded.
        context: &'static str,
        /// The offending tag value.
        value: u64,
    },
    /// A length-delimited enum saw a frame length matching no variant.
    BadLength {
        /// The type being decoded.
        context: &'static str,
        /// The offending remaining-length in bits.
        bits: u64,
    },
    /// Decoding finished with bits left unread — the encoding and the
    /// decoder disagree about the message layout.
    Leftover {
        /// Unread bits at the end of the frame.
        bits: u64,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Overrun { at, want, len } => {
                write!(
                    f,
                    "read of {want} bits at bit {at} overruns {len}-bit frame"
                )
            }
            WireError::BadTag { context, value } => {
                write!(f, "{context}: tag value {value} matches no variant")
            }
            WireError::BadLength { context, bits } => {
                write!(f, "{context}: frame length {bits} matches no variant")
            }
            WireError::Leftover { bits } => {
                write!(f, "decode left {bits} bit(s) unread")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Append-only bit stream used by [`Wire::encode`].
///
/// [`BitWriter::counter`] builds a writer that only counts — no
/// allocation, no stores — which is how `size_bits` is derived without
/// materialising a frame on every send.
#[derive(Debug)]
pub struct BitWriter {
    words: Vec<u64>,
    bits: u64,
    counting: bool,
}

impl Default for BitWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl BitWriter {
    /// A writer that materialises the encoded frame.
    #[must_use]
    pub fn new() -> Self {
        BitWriter {
            words: Vec::new(),
            bits: 0,
            counting: false,
        }
    }

    /// A writer that only counts bits (the `size_bits` fast path).
    #[must_use]
    pub fn counter() -> Self {
        BitWriter {
            words: Vec::new(),
            bits: 0,
            counting: true,
        }
    }

    /// Bits written so far.
    #[must_use]
    pub fn bits(&self) -> u64 {
        self.bits
    }

    /// Appends the low `width` bits of `value` (`width ≤ 64`).
    ///
    /// # Panics
    ///
    /// Panics if `value` has bits above `width` — an encoding that
    /// silently truncates would be a lie about the message's size.
    pub fn push(&mut self, value: u64, width: u32) {
        assert!(width <= 64, "field width {width} exceeds 64 bits");
        assert!(
            width == 64 || value >> width == 0,
            "value {value:#x} does not fit in {width} bits"
        );
        if !self.counting && width > 0 {
            let idx = (self.bits / 64) as usize;
            let off = (self.bits % 64) as u32;
            if idx == self.words.len() {
                self.words.push(0);
            }
            self.words[idx] |= value << off;
            if off > 0 && off + width > 64 {
                self.words.push(value >> (64 - off));
            }
        }
        self.bits += u64::from(width);
    }

    /// Appends one CONGEST word ([`CONGEST_WORD_BITS`] bits), asserting
    /// the repo-wide id/weight convention `v < 2^48`.
    pub fn word(&mut self, v: u64) {
        self.push(v, CONGEST_WORD_BITS as u32);
    }

    /// Appends a presence flag plus, if present, one CONGEST word.
    pub fn opt_word(&mut self, v: Option<u64>) {
        match v {
            Some(x) => {
                self.flag(true);
                self.word(x);
            }
            None => self.flag(false),
        }
    }

    /// Appends a single boolean bit.
    pub fn flag(&mut self, b: bool) {
        self.push(u64::from(b), 1);
    }

    /// Appends a `u32` field.
    pub fn u32(&mut self, v: u32) {
        self.push(u64::from(v), 32);
    }

    /// Appends a presence flag plus, if present, a `u32` field.
    pub fn opt_u32(&mut self, v: Option<u32>) {
        match v {
            Some(x) => {
                self.flag(true);
                self.u32(x);
            }
            None => self.flag(false),
        }
    }

    /// Appends a `u16` field.
    pub fn u16(&mut self, v: u16) {
        self.push(u64::from(v), 16);
    }

    /// Appends a fixed-width enum tag: `idx` in [`tag_bits`]`(variants)`
    /// bits.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= variants`.
    pub fn tag(&mut self, idx: u64, variants: u64) {
        assert!(
            idx < variants,
            "tag {idx} out of range for {variants} variants"
        );
        self.push(idx, tag_bits(variants));
    }

    /// Finishes the frame.
    ///
    /// # Panics
    ///
    /// Panics on a counting writer — it has no frame to yield.
    #[must_use]
    pub fn finish(self) -> WireFrame {
        assert!(!self.counting, "counting writers have no frame");
        WireFrame {
            words: self.words,
            bits: self.bits,
        }
    }
}

/// Cursor over an encoded frame, used by [`Wire::decode`].
#[derive(Debug)]
pub struct BitReader<'a> {
    words: &'a [u64],
    len: u64,
    pos: u64,
}

impl<'a> BitReader<'a> {
    /// A reader positioned at the start of `frame`.
    #[must_use]
    pub fn new(frame: &'a WireFrame) -> Self {
        BitReader {
            words: &frame.words,
            len: frame.bits,
            pos: 0,
        }
    }

    /// Bits left unread. Frames are length-delimited, so decoders may
    /// dispatch on this (see the module docs).
    #[must_use]
    pub fn remaining(&self) -> u64 {
        self.len - self.pos
    }

    /// Reads the next `width` bits (`width ≤ 64`).
    ///
    /// # Errors
    ///
    /// [`WireError::Overrun`] if fewer than `width` bits remain.
    pub fn pull(&mut self, width: u32) -> Result<u64, WireError> {
        assert!(width <= 64, "field width {width} exceeds 64 bits");
        if u64::from(width) > self.remaining() {
            return Err(WireError::Overrun {
                at: self.pos,
                want: width,
                len: self.len,
            });
        }
        if width == 0 {
            return Ok(0);
        }
        let idx = (self.pos / 64) as usize;
        let off = (self.pos % 64) as u32;
        let mut v = self.words[idx] >> off;
        if off > 0 && off + width > 64 {
            v |= self.words[idx + 1] << (64 - off);
        }
        if width < 64 {
            v &= (1u64 << width) - 1;
        }
        self.pos += u64::from(width);
        Ok(v)
    }

    /// Reads one CONGEST word.
    ///
    /// # Errors
    ///
    /// [`WireError::Overrun`] if the frame is exhausted.
    pub fn word(&mut self) -> Result<u64, WireError> {
        self.pull(CONGEST_WORD_BITS as u32)
    }

    /// Reads a presence flag plus, if set, one CONGEST word.
    ///
    /// # Errors
    ///
    /// [`WireError::Overrun`] if the frame is exhausted.
    pub fn opt_word(&mut self) -> Result<Option<u64>, WireError> {
        Ok(if self.flag()? {
            Some(self.word()?)
        } else {
            None
        })
    }

    /// Reads a single boolean bit.
    ///
    /// # Errors
    ///
    /// [`WireError::Overrun`] if the frame is exhausted.
    pub fn flag(&mut self) -> Result<bool, WireError> {
        Ok(self.pull(1)? != 0)
    }

    /// Reads a `u32` field.
    ///
    /// # Errors
    ///
    /// [`WireError::Overrun`] if the frame is exhausted.
    #[allow(clippy::cast_possible_truncation)]
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(self.pull(32)? as u32)
    }

    /// Reads a presence flag plus, if set, a `u32` field.
    ///
    /// # Errors
    ///
    /// [`WireError::Overrun`] if the frame is exhausted.
    pub fn opt_u32(&mut self) -> Result<Option<u32>, WireError> {
        Ok(if self.flag()? {
            Some(self.u32()?)
        } else {
            None
        })
    }

    /// Reads a `u16` field.
    ///
    /// # Errors
    ///
    /// [`WireError::Overrun`] if the frame is exhausted.
    #[allow(clippy::cast_possible_truncation)]
    pub fn u16(&mut self) -> Result<u16, WireError> {
        Ok(self.pull(16)? as u16)
    }

    /// Reads a fixed-width enum tag of [`tag_bits`]`(variants)` bits.
    /// The caller still matches the value — widths that are not a power
    /// of two leave unused tag codes, which must decode to
    /// [`WireError::BadTag`].
    ///
    /// # Errors
    ///
    /// [`WireError::Overrun`] if the frame is exhausted.
    pub fn tag(&mut self, variants: u64) -> Result<u64, WireError> {
        self.pull(tag_bits(variants))
    }
}

/// A type with a bit-exact wire encoding.
///
/// `encode` and `decode` must be inverses; the provided methods derive
/// everything else. [`Message`](crate::Message) requires this trait, so
/// a message type without an encoding no longer compiles — there is no
/// default size to hide behind.
pub trait Wire: Sized {
    /// Appends this value's encoding to `w`.
    fn encode(&self, w: &mut BitWriter);

    /// Decodes one value from `r`.
    ///
    /// # Errors
    ///
    /// Any [`WireError`] on a malformed frame.
    fn decode(r: &mut BitReader<'_>) -> Result<Self, WireError>;

    /// Exact encoded length in bits, via a zero-allocation counting
    /// pass. This is the single source of truth behind
    /// [`Message::size_bits`](crate::Message::size_bits).
    fn encoded_bits(&self) -> u64 {
        let mut w = BitWriter::counter();
        self.encode(&mut w);
        w.bits()
    }

    /// Encodes into a materialised frame.
    fn to_frame(&self) -> WireFrame {
        let mut w = BitWriter::new();
        self.encode(&mut w);
        w.finish()
    }

    /// Decodes a full frame, requiring every bit to be consumed.
    ///
    /// # Errors
    ///
    /// Any decode error, or [`WireError::Leftover`] if the frame is
    /// longer than the decoded value's encoding.
    fn from_frame(frame: &WireFrame) -> Result<Self, WireError> {
        let mut r = BitReader::new(frame);
        let v = Self::decode(&mut r)?;
        match r.remaining() {
            0 => Ok(v),
            bits => Err(WireError::Leftover { bits }),
        }
    }
}

/// Encodes `value` to a frame, decodes it back, and verifies the round
/// trip three ways: the decode must consume the frame exactly, the
/// decoded value must re-encode to the identical frame, and its `Debug`
/// rendering must match the original's (catching lossy encodings that
/// happen to re-encode stably). Returns the decoded value — wire-exact
/// execution delivers *it*, not the original, so the automata provably
/// depend only on the bits.
///
/// # Errors
///
/// A human-readable description of the first mismatch.
pub fn round_trip<T: Wire + fmt::Debug>(value: &T) -> Result<T, String> {
    let frame = value.to_frame();
    let decoded = T::from_frame(&frame).map_err(|e| format!("decode failed: {e}"))?;
    let reencoded = decoded.to_frame();
    if reencoded != frame {
        return Err(format!(
            "re-encode differs from the sent frame ({} vs {} bits)",
            reencoded.bits(),
            frame.bits()
        ));
    }
    let (sent, got) = (format!("{value:?}"), format!("{decoded:?}"));
    if sent != got {
        return Err(format!(
            "round trip changed the message: sent {sent}, decoded {got}"
        ));
    }
    Ok(decoded)
}

/// Implements [`Wire`] for payload-free marker messages (unit structs):
/// zero encoded bits — the frame's arrival is the entire signal.
#[macro_export]
macro_rules! impl_wire_empty {
    ($($t:ty),+ $(,)?) => {$(
        impl $crate::wire::Wire for $t {
            fn encode(&self, _w: &mut $crate::wire::BitWriter) {}
            fn decode(
                _r: &mut $crate::wire::BitReader<'_>,
            ) -> Result<Self, $crate::wire::WireError> {
                Ok(Self)
            }
        }
    )+};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_widths() {
        assert_eq!(tag_bits(1), 0);
        assert_eq!(tag_bits(2), 1);
        assert_eq!(tag_bits(3), 2);
        assert_eq!(tag_bits(4), 2);
        assert_eq!(tag_bits(5), 3);
        assert_eq!(tag_bits(8), 3);
        assert_eq!(tag_bits(9), 4);
    }

    #[test]
    fn push_pull_round_trips_across_word_boundaries() {
        let mut w = BitWriter::new();
        let fields: &[(u64, u32)] = &[
            (0b101, 3),
            (u64::MAX >> 16, 48),
            (1, 1),
            (0xDEAD_BEEF, 32),
            (u64::MAX, 64),
            (0, 7),
            ((1 << 47) | 1, 48),
        ];
        for &(v, width) in fields {
            w.push(v, width);
        }
        let total: u64 = fields.iter().map(|&(_, w)| u64::from(w)).sum();
        assert_eq!(w.bits(), total);
        let frame = w.finish();
        assert_eq!(frame.bits(), total);
        let mut r = BitReader::new(&frame);
        for &(v, width) in fields {
            assert_eq!(r.pull(width).unwrap(), v, "width {width}");
        }
        assert_eq!(r.remaining(), 0);
        assert!(matches!(r.pull(1), Err(WireError::Overrun { .. })));
    }

    #[test]
    fn counting_writer_matches_materialised_length() {
        let mut a = BitWriter::new();
        let mut b = BitWriter::counter();
        for w in [&mut a, &mut b] {
            w.word(12345);
            w.opt_word(Some(7));
            w.opt_word(None);
            w.flag(true);
            w.u32(99);
            w.u16(3);
            w.tag(4, 5);
        }
        assert_eq!(a.bits(), b.bits());
        assert_eq!(a.finish().bits(), b.bits());
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_field_value_panics() {
        BitWriter::new().push(1 << 10, 10);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn word_asserts_the_48_bit_convention() {
        BitWriter::new().word(1 << 48);
    }

    #[test]
    fn from_frame_rejects_leftover_bits() {
        #[derive(Clone, Debug, PartialEq)]
        struct Two(u64);
        impl Wire for Two {
            fn encode(&self, w: &mut BitWriter) {
                w.push(self.0, 2);
            }
            fn decode(r: &mut BitReader<'_>) -> Result<Self, WireError> {
                Ok(Two(r.pull(2)?))
            }
        }
        let mut w = BitWriter::new();
        w.push(0b10, 2);
        w.push(0b1, 1); // one trailing bit the decoder never reads
        let err = Two::from_frame(&w.finish()).unwrap_err();
        assert_eq!(err, WireError::Leftover { bits: 1 });
        assert_eq!(Two::from_frame(&Two(2).to_frame()).unwrap(), Two(2));
    }

    #[test]
    fn round_trip_catches_lossy_encodings() {
        // Encodes only the low 4 bits but remembers 8: decode loses
        // information while re-encoding stably — only the Debug
        // comparison can see it.
        #[derive(Debug)]
        struct Lossy(u64);
        impl Wire for Lossy {
            fn encode(&self, w: &mut BitWriter) {
                w.push(self.0 & 0xF, 4);
            }
            fn decode(r: &mut BitReader<'_>) -> Result<Self, WireError> {
                Ok(Lossy(r.pull(4)?))
            }
        }
        assert!(round_trip(&Lossy(0x5)).is_ok());
        let err = round_trip(&Lossy(0xF5)).unwrap_err();
        assert!(err.contains("changed the message"), "{err}");
    }

    #[test]
    fn empty_markers_encode_to_zero_bits() {
        #[derive(Clone, Debug)]
        struct Ping;
        crate::impl_wire_empty!(Ping);
        assert_eq!(Ping.encoded_bits(), 0);
        let frame = Ping.to_frame();
        assert_eq!(frame.bits(), 0);
        assert!(Ping::from_frame(&frame).is_ok());
    }
}
