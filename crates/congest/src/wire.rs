//! Bit-exact wire codec: the ground truth behind every `size_bits`.
//!
//! The CONGEST model's defining constraint is `O(log n)`-bit messages,
//! but an accounting layer is only as honest as its byte counts. This
//! module replaces hand-maintained size constants with a real encoding:
//! every [`Message`](crate::Message) implements [`Wire`], and
//! `size_bits` is *derived* from the encoded length (a zero-allocation
//! counting pass over [`Wire::encode`]). Wire-exact execution — the
//! default
//! ([`EngineConfig::with_wire_exact`](crate::EngineConfig::with_wire_exact),
//! `KDOM_WIRE=off` to disable) — goes further: it routes every message
//! through [`Wire::to_frame`] at send and [`Wire::from_frame`] at
//! delivery, proving the automata depend only on what is actually on
//! the wire. The bit I/O is branchless and word-at-a-time, and the
//! executors reuse [`CodecScratch`] buffers, so the round trip costs no
//! allocation per message.
//!
//! # Conventions
//!
//! * Fields are written LSB-first into a little-endian `u64` stream.
//! * A "word" is [`CONGEST_WORD_BITS`] = 48 bits — the repo-wide
//!   convention that node ids and edge weights are `u64` values below
//!   2^48. The [`BitWriter::word`] helper *asserts* that convention, so
//!   an out-of-range id can no longer be silently under-priced.
//! * Enum discriminants use fixed-width tags of [`tag_bits`]`(variants)`
//!   bits ([`BitWriter::tag`] / [`BitReader::tag`]).
//! * Frames are length-delimited (real links frame their payloads, and
//!   the simulator's packed metadata carries `size_bits` anyway), so a
//!   decoder may branch on [`BitReader::remaining`]. Enums whose widest
//!   variant cannot afford a tag (the MST pipeline's 3-word edge
//!   descriptor) use this to stay within their word budget. For
//!   length-based dispatch to compose, a message payload must always be
//!   the *tail* of any enclosing frame — the α/ARQ control frames keep
//!   that invariant.

use std::fmt;

use crate::sim::CONGEST_WORD_BITS;

/// Number of bits a fixed-width enum tag needs for `variants` variants:
/// `ceil(log2(variants))`, with 0 for single-variant types.
#[must_use]
pub const fn tag_bits(variants: u64) -> u32 {
    if variants <= 1 {
        0
    } else {
        64 - (variants - 1).leading_zeros()
    }
}

/// An encoded message: the exact bits that travel over a link.
///
/// Equality is bit-exact — two frames are equal iff they have the same
/// length and the same bit content.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireFrame {
    words: Vec<u64>,
    bits: u64,
}

impl WireFrame {
    /// Length of the frame in bits — by construction equal to the
    /// encoder's bit count, and therefore to `Message::size_bits`.
    #[must_use]
    pub fn bits(&self) -> u64 {
        self.bits
    }
}

/// Errors a [`Wire::decode`] implementation can report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The decoder tried to read past the end of the frame.
    Overrun {
        /// Bit position at which the read started.
        at: u64,
        /// Width of the attempted read.
        want: u32,
        /// Total frame length in bits.
        len: u64,
    },
    /// A discriminant value matched no variant.
    BadTag {
        /// The type being decoded.
        context: &'static str,
        /// The offending tag value.
        value: u64,
    },
    /// A length-delimited enum saw a frame length matching no variant.
    BadLength {
        /// The type being decoded.
        context: &'static str,
        /// The offending remaining-length in bits.
        bits: u64,
    },
    /// Decoding finished with bits left unread — the encoding and the
    /// decoder disagree about the message layout.
    Leftover {
        /// Unread bits at the end of the frame.
        bits: u64,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Overrun { at, want, len } => {
                write!(
                    f,
                    "read of {want} bits at bit {at} overruns {len}-bit frame"
                )
            }
            WireError::BadTag { context, value } => {
                write!(f, "{context}: tag value {value} matches no variant")
            }
            WireError::BadLength { context, bits } => {
                write!(f, "{context}: frame length {bits} matches no variant")
            }
            WireError::Leftover { bits } => {
                write!(f, "decode left {bits} bit(s) unread")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Append-only bit stream used by [`Wire::encode`].
///
/// [`BitWriter::counter`] builds a writer that only counts — no
/// allocation, no stores — which is how `size_bits` is derived without
/// materialising a frame on every send.
///
/// The materialising writer accumulates into a single `u64` staging
/// word held in a register: each field is OR-ed in at the current bit
/// offset, the part that does not fit is computed branchlessly with a
/// shift pair (no shift-by-64, no per-bit loop), and the staging word
/// is flushed to the backing vector only when a field crosses the
/// 64-bit boundary. This is the wire-exact hot path: the engine
/// round-trips every message through this writer per send.
#[derive(Debug)]
pub struct BitWriter {
    words: Vec<u64>,
    /// Staging word holding the bits of the partially-filled tail word.
    acc: u64,
    bits: u64,
    counting: bool,
}

impl Default for BitWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl BitWriter {
    /// A writer that materialises the encoded frame.
    #[must_use]
    pub fn new() -> Self {
        BitWriter {
            words: Vec::new(),
            acc: 0,
            bits: 0,
            counting: false,
        }
    }

    /// A writer that only counts bits (the `size_bits` fast path).
    #[must_use]
    pub fn counter() -> Self {
        BitWriter {
            words: Vec::new(),
            acc: 0,
            bits: 0,
            counting: true,
        }
    }

    /// A materialising writer that reuses `buf` as its backing storage
    /// (cleared first), so repeated encodes allocate nothing once the
    /// buffer has grown to the working-set size. Recover the buffer
    /// with [`BitWriter::into_raw`].
    fn reuse(mut buf: Vec<u64>) -> Self {
        buf.clear();
        BitWriter {
            words: buf,
            acc: 0,
            bits: 0,
            counting: false,
        }
    }

    /// Bits written so far.
    #[must_use]
    pub fn bits(&self) -> u64 {
        self.bits
    }

    /// Appends the low `width` bits of `value` (`width ≤ 64`).
    ///
    /// # Panics
    ///
    /// Panics if `value` has bits above `width` — an encoding that
    /// silently truncates would be a lie about the message's size.
    #[inline]
    pub fn push(&mut self, value: u64, width: u32) {
        assert!(width <= 64, "field width {width} exceeds 64 bits");
        assert!(
            width == 64 || value >> width == 0,
            "value {value:#x} does not fit in {width} bits"
        );
        if !self.counting {
            let off = (self.bits & 63) as u32;
            self.acc |= value << off;
            // the high part that misses the staging word; the shift pair
            // sidesteps the undefined shift-by-64 at off == 0
            let spill = (value >> (63 - off)) >> 1;
            if off + width >= 64 {
                self.words.push(self.acc);
                self.acc = spill;
            }
        }
        self.bits += u64::from(width);
    }

    /// Appends one CONGEST word ([`CONGEST_WORD_BITS`] bits), asserting
    /// the repo-wide id/weight convention `v < 2^48`.
    #[inline]
    pub fn word(&mut self, v: u64) {
        self.push(v, CONGEST_WORD_BITS as u32);
    }

    /// Appends a presence flag plus, if present, one CONGEST word.
    #[inline]
    pub fn opt_word(&mut self, v: Option<u64>) {
        match v {
            Some(x) => {
                self.flag(true);
                self.word(x);
            }
            None => self.flag(false),
        }
    }

    /// Appends a single boolean bit.
    #[inline]
    pub fn flag(&mut self, b: bool) {
        self.push(u64::from(b), 1);
    }

    /// Appends a `u32` field.
    #[inline]
    pub fn u32(&mut self, v: u32) {
        self.push(u64::from(v), 32);
    }

    /// Appends a presence flag plus, if present, a `u32` field.
    pub fn opt_u32(&mut self, v: Option<u32>) {
        match v {
            Some(x) => {
                self.flag(true);
                self.u32(x);
            }
            None => self.flag(false),
        }
    }

    /// Appends a `u16` field.
    #[inline]
    pub fn u16(&mut self, v: u16) {
        self.push(u64::from(v), 16);
    }

    /// Appends a fixed-width enum tag: `idx` in [`tag_bits`]`(variants)`
    /// bits.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= variants`.
    #[inline]
    pub fn tag(&mut self, idx: u64, variants: u64) {
        assert!(
            idx < variants,
            "tag {idx} out of range for {variants} variants"
        );
        self.push(idx, tag_bits(variants));
    }

    /// Finishes the frame.
    ///
    /// # Panics
    ///
    /// Panics on a counting writer — it has no frame to yield.
    #[must_use]
    pub fn finish(self) -> WireFrame {
        assert!(!self.counting, "counting writers have no frame");
        let (words, bits) = self.into_raw();
        WireFrame { words, bits }
    }

    /// Flushes the partial staging word and returns the raw backing
    /// buffer plus the bit length — the zero-copy form of
    /// [`BitWriter::finish`] used by [`CodecScratch`] to keep the
    /// allocation alive across encodes. The buffer holds exactly
    /// `ceil(bits / 64)` words, identical to a [`WireFrame`]'s.
    fn into_raw(mut self) -> (Vec<u64>, u64) {
        if self.bits & 63 != 0 {
            self.words.push(self.acc);
        }
        (self.words, self.bits)
    }
}

/// Encodes `value` into `out` (cleared and reused), returning the bit
/// length. The zero-allocation form of [`Wire::to_frame`] for callers
/// that stream raw words — e.g. the socket transport's frame writer,
/// which serializes the word buffer straight to a stream instead of
/// holding a [`WireFrame`].
pub fn encode_to<T: Wire>(value: &T, out: &mut Vec<u64>) -> u64 {
    let mut w = BitWriter::reuse(std::mem::take(out));
    value.encode(&mut w);
    let (words, bits) = w.into_raw();
    *out = words;
    bits
}

/// Decodes a value from raw frame words, requiring the word count to
/// match `ceil(bits / 64)` and every bit to be consumed — the inverse
/// of [`encode_to`], for callers that received the words from a stream.
///
/// # Errors
///
/// [`WireError::BadLength`] when the word count does not match the
/// declared bit length, any decode error, or [`WireError::Leftover`]
/// when the frame is longer than the decoded value's encoding.
pub fn decode_from<T: Wire>(words: &[u64], bits: u64) -> Result<T, WireError> {
    if words.len() as u64 != bits.div_ceil(64) {
        return Err(WireError::BadLength {
            context: "frame word count",
            bits,
        });
    }
    let mut r = BitReader::from_raw(words, bits);
    let v = T::decode(&mut r)?;
    match r.remaining() {
        0 => Ok(v),
        bits => Err(WireError::Leftover { bits }),
    }
}

/// Cursor over an encoded frame, used by [`Wire::decode`].
#[derive(Debug)]
pub struct BitReader<'a> {
    words: &'a [u64],
    len: u64,
    pos: u64,
}

impl<'a> BitReader<'a> {
    /// A reader positioned at the start of `frame`.
    #[must_use]
    pub fn new(frame: &'a WireFrame) -> Self {
        BitReader {
            words: &frame.words,
            len: frame.bits,
            pos: 0,
        }
    }

    /// A reader over a raw `(words, bits)` pair as produced by
    /// [`BitWriter::into_raw`], so [`CodecScratch`] can decode without
    /// materialising a [`WireFrame`].
    fn from_raw(words: &'a [u64], len: u64) -> Self {
        debug_assert!(len.div_ceil(64) <= words.len() as u64);
        BitReader { words, len, pos: 0 }
    }

    /// Bits left unread. Frames are length-delimited, so decoders may
    /// dispatch on this (see the module docs).
    #[must_use]
    #[inline]
    pub fn remaining(&self) -> u64 {
        self.len - self.pos
    }

    /// Reads the next `width` bits (`width ≤ 64`).
    ///
    /// The extraction is branchless past the bounds check: the low word
    /// is shifted down, the (possibly absent) high word is blended in
    /// with a shift pair that degenerates to zero at offset 0, and a
    /// single mask trims the field — no per-bit loop, no data-dependent
    /// branches on the hot path.
    ///
    /// # Errors
    ///
    /// [`WireError::Overrun`] if fewer than `width` bits remain.
    #[inline]
    pub fn pull(&mut self, width: u32) -> Result<u64, WireError> {
        assert!(width <= 64, "field width {width} exceeds 64 bits");
        if u64::from(width) > self.remaining() {
            return Err(WireError::Overrun {
                at: self.pos,
                want: width,
                len: self.len,
            });
        }
        if width == 0 {
            return Ok(0);
        }
        let idx = (self.pos >> 6) as usize;
        let off = (self.pos & 63) as u32;
        let lo = self.words[idx] >> off;
        // the next word exists only for straddling reads; reading zero
        // otherwise keeps the blend unconditional
        let hi = self.words.get(idx + 1).copied().unwrap_or(0);
        // shift pair avoids the undefined shift-by-64 at off == 0
        let v = (lo | (hi << (63 - off)) << 1) & (u64::MAX >> (64 - width));
        self.pos += u64::from(width);
        Ok(v)
    }

    /// Reads one CONGEST word.
    ///
    /// # Errors
    ///
    /// [`WireError::Overrun`] if the frame is exhausted.
    #[inline]
    pub fn word(&mut self) -> Result<u64, WireError> {
        self.pull(CONGEST_WORD_BITS as u32)
    }

    /// Reads a presence flag plus, if set, one CONGEST word.
    ///
    /// # Errors
    ///
    /// [`WireError::Overrun`] if the frame is exhausted.
    #[inline]
    pub fn opt_word(&mut self) -> Result<Option<u64>, WireError> {
        Ok(if self.flag()? {
            Some(self.word()?)
        } else {
            None
        })
    }

    /// Reads a single boolean bit.
    ///
    /// # Errors
    ///
    /// [`WireError::Overrun`] if the frame is exhausted.
    #[inline]
    pub fn flag(&mut self) -> Result<bool, WireError> {
        Ok(self.pull(1)? != 0)
    }

    /// Reads a `u32` field.
    ///
    /// # Errors
    ///
    /// [`WireError::Overrun`] if the frame is exhausted.
    #[allow(clippy::cast_possible_truncation)]
    #[inline]
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(self.pull(32)? as u32)
    }

    /// Reads a presence flag plus, if set, a `u32` field.
    ///
    /// # Errors
    ///
    /// [`WireError::Overrun`] if the frame is exhausted.
    pub fn opt_u32(&mut self) -> Result<Option<u32>, WireError> {
        Ok(if self.flag()? {
            Some(self.u32()?)
        } else {
            None
        })
    }

    /// Reads a `u16` field.
    ///
    /// # Errors
    ///
    /// [`WireError::Overrun`] if the frame is exhausted.
    #[allow(clippy::cast_possible_truncation)]
    #[inline]
    pub fn u16(&mut self) -> Result<u16, WireError> {
        Ok(self.pull(16)? as u16)
    }

    /// Reads a fixed-width enum tag of [`tag_bits`]`(variants)` bits.
    /// The caller still matches the value — widths that are not a power
    /// of two leave unused tag codes, which must decode to
    /// [`WireError::BadTag`].
    ///
    /// # Errors
    ///
    /// [`WireError::Overrun`] if the frame is exhausted.
    #[inline]
    pub fn tag(&mut self, variants: u64) -> Result<u64, WireError> {
        self.pull(tag_bits(variants))
    }
}

/// A type with a bit-exact wire encoding.
///
/// `encode` and `decode` must be inverses; the provided methods derive
/// everything else. [`Message`](crate::Message) requires this trait, so
/// a message type without an encoding no longer compiles — there is no
/// default size to hide behind.
pub trait Wire: Sized {
    /// Appends this value's encoding to `w`.
    fn encode(&self, w: &mut BitWriter);

    /// Decodes one value from `r`.
    ///
    /// # Errors
    ///
    /// Any [`WireError`] on a malformed frame.
    fn decode(r: &mut BitReader<'_>) -> Result<Self, WireError>;

    /// Exact encoded length in bits, via a zero-allocation counting
    /// pass. This is the single source of truth behind
    /// [`Message::size_bits`](crate::Message::size_bits).
    fn encoded_bits(&self) -> u64 {
        let mut w = BitWriter::counter();
        self.encode(&mut w);
        w.bits()
    }

    /// Encodes into a materialised frame.
    fn to_frame(&self) -> WireFrame {
        let mut w = BitWriter::new();
        self.encode(&mut w);
        w.finish()
    }

    /// Decodes a full frame, requiring every bit to be consumed.
    ///
    /// # Errors
    ///
    /// Any decode error, or [`WireError::Leftover`] if the frame is
    /// longer than the decoded value's encoding.
    fn from_frame(frame: &WireFrame) -> Result<Self, WireError> {
        let mut r = BitReader::new(frame);
        let v = Self::decode(&mut r)?;
        match r.remaining() {
            0 => Ok(v),
            bits => Err(WireError::Leftover { bits }),
        }
    }
}

/// Encodes `value` to a frame, decodes it back, and verifies the round
/// trip three ways: the decode must consume the frame exactly, the
/// decoded value must re-encode to the identical frame, and its `Debug`
/// rendering must match the original's (catching lossy encodings that
/// happen to re-encode stably). Returns the decoded value — wire-exact
/// execution delivers *it*, not the original, so the automata provably
/// depend only on the bits.
///
/// # Errors
///
/// A human-readable description of the first mismatch.
pub fn round_trip<T: Wire + fmt::Debug>(value: &T) -> Result<T, String> {
    let frame = value.to_frame();
    let decoded = T::from_frame(&frame).map_err(|e| format!("decode failed: {e}"))?;
    let reencoded = decoded.to_frame();
    if reencoded != frame {
        return Err(format!(
            "re-encode differs from the sent frame ({} vs {} bits)",
            reencoded.bits(),
            frame.bits()
        ));
    }
    let (sent, got) = (format!("{value:?}"), format!("{decoded:?}"));
    if sent != got {
        return Err(format!(
            "round trip changed the message: sent {sent}, decoded {got}"
        ));
    }
    Ok(decoded)
}

/// Reusable encode/decode buffers for the wire-exact hot path.
///
/// [`round_trip`] allocates two frames and renders two `Debug` strings
/// per message — fine for tests, ruinous at millions of messages per
/// run. `CodecScratch` performs the same encode → decode → re-encode
/// verification entirely inside two reused word buffers: after warm-up
/// it allocates nothing and never formats. The `Debug` comparison that
/// catches *lossy-but-stable* encodings is kept in debug builds only
/// (release executions still catch every encoding whose re-encoded
/// bits differ — the class of mismatch a real link could exhibit; the
/// α executor's delivery check has always worked at this level).
///
/// One scratch lives in each engine worker and in the sequential merge
/// path, so wire-exact execution stops allocating per frame. The
/// engine's bucketed per-send path goes one step further and uses
/// [`CodecScratch::transcode`] — encode + decode only, with the
/// canonicality re-encode deferred to debug builds — because delivering
/// the decoded value already proves the automata depend only on the
/// bits.
#[derive(Debug, Default)]
pub struct CodecScratch {
    enc: Vec<u64>,
    renc: Vec<u64>,
}

impl CodecScratch {
    /// An empty scratch; buffers grow on first use and are then reused.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Encodes `value`, decodes it back, and verifies the round trip
    /// in reused buffers: the decode must consume the frame exactly and
    /// the decoded value must re-encode to the identical bits (plus a
    /// `Debug` comparison in debug builds — see the type docs). Returns
    /// the decoded value, which is what wire-exact execution delivers.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first mismatch, identical in
    /// kind to [`round_trip`]'s.
    pub fn round_trip<T: Wire + fmt::Debug>(&mut self, value: &T) -> Result<T, String> {
        let mut w = BitWriter::reuse(std::mem::take(&mut self.enc));
        value.encode(&mut w);
        let (enc, bits) = w.into_raw();
        let mut r = BitReader::from_raw(&enc, bits);
        let decoded = match T::decode(&mut r) {
            Ok(v) => v,
            Err(e) => {
                self.enc = enc;
                return Err(format!("decode failed: {e}"));
            }
        };
        let leftover = r.remaining();
        if leftover != 0 {
            self.enc = enc;
            return Err(format!(
                "decode failed: {}",
                WireError::Leftover { bits: leftover }
            ));
        }
        let mut w = BitWriter::reuse(std::mem::take(&mut self.renc));
        decoded.encode(&mut w);
        let (renc, rbits) = w.into_raw();
        let identical = rbits == bits && renc == enc;
        self.enc = enc;
        self.renc = renc;
        if !identical {
            return Err(format!(
                "re-encode differs from the sent frame ({rbits} vs {bits} bits)"
            ));
        }
        #[cfg(debug_assertions)]
        {
            let (sent, got) = (format!("{value:?}"), format!("{decoded:?}"));
            if sent != got {
                return Err(format!(
                    "round trip changed the message: sent {sent}, decoded {got}"
                ));
            }
        }
        Ok(decoded)
    }

    /// Encodes `value` and decodes it back in the reused buffer —
    /// the engine's per-send hot path. Returns the decoded value plus
    /// the exact encoded bit length, so the caller charges accounting
    /// from the same pass instead of a separate counting encode.
    ///
    /// Wire-exactness holds by construction: the caller delivers the
    /// *decoded* value, so the automata provably depend only on the
    /// bits. The re-encode comparison that additionally proves the
    /// codec canonical (a codec-bug detector, not something a real link
    /// could exhibit) runs in debug builds only; release keeps it in
    /// [`CodecScratch::round_trip`] (tests, fallback replay) and the α
    /// executor's [`CodecScratch::check_frame`] delivery check.
    ///
    /// # Errors
    ///
    /// A human-readable description of the decode failure (or, in debug
    /// builds, any round-trip mismatch).
    pub fn transcode<T: Wire + fmt::Debug>(&mut self, value: &T) -> Result<(T, u64), String> {
        let mut w = BitWriter::reuse(std::mem::take(&mut self.enc));
        value.encode(&mut w);
        let (enc, bits) = w.into_raw();
        let mut r = BitReader::from_raw(&enc, bits);
        let decoded = T::decode(&mut r);
        let leftover = r.remaining();
        self.enc = enc;
        let decoded = match decoded {
            Ok(v) => v,
            Err(e) => return Err(format!("decode failed: {e}")),
        };
        if leftover != 0 {
            return Err(format!(
                "decode failed: {}",
                WireError::Leftover { bits: leftover }
            ));
        }
        #[cfg(debug_assertions)]
        {
            let mut w = BitWriter::reuse(std::mem::take(&mut self.renc));
            decoded.encode(&mut w);
            let (renc, rbits) = w.into_raw();
            let identical = rbits == bits && renc == self.enc;
            self.renc = renc;
            if !identical {
                return Err(format!(
                    "re-encode differs from the sent frame ({rbits} vs {bits} bits)"
                ));
            }
            let (sent, got) = (format!("{value:?}"), format!("{decoded:?}"));
            if sent != got {
                return Err(format!(
                    "round trip changed the message: sent {sent}, decoded {got}"
                ));
            }
        }
        Ok((decoded, bits))
    }

    /// Decodes a received [`WireFrame`] and verifies the decoded value
    /// re-encodes to the very bits received, re-encoding into a reused
    /// buffer. This is the α executor's delivery-side check, minus its
    /// former per-delivery allocation.
    ///
    /// # Errors
    ///
    /// A human-readable description of the decode failure or bit
    /// mismatch.
    pub fn check_frame<T: Wire + fmt::Debug>(&mut self, frame: &WireFrame) -> Result<T, String> {
        let decoded = T::from_frame(frame).map_err(|e| format!("decode failed: {e}"))?;
        let mut w = BitWriter::reuse(std::mem::take(&mut self.renc));
        decoded.encode(&mut w);
        let (renc, rbits) = w.into_raw();
        let identical = rbits == frame.bits && renc == frame.words;
        self.renc = renc;
        if identical {
            Ok(decoded)
        } else {
            Err(format!(
                "re-encoding decoded frame {decoded:?} does not reproduce the received bits"
            ))
        }
    }
}

/// Implements [`Wire`] for payload-free marker messages (unit structs):
/// zero encoded bits — the frame's arrival is the entire signal.
#[macro_export]
macro_rules! impl_wire_empty {
    ($($t:ty),+ $(,)?) => {$(
        impl $crate::wire::Wire for $t {
            fn encode(&self, _w: &mut $crate::wire::BitWriter) {}
            fn decode(
                _r: &mut $crate::wire::BitReader<'_>,
            ) -> Result<Self, $crate::wire::WireError> {
                Ok(Self)
            }
        }
    )+};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_widths() {
        assert_eq!(tag_bits(1), 0);
        assert_eq!(tag_bits(2), 1);
        assert_eq!(tag_bits(3), 2);
        assert_eq!(tag_bits(4), 2);
        assert_eq!(tag_bits(5), 3);
        assert_eq!(tag_bits(8), 3);
        assert_eq!(tag_bits(9), 4);
    }

    #[test]
    fn push_pull_round_trips_across_word_boundaries() {
        let mut w = BitWriter::new();
        let fields: &[(u64, u32)] = &[
            (0b101, 3),
            (u64::MAX >> 16, 48),
            (1, 1),
            (0xDEAD_BEEF, 32),
            (u64::MAX, 64),
            (0, 7),
            ((1 << 47) | 1, 48),
        ];
        for &(v, width) in fields {
            w.push(v, width);
        }
        let total: u64 = fields.iter().map(|&(_, w)| u64::from(w)).sum();
        assert_eq!(w.bits(), total);
        let frame = w.finish();
        assert_eq!(frame.bits(), total);
        let mut r = BitReader::new(&frame);
        for &(v, width) in fields {
            assert_eq!(r.pull(width).unwrap(), v, "width {width}");
        }
        assert_eq!(r.remaining(), 0);
        assert!(matches!(r.pull(1), Err(WireError::Overrun { .. })));
    }

    #[test]
    fn counting_writer_matches_materialised_length() {
        let mut a = BitWriter::new();
        let mut b = BitWriter::counter();
        for w in [&mut a, &mut b] {
            w.word(12345);
            w.opt_word(Some(7));
            w.opt_word(None);
            w.flag(true);
            w.u32(99);
            w.u16(3);
            w.tag(4, 5);
        }
        assert_eq!(a.bits(), b.bits());
        assert_eq!(a.finish().bits(), b.bits());
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_field_value_panics() {
        BitWriter::new().push(1 << 10, 10);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn word_asserts_the_48_bit_convention() {
        BitWriter::new().word(1 << 48);
    }

    #[test]
    fn from_frame_rejects_leftover_bits() {
        #[derive(Clone, Debug, PartialEq)]
        struct Two(u64);
        impl Wire for Two {
            fn encode(&self, w: &mut BitWriter) {
                w.push(self.0, 2);
            }
            fn decode(r: &mut BitReader<'_>) -> Result<Self, WireError> {
                Ok(Two(r.pull(2)?))
            }
        }
        let mut w = BitWriter::new();
        w.push(0b10, 2);
        w.push(0b1, 1); // one trailing bit the decoder never reads
        let err = Two::from_frame(&w.finish()).unwrap_err();
        assert_eq!(err, WireError::Leftover { bits: 1 });
        assert_eq!(Two::from_frame(&Two(2).to_frame()).unwrap(), Two(2));
    }

    #[test]
    fn round_trip_catches_lossy_encodings() {
        // Encodes only the low 4 bits but remembers 8: decode loses
        // information while re-encoding stably — only the Debug
        // comparison can see it.
        #[derive(Debug)]
        struct Lossy(u64);
        impl Wire for Lossy {
            fn encode(&self, w: &mut BitWriter) {
                w.push(self.0 & 0xF, 4);
            }
            fn decode(r: &mut BitReader<'_>) -> Result<Self, WireError> {
                Ok(Lossy(r.pull(4)?))
            }
        }
        assert!(round_trip(&Lossy(0x5)).is_ok());
        let err = round_trip(&Lossy(0xF5)).unwrap_err();
        assert!(err.contains("changed the message"), "{err}");
    }

    /// The pre-rewrite writer algorithm (read-modify-write into the
    /// vector, per-field boundary branches), kept verbatim as the
    /// reference the branchless staging-word writer is pinned against.
    struct OldWriter {
        words: Vec<u64>,
        bits: u64,
    }

    impl OldWriter {
        fn new() -> Self {
            OldWriter {
                words: Vec::new(),
                bits: 0,
            }
        }

        fn push(&mut self, value: u64, width: u32) {
            if width > 0 {
                let idx = (self.bits / 64) as usize;
                let off = (self.bits % 64) as u32;
                if idx == self.words.len() {
                    self.words.push(0);
                }
                self.words[idx] |= value << off;
                if off > 0 && off + width > 64 {
                    self.words.push(value >> (64 - off));
                }
            }
            self.bits += u64::from(width);
        }

        /// The pre-rewrite reader extraction, applied to the old frame.
        fn pull_all(&self, widths: &[u32]) -> Vec<u64> {
            let mut pos = 0u64;
            let mut out = Vec::new();
            for &width in widths {
                if width == 0 {
                    out.push(0);
                    continue;
                }
                let idx = (pos / 64) as usize;
                let off = (pos % 64) as u32;
                let mut v = self.words[idx] >> off;
                if off > 0 && off + width > 64 {
                    v |= self.words[idx + 1] << (64 - off);
                }
                if width < 64 {
                    v &= (1u64 << width) - 1;
                }
                out.push(v);
                pos += u64::from(width);
            }
            out
        }
    }

    fn random_fields(seed: u64, n: usize) -> Vec<(u64, u32)> {
        let mut rng = kdom_rng::StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let width = (rng.next_u64() % 65) as u32;
                let value = if width == 0 {
                    0
                } else if width == 64 {
                    rng.next_u64()
                } else {
                    rng.next_u64() & ((1u64 << width) - 1)
                };
                (value, width)
            })
            .collect()
    }

    #[test]
    fn branchless_writer_bitstream_matches_old_algorithm() {
        for seed in 0..32u64 {
            let fields = random_fields(seed, 200);
            let mut old = OldWriter::new();
            let mut new = BitWriter::new();
            for &(v, width) in &fields {
                old.push(v, width);
                new.push(v, width);
            }
            let frame = new.finish();
            assert_eq!(frame.bits(), old.bits, "seed {seed}");
            assert_eq!(frame.words, old.words, "seed {seed}: bit stream diverged");
            // and the branchless reader agrees with the old extraction
            let widths: Vec<u32> = fields.iter().map(|&(_, w)| w).collect();
            let mut r = BitReader::new(&frame);
            let old_vals = old.pull_all(&widths);
            for (i, (&(v, width), want)) in fields.iter().zip(old_vals).enumerate() {
                let got = r.pull(width).unwrap();
                assert_eq!(got, v, "seed {seed} field {i}");
                assert_eq!(got, want, "seed {seed} field {i} (old reader)");
            }
            assert_eq!(r.remaining(), 0);
        }
    }

    #[test]
    fn megabit_sentinel_scale_frame_matches_old_algorithm() {
        // Wider than the engine's 20-bit packed-meta sentinel threshold
        // (2^20 - 1 bits): 25 000 48-bit words ≈ 1.2 Mbit, the scale of
        // the oversized-frame test in `sim.rs`.
        let mut old = OldWriter::new();
        let mut new = BitWriter::new();
        for i in 0..25_000u64 {
            let v = i.wrapping_mul(0x9E37_79B9_7F4A_7C15) & ((1 << 48) - 1);
            old.push(v, 48);
            new.push(v, 48);
        }
        let frame = new.finish();
        assert!(frame.bits() > (1 << 20), "frame must exceed the sentinel");
        assert_eq!(frame.bits(), old.bits);
        assert_eq!(frame.words, old.words);
        let mut r = BitReader::new(&frame);
        for i in 0..25_000u64 {
            let want = i.wrapping_mul(0x9E37_79B9_7F4A_7C15) & ((1 << 48) - 1);
            assert_eq!(r.pull(48).unwrap(), want, "word {i}");
        }
    }

    #[test]
    fn scratch_round_trip_agrees_with_allocating_round_trip() {
        #[derive(Clone, Debug, PartialEq)]
        struct Mixed {
            a: u64,
            b: Option<u64>,
            c: bool,
            d: u32,
        }
        impl Wire for Mixed {
            fn encode(&self, w: &mut BitWriter) {
                w.word(self.a);
                w.opt_word(self.b);
                w.flag(self.c);
                w.u32(self.d);
            }
            fn decode(r: &mut BitReader<'_>) -> Result<Self, WireError> {
                Ok(Mixed {
                    a: r.word()?,
                    b: r.opt_word()?,
                    c: r.flag()?,
                    d: r.u32()?,
                })
            }
        }
        let mut scratch = CodecScratch::new();
        let mut rng = kdom_rng::StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let m = Mixed {
                a: rng.next_u64() & ((1 << 48) - 1),
                b: (rng.next_u64() & 1 == 0).then(|| rng.next_u64() & ((1 << 48) - 1)),
                c: rng.next_u64() & 1 == 0,
                d: rng.next_u64() as u32,
            };
            let via_scratch = scratch.round_trip(&m).unwrap();
            let via_alloc = round_trip(&m).unwrap();
            assert_eq!(via_scratch, via_alloc);
            assert_eq!(via_scratch, m);
        }
    }

    #[test]
    fn scratch_check_frame_verifies_received_bits() {
        #[derive(Clone, Debug, PartialEq)]
        struct W(u64);
        impl Wire for W {
            fn encode(&self, w: &mut BitWriter) {
                w.word(self.0);
            }
            fn decode(r: &mut BitReader<'_>) -> Result<Self, WireError> {
                Ok(W(r.word()?))
            }
        }
        let mut scratch = CodecScratch::new();
        let frame = W(12_345).to_frame();
        assert_eq!(scratch.check_frame::<W>(&frame).unwrap(), W(12_345));
        // a truncated frame must fail the decode
        let mut w = BitWriter::new();
        w.push(3, 2);
        let err = scratch.check_frame::<W>(&w.finish()).unwrap_err();
        assert!(err.contains("decode failed"), "{err}");
    }

    #[cfg(debug_assertions)]
    #[test]
    fn scratch_round_trip_catches_lossy_encodings_in_debug() {
        #[derive(Debug)]
        struct Lossy(u64);
        impl Wire for Lossy {
            fn encode(&self, w: &mut BitWriter) {
                w.push(self.0 & 0xF, 4);
            }
            fn decode(r: &mut BitReader<'_>) -> Result<Self, WireError> {
                Ok(Lossy(r.pull(4)?))
            }
        }
        let mut scratch = CodecScratch::new();
        assert!(scratch.round_trip(&Lossy(0x5)).is_ok());
        let err = scratch.round_trip(&Lossy(0xF5)).unwrap_err();
        assert!(err.contains("changed the message"), "{err}");
    }

    #[test]
    fn empty_markers_encode_to_zero_bits() {
        #[derive(Clone, Debug)]
        struct Ping;
        crate::impl_wire_empty!(Ping);
        assert_eq!(Ping.encoded_bits(), 0);
        let frame = Ping.to_frame();
        assert_eq!(frame.bits(), 0);
        assert!(Ping::from_frame(&frame).is_ok());
    }
}
