//! Structured tracing and post-hoc validation for the round engine.
//!
//! The paper's claims are accounting claims — round counts, message
//! counts, `O(log n)`-bit frames — and until now the only window into a
//! run was the nine-field [`RunReport`] produced by counters scattered
//! through the engine. This module records the *evidence* instead: every
//! executed round, every fast-forward skip, every staged send with its
//! `(sender, port, size_bits)`, every injected fault, every ARQ
//! retransmission, and the phase markers of the composed runners, as a
//! stream of typed [`TraceEvent`]s.
//!
//! Three pieces:
//!
//! * [`TraceSink`] — where events go. The engine holds an
//!   `Option<Box<dyn TraceSink>>`; with no sink attached (the default)
//!   every emission site is a single never-taken branch, so tracing costs
//!   nothing when disabled.
//! * [`JsonlSink`] — the production sink: one JSON object per line,
//!   appended to the file named by `KDOM_TRACE` (see [`from_env`]). The
//!   format is hand-rolled and dependency-free, like the bench harness's
//!   `BENCH_engine.json`.
//! * [`validate_str`] / [`validate_file`] — the post-hoc validator: it
//!   replays the event stream, **re-derives every [`RunReport`] field**
//!   from first principles, compares against the report the engine
//!   recorded at `run_end`, and checks the CONGEST contract over the
//!   whole run — at most one message per edge-direction per round and
//!   `size_bits` within the word budget. This turns experiment E12's
//!   single pinned assert into a property of every traced round.
//!
//! Phase markers ([`emit_phase`] / [`emit_charge`]) partition a multi-run
//! trace into the composition stages of the paper's algorithms (SimpleMST
//! fragments, the charged `DOMPartition`, BFS, the MST pipeline), and the
//! validator folds per-run reports into per-phase breakdowns whose sum is
//! checked against the absorbed total.

use std::collections::{HashMap, HashSet};
use std::fs::OpenOptions;
use std::io::{BufWriter, Write as _};
use std::path::Path;
use std::sync::{Arc, Mutex};

use crate::report::RunReport;

/// Environment variable naming the JSONL trace file ([`from_env`]).
pub const TRACE_ENV: &str = "KDOM_TRACE";

/// One structured event in a run's evidence stream.
///
/// Borrowed fields keep emission allocation-free; sinks serialize what
/// they need. Times are rounds in the synchronous engine and virtual
/// times under synchronizer α (whose pulses are reported separately).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent<'a> {
    /// A simulator run begins. `mode` is `"sync"`, `"alpha"`, or
    /// `"reliable-alpha"`; `bit_budget` is the engine's per-message
    /// CONGEST cap when one is configured.
    RunStart {
        /// Execution mode label.
        mode: &'a str,
        /// Nodes in the simulated graph.
        nodes: usize,
        /// Undirected edges in the simulated graph.
        edges: usize,
        /// Per-message bit cap enforced by the engine, if configured.
        bit_budget: Option<u64>,
        /// Fixed memory footprint of the executor (graph CSR, arenas,
        /// tables, automata), in bytes. `None` for executors that do not
        /// track memory (the reference loop and synchronizer α). The
        /// validator re-derives `peak_memory_bytes` as this plus the
        /// largest per-round flush.
        fixed_mem: Option<u64>,
    },
    /// A composition-stage marker (e.g. `"BFS"`, `"Pipeline"`): all
    /// following runs and charges belong to this phase until the next
    /// marker.
    Phase {
        /// Stage label.
        label: &'a str,
    },
    /// Analytically charged rounds (the cluster engine's `Charge`):
    /// rounds added to the phase without a measured run.
    Charge {
        /// Charged round count.
        rounds: u64,
    },
    /// A round is about to execute (not emitted for skipped rounds).
    Round {
        /// The round number.
        round: u64,
    },
    /// Quiescence fast-forward jumped the round counter from `from` to
    /// `to` without executing the `to - from` silent rounds between.
    FastForward {
        /// Round counter before the jump.
        from: u64,
        /// Round counter after the jump.
        to: u64,
    },
    /// The round's staged sends are merged into the arena. Emitted once
    /// per executed round with totals summed over all worker shards, so
    /// the stream is identical regardless of `KDOM_THREADS`.
    ShardFlush {
        /// The round being merged.
        round: u64,
        /// Sends staged across all shards this round.
        staged: u64,
        /// Bytes the staged slab occupied (packed metadata + payload
        /// slots); the validator's peak-memory evidence.
        bytes: u64,
    },
    /// One staged send, at the instant it is accounted: `copies` is what
    /// the fault injector put on the wire (0 = dropped, 2 = duplicated),
    /// and `link_down` marks drops caused by a link down-interval.
    Send {
        /// The sending round.
        round: u64,
        /// Sender node index.
        sender: u32,
        /// Sender-side port.
        port: u32,
        /// Message width in bits.
        bits: u64,
        /// Copies placed on the wire by the injector (1 when fault-free).
        copies: u32,
        /// Whether a zero-copy outcome was a down-interval drop.
        link_down: bool,
    },
    /// Queued message copies destroyed in the inboxes of nodes that
    /// crashed this round (counted as drops, separately from link loss).
    CrashLost {
        /// The round of the crash.
        round: u64,
        /// Copies destroyed.
        copies: u64,
    },
    /// Synchronizer α advanced a node to `pulse` for the first time
    /// (emitted only when the global pulse high-water mark moves).
    Pulse {
        /// The new maximum pulse.
        pulse: u64,
    },
    /// A payload frame was delivered to the protocol under α (control
    /// frames — acks, safes, link-acks — are not payload deliveries).
    Deliver {
        /// Virtual delivery time.
        time: u64,
        /// Receiving node index.
        node: u32,
        /// Receiver-side port.
        port: u32,
        /// Payload width in bits.
        bits: u64,
    },
    /// The injector destroyed a frame under α; `link_down` marks
    /// down-interval losses.
    Drop {
        /// Virtual send time.
        time: u64,
        /// Whether the loss came from a link down-interval.
        link_down: bool,
    },
    /// The injector duplicated a frame under α.
    Duplicate {
        /// Virtual send time.
        time: u64,
    },
    /// Frames destroyed by node crashes under α (unsent payloads of dead
    /// senders, undeliverable payloads to dead receivers, wires cleared
    /// by [`crate::reliable::LinkState::clear`]).
    CrashDrop {
        /// Frames lost.
        lost: u64,
    },
    /// The ARQ layer retransmitted an unacknowledged frame.
    Retx {
        /// Virtual time of the retransmission.
        time: u64,
        /// Retransmitting node index.
        node: u32,
        /// Sender-side port of the link.
        port: u32,
        /// Link-local sequence number of the frame.
        seq: u64,
        /// Attempt number (2 = first retransmission).
        attempt: u32,
    },
    /// One churn event applied at an epoch boundary (between runs). The
    /// endpoint fields follow [`crate::faults::ChurnEvent`]: `a` is the
    /// primary node id, `b` the second endpoint for edge events, `w` the
    /// weight for weight-carrying events.
    Churn {
        /// Index of the epoch this event belongs to.
        epoch: u64,
        /// Event kind label (`"node_leave"`, `"node_join"`,
        /// `"weight_change"`, `"edge_insert"`, `"edge_remove"`).
        kind: &'a str,
        /// Primary application-level node id.
        a: u64,
        /// Second endpoint for edge events.
        b: Option<u64>,
        /// Weight for weight-carrying events.
        w: Option<u64>,
    },
    /// A re-fixup decision after an epoch (emitted between runs, before
    /// the recovery run starts): `scope` nodes out of `total` were
    /// declared dirty. When `full_restart` is false, the validator audits
    /// that the next `run_start` simulates at most `scope` nodes — the
    /// incremental path must not touch more of the graph than it claimed.
    Refixup {
        /// Index of the epoch being repaired.
        epoch: u64,
        /// Nodes in the dirty scope the incremental path claims.
        scope: usize,
        /// Nodes in the whole (post-churn) graph.
        total: usize,
        /// Whether the full-restart fallback was taken instead of the
        /// incremental path.
        full_restart: bool,
    },
    /// The run finished; `report` is the engine's own final accounting,
    /// which the validator re-derives independently from the events
    /// above.
    RunEnd {
        /// The report the engine recorded.
        report: &'a RunReport,
    },
}

/// Destination for trace events.
///
/// Implementations must be cheap per call (the engine emits one `Send`
/// per message) — buffer internally and flush in [`TraceSink::flush`].
pub trait TraceSink: Send {
    /// Records one event.
    fn event(&mut self, ev: &TraceEvent<'_>);
    /// Flushes buffered events (called at `run_end`); default no-op.
    fn flush(&mut self) {}
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Serializes one event as its canonical single-line JSON object (the
/// format [`validate_str`] parses).
pub fn to_json(ev: &TraceEvent<'_>) -> String {
    match ev {
        TraceEvent::RunStart {
            mode,
            nodes,
            edges,
            bit_budget,
            fixed_mem,
        } => {
            let mut s = String::from("{\"ev\":\"run_start\",\"mode\":\"");
            escape_into(&mut s, mode);
            s.push_str(&format!("\",\"nodes\":{nodes},\"edges\":{edges}"));
            if let Some(b) = bit_budget {
                s.push_str(&format!(",\"budget\":{b}"));
            }
            if let Some(m) = fixed_mem {
                s.push_str(&format!(",\"fixed_mem\":{m}"));
            }
            s.push('}');
            s
        }
        TraceEvent::Phase { label } => {
            let mut s = String::from("{\"ev\":\"phase\",\"label\":\"");
            escape_into(&mut s, label);
            s.push_str("\"}");
            s
        }
        TraceEvent::Charge { rounds } => {
            format!("{{\"ev\":\"charge\",\"rounds\":{rounds}}}")
        }
        TraceEvent::Round { round } => format!("{{\"ev\":\"round\",\"r\":{round}}}"),
        TraceEvent::FastForward { from, to } => {
            format!("{{\"ev\":\"ff\",\"from\":{from},\"to\":{to}}}")
        }
        TraceEvent::ShardFlush {
            round,
            staged,
            bytes,
        } => format!("{{\"ev\":\"flush\",\"r\":{round},\"staged\":{staged},\"bytes\":{bytes}}}"),
        TraceEvent::Send {
            round,
            sender,
            port,
            bits,
            copies,
            link_down,
        } => format!(
            "{{\"ev\":\"send\",\"r\":{round},\"v\":{sender},\"p\":{port},\"bits\":{bits},\
             \"copies\":{copies},\"down\":{link_down}}}"
        ),
        TraceEvent::CrashLost { round, copies } => {
            format!("{{\"ev\":\"crash_lost\",\"r\":{round},\"copies\":{copies}}}")
        }
        TraceEvent::Pulse { pulse } => format!("{{\"ev\":\"pulse\",\"p\":{pulse}}}"),
        TraceEvent::Deliver {
            time,
            node,
            port,
            bits,
        } => {
            format!("{{\"ev\":\"deliver\",\"t\":{time},\"v\":{node},\"p\":{port},\"bits\":{bits}}}")
        }
        TraceEvent::Drop { time, link_down } => {
            format!("{{\"ev\":\"drop\",\"t\":{time},\"down\":{link_down}}}")
        }
        TraceEvent::Duplicate { time } => format!("{{\"ev\":\"dup\",\"t\":{time}}}"),
        TraceEvent::CrashDrop { lost } => format!("{{\"ev\":\"crash_drop\",\"n\":{lost}}}"),
        TraceEvent::Retx {
            time,
            node,
            port,
            seq,
            attempt,
        } => format!(
            "{{\"ev\":\"retx\",\"t\":{time},\"v\":{node},\"p\":{port},\"seq\":{seq},\
             \"attempt\":{attempt}}}"
        ),
        TraceEvent::Churn {
            epoch,
            kind,
            a,
            b,
            w,
        } => {
            let mut s = format!("{{\"ev\":\"churn\",\"epoch\":{epoch},\"kind\":\"");
            escape_into(&mut s, kind);
            s.push_str(&format!("\",\"a\":{a}"));
            if let Some(b) = b {
                s.push_str(&format!(",\"b\":{b}"));
            }
            if let Some(w) = w {
                s.push_str(&format!(",\"w\":{w}"));
            }
            s.push('}');
            s
        }
        TraceEvent::Refixup {
            epoch,
            scope,
            total,
            full_restart,
        } => format!(
            "{{\"ev\":\"refixup\",\"epoch\":{epoch},\"scope\":{scope},\"total\":{total},\
             \"full\":{full_restart}}}"
        ),
        TraceEvent::RunEnd { report } => format!(
            "{{\"ev\":\"run_end\",\"rounds\":{},\"messages\":{},\"total_bits\":{},\
             \"max_message_bits\":{},\"peak\":{},\"dropped\":{},\"duplicated\":{},\"retx\":{},\
             \"peak_mem\":{}}}",
            report.rounds,
            report.messages,
            report.total_bits,
            report.max_message_bits,
            report.peak_messages_per_round,
            report.dropped_messages,
            report.duplicated_messages,
            report.retransmissions,
            report.peak_memory_bytes
        ),
    }
}

/// The production sink: serialized events appended line-by-line to a
/// file. Opened in append mode so the multiple runs of a composed
/// algorithm (fragments, BFS, pipeline) land in one stream.
pub struct JsonlSink {
    out: BufWriter<std::fs::File>,
}

impl JsonlSink {
    /// Opens (creating if needed) `path` for appending.
    ///
    /// # Errors
    ///
    /// Propagates the underlying `std::io::Error`.
    pub fn append(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(JsonlSink {
            out: BufWriter::new(file),
        })
    }
}

impl TraceSink for JsonlSink {
    fn event(&mut self, ev: &TraceEvent<'_>) {
        let _ = writeln!(self.out, "{}", to_json(ev));
    }
    fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        let _ = self.out.flush();
    }
}

/// An in-memory sink holding serialized JSONL lines behind a shared
/// handle — tests attach one clone to a simulator and validate the other
/// after the run, no filesystem or environment involved.
#[derive(Clone, Default)]
pub struct MemorySink {
    lines: Arc<Mutex<Vec<String>>>,
}

impl MemorySink {
    /// Creates an empty shared buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The recorded lines joined into one JSONL document (validator
    /// input).
    pub fn to_jsonl(&self) -> String {
        let lines = self.lines.lock().unwrap_or_else(|p| p.into_inner());
        let mut s = lines.join("\n");
        if !s.is_empty() {
            s.push('\n');
        }
        s
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.lines.lock().unwrap_or_else(|p| p.into_inner()).len()
    }

    /// Whether no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The serialized lines recorded at index `from` and later — the
    /// incremental read used by `kdom-serve` trace subscribers, who poll
    /// a job's sink and remember how far they have streamed.
    pub fn lines_since(&self, from: usize) -> Vec<String> {
        let lines = self.lines.lock().unwrap_or_else(|p| p.into_inner());
        lines
            .get(from..)
            .map(<[String]>::to_vec)
            .unwrap_or_default()
    }
}

impl TraceSink for MemorySink {
    fn event(&mut self, ev: &TraceEvent<'_>) {
        self.lines
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(to_json(ev));
    }
}

/// A per-thread trace policy overriding the `KDOM_TRACE` environment
/// knob; installed with [`with_thread_trace`].
///
/// The environment is process-global, which is exactly wrong for the job
/// scheduler: two concurrent jobs appending to one `KDOM_TRACE` file
/// would interleave their streams into something no validator accepts.
/// Every sink attach point in the workspace funnels through
/// [`from_env`], so a thread-scoped override at that one choke point
/// gives each job its own policy without touching the engine.
#[derive(Clone, Default)]
pub enum ThreadTrace {
    /// Defer to the `KDOM_TRACE` environment knob (the default).
    #[default]
    Inherit,
    /// Tracing disabled on this thread regardless of the environment.
    Off,
    /// Events recorded into this shared in-memory sink.
    Capture(MemorySink),
}

thread_local! {
    static THREAD_TRACE: std::cell::RefCell<ThreadTrace> =
        const { std::cell::RefCell::new(ThreadTrace::Inherit) };
}

/// Runs `f` with `mode` as this thread's trace policy, restoring the
/// previous policy afterwards (also on panic, so a crashed job cannot
/// leak its capture sink into the worker thread's next job).
pub fn with_thread_trace<R>(mode: ThreadTrace, f: impl FnOnce() -> R) -> R {
    struct Restore(ThreadTrace);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = std::mem::take(&mut self.0);
            THREAD_TRACE.with(|t| *t.borrow_mut() = prev);
        }
    }
    let _restore = Restore(THREAD_TRACE.with(|t| t.replace(mode)));
    f()
}

/// Builds the sink selected by this thread's policy: the capture sink or
/// nothing when a [`ThreadTrace`] override is installed, otherwise a
/// [`JsonlSink`] appending to the file named by `KDOM_TRACE`, or `None`
/// (the zero-cost default) when the variable is unset or empty. An
/// unopenable path is reported to stderr once and treated as disabled
/// rather than aborting the run.
pub fn from_env() -> Option<Box<dyn TraceSink>> {
    match THREAD_TRACE.with(|t| t.borrow().clone()) {
        ThreadTrace::Off => return None,
        ThreadTrace::Capture(sink) => return Some(Box::new(sink)),
        ThreadTrace::Inherit => {}
    }
    let path = kdom_graph::knob::raw(TRACE_ENV)?;
    match JsonlSink::append(&path) {
        Ok(sink) => Some(Box::new(sink)),
        Err(e) => {
            eprintln!("{TRACE_ENV}: cannot open {path}: {e}; tracing disabled");
            None
        }
    }
}

/// Appends a phase marker to the `KDOM_TRACE` stream (no-op when tracing
/// is disabled). Called once per composition stage by the runners, so
/// the open-append-close cost is irrelevant.
pub fn emit_phase(label: &str) {
    if let Some(mut sink) = from_env() {
        sink.event(&TraceEvent::Phase { label });
        sink.flush();
    }
}

/// Appends an analytic round charge (the cluster engine's contribution)
/// to the `KDOM_TRACE` stream; no-op when tracing is disabled.
pub fn emit_charge(rounds: u64) {
    if let Some(mut sink) = from_env() {
        sink.event(&TraceEvent::Charge { rounds });
        sink.flush();
    }
}

/// Appends one churn event (applied at an epoch boundary) to the
/// `KDOM_TRACE` stream; no-op when tracing is disabled. Must be called
/// between runs — the validator rejects churn inside an open run.
pub fn emit_churn(epoch: u64, ev: &crate::faults::ChurnEvent) {
    if let Some(mut sink) = from_env() {
        let (a, b) = ev.endpoints();
        sink.event(&TraceEvent::Churn {
            epoch,
            kind: ev.kind(),
            a,
            b,
            w: ev.weight(),
        });
        sink.flush();
    }
}

/// Appends a re-fixup decision to the `KDOM_TRACE` stream; no-op when
/// tracing is disabled. For an incremental decision (`full_restart ==
/// false`) the validator audits that the next run simulates at most
/// `scope` nodes.
pub fn emit_refixup(epoch: u64, scope: usize, total: usize, full_restart: bool) {
    if let Some(mut sink) = from_env() {
        sink.event(&TraceEvent::Refixup {
            epoch,
            scope,
            total,
            full_restart,
        });
        sink.flush();
    }
}

// ---------------------------------------------------------------------
// Validator
// ---------------------------------------------------------------------

/// One validated run inside a trace: the report re-derived from events
/// next to the report the engine recorded. [`validate_str`] only returns
/// summaries whose two reports agree on all nine fields.
#[derive(Clone, Debug)]
pub struct RunSummary {
    /// Execution mode (`"sync"`, `"alpha"`, `"reliable-alpha"`).
    pub mode: String,
    /// The phase label active when the run started (empty before any
    /// marker).
    pub phase: String,
    /// The report re-derived from the event stream.
    pub derived: RunReport,
    /// The report the engine emitted at `run_end`.
    pub recorded: RunReport,
}

/// The validator's verdict over a whole trace.
#[derive(Clone, Debug, Default)]
pub struct TraceSummary {
    /// Every run, in stream order, with derived == recorded.
    pub runs: Vec<RunSummary>,
    /// Per-phase breakdowns in first-seen order: measured runs absorbed,
    /// analytic charges added via `charge_rounds`.
    pub phases: Vec<(String, RunReport)>,
    /// Absorbed total over all runs and charges (equals the sum of the
    /// per-phase breakdowns by construction — and by test).
    pub total: RunReport,
    /// Fast-forward jumps recorded across all runs.
    pub ff_jumps: u64,
    /// Rounds skipped by fast-forward across all runs.
    pub ff_skipped: u64,
    /// Churn events recorded between runs.
    pub churn_events: u64,
    /// Re-fixup decisions recorded between runs (incremental or full).
    pub refixups: u64,
}

impl TraceSummary {
    /// The breakdown recorded for `phase`, if any run or charge landed
    /// in it.
    pub fn phase(&self, label: &str) -> Option<&RunReport> {
        self.phases
            .iter()
            .find_map(|(l, r)| (l == label).then_some(r))
    }
}

/// Extracts the integer value of `"key":` from a single-line JSON
/// object. Only the exact quoted key matches, so `"r"` never matches
/// inside `"rounds"`.
fn field_u64(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    let end = rest.find([',', '}'])?;
    rest[..end].trim().parse().ok()
}

fn field_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":\"");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    rest.find('"').map(|end| &rest[..end])
}

fn field_bool(line: &str, key: &str) -> Option<bool> {
    let pat = format!("\"{key}\":");
    let at = line.find(&pat)? + pat.len();
    let rest = line[at..].trim_start();
    if rest.starts_with("true") {
        Some(true)
    } else if rest.starts_with("false") {
        Some(false)
    } else {
        None
    }
}

/// Accumulator for the run currently open in the stream.
struct RunAcc {
    mode: String,
    phase: String,
    budget: Option<u64>,
    fixed_mem: Option<u64>,
    max_flush_bytes: u64,
    max_round: Option<u64>,
    ff_to: u64,
    max_pulse: u64,
    sends: u64,
    send_bits: u64,
    max_bits: u64,
    per_round: HashMap<u64, u64>,
    edge_dirs: HashSet<(u64, u32, u32)>,
    send_drops: u64,
    send_dups: u64,
    crash_lost: u64,
    delivers: u64,
    drops: u64,
    dups: u64,
    crash_drops: u64,
    retx: u64,
}

impl RunAcc {
    fn derive(&self) -> RunReport {
        let mut r = RunReport::default();
        if self.mode == "sync" {
            r.rounds = self.max_round.map(|x| x + 1).unwrap_or(0).max(self.ff_to);
            r.messages = self.sends;
            r.total_bits = self.send_bits;
            r.max_message_bits = self.max_bits;
            r.peak_messages_per_round = self.per_round.values().copied().max().unwrap_or(0);
            r.dropped_messages = self.send_drops + self.crash_lost;
            r.duplicated_messages = self.send_dups;
            r.retransmissions = 0;
            // Peak memory is the executor's fixed footprint plus the
            // largest per-round staged-send slab (the flush events). A
            // run that traced no fixed_mem (the reference loop) derives
            // zero, matching what such executors record.
            r.peak_memory_bytes = self.fixed_mem.map_or(0, |f| f + self.max_flush_bytes);
        } else {
            // α projection: pulses are rounds, payload deliveries are
            // messages; bit and peak accounting is deliberately zeroed
            // (RunReport::from<AlphaReport> documents why).
            r.rounds = self.max_pulse;
            r.messages = self.delivers;
            r.dropped_messages = self.drops + self.crash_drops;
            r.duplicated_messages = self.dups;
            r.retransmissions = self.retx;
        }
        r
    }
}

fn report_fields(r: &RunReport) -> [(&'static str, u64); 9] {
    [
        ("rounds", r.rounds),
        ("messages", r.messages),
        ("total_bits", r.total_bits),
        ("max_message_bits", r.max_message_bits),
        ("peak_messages_per_round", r.peak_messages_per_round),
        ("dropped_messages", r.dropped_messages),
        ("duplicated_messages", r.duplicated_messages),
        ("retransmissions", r.retransmissions),
        ("peak_memory_bytes", r.peak_memory_bytes),
    ]
}

fn phase_entry<'a>(phases: &'a mut Vec<(String, RunReport)>, label: &str) -> &'a mut RunReport {
    if let Some(at) = phases.iter().position(|(l, _)| l == label) {
        return &mut phases[at].1;
    }
    phases.push((label.to_string(), RunReport::default()));
    &mut phases.last_mut().expect("just pushed").1
}

/// Validates a JSONL trace file; see [`validate_str`].
///
/// # Errors
///
/// Returns the first accounting or CONGEST violation found, or an I/O
/// description if the file cannot be read.
pub fn validate_file(
    path: impl AsRef<Path>,
    expect_bit_budget: Option<u64>,
) -> Result<TraceSummary, String> {
    let path = path.as_ref();
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    validate_str(&text, expect_bit_budget)
}

/// Replays a JSONL trace and checks it end to end.
///
/// Per run, the validator re-derives all nine [`RunReport`] fields from
/// the raw events (round/ff events for `rounds`, send events for
/// `messages`/`total_bits`/`max_message_bits`/`peak`, zero-copy sends
/// plus crash losses for `dropped_messages`, extra copies for
/// `duplicated_messages`, the `run_start` fixed footprint plus the
/// largest flush for `peak_memory_bytes`; under α: pulses, payload
/// deliveries, drops, dups and retransmissions) and requires exact
/// agreement with the
/// report recorded at `run_end`. Synchronous runs are additionally
/// checked against the CONGEST contract: no two sends may share an
/// `(round, sender, port)` edge-direction, and — when a budget is known
/// from the `run_start` event or `expect_bit_budget` — every message
/// must fit in it (`expect_bit_budget` also bounds α payloads).
///
/// # Errors
///
/// Returns a description of the first malformed line, accounting
/// mismatch, or CONGEST violation encountered.
pub fn validate_str(text: &str, expect_bit_budget: Option<u64>) -> Result<TraceSummary, String> {
    let mut sum = TraceSummary::default();
    let mut current_phase = String::new();
    let mut cur: Option<RunAcc> = None;
    // Scope claimed by the last incremental refixup event, audited
    // against the node count of the next run_start.
    let mut pending_refixup: Option<(usize, u64)> = None;

    for (at, line) in text.lines().enumerate() {
        let lineno = at + 1;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let ev = field_str(line, "ev").ok_or_else(|| format!("line {lineno}: no \"ev\" field"))?;
        let miss = |k: &str| format!("line {lineno}: {ev} event missing \"{k}\"");
        match ev {
            "run_start" => {
                if cur.is_some() {
                    return Err(format!("line {lineno}: run_start inside an open run"));
                }
                let nodes = field_u64(line, "nodes").ok_or_else(|| miss("nodes"))? as usize;
                if let Some((scope, epoch)) = pending_refixup.take() {
                    if nodes > scope {
                        return Err(format!(
                            "line {lineno}: refixup for epoch {epoch} claimed a {scope}-node \
                             scope but the recovery run simulates {nodes} nodes"
                        ));
                    }
                }
                cur = Some(RunAcc {
                    mode: field_str(line, "mode")
                        .ok_or_else(|| miss("mode"))?
                        .to_string(),
                    phase: current_phase.clone(),
                    budget: field_u64(line, "budget"),
                    fixed_mem: field_u64(line, "fixed_mem"),
                    max_flush_bytes: 0,
                    max_round: None,
                    ff_to: 0,
                    max_pulse: 0,
                    sends: 0,
                    send_bits: 0,
                    max_bits: 0,
                    per_round: HashMap::new(),
                    edge_dirs: HashSet::new(),
                    send_drops: 0,
                    send_dups: 0,
                    crash_lost: 0,
                    delivers: 0,
                    drops: 0,
                    dups: 0,
                    crash_drops: 0,
                    retx: 0,
                });
            }
            "phase" => {
                if cur.is_some() {
                    return Err(format!("line {lineno}: phase marker inside an open run"));
                }
                current_phase = field_str(line, "label")
                    .ok_or_else(|| miss("label"))?
                    .to_string();
            }
            "charge" => {
                if cur.is_some() {
                    return Err(format!("line {lineno}: charge inside an open run"));
                }
                let rounds = field_u64(line, "rounds").ok_or_else(|| miss("rounds"))?;
                phase_entry(&mut sum.phases, &current_phase).charge_rounds(rounds);
                sum.total.charge_rounds(rounds);
            }
            "churn" => {
                if cur.is_some() {
                    return Err(format!("line {lineno}: churn event inside an open run"));
                }
                field_u64(line, "epoch").ok_or_else(|| miss("epoch"))?;
                field_str(line, "kind").ok_or_else(|| miss("kind"))?;
                field_u64(line, "a").ok_or_else(|| miss("a"))?;
                sum.churn_events += 1;
            }
            "refixup" => {
                if cur.is_some() {
                    return Err(format!("line {lineno}: refixup event inside an open run"));
                }
                let epoch = field_u64(line, "epoch").ok_or_else(|| miss("epoch"))?;
                let scope = field_u64(line, "scope").ok_or_else(|| miss("scope"))? as usize;
                let total = field_u64(line, "total").ok_or_else(|| miss("total"))? as usize;
                let full = field_bool(line, "full").ok_or_else(|| miss("full"))?;
                if scope > total {
                    return Err(format!(
                        "line {lineno}: refixup scope {scope} exceeds the {total}-node graph"
                    ));
                }
                if let Some((_, prev)) = pending_refixup {
                    return Err(format!(
                        "line {lineno}: refixup for epoch {epoch} before the incremental \
                         refixup for epoch {prev} was followed by a recovery run"
                    ));
                }
                if !full {
                    pending_refixup = Some((scope, epoch));
                }
                sum.refixups += 1;
            }
            "run_end" => {
                let run = cur
                    .take()
                    .ok_or_else(|| format!("line {lineno}: run_end without run_start"))?;
                let recorded = RunReport {
                    rounds: field_u64(line, "rounds").ok_or_else(|| miss("rounds"))?,
                    messages: field_u64(line, "messages").ok_or_else(|| miss("messages"))?,
                    total_bits: field_u64(line, "total_bits").ok_or_else(|| miss("total_bits"))?,
                    max_message_bits: field_u64(line, "max_message_bits")
                        .ok_or_else(|| miss("max_message_bits"))?,
                    peak_messages_per_round: field_u64(line, "peak").ok_or_else(|| miss("peak"))?,
                    dropped_messages: field_u64(line, "dropped").ok_or_else(|| miss("dropped"))?,
                    duplicated_messages: field_u64(line, "duplicated")
                        .ok_or_else(|| miss("duplicated"))?,
                    retransmissions: field_u64(line, "retx").ok_or_else(|| miss("retx"))?,
                    peak_memory_bytes: field_u64(line, "peak_mem")
                        .ok_or_else(|| miss("peak_mem"))?,
                };
                let derived = run.derive();
                for ((name, d), (_, r)) in report_fields(&derived)
                    .into_iter()
                    .zip(report_fields(&recorded))
                {
                    if d != r {
                        return Err(format!(
                            "line {lineno}: {} run: derived {name} = {d} but the engine \
                             recorded {r}",
                            run.mode
                        ));
                    }
                }
                phase_entry(&mut sum.phases, &run.phase).absorb(&derived);
                sum.total.absorb(&derived);
                sum.runs.push(RunSummary {
                    mode: run.mode,
                    phase: run.phase,
                    derived,
                    recorded,
                });
            }
            _ => {
                let run = cur
                    .as_mut()
                    .ok_or_else(|| format!("line {lineno}: {ev} event outside any run"))?;
                match ev {
                    "round" => {
                        let r = field_u64(line, "r").ok_or_else(|| miss("r"))?;
                        run.max_round = Some(run.max_round.map_or(r, |m| m.max(r)));
                    }
                    "ff" => {
                        let from = field_u64(line, "from").ok_or_else(|| miss("from"))?;
                        let to = field_u64(line, "to").ok_or_else(|| miss("to"))?;
                        if to < from {
                            return Err(format!("line {lineno}: fast-forward goes backwards"));
                        }
                        run.ff_to = run.ff_to.max(to);
                        sum.ff_jumps += 1;
                        sum.ff_skipped += to - from;
                    }
                    "flush" => {
                        field_u64(line, "r").ok_or_else(|| miss("r"))?;
                        field_u64(line, "staged").ok_or_else(|| miss("staged"))?;
                        let bytes = field_u64(line, "bytes").ok_or_else(|| miss("bytes"))?;
                        run.max_flush_bytes = run.max_flush_bytes.max(bytes);
                    }
                    "send" => {
                        let r = field_u64(line, "r").ok_or_else(|| miss("r"))?;
                        let v = field_u64(line, "v").ok_or_else(|| miss("v"))? as u32;
                        let p = field_u64(line, "p").ok_or_else(|| miss("p"))? as u32;
                        let bits = field_u64(line, "bits").ok_or_else(|| miss("bits"))?;
                        let copies = field_u64(line, "copies").ok_or_else(|| miss("copies"))?;
                        if !run.edge_dirs.insert((r, v, p)) {
                            return Err(format!(
                                "line {lineno}: CONGEST violation: round {r} carries two \
                                 messages from node {v} port {p}"
                            ));
                        }
                        if let Some(b) = run.budget.or(expect_bit_budget) {
                            if bits > b {
                                return Err(format!(
                                    "line {lineno}: CONGEST violation: {bits}-bit message \
                                     from node {v} exceeds the {b}-bit budget"
                                ));
                            }
                        }
                        run.sends += 1;
                        run.send_bits += bits;
                        run.max_bits = run.max_bits.max(bits);
                        *run.per_round.entry(r).or_insert(0) += 1;
                        if copies == 0 {
                            run.send_drops += 1;
                        } else {
                            run.send_dups += copies - 1;
                        }
                    }
                    "crash_lost" => {
                        run.crash_lost +=
                            field_u64(line, "copies").ok_or_else(|| miss("copies"))?;
                    }
                    "pulse" => {
                        let p = field_u64(line, "p").ok_or_else(|| miss("p"))?;
                        run.max_pulse = run.max_pulse.max(p);
                    }
                    "deliver" => {
                        let bits = field_u64(line, "bits").ok_or_else(|| miss("bits"))?;
                        if let Some(b) = expect_bit_budget {
                            if bits > b {
                                return Err(format!(
                                    "line {lineno}: CONGEST violation: {bits}-bit payload \
                                     exceeds the {b}-bit budget"
                                ));
                            }
                        }
                        run.delivers += 1;
                    }
                    "drop" => {
                        field_bool(line, "down").ok_or_else(|| miss("down"))?;
                        run.drops += 1;
                    }
                    "dup" => run.dups += 1,
                    "crash_drop" => {
                        run.crash_drops += field_u64(line, "n").ok_or_else(|| miss("n"))?;
                    }
                    "retx" => {
                        field_u64(line, "attempt").ok_or_else(|| miss("attempt"))?;
                        run.retx += 1;
                    }
                    other => return Err(format!("line {lineno}: unknown event \"{other}\"")),
                }
            }
        }
    }
    if cur.is_some() {
        return Err("trace ends inside an open run (no run_end)".to_string());
    }
    if let Some((_, epoch)) = pending_refixup {
        return Err(format!(
            "trace ends before the incremental refixup for epoch {epoch} ran its recovery"
        ));
    }
    Ok(sum)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn send(round: u64, sender: u32, port: u32, bits: u64) -> TraceEvent<'static> {
        TraceEvent::Send {
            round,
            sender,
            port,
            bits,
            copies: 1,
            link_down: false,
        }
    }

    fn record(events: &[TraceEvent<'_>]) -> String {
        let mut sink = MemorySink::new();
        for ev in events {
            sink.event(ev);
        }
        sink.to_jsonl()
    }

    #[test]
    fn sync_roundtrip_rederives_all_fields() {
        let report = RunReport {
            rounds: 40,
            messages: 3,
            total_bits: 144,
            max_message_bits: 96,
            peak_messages_per_round: 2,
            dropped_messages: 1,
            duplicated_messages: 1,
            retransmissions: 0,
            peak_memory_bytes: 0,
        };
        let text = record(&[
            TraceEvent::RunStart {
                mode: "sync",
                nodes: 4,
                edges: 3,
                bit_budget: Some(96),
                fixed_mem: None,
            },
            TraceEvent::Round { round: 0 },
            send(0, 0, 0, 48),
            send(0, 1, 1, 96),
            TraceEvent::Round { round: 1 },
            TraceEvent::Send {
                round: 1,
                sender: 2,
                port: 0,
                bits: 0,
                copies: 2,
                link_down: false,
            },
            TraceEvent::CrashLost {
                round: 1,
                copies: 1,
            },
            TraceEvent::FastForward { from: 2, to: 40 },
            TraceEvent::RunEnd { report: &report },
        ]);
        let sum = validate_str(&text, None).expect("valid trace");
        assert_eq!(sum.runs.len(), 1);
        assert_eq!(sum.runs[0].derived, report);
        assert_eq!(sum.total, report);
        assert_eq!(sum.ff_jumps, 1);
        assert_eq!(sum.ff_skipped, 38);
    }

    #[test]
    fn peak_memory_rederives_from_fixed_and_flush() {
        let report = RunReport {
            rounds: 2,
            messages: 1,
            total_bits: 48,
            max_message_bits: 48,
            peak_messages_per_round: 1,
            peak_memory_bytes: 1024 + 72,
            ..RunReport::default()
        };
        let events = [
            TraceEvent::RunStart {
                mode: "sync",
                nodes: 2,
                edges: 1,
                bit_budget: None,
                fixed_mem: Some(1024),
            },
            TraceEvent::Round { round: 0 },
            TraceEvent::ShardFlush {
                round: 0,
                staged: 1,
                bytes: 72,
            },
            send(0, 0, 0, 48),
            TraceEvent::Round { round: 1 },
            TraceEvent::ShardFlush {
                round: 1,
                staged: 0,
                bytes: 0,
            },
            TraceEvent::RunEnd { report: &report },
        ];
        let sum = validate_str(&record(&events), None).expect("valid trace");
        assert_eq!(sum.runs[0].derived.peak_memory_bytes, 1096);

        // A cooked peak is caught like any other field.
        let cooked = RunReport {
            peak_memory_bytes: 4096,
            ..report.clone()
        };
        let mut forged = events;
        forged[forged.len() - 1] = TraceEvent::RunEnd { report: &cooked };
        let err = validate_str(&record(&forged), None).expect_err("cooked peak");
        assert!(err.contains("peak_memory_bytes"), "{err}");
    }

    #[test]
    fn double_send_on_edge_direction_is_flagged() {
        let report = RunReport {
            rounds: 1,
            messages: 2,
            total_bits: 96,
            max_message_bits: 48,
            peak_messages_per_round: 2,
            ..RunReport::default()
        };
        let text = record(&[
            TraceEvent::RunStart {
                mode: "sync",
                nodes: 2,
                edges: 1,
                bit_budget: None,
                fixed_mem: None,
            },
            TraceEvent::Round { round: 0 },
            send(0, 0, 0, 48),
            send(0, 0, 0, 48),
            TraceEvent::RunEnd { report: &report },
        ]);
        let err = validate_str(&text, None).expect_err("double send must fail");
        assert!(err.contains("CONGEST violation"), "{err}");
    }

    #[test]
    fn oversized_message_is_flagged_via_expected_budget() {
        let report = RunReport {
            rounds: 1,
            messages: 1,
            total_bits: 200,
            max_message_bits: 200,
            peak_messages_per_round: 1,
            ..RunReport::default()
        };
        let text = record(&[
            TraceEvent::RunStart {
                mode: "sync",
                nodes: 2,
                edges: 1,
                bit_budget: None,
                fixed_mem: None,
            },
            TraceEvent::Round { round: 0 },
            send(0, 0, 0, 200),
            TraceEvent::RunEnd { report: &report },
        ]);
        assert!(validate_str(&text, None).is_ok());
        let err = validate_str(&text, Some(144)).expect_err("budget exceeded");
        assert!(err.contains("exceeds the 144-bit budget"), "{err}");
    }

    #[test]
    fn cooked_report_is_caught() {
        let cooked = RunReport {
            rounds: 1,
            messages: 5, // stream shows 1
            total_bits: 48,
            max_message_bits: 48,
            peak_messages_per_round: 1,
            ..RunReport::default()
        };
        let text = record(&[
            TraceEvent::RunStart {
                mode: "sync",
                nodes: 2,
                edges: 1,
                bit_budget: None,
                fixed_mem: None,
            },
            TraceEvent::Round { round: 0 },
            send(0, 0, 0, 48),
            TraceEvent::RunEnd { report: &cooked },
        ]);
        let err = validate_str(&text, None).expect_err("mismatch must fail");
        assert!(err.contains("derived messages = 1"), "{err}");
    }

    #[test]
    fn phases_partition_runs_and_charges() {
        let r1 = RunReport {
            rounds: 2,
            messages: 1,
            total_bits: 48,
            max_message_bits: 48,
            peak_messages_per_round: 1,
            ..RunReport::default()
        };
        let text = record(&[
            TraceEvent::Phase { label: "SimpleMST" },
            TraceEvent::RunStart {
                mode: "sync",
                nodes: 2,
                edges: 1,
                bit_budget: None,
                fixed_mem: None,
            },
            TraceEvent::Round { round: 0 },
            send(0, 0, 0, 48),
            TraceEvent::Round { round: 1 },
            TraceEvent::RunEnd { report: &r1 },
            TraceEvent::Phase {
                label: "DOMPartition",
            },
            TraceEvent::Charge { rounds: 57 },
        ]);
        let sum = validate_str(&text, None).expect("valid trace");
        assert_eq!(sum.phase("SimpleMST").unwrap().messages, 1);
        assert_eq!(sum.phase("DOMPartition").unwrap().rounds, 57);
        assert_eq!(sum.phase("DOMPartition").unwrap().messages, 0);
        // per-phase sums equal the absorbed total
        let mut recombined = RunReport::default();
        for (_, r) in &sum.phases {
            recombined.absorb(r);
        }
        assert_eq!(recombined, sum.total);
        assert_eq!(sum.total.rounds, 2 + 57);
    }

    #[test]
    fn alpha_runs_derive_from_pulses_and_deliveries() {
        let report = RunReport {
            rounds: 3,
            messages: 2,
            dropped_messages: 2,
            duplicated_messages: 1,
            retransmissions: 1,
            ..RunReport::default()
        };
        let text = record(&[
            TraceEvent::RunStart {
                mode: "reliable-alpha",
                nodes: 2,
                edges: 1,
                bit_budget: None,
                fixed_mem: None,
            },
            TraceEvent::Pulse { pulse: 1 },
            TraceEvent::Drop {
                time: 1,
                link_down: false,
            },
            TraceEvent::Retx {
                time: 4,
                node: 0,
                port: 0,
                seq: 1,
                attempt: 2,
            },
            TraceEvent::Duplicate { time: 4 },
            TraceEvent::Deliver {
                time: 5,
                node: 1,
                port: 0,
                bits: 48,
            },
            TraceEvent::Pulse { pulse: 2 },
            TraceEvent::Deliver {
                time: 6,
                node: 0,
                port: 0,
                bits: 48,
            },
            TraceEvent::Pulse { pulse: 3 },
            TraceEvent::CrashDrop { lost: 1 },
            TraceEvent::RunEnd { report: &report },
        ]);
        let sum = validate_str(&text, None).expect("valid α trace");
        assert_eq!(sum.runs[0].derived, report);
        // α traces never zero out: bit fields are zero by projection
        assert_eq!(sum.runs[0].derived.total_bits, 0);
    }

    #[test]
    fn truncated_trace_is_rejected() {
        let text = record(&[TraceEvent::RunStart {
            mode: "sync",
            nodes: 1,
            edges: 0,
            bit_budget: None,
            fixed_mem: None,
        }]);
        let err = validate_str(&text, None).expect_err("open run must fail");
        assert!(err.contains("no run_end"), "{err}");
    }

    #[test]
    fn labels_are_escaped() {
        let ev = TraceEvent::Phase {
            label: "odd \"label\"\\n",
        };
        let line = to_json(&ev);
        assert_eq!(
            line,
            "{\"ev\":\"phase\",\"label\":\"odd \\\"label\\\"\\\\n\"}"
        );
    }

    static ZERO_REPORT: RunReport = RunReport {
        rounds: 0,
        messages: 0,
        total_bits: 0,
        max_message_bits: 0,
        peak_messages_per_round: 0,
        dropped_messages: 0,
        duplicated_messages: 0,
        retransmissions: 0,
        peak_memory_bytes: 0,
    };

    fn tiny_run(nodes: usize) -> [TraceEvent<'static>; 2] {
        [
            TraceEvent::RunStart {
                mode: "sync",
                nodes,
                edges: 0,
                bit_budget: None,
                fixed_mem: None,
            },
            TraceEvent::RunEnd {
                report: &ZERO_REPORT,
            },
        ]
    }

    #[test]
    fn churn_and_refixup_round_trip() {
        assert_eq!(
            to_json(&TraceEvent::Churn {
                epoch: 2,
                kind: "edge_insert",
                a: 7,
                b: Some(9),
                w: Some(44),
            }),
            "{\"ev\":\"churn\",\"epoch\":2,\"kind\":\"edge_insert\",\"a\":7,\"b\":9,\"w\":44}"
        );
        assert_eq!(
            to_json(&TraceEvent::Churn {
                epoch: 0,
                kind: "node_leave",
                a: 5,
                b: None,
                w: None,
            }),
            "{\"ev\":\"churn\",\"epoch\":0,\"kind\":\"node_leave\",\"a\":5}"
        );
        assert_eq!(
            to_json(&TraceEvent::Refixup {
                epoch: 1,
                scope: 3,
                total: 10,
                full_restart: false,
            }),
            "{\"ev\":\"refixup\",\"epoch\":1,\"scope\":3,\"total\":10,\"full\":false}"
        );
        let mut events: Vec<TraceEvent<'static>> = tiny_run(10).to_vec();
        events.push(TraceEvent::Churn {
            epoch: 0,
            kind: "node_leave",
            a: 5,
            b: None,
            w: None,
        });
        events.push(TraceEvent::Refixup {
            epoch: 0,
            scope: 3,
            total: 9,
            full_restart: false,
        });
        events.extend(tiny_run(3));
        let sum = validate_str(&record(&events), None).expect("valid churn trace");
        assert_eq!(sum.churn_events, 1);
        assert_eq!(sum.refixups, 1);
        assert_eq!(sum.runs.len(), 2);
    }

    #[test]
    fn refixup_audit_catches_overscoped_recovery() {
        // The incremental refixup claims a 2-node scope but the recovery
        // run simulates all 9 nodes — the validator must reject it.
        let mut events: Vec<TraceEvent<'static>> = vec![TraceEvent::Refixup {
            epoch: 0,
            scope: 2,
            total: 9,
            full_restart: false,
        }];
        events.extend(tiny_run(9));
        let err = validate_str(&record(&events), None).expect_err("overscoped");
        assert!(err.contains("claimed a 2-node scope"), "{err}");
        assert!(err.contains("simulates 9 nodes"), "{err}");

        // A full restart makes no scope claim, so the same run is fine.
        let mut events: Vec<TraceEvent<'static>> = vec![TraceEvent::Refixup {
            epoch: 0,
            scope: 2,
            total: 9,
            full_restart: true,
        }];
        events.extend(tiny_run(9));
        validate_str(&record(&events), None).expect("full restart audits nothing");
    }

    #[test]
    fn refixup_misuse_is_rejected() {
        // scope larger than the graph
        let events = [TraceEvent::Refixup {
            epoch: 0,
            scope: 11,
            total: 10,
            full_restart: true,
        }];
        let err = validate_str(&record(&events), None).expect_err("scope > total");
        assert!(err.contains("exceeds"), "{err}");

        // incremental claim never followed by a recovery run
        let events = [TraceEvent::Refixup {
            epoch: 3,
            scope: 1,
            total: 10,
            full_restart: false,
        }];
        let err = validate_str(&record(&events), None).expect_err("no recovery run");
        assert!(err.contains("epoch 3"), "{err}");

        // churn inside an open run
        let text = concat!(
            "{\"ev\":\"run_start\",\"mode\":\"sync\",\"nodes\":1,\"edges\":0}\n",
            "{\"ev\":\"churn\",\"epoch\":0,\"kind\":\"node_leave\",\"a\":5}\n",
        );
        let err = validate_str(text, None).expect_err("churn inside run");
        assert!(err.contains("inside an open run"), "{err}");
    }

    #[test]
    fn thread_trace_overrides_environment_and_restores() {
        // An env-selected file sink would pollute other tests; use a
        // variable scoped to this test's thread via the override instead.
        let captured = MemorySink::new();
        with_thread_trace(ThreadTrace::Capture(captured.clone()), || {
            emit_phase("Captured");
        });
        assert_eq!(captured.len(), 1);
        assert!(captured.to_jsonl().contains("\"label\":\"Captured\""));

        // Off suppresses emission entirely.
        let silent = MemorySink::new();
        with_thread_trace(ThreadTrace::Capture(silent.clone()), || {
            with_thread_trace(ThreadTrace::Off, || emit_phase("Dropped"));
            // ...and the outer capture policy is restored afterwards.
            emit_phase("AfterRestore");
        });
        assert_eq!(silent.len(), 1);
        assert!(silent.to_jsonl().contains("AfterRestore"));

        // The restore also survives a panicking body.
        let outer = MemorySink::new();
        with_thread_trace(ThreadTrace::Capture(outer.clone()), || {
            let caught = std::panic::catch_unwind(|| {
                with_thread_trace(ThreadTrace::Off, || panic!("job died"))
            });
            assert!(caught.is_err());
            emit_phase("StillCapturing");
        });
        assert_eq!(outer.len(), 1);
    }

    #[test]
    fn memory_sink_lines_since_reads_incrementally() {
        let mut sink = MemorySink::new();
        sink.event(&TraceEvent::Phase { label: "A" });
        sink.event(&TraceEvent::Phase { label: "B" });
        let first = sink.lines_since(0);
        assert_eq!(first.len(), 2);
        assert!(sink.lines_since(2).is_empty());
        sink.event(&TraceEvent::Phase { label: "C" });
        let tail = sink.lines_since(2);
        assert_eq!(tail.len(), 1);
        assert!(tail[0].contains("\"label\":\"C\""));
        assert!(sink.lines_since(99).is_empty());
    }
}
