//! The unified event core: time-ordered scheduling shared by the round
//! engine and the α executor.
//!
//! Both executors schedule *future work at a virtual time* — the round
//! engine parks timer-armed nodes until their declared [`Wake`] round,
//! the α executor orders message deliveries and node activations on a
//! virtual clock. They historically carried parallel mechanisms: the
//! engine a lazily-invalidated min-heap guarded by an authoritative
//! per-node `wake_at` table, the α executor a `BinaryHeap` of
//! `(time, seq, event)` triples with a hand-rolled always-equal wrapper
//! to keep payloads out of the ordering. The duplication is what bred
//! the PR 3 double-step bug class: every copy re-implements its own
//! invalidation and dedup rules. This module owns both shapes once.
//!
//! - [`EventQueue`] is the α shape: arbitrary payloads, FIFO-stable
//!   within a tick (ties pop in insertion order via an internal
//!   sequence number), payloads never compared.
//! - [`TimerHeap`] is the engine shape: at most one *authoritative*
//!   wake per node (the `wake_at` table), heap entries lazily
//!   invalidated against it, and the due-list dedup that the PR 3
//!   regression proved necessary baked into [`TimerHeap::pop_due`]
//!   itself rather than left to the caller.
//!
//! [`Wake`]: crate::sim::Wake

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Sentinel wake time: no timer armed (done, message-driven, crashed).
pub const NEVER: u64 = u64::MAX;

/// One queued event: ordered by `(at, seq)` only — the payload is never
/// compared, so `E` needs no `Ord` (or even `PartialEq`).
#[derive(Debug)]
struct Entry<E> {
    at: u64,
    seq: u64,
    ev: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A min-heap of timed events, FIFO-stable within a tick: events pushed
/// at the same virtual time pop in insertion order. This is the α
/// executor's delivery queue — determinism of an event-driven run *is*
/// this ordering guarantee.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `ev` at virtual time `at`. Events at equal times pop
    /// in the order they were pushed.
    pub fn push(&mut self, at: u64, ev: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry { at, seq, ev }));
    }

    /// Removes and returns the earliest event as `(time, event)`.
    pub fn pop(&mut self) -> Option<(u64, E)> {
        self.heap.pop().map(|Reverse(e)| (e.at, e.ev))
    }

    /// Virtual time of the earliest queued event.
    pub fn peek_at(&self) -> Option<u64> {
        self.heap.peek().map(|Reverse(e)| e.at)
    }

    /// Whether no events are queued.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }
}

/// Per-node one-shot timers with lazy invalidation: the engine's
/// parked-wake mechanism.
///
/// The `wake_at` table is *authoritative* — a heap entry counts only
/// while it still agrees with the table. Superseding a node's wake
/// ([`TimerHeap::park`] at a different round, [`TimerHeap::note`], or
/// [`TimerHeap::cancel`]) is O(1): the old heap entry is left behind
/// and discarded when it surfaces. The subtle consequence (the PR 3
/// double-step bug) is that the heap can briefly hold two *valid*
/// entries for one `(round, node)`: an entry goes stale when a
/// message-woken node changes its promise, and a later re-park at the
/// original round both re-validates it and pushes a fresh copy. Both
/// pop as due, so [`TimerHeap::pop_due`] dedups the due list itself —
/// callers get each node at most once.
#[derive(Debug)]
pub struct TimerHeap {
    /// The round each node asked to wake at, or [`NEVER`]. Heap entries
    /// disagreeing with this are stale.
    wake_at: Vec<u64>,
    /// Timer-armed nodes as `(wake, node)`, lazily invalidated.
    heap: BinaryHeap<Reverse<(u64, u32)>>,
}

impl TimerHeap {
    /// Creates a heap for `n` nodes, none armed.
    pub fn new(n: usize) -> Self {
        TimerHeap {
            wake_at: vec![NEVER; n],
            heap: BinaryHeap::new(),
        }
    }

    /// Arms node `v`'s timer for round `at`, pushing a heap entry.
    /// Re-parking at the node's current wake is free: the existing
    /// entry is still valid, so no duplicate is pushed.
    pub fn park(&mut self, v: u32, at: u64) {
        if self.wake_at[v as usize] != at {
            self.wake_at[v as usize] = at;
            self.heap.push(Reverse((at, v)));
        }
    }

    /// Records `at` as node `v`'s authoritative wake *without* a heap
    /// entry — for wakes another mechanism already schedules (the
    /// engine's ticking list). Any parked entry for `v` goes stale.
    pub fn note(&mut self, v: u32, at: u64) {
        self.wake_at[v as usize] = at;
    }

    /// Disarms node `v` (done, message-driven, or crashed); its parked
    /// entry, if any, goes stale.
    pub fn cancel(&mut self, v: u32) {
        self.wake_at[v as usize] = NEVER;
    }

    /// Pops every timer due at or before `now` into `due` — sorted,
    /// deduplicated, stale entries discarded. `due` is cleared first.
    pub fn pop_due(&mut self, now: u64, due: &mut Vec<u32>) {
        due.clear();
        while let Some(&Reverse((wake, v))) = self.heap.peek() {
            if wake > now {
                break;
            }
            self.heap.pop();
            if self.wake_at[v as usize] == wake {
                due.push(v);
            }
        }
        due.sort_unstable();
        // two valid entries for one (round, node) can coexist — see the
        // type docs; without this dedup the node would step twice
        due.dedup();
    }

    /// Earliest *valid* armed wake, pruning stale entries from the top
    /// of the heap. `None` means no timer is armed.
    pub fn next_valid(&mut self) -> Option<u64> {
        while let Some(&Reverse((wake, v))) = self.heap.peek() {
            if self.wake_at[v as usize] != wake {
                self.heap.pop(); // stale entry
                continue;
            }
            return Some(wake);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_queue_orders_by_time_then_fifo() {
        let mut q = EventQueue::new();
        q.push(5, "late");
        q.push(1, "first-at-1");
        q.push(1, "second-at-1");
        q.push(3, "mid");
        assert_eq!(q.len(), 4);
        assert_eq!(q.peek_at(), Some(1));
        assert_eq!(q.pop(), Some((1, "first-at-1")));
        assert_eq!(q.pop(), Some((1, "second-at-1")));
        assert_eq!(q.pop(), Some((3, "mid")));
        assert_eq!(q.pop(), Some((5, "late")));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn event_queue_needs_no_ord_on_payloads() {
        // closures implement none of the comparison traits
        let mut q: EventQueue<Box<dyn Fn() -> u64>> = EventQueue::new();
        q.push(2, Box::new(|| 20));
        q.push(2, Box::new(|| 21));
        let (_, f) = q.pop().unwrap();
        assert_eq!(f(), 20, "FIFO within the tick");
    }

    #[test]
    fn timer_heap_pops_due_sorted() {
        let mut t = TimerHeap::new(8);
        t.park(5, 10);
        t.park(2, 10);
        t.park(7, 11);
        let mut due = Vec::new();
        t.pop_due(10, &mut due);
        assert_eq!(due, vec![2, 5]);
        t.pop_due(11, &mut due);
        assert_eq!(due, vec![7]);
        t.pop_due(12, &mut due);
        assert!(due.is_empty());
    }

    #[test]
    fn stale_entries_are_discarded() {
        let mut t = TimerHeap::new(4);
        t.park(1, 10);
        t.park(1, 20); // supersedes: the round-10 entry is now stale
        let mut due = Vec::new();
        t.pop_due(10, &mut due);
        assert!(due.is_empty(), "superseded timer must not fire");
        assert_eq!(t.next_valid(), Some(20));
        t.cancel(1);
        assert_eq!(t.next_valid(), None, "cancel invalidates the entry");
        t.pop_due(20, &mut due);
        assert!(due.is_empty());
    }

    #[test]
    fn revalidated_duplicate_entries_dedup() {
        // The PR 3 double-step shape: park at r, supersede (stale),
        // re-park at r (re-validates the old entry AND pushes a fresh
        // copy). Both pop as valid; the due list must carry the node
        // once.
        let mut t = TimerHeap::new(4);
        t.park(3, 10);
        t.note(3, 7); // message wake changed the promise
        t.park(3, 10); // re-park at the original round
        let mut due = Vec::new();
        t.pop_due(10, &mut due);
        assert_eq!(due, vec![3], "node must be due exactly once");
    }

    #[test]
    fn note_invalidates_without_scheduling() {
        let mut t = TimerHeap::new(4);
        t.park(2, 10);
        t.note(2, 5); // ticking elsewhere: authoritative but heap-free
        assert_eq!(t.next_valid(), None, "round-10 entry is stale");
        let mut due = Vec::new();
        t.pop_due(5, &mut due);
        assert!(due.is_empty(), "note never creates heap entries");
    }
}
