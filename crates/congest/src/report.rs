//! Run statistics collected by the simulator.

use std::fmt;

/// Metrics of one simulated execution.
///
/// `rounds` is the time-complexity measurement the experiments compare
/// against the paper's bounds; the message statistics back the CONGEST
/// (message-size) discussion, which the paper states but does not optimize.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RunReport {
    /// Number of rounds executed until global quiescence (including the
    /// final receive-only step).
    pub rounds: u64,
    /// Total number of messages sent.
    pub messages: u64,
    /// Sum of [`crate::Message::size_bits`] over all sent messages.
    pub total_bits: u64,
    /// Largest single message, in bits.
    pub max_message_bits: u64,
    /// Maximum number of messages sent in any single round.
    pub peak_messages_per_round: u64,
    /// Messages lost to injected faults (link drops, down-intervals, and
    /// arrivals at crashed nodes). Zero in fault-free runs.
    pub dropped_messages: u64,
    /// Extra message copies injected by fault duplication.
    pub duplicated_messages: u64,
    /// Retransmissions performed by the reliable-delivery layer. Zero
    /// when the layer is off or no loss occurred.
    pub retransmissions: u64,
    /// Peak bytes resident in the round engine during the run: the fixed
    /// footprint (graph CSR, double-buffered message arenas, reverse-port
    /// and schedule tables, automata) plus the largest per-round
    /// staged-send slab. Zero for executors that do not track memory
    /// (the pre-engine reference loop and synchronizer α).
    pub peak_memory_bytes: u64,
}

impl RunReport {
    /// Merges the statistics of a subsequent phase into `self`
    /// (rounds add up; message stats combine).
    pub fn absorb(&mut self, later: &RunReport) {
        self.rounds += later.rounds;
        self.messages += later.messages;
        self.total_bits += later.total_bits;
        self.max_message_bits = self.max_message_bits.max(later.max_message_bits);
        self.peak_messages_per_round = self
            .peak_messages_per_round
            .max(later.peak_messages_per_round);
        self.dropped_messages += later.dropped_messages;
        self.duplicated_messages += later.duplicated_messages;
        self.retransmissions += later.retransmissions;
        // phases run one after another, so the composition's peak is the
        // largest phase's peak, not their sum
        self.peak_memory_bytes = self.peak_memory_bytes.max(later.peak_memory_bytes);
    }

    /// Adds `rounds` charged rounds (used when a phase's cost is accounted
    /// analytically rather than simulated; see `kdom-core::cluster`).
    pub fn charge_rounds(&mut self, rounds: u64) {
        self.rounds += rounds;
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rounds={} msgs={} bits={} max_msg_bits={} peak_msgs/round={}",
            self.rounds,
            self.messages,
            self.total_bits,
            self.max_message_bits,
            self.peak_messages_per_round
        )?;
        if self.dropped_messages + self.duplicated_messages + self.retransmissions > 0 {
            write!(
                f,
                " dropped={} duplicated={} retx={}",
                self.dropped_messages, self.duplicated_messages, self.retransmissions
            )?;
        }
        if self.peak_memory_bytes > 0 {
            write!(f, " peak_mem={}", self.peak_memory_bytes)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_combines() {
        let mut a = RunReport {
            rounds: 10,
            messages: 5,
            total_bits: 320,
            max_message_bits: 64,
            peak_messages_per_round: 2,
            dropped_messages: 3,
            duplicated_messages: 1,
            retransmissions: 4,
            peak_memory_bytes: 1000,
        };
        let b = RunReport {
            rounds: 7,
            messages: 9,
            total_bits: 100,
            max_message_bits: 128,
            peak_messages_per_round: 1,
            dropped_messages: 2,
            duplicated_messages: 5,
            retransmissions: 6,
            peak_memory_bytes: 900,
        };
        a.absorb(&b);
        assert_eq!(a.rounds, 17);
        assert_eq!(a.messages, 14);
        assert_eq!(a.total_bits, 420);
        assert_eq!(a.max_message_bits, 128);
        assert_eq!(a.peak_messages_per_round, 2);
        assert_eq!(a.dropped_messages, 5);
        assert_eq!(a.duplicated_messages, 6);
        assert_eq!(a.retransmissions, 10);
        assert_eq!(a.peak_memory_bytes, 1000, "peak memory maxes, not sums");
    }

    #[test]
    fn charge_adds_rounds_only() {
        let mut a = RunReport::default();
        a.charge_rounds(42);
        assert_eq!(a.rounds, 42);
        assert_eq!(a.messages, 0);
    }

    #[test]
    fn display_is_nonempty() {
        let s = RunReport::default().to_string();
        assert!(s.contains("rounds=0"));
    }
}
