//! Link-level reliable delivery: exactly-once semantics over lossy links.
//!
//! The synchronizer-α argument in the paper (§1.2) assumes reliable
//! asynchronous links. When a [`crate::FaultPlan`] injects loss or
//! duplication, that assumption breaks — and with it every protocol's
//! correctness. This module restores it *underneath* the synchronizer:
//! each directed link runs a tiny ARQ state machine (sequence numbers,
//! per-frame acknowledgements, timeout-driven retransmission with
//! exponential backoff, receiver-side duplicate suppression), so the α
//! layer and the protocols above it observe a perfect FIFO-free reliable
//! link again. Exactly-once delivery, not just at-least-once: duplicates —
//! whether injected by the fault plan or produced by retransmission — are
//! filtered by the receiver's seen-set.
//!
//! The state machine is deliberately executor-agnostic: it decides *what*
//! to (re)transmit and *when to give up*, while the event-driven executor
//! owns the clock and the wires. That keeps it unit-testable in isolation.

use std::collections::{HashMap, HashSet};

/// Tuning knobs of the per-link ARQ machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReliableConfig {
    /// Initial retransmission timeout, in virtual time units. Should
    /// exceed a round trip: see [`ReliableConfig::for_delays`].
    pub base_timeout: u64,
    /// Cap on the exponentially backed-off timeout.
    pub max_timeout: u64,
    /// Transmission attempts (first send included) before the link is
    /// declared dead via [`crate::SimError::DeliveryExhausted`].
    pub max_retx: u32,
}

impl Default for ReliableConfig {
    fn default() -> Self {
        ReliableConfig {
            base_timeout: 8,
            max_timeout: 1024,
            max_retx: 64,
        }
    }
}

impl ReliableConfig {
    /// A configuration whose initial timeout covers one full round trip
    /// under the executor's delay model (`max_delay` base delay plus the
    /// fault plan's `max_extra_delay`, each way).
    pub fn for_delays(max_delay: u64, max_extra_delay: u64) -> Self {
        let rtt = 2 * (max_delay + max_extra_delay);
        ReliableConfig {
            base_timeout: rtt + 2,
            ..ReliableConfig::default()
        }
    }
}

/// What the executor should do when a retransmission timer fires.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RetxDecision<W> {
    /// The frame was acknowledged in the meantime — nothing to do.
    Acked,
    /// Retransmit `wire` and re-arm the timer for `next_timeout` units.
    Resend {
        /// A fresh copy of the unacknowledged wire.
        wire: W,
        /// Backed-off timeout for the next attempt.
        next_timeout: u64,
        /// Attempt number this resend makes (2 = first retransmission);
        /// recorded in the trace stream so retransmission storms are
        /// attributable per link.
        attempt: u32,
    },
    /// The retransmission budget is spent; the link must be declared dead.
    Exhausted {
        /// Total attempts made (for diagnostics).
        attempts: u32,
    },
}

#[derive(Clone, Debug)]
struct Pending<W> {
    wire: W,
    attempts: u32,
    timeout: u64,
}

/// ARQ endpoint state of one *directed* link.
///
/// The sender half tracks unacknowledged frames by sequence number; the
/// receiver half deduplicates incoming sequence numbers. One `LinkState`
/// per `(node, port)` covers both roles of that endpoint.
#[derive(Clone, Debug, Default)]
pub struct LinkState<W> {
    next_seq: u64,
    unacked: HashMap<u64, Pending<W>>,
    seen: HashSet<u64>,
}

impl<W: Clone> LinkState<W> {
    /// Fresh state with no history.
    pub fn new() -> Self {
        LinkState {
            next_seq: 0,
            unacked: HashMap::new(),
            seen: HashSet::new(),
        }
    }

    /// Registers an outgoing frame, returning the sequence number to tag
    /// it with. The frame is retained for retransmission until acked.
    pub fn register_send(&mut self, wire: W, cfg: &ReliableConfig) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.unacked.insert(
            seq,
            Pending {
                wire,
                attempts: 1,
                timeout: cfg.base_timeout,
            },
        );
        seq
    }

    /// Processes an incoming link-level ack, returning the settled frame
    /// if it was still outstanding (`None` for duplicate acks).
    pub fn on_link_ack(&mut self, seq: u64) -> Option<W> {
        self.unacked.remove(&seq).map(|p| p.wire)
    }

    /// Handles a fired retransmission timer for `seq`.
    pub fn on_retx_timer(&mut self, seq: u64, cfg: &ReliableConfig) -> RetxDecision<W> {
        let Some(p) = self.unacked.get_mut(&seq) else {
            return RetxDecision::Acked;
        };
        if p.attempts >= cfg.max_retx {
            return RetxDecision::Exhausted {
                attempts: p.attempts,
            };
        }
        p.attempts += 1;
        p.timeout = (p.timeout * 2).min(cfg.max_timeout);
        RetxDecision::Resend {
            wire: p.wire.clone(),
            next_timeout: p.timeout,
            attempt: p.attempts,
        }
    }

    /// Receiver-side duplicate suppression: `true` exactly once per `seq`.
    pub fn accept(&mut self, seq: u64) -> bool {
        self.seen.insert(seq)
    }

    /// Abandons all outstanding frames (the peer is dead), returning them
    /// so the caller can settle its accounting.
    pub fn clear(&mut self) -> Vec<W> {
        self.unacked.drain().map(|(_, p)| p.wire).collect()
    }

    /// Outstanding (sent, unacknowledged) frames.
    pub fn unacked_wires(&self) -> impl Iterator<Item = &W> {
        self.unacked.values().map(|p| &p.wire)
    }

    /// Whether nothing is awaiting acknowledgement.
    pub fn is_settled(&self) -> bool {
        self.unacked.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CFG: ReliableConfig = ReliableConfig {
        base_timeout: 4,
        max_timeout: 16,
        max_retx: 3,
    };

    #[test]
    fn sequence_numbers_are_consecutive() {
        let mut l: LinkState<u32> = LinkState::new();
        assert_eq!(l.register_send(10, &CFG), 0);
        assert_eq!(l.register_send(20, &CFG), 1);
        assert_eq!(l.register_send(30, &CFG), 2);
        assert!(!l.is_settled());
    }

    #[test]
    fn ack_settles_and_duplicate_ack_is_inert() {
        let mut l: LinkState<u32> = LinkState::new();
        let s = l.register_send(7, &CFG);
        assert_eq!(l.on_link_ack(s), Some(7));
        assert_eq!(l.on_link_ack(s), None, "second ack is a no-op");
        assert!(l.is_settled());
        assert_eq!(l.on_retx_timer(s, &CFG), RetxDecision::Acked);
    }

    #[test]
    fn retx_backs_off_exponentially_then_exhausts() {
        let mut l: LinkState<u32> = LinkState::new();
        let s = l.register_send(9, &CFG);
        let RetxDecision::Resend {
            wire,
            next_timeout,
            attempt,
        } = l.on_retx_timer(s, &CFG)
        else {
            panic!("expected resend");
        };
        assert_eq!(wire, 9);
        assert_eq!(next_timeout, 8);
        assert_eq!(attempt, 2, "first retransmission is attempt 2");
        let RetxDecision::Resend {
            next_timeout,
            attempt,
            ..
        } = l.on_retx_timer(s, &CFG)
        else {
            panic!("expected resend");
        };
        assert_eq!(next_timeout, 16, "doubled and capped");
        assert_eq!(attempt, 3);
        assert_eq!(
            l.on_retx_timer(s, &CFG),
            RetxDecision::Exhausted { attempts: 3 }
        );
    }

    #[test]
    fn timeout_cap_holds() {
        let cfg = ReliableConfig {
            base_timeout: 10,
            max_timeout: 25,
            max_retx: 10,
        };
        let mut l: LinkState<u32> = LinkState::new();
        let s = l.register_send(1, &cfg);
        let mut last = 0;
        for _ in 0..5 {
            if let RetxDecision::Resend { next_timeout, .. } = l.on_retx_timer(s, &cfg) {
                last = next_timeout;
            }
        }
        assert_eq!(last, 25);
    }

    #[test]
    fn receiver_dedups_by_seq() {
        let mut l: LinkState<u32> = LinkState::new();
        assert!(l.accept(0));
        assert!(!l.accept(0), "duplicate suppressed");
        assert!(l.accept(5));
        assert!(l.accept(1), "gaps are fine — links are not FIFO");
    }

    #[test]
    fn clear_returns_outstanding_frames() {
        let mut l: LinkState<u32> = LinkState::new();
        let a = l.register_send(100, &CFG);
        l.register_send(200, &CFG);
        l.on_link_ack(a);
        let mut dropped = l.clear();
        dropped.sort_unstable();
        assert_eq!(dropped, vec![200]);
        assert!(l.is_settled());
        assert_eq!(l.unacked_wires().count(), 0);
    }

    #[test]
    fn for_delays_covers_round_trip() {
        let cfg = ReliableConfig::for_delays(5, 3);
        assert!(cfg.base_timeout > 2 * (5 + 3));
    }
}
